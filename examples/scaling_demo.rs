//! Compare sequential and parallel G-ES-MC wall-clock time (mini Fig. 5/6).
//!
//! Run with:
//! ```text
//! cargo run --release --example scaling_demo [edges] [supersteps]
//! ```
//!
//! The demo generates a mesh-like graph with the requested number of edges,
//! runs `SeqGlobalES`, `NaiveParES` and `ParGlobalES` for the same number of
//! supersteps and prints wall-clock times, the speed-up of the exact parallel
//! algorithm and its round statistics (Fig. 9's quantities).

use gesmc::prelude::*;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let edges: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(200_000);
    let supersteps: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);

    let corpus =
        gesmc::datasets::netrep_like::family_graph(3, gesmc::datasets::GraphFamily::Mesh, edges);
    let graph = corpus.graph;
    println!(
        "graph: n = {}, m = {}, avg degree = {:.1}; {} rayon threads",
        graph.num_nodes(),
        graph.num_edges(),
        graph.average_degree(),
        rayon::current_num_threads()
    );

    // Sequential reference.
    let start = Instant::now();
    let mut seq = SeqGlobalES::new(graph.clone(), SwitchingConfig::with_seed(1));
    seq.run_supersteps(supersteps);
    let t_seq = start.elapsed();
    println!("SeqGlobalES : {:>8.3} s", t_seq.as_secs_f64());

    // Inexact parallel baseline.
    let start = Instant::now();
    let mut naive = NaiveParES::new(graph.clone(), SwitchingConfig::with_seed(1));
    naive.run_supersteps(supersteps);
    let t_naive = start.elapsed();
    println!("NaiveParES  : {:>8.3} s (inexact baseline)", t_naive.as_secs_f64());

    // Exact parallel algorithm.
    let start = Instant::now();
    let mut par = ParGlobalES::new(graph.clone(), SwitchingConfig::with_seed(1));
    let stats = par.run_supersteps(supersteps);
    let t_par = start.elapsed();
    println!(
        "ParGlobalES : {:>8.3} s  (speed-up over SeqGlobalES: {:.2}x)",
        t_par.as_secs_f64(),
        t_seq.as_secs_f64() / t_par.as_secs_f64()
    );
    println!(
        "ParGlobalES rounds per global switch: mean {:.2}, max {}; {:.1}% of round time outside round 1",
        stats.mean_rounds(),
        stats.max_rounds(),
        100.0 * stats.mean_fraction_after_first_round()
    );

    // All three preserve the degree sequence.
    let degrees = graph.degrees();
    assert_eq!(seq.graph().degrees(), degrees);
    assert_eq!(naive.graph().degrees(), degrees);
    assert_eq!(par.graph().degrees(), degrees);
    println!("degree sequences preserved by all algorithms ✓");
}
