//! Quickstart: sample a simple graph with a prescribed degree sequence.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example builds a power-law graph, randomises it with the exact parallel
//! G-ES-MC chain (`ParGlobalES`) and verifies the two invariants every switch
//! preserves: the degree sequence and simplicity.

use gesmc::prelude::*;

fn main() {
    // 1. Build an initial graph realising the prescribed degrees.  Any simple
    //    graph with the right degrees works; here we sample a power-law degree
    //    sequence (γ = 2.5) and materialise it deterministically.
    let initial = gesmc::datasets::syn_pld_graph(42, 10_000, 2.5);
    let degrees = initial.degrees();
    println!(
        "initial graph: n = {}, m = {}, max degree = {}, triangles = {}",
        initial.num_nodes(),
        initial.num_edges(),
        degrees.max_degree(),
        gesmc::graph::metrics::count_triangles(&initial),
    );

    // 2. Randomise with the parallel Global Edge Switching Markov Chain.
    //    One superstep is one global switch (≈ m/2 edge switches); 10–30
    //    supersteps are the usual practical choice.
    let mut chain = ParGlobalES::new(initial, SwitchingConfig::with_seed(42));
    let stats = chain.run_supersteps(20);
    let sample = chain.graph();

    println!(
        "ran {} supersteps of {}: {:.1}% of {} switches legal, mean {:.2} rounds per superstep",
        stats.num_supersteps(),
        chain.name(),
        100.0 * stats.acceptance_rate(),
        stats.total_requested(),
        stats.mean_rounds(),
    );
    println!(
        "sampled graph: m = {}, triangles = {}",
        sample.num_edges(),
        gesmc::graph::metrics::count_triangles(&sample),
    );

    // 3. The invariants the chain guarantees.
    assert_eq!(sample.degrees(), degrees, "degree sequence is preserved");
    assert!(sample.validate().is_ok(), "the sample is a simple graph");
    println!("degree sequence preserved; graph is simple ✓");
}
