//! Null-model significance of a motif count.
//!
//! Run with:
//! ```text
//! cargo run --release --example motif_null_model
//! ```
//!
//! The use case motivating the paper's introduction: given an observed graph,
//! quantify whether a structural property (here: the triangle count) is
//! surprising compared to the null model of *uniform simple graphs with the
//! same degrees*.  We approximate the null distribution by drawing independent
//! samples with G-ES-MC and report a z-score.

use gesmc::graph::metrics::count_triangles;
use gesmc::graph::Edge;
use gesmc::prelude::*;

/// Build an "observed" graph with planted clustering: a union of many small
/// cliques plus a sparse random background.
fn observed_graph() -> EdgeListGraph {
    let cliques = 120usize;
    let clique_size = 5usize;
    let n = cliques * clique_size;
    let mut edges = Vec::new();
    for c in 0..cliques {
        let base = (c * clique_size) as u32;
        for a in 0..clique_size as u32 {
            for b in (a + 1)..clique_size as u32 {
                edges.push(Edge::new(base + a, base + b));
            }
        }
    }
    // Sparse background ring so the graph is connected.
    for v in 0..n as u32 {
        let w = (v + clique_size as u32) % n as u32;
        let e = Edge::new(v, w);
        if !edges.contains(&e) {
            edges.push(e);
        }
    }
    EdgeListGraph::new(n, edges).expect("constructed graph is simple")
}

fn main() {
    let observed = observed_graph();
    let observed_triangles = count_triangles(&observed);
    println!(
        "observed graph: n = {}, m = {}, triangles = {}",
        observed.num_nodes(),
        observed.num_edges(),
        observed_triangles
    );

    // Draw independent null-model samples: each sample starts from the
    // observed graph and is randomised with its own seed.
    let samples = 25usize;
    let supersteps = 15usize;
    let mut null_counts = Vec::with_capacity(samples);
    for s in 0..samples as u64 {
        let mut chain = ParGlobalES::new(observed.clone(), SwitchingConfig::with_seed(1000 + s));
        chain.run_supersteps(supersteps);
        null_counts.push(count_triangles(&chain.graph()) as f64);
    }

    let mean = null_counts.iter().sum::<f64>() / samples as f64;
    let var = null_counts.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (samples - 1) as f64;
    let std = var.sqrt().max(1e-9);
    let z = (observed_triangles as f64 - mean) / std;

    println!("null model ({} samples, {} supersteps each):", samples, supersteps);
    println!("  triangles: mean = {mean:.1}, std = {std:.1}");
    println!("  z-score of the observed count: {z:.1}");
    if z > 3.0 {
        println!(
            "  -> the observed clustering is highly significant under the fixed-degree null model"
        );
    } else {
        println!("  -> the observed count is compatible with the fixed-degree null model");
    }
    assert!(z > 3.0, "planted cliques should be detected as significant (z = {z:.1})");
}
