//! Compare the empirical mixing of ES-MC and G-ES-MC (a miniature Fig. 2).
//!
//! Run with:
//! ```text
//! cargo run --release --example mixing_comparison
//! ```
//!
//! For a power-law graph the fraction of initial edges whose thinned presence
//! time series still looks autocorrelated is printed for both chains and a
//! range of thinning values.  G-ES-MC typically needs no more supersteps than
//! ES-MC, often fewer — the paper's Sec. 6.1 finding.

use gesmc::prelude::*;

fn main() {
    let n = 512usize;
    let gamma = 2.2f64;
    let supersteps = 64usize;
    let thinnings = [1usize, 2, 4, 8, 16, 32];

    let graph = gesmc::datasets::syn_pld_graph(7, n, gamma);
    println!("SynPld graph: n = {}, γ = {}, m = {}", n, gamma, graph.num_edges());

    let mut es = SeqES::new(graph.clone(), SwitchingConfig::with_seed(11));
    let es_profile = mixing_profile(&mut es, &graph, supersteps, &thinnings);

    let mut ges = SeqGlobalES::new(graph.clone(), SwitchingConfig::with_seed(11));
    let ges_profile = mixing_profile(&mut ges, &graph, supersteps, &thinnings);

    println!("\nfraction of non-independent edges (lower is better):");
    println!("{:>10} {:>12} {:>12}", "thinning", "ES-MC", "G-ES-MC");
    for (i, &k) in thinnings.iter().enumerate() {
        println!("{:>10} {:>12.4} {:>12.4}", k, es_profile.points[i].1, ges_profile.points[i].1);
    }

    let threshold = 0.05;
    println!(
        "\nfirst thinning below {threshold}: ES-MC = {:?}, G-ES-MC = {:?}",
        es_profile.first_thinning_below(threshold),
        ges_profile.first_thinning_below(threshold)
    );
}
