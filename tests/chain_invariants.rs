//! Integration tests: every chain preserves the fundamental invariants on
//! every dataset family.

use gesmc::datasets::{netrep_sample, syn_gnp_graph, syn_pld_graph};
use gesmc::prelude::*;

/// All chains under a common constructor so the same checks run for each.
fn all_chains(graph: &EdgeListGraph, seed: u64) -> Vec<Box<dyn EdgeSwitching>> {
    let cfg = SwitchingConfig::with_seed(seed);
    vec![
        Box::new(SeqES::new(graph.clone(), cfg)),
        Box::new(SeqGlobalES::new(graph.clone(), cfg)),
        Box::new(ParES::new(graph.clone(), cfg)),
        Box::new(ParGlobalES::new(graph.clone(), cfg)),
        Box::new(NaiveParES::new(graph.clone(), cfg)),
        Box::new(AdjacencyListES::new(graph.clone(), cfg)),
        Box::new(SortedAdjacencyES::new(graph.clone(), cfg)),
        Box::new(GlobalCurveball::new(graph.clone(), cfg)),
    ]
}

fn check_invariants(graph: EdgeListGraph, supersteps: usize, seed: u64) {
    let degrees = graph.degrees();
    for mut chain in all_chains(&graph, seed) {
        let stats = chain.run_supersteps(supersteps);
        let result = chain.graph();
        assert_eq!(
            result.degrees(),
            degrees,
            "{} does not preserve the degree sequence",
            chain.name()
        );
        assert!(result.validate().is_ok(), "{} produced a non-simple graph", chain.name());
        assert_eq!(result.num_edges(), graph.num_edges(), "{} changed m", chain.name());
        assert_eq!(stats.num_supersteps(), supersteps);
    }
}

#[test]
fn invariants_on_gnp() {
    check_invariants(syn_gnp_graph(1, 300, 1500), 4, 11);
}

#[test]
fn invariants_on_power_law() {
    check_invariants(syn_pld_graph(2, 400, 2.1), 4, 12);
}

#[test]
fn invariants_on_netrep_like_corpus() {
    for corpus_graph in netrep_sample(3, 2000) {
        check_invariants(corpus_graph.graph, 3, 13);
    }
}

#[test]
fn switching_chains_change_the_graph_but_curveball_and_co_keep_degrees() {
    let graph = syn_gnp_graph(4, 400, 2500);
    for mut chain in all_chains(&graph, 21) {
        chain.run_supersteps(5);
        let result = chain.graph();
        assert_ne!(
            result.canonical_edges(),
            graph.canonical_edges(),
            "{} did not randomise a graph with plenty of legal switches",
            chain.name()
        );
    }
}

#[test]
fn chains_are_reproducible_for_equal_seeds() {
    let graph = syn_pld_graph(5, 300, 2.4);
    for (a, b) in all_chains(&graph, 77).into_iter().zip(all_chains(&graph, 77)) {
        let mut a = a;
        let mut b = b;
        a.run_supersteps(3);
        b.run_supersteps(3);
        assert_eq!(
            a.graph().canonical_edges(),
            b.graph().canonical_edges(),
            "{} is not reproducible",
            a.name()
        );
    }
}
