//! Integration tests of the batch engine through the umbrella crate: a
//! manifest of concurrent jobs produces thinned, degree-preserving samples,
//! and job multiplexing respects submission order and per-job isolation.

use gesmc::prelude::*;
use gesmc_engine::{EdgeListFileSink, JobQueue, NullSink, QueuedJob};
use gesmc_graph::gen::gnp;
use gesmc_graph::io::read_edge_list_file;
use gesmc_randx::rng_from_seed;
use std::path::PathBuf;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gesmc-it-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn manifest_batch_produces_thinned_degree_preserving_samples() {
    let dir = temp_dir("batch");
    let manifest_text = format!(
        r#"{{
            "workers": 3,
            "output_dir": "{}",
            "jobs": [
                {{ "name": "pld-par", "generate": {{ "family": "pld", "edges": 900, "gamma": 2.5, "seed": 1 }},
                   "algo": "par-global-es", "supersteps": 9, "thinning": 3, "seed": 1, "threads": 2 }},
                {{ "name": "gnp-seq", "generate": {{ "family": "gnp", "edges": 800, "seed": 2 }},
                   "algo": "seq-global-es", "supersteps": 8, "thinning": 4, "seed": 2 }},
                {{ "name": "mesh-es", "generate": {{ "family": "mesh", "edges": 700, "seed": 3 }},
                   "algo": "seq-es", "supersteps": 6, "thinning": 2, "seed": 3 }}
            ]
        }}"#,
        dir.display()
    );
    let manifest = Manifest::parse(&manifest_text).unwrap();
    let outcomes = run_batch(&manifest).unwrap();
    assert_eq!(outcomes.len(), 3);

    let expected = [("pld-par", 3usize), ("gnp-seq", 2), ("mesh-es", 3)];
    for (outcome, (name, samples)) in outcomes.iter().zip(expected) {
        assert_eq!(outcome.job, name, "submission order must be preserved");
        let report = outcome.result.as_ref().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(report.samples, samples as u64, "{name}");
        assert!(report.legal > 0, "{name} must actually switch edges");
    }

    // Every emitted sample file parses back as a valid simple graph with the
    // degree sequence of its job's input.
    for (outcome, (name, samples)) in outcomes.iter().zip(expected) {
        let spec = manifest.jobs.iter().find(|j| j.name == outcome.job).unwrap();
        let input_degrees = spec.source.load().unwrap().degrees().sorted_desc();
        let mut found = 0usize;
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let file_name = path.file_name().unwrap().to_string_lossy().to_string();
            if !file_name.starts_with(&format!("{name}-s")) {
                continue;
            }
            found += 1;
            let sample = read_edge_list_file(&path).unwrap();
            assert!(sample.validate().is_ok(), "{file_name} is not simple");
            assert_eq!(
                sample.degrees().sorted_desc(),
                input_degrees,
                "{file_name} does not preserve the degree sequence"
            );
        }
        assert_eq!(found, samples, "{name}: wrong number of sample files");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn thinned_samples_mix_between_emissions() {
    // Consecutive thinned samples of a mixing chain must differ: the sink
    // receives genuinely evolving graphs, not repeated copies.
    let graph = gnp(&mut rng_from_seed(5), 90, 0.08);
    let spec = JobSpec::new("mix", GraphSource::InMemory(graph), ChainSpec::new("par-global-es"))
        .supersteps(12)
        .thinning(4)
        .seed(9);
    let sink = MemorySink::new();
    let store = sink.store();
    let mut sink = sink;
    let report = run_job(&spec, &mut sink, None).unwrap();
    assert_eq!(report.samples, 3);
    let samples = store.lock().unwrap();
    for window in samples.windows(2) {
        assert_ne!(
            window[0].1.canonical_edges(),
            window[1].1.canonical_edges(),
            "consecutive thinned samples should differ on a mixing chain"
        );
    }
}

#[test]
fn batch_mixes_core_chains_with_baseline_chains() {
    // The acceptance path of the registry redesign: one manifest drives a
    // core chain and two baselines side by side, through the same engine,
    // with per-chain parameters in both spellings.
    let dir = temp_dir("mixed-batch");
    let manifest_text = format!(
        r#"{{
            "workers": 3,
            "output_dir": "{}",
            "jobs": [
                {{ "name": "core", "generate": {{ "family": "gnp", "edges": 600, "seed": 1 }},
                   "algorithm": "par-global-es?pl=0.001", "supersteps": 6, "thinning": 3, "seed": 1 }},
                {{ "name": "curveball", "generate": {{ "family": "gnp", "edges": 600, "seed": 1 }},
                   "algorithm": "global-curveball", "supersteps": 6, "thinning": 3, "seed": 2 }},
                {{ "name": "adjacency", "generate": {{ "family": "gnp", "edges": 600, "seed": 1 }},
                   "algorithm": {{ "name": "adjacency-es" }}, "supersteps": 6, "thinning": 3, "seed": 3 }}
            ]
        }}"#,
        dir.display()
    );
    let manifest = Manifest::parse(&manifest_text).unwrap();
    let outcomes = run_batch(&manifest).unwrap();
    assert_eq!(outcomes.len(), 3);
    let expected_chains = [
        ("core", "ParGlobalES"),
        ("curveball", "GlobalCurveball"),
        ("adjacency", "AdjacencyListES"),
    ];
    for (outcome, (name, chain)) in outcomes.iter().zip(expected_chains) {
        let report = outcome.result.as_ref().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(outcome.job, name);
        assert_eq!(report.algorithm, chain, "{name}");
        assert_eq!(report.samples, 2, "{name}");
    }
    // All three jobs randomised the identical input; every sample preserves
    // its degree sequence (verified by the engine) and parses back.
    let files: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
    assert_eq!(files.len(), 6, "3 jobs x 2 thinned samples");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_pool_multiplexes_many_jobs_over_few_workers() {
    let dir = temp_dir("many-jobs");
    let graph = gnp(&mut rng_from_seed(8), 60, 0.1);
    let mut queue = JobQueue::new();
    for i in 0..8u64 {
        let spec = JobSpec::new(
            format!("j{i}"),
            GraphSource::InMemory(graph.clone()),
            ChainSpec::new("seq-global-es"),
        )
        .supersteps(5)
        .thinning(5)
        .seed(i);
        let sink = EdgeListFileSink::new(&dir, &spec.name).unwrap();
        queue.push(QueuedJob::new(spec, Box::new(sink)));
    }
    let outcomes = WorkerPool::new(2).run(queue);
    assert_eq!(outcomes.len(), 8);
    for (i, outcome) in outcomes.iter().enumerate() {
        assert_eq!(outcome.job, format!("j{i}"));
        assert!(outcome.result.is_ok());
    }
    // Different seeds must give different samples (jobs are independent).
    let j0 = read_edge_list_file(dir.join("j0-s000005.txt")).unwrap();
    let j1 = read_edge_list_file(dir.join("j1-s000005.txt")).unwrap();
    assert_ne!(j0.canonical_edges(), j1.canonical_edges());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn engine_checkpoint_files_resume_through_run_job() {
    // End-to-end through file checkpoints: run with periodic checkpointing,
    // then resume from the file and compare with the uninterrupted run.
    let ckpt_dir = temp_dir("resume-e2e");
    std::fs::create_dir_all(&ckpt_dir).unwrap();
    let graph = gnp(&mut rng_from_seed(13), 80, 0.08);
    let spec = JobSpec::new("e2e", GraphSource::InMemory(graph), ChainSpec::new("par-es"))
        .supersteps(10)
        .thinning(0)
        .seed(4)
        .checkpoint(5, &ckpt_dir);

    let full_sink = MemorySink::new();
    let full_store = full_sink.store();
    let mut full_sink = full_sink;
    run_job(&spec, &mut full_sink, None).unwrap();

    let checkpoint = Checkpoint::read_from_file(ckpt_dir.join("e2e.ckpt")).unwrap();
    assert_eq!(checkpoint.snapshot.supersteps_done, 5);
    let resumed_sink = MemorySink::new();
    let resumed_store = resumed_sink.store();
    let mut resumed_sink = resumed_sink;
    let report = run_job(&spec, &mut resumed_sink, Some(&checkpoint)).unwrap();
    assert_eq!(report.resumed_from, 5);

    let full = full_store.lock().unwrap().last().unwrap().1.canonical_edges();
    let resumed = resumed_store.lock().unwrap().last().unwrap().1.canonical_edges();
    assert_eq!(full, resumed, "file-based resume must be bit-identical");
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}

#[test]
fn failed_jobs_are_isolated_in_batch_outcomes() {
    let dir = temp_dir("failures");
    let mut queue = JobQueue::new();
    queue.push(QueuedJob::new(
        JobSpec::new(
            "missing-input",
            GraphSource::File("/nonexistent/input.txt".into()),
            ChainSpec::new("seq-es"),
        ),
        Box::new(NullSink::default()),
    ));
    let good_graph = gnp(&mut rng_from_seed(2), 50, 0.1);
    queue.push(QueuedJob::new(
        JobSpec::new("fine", GraphSource::InMemory(good_graph), ChainSpec::new("seq-es"))
            .supersteps(3),
        Box::new(NullSink::default()),
    ));
    let outcomes = WorkerPool::new(2).run(queue);
    assert!(outcomes[0].result.is_err());
    let report = outcomes[1].result.as_ref().unwrap();
    assert_eq!(report.samples, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
