//! Statistical integration tests: on a tiny state space the chains produce
//! every simple graph with the prescribed degrees approximately equally often
//! (Theorem 1: G-ES-MC converges to the uniform distribution).

use gesmc::graph::Edge;
use gesmc::prelude::*;
use std::collections::HashMap;

/// Degree sequence (1, 1, 1, 1, 2, 2) on 6 nodes has a small number of
/// realisations; enumerate them by sampling and check the empirical
/// distribution is close to uniform.
fn initial_graph() -> EdgeListGraph {
    // Degrees: node 4 and 5 have degree 2, nodes 0-3 degree 1.
    EdgeListGraph::new(6, vec![Edge::new(0, 4), Edge::new(1, 4), Edge::new(2, 5), Edge::new(3, 5)])
        .unwrap()
}

fn run_uniformity<C, F>(
    make_chain: F,
    samples: usize,
    supersteps: usize,
) -> HashMap<Vec<u64>, usize>
where
    C: EdgeSwitching,
    F: Fn(EdgeListGraph, u64) -> C,
{
    let graph = initial_graph();
    let mut counts: HashMap<Vec<u64>, usize> = HashMap::new();
    for s in 0..samples {
        let mut chain = make_chain(graph.clone(), s as u64);
        chain.run_supersteps(supersteps);
        let key = chain.graph().canonical_edges();
        *counts.entry(key).or_insert(0) += 1;
    }
    counts
}

fn assert_roughly_uniform(counts: &HashMap<Vec<u64>, usize>, samples: usize, chain: &str) {
    // All observed states must have the correct degree sequence (guaranteed),
    // and the frequencies must be within a generous band around uniform.
    let states = counts.len();
    assert!(states >= 6, "{chain}: expected to discover most realisations, found only {states}");
    let expected = samples as f64 / states as f64;
    for (state, &count) in counts {
        let ratio = count as f64 / expected;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "{chain}: state {state:?} frequency {count} deviates from uniform (expected ≈ {expected:.1})"
        );
    }
}

#[test]
fn seq_global_es_samples_roughly_uniformly() {
    let samples = 600;
    let counts = run_uniformity(
        |g, seed| SeqGlobalES::new(g, SwitchingConfig::with_seed(seed)),
        samples,
        12,
    );
    assert_roughly_uniform(&counts, samples, "SeqGlobalES");
}

#[test]
fn par_global_es_samples_roughly_uniformly() {
    let samples = 600;
    let counts = run_uniformity(
        |g, seed| ParGlobalES::new(g, SwitchingConfig::with_seed(seed)),
        samples,
        12,
    );
    assert_roughly_uniform(&counts, samples, "ParGlobalES");
}

#[test]
fn seq_es_samples_roughly_uniformly() {
    let samples = 600;
    let counts =
        run_uniformity(|g, seed| SeqES::new(g, SwitchingConfig::with_seed(seed)), samples, 12);
    assert_roughly_uniform(&counts, samples, "SeqES");
}
