//! End-to-end tests of the `gesmc-serve` HTTP sampling service.
//!
//! Each test boots a real server on an ephemeral port and talks to it over
//! raw `TcpStream`s — the same wire path curl takes.  The acceptance
//! properties under test:
//!
//! * every served sample preserves the degree sequence of its input graph
//!   (checked independently here, on top of the engine's internal check);
//! * warm-cache hits for an identical `(graph, chain, supersteps)` key are
//!   **bit-identical**, under concurrency, in both encodings;
//! * `429 Retry-After` appears **only** under admission-queue saturation;
//! * shutdown drains cleanly: in-flight requests finish, the socket closes.

use gesmc::engine::GraphSource;
use gesmc::graph::io::{read_edge_list, read_edge_list_binary};
use gesmc::prelude::*;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// One raw HTTP exchange; returns (status, lowercased headers, body bytes).
fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    accept: Option<&str>,
    body: Option<&str>,
) -> (u16, HashMap<String, String>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let mut request = format!("{method} {path} HTTP/1.1\r\nHost: e2e\r\n");
    if let Some(accept) = accept {
        request.push_str(&format!("Accept: {accept}\r\n"));
    }
    match body {
        Some(body) => {
            request.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
        }
        None => request.push_str("\r\n"),
    }
    stream.write_all(request.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");

    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response must have a header/body separator");
    let head = String::from_utf8(raw[..header_end].to_vec()).expect("headers are UTF-8");
    let body = raw[header_end + 4..].to_vec();
    let mut lines = head.lines();
    let status: u16 =
        lines.next().expect("status line").split(' ').nth(1).expect("status code").parse().unwrap();
    let headers = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, HashMap<String, String>, Vec<u8>) {
    http(addr, "GET", path, None, None)
}

fn boot(mutate: impl FnOnce(&mut ServeConfig)) -> Server {
    let mut config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        http_workers: 4,
        engine_workers: 2,
        allow_shutdown: true,
        ..ServeConfig::default()
    };
    mutate(&mut config);
    Server::bind(config).expect("bind ephemeral port")
}

/// The degree sequence the service must preserve for a generated pld key.
fn expected_degrees(edges: usize, seed: u64) -> DegreeSequence {
    let source =
        GraphSource::Generated { family: "pld".to_string(), nodes: 0, edges, gamma: 2.5, seed };
    source.load().expect("generator families load").degrees()
}

fn sample_path(m: usize, seed: u64, algo: &str, supersteps: u64) -> String {
    format!("/v1/sample?graph=pld:m={m},seed={seed}&algo={algo}&supersteps={supersteps}")
}

#[test]
fn concurrent_mixed_hot_cold_load_is_valid_and_never_sheds_below_saturation() {
    let server = Arc::new(boot(|c| c.max_pending = 256));
    let addr = server.local_addr();
    const THREADS: u64 = 6;
    const REQUESTS: u64 = 6;
    const M: usize = 400;

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut hot_bodies = Vec::new();
                for i in 0..REQUESTS {
                    // Even requests hammer the shared hot key; odd ones are
                    // per-thread cold keys.
                    let seed = if i % 2 == 0 { 1 } else { 1_000 + t * 100 + i };
                    let path = sample_path(M, seed, "seq-global-es", 6);
                    let (status, headers, body) = get(addr, &path);
                    assert_eq!(
                        status, 200,
                        "mixed load below saturation must never shed (thread {t}, request {i})"
                    );
                    let graph = read_edge_list(&body[..]).expect("sample parses");
                    assert_eq!(
                        graph.degrees(),
                        expected_degrees(M, seed),
                        "sample must preserve the input degree sequence"
                    );
                    assert!(
                        headers.contains_key("x-gesmc-cache"),
                        "sample responses carry the cache disposition"
                    );
                    if seed == 1 {
                        hot_bodies.push(body);
                    }
                }
                hot_bodies
            })
        })
        .collect();

    let mut all_hot: Vec<Vec<u8>> = Vec::new();
    for worker in workers {
        all_hot.extend(worker.join().expect("client thread"));
    }
    assert_eq!(all_hot.len() as u64, THREADS * REQUESTS / 2);
    for body in &all_hot {
        assert_eq!(
            body, &all_hot[0],
            "every response for an identical (graph, chain, supersteps) key must be bit-identical"
        );
    }

    // The shared hot key was requested many times but computed once: the
    // cache (plus miss coalescing) absorbed the rest.
    let (_, _, metrics) = get(addr, "/metrics");
    let metrics = String::from_utf8(metrics).unwrap();
    let hits: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("gesmc_cache_hits_total "))
        .expect("hit counter exported")
        .parse()
        .unwrap();
    assert!(hits > 0, "repeated hot-key queries must hit the warm cache:\n{metrics}");
    assert!(
        metrics.contains("gesmc_http_responses_total{class=\"429\"} 0"),
        "no request may be shed below saturation:\n{metrics}"
    );
    server.shutdown();
}

#[test]
fn saturation_sheds_with_429_and_retry_after_while_hits_keep_flowing() {
    // One engine worker and a single-slot admission queue: with the worker
    // pinned, at most one cold key can wait and the rest must shed.
    let server = Arc::new(boot(|c| {
        c.engine_workers = 1;
        c.max_pending = 1;
        c.http_workers = 8;
    }));
    let addr = server.local_addr();

    // Pre-warm one key so hot traffic is servable even at saturation.
    let hot = sample_path(600, 7, "seq-global-es", 8);
    assert_eq!(get(addr, &hot).0, 200);

    // The gate: a job far too long to finish on its own pins the single
    // engine worker.  Polling it to `running` is the saturation barrier —
    // no sleeps, no racing the worker.  Jobs and cold one-shot samples
    // share the engine pool, so while the gate runs the pool has exactly
    // one free queue slot and zero free workers.
    let gate_body = r#"{
        "name": "gate",
        "generate": {"family": "pld", "edges": 4000, "seed": 2},
        "algorithm": "seq-global-es",
        "supersteps": 50000,
        "seed": 9
    }"#;
    let (status, _, response) = http(addr, "POST", "/v1/jobs", None, Some(gate_body));
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&response));
    let gate: serde_json::Value =
        serde_json::from_str(&String::from_utf8(response).unwrap()).unwrap();
    let gate_id = gate.get("id").and_then(|v| v.as_u64()).expect("gate id");
    let mut label = String::new();
    for _ in 0..600 {
        let (_, _, body) = get(addr, &format!("/v1/jobs/{gate_id}"));
        let doc: serde_json::Value =
            serde_json::from_str(&String::from_utf8(body).unwrap()).unwrap();
        label = doc.get("status").and_then(|v| v.as_str()).unwrap_or("").to_string();
        if label == "running" {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(label, "running", "the gate job must pin the engine worker");

    // 12 concurrent cold keys against a pinned worker and a 1-slot queue:
    // exactly one is admitted (and parks in the queue until the gate is
    // cancelled below); the other 11 shed with `429 Retry-After`.
    let clients: Vec<_> = (0..12)
        .map(|i| {
            std::thread::spawn(move || {
                let path = sample_path(2_000, 10_000 + i, "seq-global-es", 30);
                let (status, headers, body) = get(addr, &path);
                match status {
                    200 => {
                        let graph = read_edge_list(&body[..]).expect("sample parses");
                        assert_eq!(graph.degrees(), expected_degrees(2_000, 10_000 + i));
                    }
                    429 => {
                        assert!(
                            headers.contains_key("retry-after"),
                            "shed responses must carry Retry-After"
                        );
                    }
                    other => panic!("unexpected status {other} under saturation"),
                }
                status
            })
        })
        .collect();

    // While the shed is in progress the warm key still answers from the
    // cache.  Wait for all 11 rejections first so the hot fetch provably
    // overlaps saturation, then check it.
    for _ in 0..600 {
        let (_, _, metrics) = get(addr, "/metrics");
        let metrics = String::from_utf8(metrics).unwrap();
        if metrics.contains("gesmc_http_responses_total{class=\"429\"} 11") {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let (status, headers, _) = get(addr, &hot);
    assert_eq!(status, 200);
    assert_eq!(headers.get("x-gesmc-cache").map(String::as_str), Some("hit"));

    // Cancel the gate: the worker frees up, drains the one queued cold key,
    // and every client thread comes home — 1 success, 11 sheds.
    let (status, _, _) = http(addr, "DELETE", &format!("/v1/jobs/{gate_id}"), None, None);
    assert_eq!(status, 202);
    let statuses: Vec<u16> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    let shed = statuses.iter().filter(|&&s| s == 429).count();
    let served = statuses.iter().filter(|&&s| s == 200).count();
    assert_eq!(
        (served, shed),
        (1, 11),
        "a pinned 1-worker/1-slot pool admits exactly one cold key: {statuses:?}"
    );
    server.shutdown();
}

#[test]
fn binary_and_text_encodings_agree_and_hits_are_bit_identical_in_both() {
    let server = boot(|_| {});
    let addr = server.local_addr();
    let path = sample_path(300, 3, "par-global-es?pl=0.01", 5);

    let (status, _, text_a) = get(addr, &path);
    assert_eq!(status, 200);
    let (_, _, text_b) = get(addr, &path);
    assert_eq!(text_a, text_b, "text hits must be bit-identical");

    let (status, headers, bin_a) = http(addr, "GET", &path, Some("application/octet-stream"), None);
    assert_eq!(status, 200);
    assert_eq!(headers.get("content-type").map(String::as_str), Some("application/octet-stream"));
    let (_, _, bin_b) = http(addr, "GET", &path, Some("application/octet-stream"), None);
    assert_eq!(bin_a, bin_b, "binary hits must be bit-identical");

    let from_text = read_edge_list(&text_a[..]).unwrap();
    let from_binary = read_edge_list_binary(&bin_a[..]).unwrap();
    assert_eq!(from_text.canonical_edges(), from_binary.canonical_edges());
    assert_eq!(from_text.num_nodes(), from_binary.num_nodes());
    assert_eq!(from_binary.degrees(), expected_degrees(300, 3));
    server.shutdown();
}

#[test]
fn warm_requests_prefill_the_cache_in_the_background() {
    let server = boot(|_| {});
    let addr = server.local_addr();
    let key_query = "graph=pld:m=350,seed=11&algo=seq-es&supersteps=6";

    let (status, _, body) = get(addr, &format!("/v1/sample?{key_query}&warm=true"));
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&body));

    // Poll until the background job landed the entry, then expect a hit.
    let mut disposition = String::new();
    for _ in 0..400 {
        let (status, headers, _) = get(addr, &format!("/v1/sample?{key_query}"));
        assert_eq!(status, 200);
        disposition = headers.get("x-gesmc-cache").cloned().unwrap_or_default();
        if disposition == "hit" {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(disposition, "hit", "a warmed key must be served from the cache");
    server.shutdown();
}

#[test]
fn async_job_lifecycle_inline_edges_status_samples_and_cancel() {
    let server = boot(|_| {});
    let addr = server.local_addr();

    // An explicit 6-cycle: every node has degree 2.
    let body = r#"{
        "name": "cycle",
        "edges": [[0,1],[1,2],[2,3],[3,4],[4,5],[5,0]],
        "algorithm": "seq-es",
        "supersteps": 8,
        "thinning": 2,
        "seed": 4
    }"#;
    let (status, _, response) = http(addr, "POST", "/v1/jobs", None, Some(body));
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&response));
    let submitted: serde_json::Value =
        serde_json::from_str(&String::from_utf8(response).unwrap()).unwrap();
    let id = submitted.get("id").and_then(|v| v.as_u64()).expect("job id");
    assert_eq!(
        submitted.get("url").and_then(|v| v.as_str()),
        Some(format!("/v1/jobs/{id}")).as_deref()
    );

    // Poll to completion.
    let mut status_doc = serde_json::Value::Null;
    for _ in 0..400 {
        let (code, _, body) = get(addr, &format!("/v1/jobs/{id}"));
        assert_eq!(code, 200);
        status_doc = serde_json::from_str(&String::from_utf8(body).unwrap()).unwrap();
        if status_doc.get("status").and_then(|v| v.as_str()) == Some("done") {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(status_doc.get("status").and_then(|v| v.as_str()), Some("done"), "{status_doc:?}");
    assert_eq!(status_doc.get("samples").and_then(|v| v.as_u64()), Some(4));
    assert_eq!(status_doc.get("superstep").and_then(|v| v.as_u64()), Some(8));

    // Thinned samples 0..4 exist in both encodings and preserve degrees.
    let cycle_degrees = [2u32; 6];
    for k in 0..4u64 {
        let (code, headers, text) = get(addr, &format!("/v1/jobs/{id}/samples/{k}"));
        assert_eq!(code, 200);
        let graph = read_edge_list(&text[..]).unwrap();
        assert_eq!(graph.degrees().degrees(), &cycle_degrees[..]);
        let superstep: u64 = headers.get("x-gesmc-superstep").unwrap().parse().unwrap();
        assert_eq!(superstep, (k + 1) * 2);
        let (code, _, binary) = http(
            addr,
            "GET",
            &format!("/v1/jobs/{id}/samples/{k}"),
            Some("application/octet-stream"),
            None,
        );
        assert_eq!(code, 200);
        let from_binary = read_edge_list_binary(&binary[..]).unwrap();
        assert_eq!(from_binary.canonical_edges(), graph.canonical_edges());
    }
    // Out-of-range and unknown-id lookups are clean 404s.
    assert_eq!(get(addr, &format!("/v1/jobs/{id}/samples/99")).0, 404);
    assert_eq!(get(addr, "/v1/jobs/4242").0, 404);

    // A long-running generated job can be cancelled mid-flight.
    let long_body = r#"{
        "generate": {"family": "pld", "edges": 4000, "seed": 2},
        "algorithm": "seq-global-es",
        "supersteps": 50000,
        "seed": 9
    }"#;
    let (status, _, response) = http(addr, "POST", "/v1/jobs", None, Some(long_body));
    assert_eq!(status, 202);
    let long_doc: serde_json::Value =
        serde_json::from_str(&String::from_utf8(response).unwrap()).unwrap();
    let long_id = long_doc.get("id").and_then(|v| v.as_u64()).unwrap();
    let (status, _, _) = http(addr, "DELETE", &format!("/v1/jobs/{long_id}"), None, None);
    assert_eq!(status, 202);
    let mut label = String::new();
    for _ in 0..400 {
        let (_, _, body) = get(addr, &format!("/v1/jobs/{long_id}"));
        let doc: serde_json::Value =
            serde_json::from_str(&String::from_utf8(body).unwrap()).unwrap();
        label = doc.get("status").and_then(|v| v.as_str()).unwrap_or("").to_string();
        if label == "cancelled" {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(label, "cancelled");
    server.shutdown();
}

#[test]
fn bad_requests_get_readable_errors_not_hangs() {
    let server = boot(|c| c.max_sync_edges = 1_000);
    let addr = server.local_addr();
    for (path, expected) in [
        ("/v1/sample", 400),                              // missing graph
        ("/v1/sample?graph=tree:m=10", 400),              // unknown family
        ("/v1/sample?graph=pld:m=5000", 413),             // over the sync edge limit
        ("/v1/sample?graph=pld:n=2000000000,m=10", 413),  // over the sync node limit
        ("/v1/sample?graph=pld:m=100&algo=quantum", 400), // unknown chain
        ("/v1/sample?graph=pld:m=100,gamma=1", 400),      // pld needs gamma > 1
        ("/v1/sample?graph=pld:m=100&supersteps=0", 400), // zero supersteps
        ("/v1/sample?graph=pld:m=100&supersteps=notanumber", 400),
        // An unencoded `&` inside an algo spec must be rejected, not
        // silently dropped (the stray pair is an unknown parameter).
        ("/v1/sample?graph=pld:m=100&algo=seq-es?pl=0.1&prefetch=off", 400),
        ("/v1/jobs/notanid", 400),
        ("/nope", 404),
    ] {
        let (status, _, body) = get(addr, path);
        assert_eq!(status, expected, "{path}: {}", String::from_utf8_lossy(&body));
        let doc: serde_json::Value =
            serde_json::from_str(&String::from_utf8(body).unwrap()).unwrap();
        assert!(doc.get("error").is_some(), "{path} must return the JSON error shape");
    }
    // Wrong method on a known path is 405.
    assert_eq!(http(addr, "DELETE", "/healthz", None, None).0, 405);
    // Malformed job bodies.
    let (status, _, _) = http(addr, "POST", "/v1/jobs", None, Some("not json"));
    assert_eq!(status, 400);
    let (status, _, body) =
        http(addr, "POST", "/v1/jobs", None, Some(r#"{"edges": [[0,1]], "nodes": 1}"#));
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));
    // Unbounded node counts must be rejected before any generator runs.
    let (status, _, body) = http(
        addr,
        "POST",
        "/v1/jobs",
        None,
        Some(r#"{"generate": {"family": "pld", "edges": 10, "nodes": 2000000000}}"#),
    );
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));
    let (status, _, body) =
        http(addr, "POST", "/v1/jobs", None, Some(r#"{"edges": [[0, 4000000000]]}"#));
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));
    // Seeds beyond 2^53 would silently round in the f64-backed JSON layer;
    // the parser rejects them outright instead.
    let (status, _, body) = http(
        addr,
        "POST",
        "/v1/jobs",
        None,
        Some(r#"{"edges": [[0,1]], "seed": 9007199254740993}"#),
    );
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));
    // Generator parameters that would panic a worker are rejected up front.
    let (status, _, body) = http(
        addr,
        "POST",
        "/v1/jobs",
        None,
        Some(r#"{"generate": {"family": "pld", "edges": 100, "gamma": 0.5}}"#),
    );
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));
    // Edge count and sample count compose: a job within both individual
    // limits but over the retained-bytes budget is rejected at submission.
    let (status, _, body) = http(
        addr,
        "POST",
        "/v1/jobs",
        None,
        Some(
            r#"{"generate": {"family": "dense", "edges": 5000000},
                "supersteps": 1000, "thinning": 1}"#,
        ),
    );
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));
    assert!(
        String::from_utf8_lossy(&body).contains("retain"),
        "rejection must explain the byte budget"
    );
    server.shutdown();
}

#[test]
fn shutdown_drains_in_flight_requests_and_closes_the_socket() {
    let server = Arc::new(boot(|_| {}));
    let addr = server.local_addr();

    // Launch a cold request, give it a moment to reach the engine pool, then
    // shut down concurrently: the request must still complete with a valid
    // sample (drain), not an error or a reset.
    let client =
        std::thread::spawn(move || get(addr, &sample_path(2_000, 77, "seq-global-es", 40)));
    std::thread::sleep(Duration::from_millis(50));
    server.shutdown();

    let (status, _, body) = client.join().expect("in-flight client");
    assert_eq!(status, 200, "in-flight requests must drain through shutdown");
    let graph = read_edge_list(&body[..]).unwrap();
    assert_eq!(graph.degrees(), expected_degrees(2_000, 77));
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "the listener must be closed after shutdown"
    );
}
