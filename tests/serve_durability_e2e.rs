//! Crash-recovery end-to-end tests of the durable `gesmc-serve` mode
//! (`--data-dir`).
//!
//! Each test spawns the server as a **separate child process** (this test
//! binary re-executing itself), talks to it over real sockets, kills it
//! with SIGKILL — no destructors, no flushing, the same failure a power
//! loss produces — and then restarts it on the same data dir.  The
//! acceptance properties:
//!
//! * finished work survives: one-shot samples come back from the
//!   rehydrated disk cache (`X-Gesmc-Cache: hit`) and finished job records
//!   (with all their samples) are immediately fetchable, bit-identically;
//! * a job killed mid-flight resumes from its checkpoint and its samples
//!   are **byte-identical** to an uninterrupted control run;
//! * a torn journal tail and a corrupted checkpoint are both skipped
//!   cleanly on boot — metered, never a panic, never a wrong sample.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use gesmc::prelude::{ServeConfig, Server};

/// The child half of the re-exec trick: boot a durable server on an
/// ephemeral port, publish the resolved address, and serve until killed.
/// `#[ignore]` keeps it out of normal runs; the parent invokes it by name.
#[test]
#[ignore = "child process entry point, spawned by the crash tests"]
fn child_server_main() {
    let data_dir = PathBuf::from(
        std::env::var("GESMC_CHILD_DATA_DIR").expect("child needs GESMC_CHILD_DATA_DIR"),
    );
    let checkpoint_every: u64 =
        std::env::var("GESMC_CHILD_CKPT_EVERY").ok().and_then(|v| v.parse().ok()).unwrap_or(25);
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        http_workers: 2,
        engine_workers: 2,
        data_dir: Some(data_dir.clone()),
        checkpoint_every,
        ..ServeConfig::default()
    };
    let server = Server::bind(config).expect("child bind");
    // Publish the resolved address atomically so the parent never reads a
    // partial write.
    let tmp = data_dir.join("addr.tmp");
    std::fs::write(&tmp, server.local_addr().to_string()).expect("write addr");
    std::fs::rename(&tmp, data_dir.join("addr.txt")).expect("publish addr");
    server.wait(); // blocks until SIGKILL
}

struct ChildServer {
    child: Child,
    addr: SocketAddr,
}

impl ChildServer {
    /// Spawn the child server on `data_dir` and wait until it answers
    /// `/healthz`.
    fn spawn(data_dir: &Path, checkpoint_every: u64) -> Self {
        std::fs::create_dir_all(data_dir).expect("create data dir");
        let addr_file = data_dir.join("addr.txt");
        let _ = std::fs::remove_file(&addr_file);
        let child = Command::new(std::env::current_exe().expect("current exe"))
            .args(["child_server_main", "--exact", "--ignored", "--nocapture"])
            .env("GESMC_CHILD_DATA_DIR", data_dir)
            .env("GESMC_CHILD_CKPT_EVERY", checkpoint_every.to_string())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn child server");

        let deadline = Instant::now() + Duration::from_secs(60);
        let addr: SocketAddr = loop {
            if let Ok(text) = std::fs::read_to_string(&addr_file) {
                if let Ok(addr) = text.trim().parse() {
                    break addr;
                }
            }
            assert!(Instant::now() < deadline, "child never published its address");
            std::thread::sleep(Duration::from_millis(20));
        };
        loop {
            if let Ok((200, _, _)) = try_http(addr, "GET", "/healthz", None, None) {
                break;
            }
            assert!(Instant::now() < deadline, "child never became healthy");
            std::thread::sleep(Duration::from_millis(20));
        }
        Self { child, addr }
    }

    /// SIGKILL — no graceful teardown, no flush.
    fn kill(mut self) {
        self.child.kill().expect("kill child");
        self.child.wait().expect("reap child");
    }
}

fn try_http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    accept: Option<&str>,
    body: Option<&str>,
) -> std::io::Result<(u16, HashMap<String, String>, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let mut request = format!("{method} {path} HTTP/1.1\r\nHost: e2e\r\n");
    if let Some(accept) = accept {
        request.push_str(&format!("Accept: {accept}\r\n"));
    }
    match body {
        Some(body) => request.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len())),
        None => request.push_str("\r\n"),
    }
    stream.write_all(request.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("no header/body separator"))?;
    let head = String::from_utf8_lossy(&raw[..header_end]).to_string();
    let body = raw[header_end + 4..].to_vec();
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .and_then(|line| line.split(' ').nth(1))
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| std::io::Error::other("bad status line"))?;
    let headers = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok((status, headers, body))
}

fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    accept: Option<&str>,
    body: Option<&str>,
) -> (u16, HashMap<String, String>, Vec<u8>) {
    try_http(addr, method, path, accept, body).expect("http exchange")
}

fn get(addr: SocketAddr, path: &str) -> (u16, HashMap<String, String>, Vec<u8>) {
    http(addr, "GET", path, None, None)
}

fn get_binary(addr: SocketAddr, path: &str) -> (u16, HashMap<String, String>, Vec<u8>) {
    http(addr, "GET", path, Some("application/octet-stream"), None)
}

fn metric(addr: SocketAddr, name: &str) -> u64 {
    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    String::from_utf8_lossy(&body)
        .lines()
        .find(|line| line.starts_with(name) && !line.starts_with('#'))
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or_else(|| panic!("metric {name} missing")) as u64
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gesmc-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Poll `GET /v1/jobs/{id}` until the job reaches a terminal state.
fn wait_for_terminal(addr: SocketAddr, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, _, body) = get(addr, &format!("/v1/jobs/{id}"));
        assert_eq!(status, 200, "job {id} must stay queryable");
        let text = String::from_utf8_lossy(&body).to_string();
        if text.contains("\"done\"")
            || text.contains("\"failed\"")
            || text.contains("\"cancelled\"")
        {
            return text;
        }
        assert!(Instant::now() < deadline, "job {id} never finished: {text}");
        std::thread::sleep(Duration::from_millis(30));
    }
}

/// Fetch all `count` samples of a job in the binary encoding.
fn fetch_samples(addr: SocketAddr, id: u64, count: usize) -> Vec<Vec<u8>> {
    (0..count)
        .map(|k| {
            let (status, _, body) = get_binary(addr, &format!("/v1/jobs/{id}/samples/{k}"));
            assert_eq!(status, 200, "sample {k} of job {id} must be fetchable");
            assert!(!body.is_empty());
            body
        })
        .collect()
}

/// The mid-flight job used by the crash tests: big enough to survive until
/// the SIGKILL, small enough for debug-mode CI.
const CRASH_JOB: &str = r#"{"name":"crashme","generate":{"family":"pld","edges":800,"nodes":400,"gamma":2.5,"seed":11},"algo":"par-global-es","supersteps":30000,"thinning":10000,"seed":7}"#;
const CRASH_JOB_SAMPLES: usize = 3;

/// Run `CRASH_JOB` uninterrupted on an in-process, in-memory server and
/// return its sample bytes — the control every crash test compares against.
fn control_samples() -> Vec<Vec<u8>> {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        http_workers: 2,
        engine_workers: 2,
        ..ServeConfig::default()
    };
    let server = Server::bind(config).expect("control bind");
    let addr = server.local_addr();
    let (status, _, body) = http(addr, "POST", "/v1/jobs", None, Some(CRASH_JOB));
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&body));
    let terminal = wait_for_terminal(addr, 1);
    assert!(terminal.contains("\"done\""), "{terminal}");
    let samples = fetch_samples(addr, 1, CRASH_JOB_SAMPLES);
    server.shutdown();
    samples
}

#[test]
fn finished_work_survives_sigkill_and_serves_from_disk() {
    let dir = temp_dir("finished");
    let server = ChildServer::spawn(&dir, 25);
    let addr = server.addr;

    // One-shot sample: computed, cached, and spilled.
    let sample_path = "/v1/sample?graph=pld:m=400&algo=par-global-es&supersteps=20";
    let (status, headers, cold_bytes) = get_binary(addr, sample_path);
    assert_eq!(status, 200);
    assert_eq!(headers.get("x-gesmc-cache").map(String::as_str), Some("miss"));

    // A small async job, run to completion.
    let job = r#"{"name":"smalljob","generate":{"family":"gnp","edges":300,"nodes":150,"seed":5},"supersteps":60,"thinning":20,"seed":3}"#;
    let (status, _, body) = http(addr, "POST", "/v1/jobs", None, Some(job));
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&body));
    let terminal = wait_for_terminal(addr, 1);
    assert!(terminal.contains("\"done\""), "{terminal}");
    let samples_before = fetch_samples(addr, 1, 3);

    server.kill();

    // Reboot on the same dir: everything must come back, bit-identically.
    let server = ChildServer::spawn(&dir, 25);
    let addr = server.addr;

    let (status, headers, warm_bytes) = get_binary(addr, sample_path);
    assert_eq!(status, 200);
    assert_eq!(
        headers.get("x-gesmc-cache").map(String::as_str),
        Some("hit"),
        "a restarted node must serve the spilled one-shot sample as a cache hit"
    );
    assert_eq!(warm_bytes, cold_bytes, "rehydrated sample must be bit-identical");
    assert!(metric(addr, "gesmc_persist_cache_rehydrated_total") >= 1);

    let terminal = wait_for_terminal(addr, 1);
    assert!(terminal.contains("\"done\""), "restored record must be done: {terminal}");
    assert!(
        terminal.contains("\"samples\": 3") || terminal.contains("\"samples\":3"),
        "{terminal}"
    );
    let samples_after = fetch_samples(addr, 1, 3);
    assert_eq!(samples_after, samples_before, "restored job samples must be bit-identical");
    assert!(metric(addr, "gesmc_persist_jobs_restored_total") >= 1);

    server.kill();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn sigkill_mid_job_resumes_bit_identically() {
    let control = control_samples();

    let dir = temp_dir("resume");
    let server = ChildServer::spawn(&dir, 100);
    let addr = server.addr;
    let (status, _, body) = http(addr, "POST", "/v1/jobs", None, Some(CRASH_JOB));
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&body));

    // Wait for at least one checkpoint to land, then pull the plug.
    let ckpt = dir.join("jobs").join("1").join("job.ckpt");
    let deadline = Instant::now() + Duration::from_secs(120);
    while !ckpt.exists() {
        assert!(Instant::now() < deadline, "no checkpoint ever appeared");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.kill();

    let server = ChildServer::spawn(&dir, 100);
    let addr = server.addr;
    assert!(
        metric(addr, "gesmc_persist_jobs_resumed_total") >= 1,
        "the interrupted job must go down the resume path"
    );
    let terminal = wait_for_terminal(addr, 1);
    assert!(terminal.contains("\"done\""), "resumed job must finish: {terminal}");
    let samples = fetch_samples(addr, 1, CRASH_JOB_SAMPLES);
    assert_eq!(
        samples, control,
        "samples of the killed-and-resumed run must be byte-identical to the uninterrupted run"
    );

    server.kill();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn torn_journal_and_corrupt_checkpoint_are_skipped_cleanly() {
    let control = control_samples();

    let dir = temp_dir("corrupt");
    let server = ChildServer::spawn(&dir, 100);
    let addr = server.addr;
    let (status, _, body) = http(addr, "POST", "/v1/jobs", None, Some(CRASH_JOB));
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&body));
    let ckpt = dir.join("jobs").join("1").join("job.ckpt");
    let deadline = Instant::now() + Duration::from_secs(120);
    while !ckpt.exists() {
        assert!(Instant::now() < deadline, "no checkpoint ever appeared");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.kill();

    // Damage both recovery inputs: a torn journal tail (as if the process
    // died mid-append) and a flipped byte inside the checkpoint.
    let journal = dir.join("jobs.journal");
    let mut bytes = std::fs::read(&journal).expect("journal exists");
    bytes.extend_from_slice(&[0xAB; 64]);
    std::fs::write(&journal, &bytes).unwrap();
    let mut ckpt_bytes = std::fs::read(&ckpt).expect("checkpoint exists");
    let mid = ckpt_bytes.len() / 2;
    ckpt_bytes[mid] ^= 0xFF;
    std::fs::write(&ckpt, &ckpt_bytes).unwrap();

    // Boot must succeed anyway: the tail is skipped (metered), the corrupt
    // checkpoint is rejected, and the job restarts from scratch — which by
    // seed determinism still produces the control bytes.
    let server = ChildServer::spawn(&dir, 100);
    let addr = server.addr;
    assert!(
        metric(addr, "gesmc_persist_journal_skipped_total") >= 1,
        "the torn tail must be counted"
    );
    assert!(
        metric(addr, "gesmc_persist_errors_total") >= 1,
        "the corrupt checkpoint must be counted"
    );
    let terminal = wait_for_terminal(addr, 1);
    assert!(terminal.contains("\"done\""), "restarted job must finish: {terminal}");
    let samples = fetch_samples(addr, 1, CRASH_JOB_SAMPLES);
    assert_eq!(samples, control, "from-scratch recovery must still be bit-identical");

    server.kill();
    let _ = std::fs::remove_dir_all(dir);
}
