//! Integration tests: the parallel chains are *exact*, i.e. given the same
//! switch sequence they produce bitwise the same graph as a sequential
//! execution, and G-ES-MC supersteps executed in parallel match the
//! sequential G-ES-MC implementation replaying the identical global switch.

use gesmc::chains::seq_global::SeqGlobalES;
use gesmc::chains::superstep::run_superstep_on_graph;
use gesmc::chains::SwitchRequest;
use gesmc::prelude::*;
use gesmc::randx::permutation::random_permutation;
use gesmc::randx::{rng_from_seed, sample_binomial};

/// Replay one explicit global switch on both implementations and compare.
#[test]
fn parallel_global_switch_equals_sequential_execution() {
    let mut rng = rng_from_seed(1);
    for trial in 0..8u64 {
        let graph = gesmc::datasets::syn_pld_graph(trial, 300, 2.2);
        let m = graph.num_edges();
        let perm = random_permutation(&mut rng, m);
        let ell = sample_binomial(&mut rng, (m / 2) as u64, 0.99) as usize;
        let switches = SeqGlobalES::switches_from_permutation(&perm, ell);

        // Sequential reference.
        let mut seq = SeqGlobalES::new(graph.clone(), SwitchingConfig::with_seed(0));
        let mut legal_seq = 0usize;
        for &s in &switches {
            legal_seq += seq.apply(s) as usize;
        }

        // Parallel superstep.
        let (par_graph, stats) = run_superstep_on_graph(&graph, &switches);

        assert_eq!(
            par_graph.canonical_edges(),
            seq.graph().canonical_edges(),
            "trial {trial}: parallel superstep diverged from sequential execution"
        );
        assert_eq!(stats.legal, legal_seq, "trial {trial}: legality counts diverged");
        // The indexed edge arrays must agree as well (bitwise exactness).
        assert_eq!(par_graph.edges(), seq.graph().edges(), "trial {trial}: edge arrays differ");
    }
}

/// ParES run on an explicit request list equals SeqES applying the same list.
#[test]
fn par_es_equals_seq_es_on_request_lists() {
    for trial in 0..5u64 {
        let graph = gesmc::datasets::syn_gnp_graph(trial, 150, 900);
        let m = graph.num_edges();
        let mut par = ParES::new(graph.clone(), SwitchingConfig::with_seed(trial));
        let requests = par.sample_requests(4 * m);

        par.run_requests(&requests);

        let mut seq = SeqES::new(graph.clone(), SwitchingConfig::with_seed(0));
        for &r in &requests {
            seq.apply(r);
        }

        assert_eq!(
            par.graph().canonical_edges(),
            seq.graph().canonical_edges(),
            "trial {trial}: ParES diverged from sequential ES-MC"
        );
        assert_eq!(par.graph().edges(), seq.graph().edges(), "trial {trial}: edge arrays differ");
    }
}

/// ParGlobalES and a sequential replay of its own supersteps agree superstep
/// by superstep: the parallel chain's graph after each superstep is a valid
/// simple graph with unchanged degrees, and its per-superstep legality counts
/// are consistent.
#[test]
fn par_global_es_superstep_statistics_are_consistent() {
    let graph = gesmc::datasets::syn_pld_graph(9, 500, 2.3);
    let mut chain = ParGlobalES::new(graph.clone(), SwitchingConfig::with_seed(9));
    let stats = chain.run_supersteps(6);
    for s in &stats.supersteps {
        assert_eq!(s.legal + s.illegal, s.requested);
        assert!(s.rounds >= 1);
        assert_eq!(s.round_durations.len(), s.rounds);
    }
    assert_eq!(chain.graph().degrees(), graph.degrees());
}

/// Handcrafted dependency chains spanning several switches resolve exactly as
/// a sequential execution would.
#[test]
fn dependency_chains_resolve_in_sequential_order() {
    use gesmc::graph::Edge;
    // Edges laid out so that switch k+1 re-creates an edge switch k removes.
    let graph = EdgeListGraph::new(
        10,
        vec![
            Edge::new(0, 1), // 0
            Edge::new(2, 3), // 1
            Edge::new(0, 4), // 2
            Edge::new(1, 5), // 3
            Edge::new(0, 6), // 4
            Edge::new(1, 7), // 5
        ],
    )
    .unwrap();
    // Switch 0: (0,1) g=0: {0,1},{2,3} -> {0,2},{1,3}   (frees {0,1})
    // Switch 1: (2,3) g=0: {0,4},{1,5} -> {0,1},{4,5}   (re-creates {0,1}, frees {0,4},{1,5})
    // Switch 2: (4,5) g=0: {0,6},{1,7} -> {0,1},{6,7}   (blocked: {0,1} now exists again)
    let switches = vec![
        SwitchRequest::new(0, 1, false),
        SwitchRequest::new(2, 3, false),
        SwitchRequest::new(4, 5, false),
    ];
    let (par_graph, stats) = run_superstep_on_graph(&graph, &switches);

    let mut seq = SeqGlobalES::new(graph.clone(), SwitchingConfig::with_seed(0));
    let legal_seq: usize = switches.iter().map(|&s| seq.apply(s) as usize).sum();

    assert_eq!(par_graph.canonical_edges(), seq.graph().canonical_edges());
    assert_eq!(stats.legal, legal_seq);
    assert_eq!(stats.legal, 2, "switch 2 must be rejected");
    assert!(par_graph.has_edge_slow(0, 1));
    assert!(par_graph.has_edge_slow(4, 5));
    assert!(par_graph.has_edge_slow(0, 6), "sources of the rejected switch remain");
}
