//! End-to-end tests of the observability layer (`gesmc-obs`) as wired
//! through the serving stack.
//!
//! One real server, a known request mix, then two scrapes:
//!
//! * `GET /v1/debug/stats` — the JSON snapshot (jobs + registry);
//! * `GET /metrics` — the Prometheus text exposition.
//!
//! The acceptance properties: every response carries an
//! `X-Gesmc-Request-Id`; `/metrics` speaks Prometheus text format 0.0.4 and
//! exposes the histogram families the pipeline records (superstep duration,
//! request phases, cache probes, journal appends); and the `_count`s of the
//! two scrapes agree — exactly for families the scrapes themselves never
//! touch, monotonically for the request-phase family.
//!
//! NOTE: the obs registry is process-global, so every strict-equality
//! assertion lives in the single `observability_end_to_end` test; the other
//! tests only issue requests that touch the (monotonically-checked)
//! request-phase family.

use gesmc::prelude::*;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One raw HTTP exchange; returns (status, lowercased headers, body bytes).
fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> (u16, HashMap<String, String>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let mut request = format!("{method} {path} HTTP/1.1\r\nHost: e2e\r\n");
    match body {
        Some(body) => {
            request.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
        }
        None => request.push_str("\r\n"),
    }
    stream.write_all(request.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");

    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response must have a header/body separator");
    let head = String::from_utf8(raw[..header_end].to_vec()).expect("headers are UTF-8");
    let body = raw[header_end + 4..].to_vec();
    let mut lines = head.lines();
    let status: u16 =
        lines.next().expect("status line").split(' ').nth(1).expect("status code").parse().unwrap();
    let headers = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, HashMap<String, String>, Vec<u8>) {
    http(addr, "GET", path, None)
}

fn boot(mutate: impl FnOnce(&mut ServeConfig)) -> Server {
    let mut config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        http_workers: 4,
        engine_workers: 2,
        allow_shutdown: true,
        ..ServeConfig::default()
    };
    mutate(&mut config);
    Server::bind(config).expect("bind ephemeral port")
}

/// Extract every `<family>_count{…}` series of the Prometheus text as
/// `series -> value` (the series string includes the label set verbatim).
fn prometheus_counts(text: &str) -> HashMap<String, u64> {
    text.lines()
        .filter(|line| !line.starts_with('#'))
        .filter_map(|line| {
            let (series, value) = line.rsplit_once(' ')?;
            let family_end = series.find('{').unwrap_or(series.len());
            if !series[..family_end].ends_with("_count") {
                return None;
            }
            Some((series.to_string(), value.parse().ok()?))
        })
        .collect()
}

/// Reconstruct the same `series -> count` map from the `/v1/debug/stats`
/// histogram snapshot (label order matches the registry's render order).
fn debug_stats_counts(metrics: &serde_json::Value) -> HashMap<String, u64> {
    let mut out = HashMap::new();
    let histograms =
        metrics.get("histograms").and_then(|v| v.as_array()).expect("histograms array");
    for hist in histograms {
        let name = hist.get("name").and_then(|v| v.as_str()).expect("histogram name");
        let count = hist.get("count").and_then(|v| v.as_u64()).expect("histogram count");
        let labels = hist.get("labels").and_then(|v| v.as_object()).expect("labels object");
        let series = if labels.is_empty() {
            format!("{name}_count")
        } else {
            let rendered: Vec<String> =
                labels.iter().map(|(k, v)| format!("{k}=\"{}\"", v.as_str().unwrap())).collect();
            format!("{name}_count{{{}}}", rendered.join(","))
        };
        out.insert(series, count);
    }
    out
}

#[test]
fn every_response_carries_a_fresh_request_id() {
    let server = boot(|_| {});
    let addr = server.local_addr();

    let (status, ok_headers, _) = get(addr, "/healthz");
    assert_eq!(status, 200);
    let first = ok_headers.get("x-gesmc-request-id").expect("id on 200").clone();
    let (status, err_headers, _) = get(addr, "/no/such/route");
    assert_eq!(status, 404);
    let second = err_headers.get("x-gesmc-request-id").expect("id on 404").clone();

    for id in [&first, &second] {
        assert_eq!(id.len(), 16, "request id {id:?} must be 16 hex chars");
        assert!(id.chars().all(|c| c.is_ascii_hexdigit()), "non-hex request id {id:?}");
    }
    assert_ne!(first, second, "request ids must differ across requests");

    server.shutdown();
}

#[test]
fn observability_end_to_end() {
    let data_dir = std::env::temp_dir().join(format!("gesmc-obs-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let server = boot(|c| c.data_dir = Some(data_dir.clone()));
    let addr = server.local_addr();

    // --- Known request mix -------------------------------------------------
    let sample_path = "/v1/sample?graph=pld:m=300,seed=7&algo=seq-es&supersteps=4";
    let (status, headers, _) = get(addr, sample_path); // cold: chain runs
    assert_eq!(status, 200);
    assert_eq!(headers.get("x-gesmc-cache").map(String::as_str), Some("miss"));
    let (status, headers, _) = get(addr, sample_path); // warm: cache probe hit
    assert_eq!(status, 200);
    assert_eq!(headers.get("x-gesmc-cache").map(String::as_str), Some("hit"));
    let (status, _, _) = get(addr, "/definitely/not/a/route");
    assert_eq!(status, 404);
    // One async job, so superstep + journal histograms tick while the job
    // store has a record to report.
    let job = r#"{"generate":{"family":"gnp","edges":200},"supersteps":6,"name":"obsjob"}"#;
    let (status, _, body) = http(addr, "POST", "/v1/jobs", Some(job));
    assert_eq!(status, 202, "job submit failed: {}", String::from_utf8_lossy(&body));
    let accepted: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();
    let job_url = accepted.get("url").and_then(|v| v.as_str()).unwrap().to_string();
    loop {
        let (_, _, body) = get(addr, &job_url);
        let status_doc: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();
        match status_doc.get("status").and_then(|v| v.as_str()) {
            Some("queued") | Some("running") => std::thread::sleep(Duration::from_millis(10)),
            Some("done") => break,
            other => panic!("job ended as {other:?}"),
        }
    }

    // --- Scrape order matters: the JSON snapshot first ---------------------
    let (status, _, stats_body) = get(addr, "/v1/debug/stats");
    assert_eq!(status, 200);
    let stats: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&stats_body).unwrap()).unwrap();
    let jobs = stats.get("jobs").and_then(|v| v.as_array()).expect("jobs array");
    assert!(
        jobs.iter().any(|j| j.get("name").and_then(|v| v.as_str()) == Some("obsjob")
            && j.get("status").and_then(|v| v.as_str()) == Some("done")),
        "debug stats must report the finished job"
    );
    let snapshot_counts = debug_stats_counts(stats.get("metrics").expect("metrics object"));

    let (status, metrics_headers, metrics_body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(
        metrics_headers.get("content-type").map(String::as_str),
        Some("text/plain; version=0.0.4; charset=utf-8"),
        "/metrics must declare the Prometheus text format version"
    );
    let text = String::from_utf8(metrics_body).unwrap();

    // --- Families and exposition shape -------------------------------------
    for family in [
        "gesmc_superstep_duration_seconds",
        "gesmc_request_phase_duration_seconds",
        "gesmc_cache_probe_duration_seconds",
        "gesmc_journal_append_duration_seconds",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family} histogram")),
            "missing histogram family {family}"
        );
        assert!(text.contains(&format!("{family}_sum")), "missing {family}_sum");
        assert!(text.contains(&format!("{family}_count")), "missing {family}_count");
        assert!(
            text.contains(&format!("{family}_bucket")) && text.contains("le=\"+Inf\""),
            "missing cumulative buckets for {family}"
        );
    }
    assert!(text.contains("gesmc_build_info{version="), "missing build info gauge");
    assert!(text.contains("gesmc_uptime_seconds"), "missing uptime gauge");

    // --- Consistency between the two scrapes -------------------------------
    let text_counts = prometheus_counts(&text);
    assert!(!snapshot_counts.is_empty(), "debug stats must carry histogram counts");
    for (series, &snapshot_count) in &snapshot_counts {
        let text_count = *text_counts
            .get(series)
            .unwrap_or_else(|| panic!("series {series} absent from /metrics"));
        if series.starts_with("gesmc_request_phase_duration_seconds") {
            // The scrapes themselves pass through the request pipeline, so
            // the later scrape has at least the earlier scrape's counts.
            assert!(
                text_count >= snapshot_count,
                "{series}: /metrics count {text_count} < debug stats count {snapshot_count}"
            );
        } else {
            // Scraping records no superstep, cache-probe, coalesce, or
            // persistence events, so those totals must agree exactly.
            assert_eq!(
                text_count, snapshot_count,
                "{series}: /metrics and /v1/debug/stats disagree"
            );
        }
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
}
