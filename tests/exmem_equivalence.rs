//! The cardinal out-of-core invariant, property-tested end to end: **the
//! storage backend never changes the sample bytes**.
//!
//! `seq-es-ext` over a heap store, over an [`ExternalEdgeStore`] at a
//! 1-byte chunk budget, and plain `seq-es` must all visit the identical
//! edge arrays at equal seeds, whatever the batch cap.  Checkpoints taken
//! by the in-memory engine and by the external runner must be byte-equal,
//! and a checkpoint written by one backend must resume bit-identically
//! through the other.  The `GESMC_EXMEM_NO_MMAP` fallback and corrupt
//! mapped files round out the matrix.

use gesmc::datasets::syn_gnp_graph;
use gesmc::prelude::*;
use gesmc_engine::{
    resume_external_job, run_external_job, EngineError, ExternalJob, ExternalOutput,
};
use gesmc_graph::io::{write_edge_list_binary, write_edge_list_binary_file};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gesmc-exmem-equiv-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Edges after `steps` supersteps of `chain_spec` built in memory through
/// the default registry.
fn in_memory_edges(spec: &ChainSpec, graph: &EdgeListGraph, seed: u64, steps: usize) -> Vec<Edge> {
    let mut chain = default_registry().build(spec, graph.clone(), seed).unwrap();
    chain.run_supersteps(steps);
    chain.graph().edges().to_vec()
}

/// Edges after `steps` supersteps of `chain_spec` over an
/// [`ExternalEdgeStore`] with the given chunk-cache budget, streamed out
/// without materialising the graph.
fn external_edges(
    dir: &Path,
    spec: &ChainSpec,
    graph: &EdgeListGraph,
    seed: u64,
    steps: usize,
    budget: usize,
) -> Vec<Edge> {
    let input = dir.join(format!("in-{seed:x}-{steps}-{budget}.el"));
    let scratch = dir.join(format!("scratch-{seed:x}-{steps}-{budget}.el"));
    write_edge_list_binary_file(&input, graph).unwrap();
    let store = ExternalEdgeStore::create(&input, &scratch, budget).unwrap();
    let mut chain = default_registry().build_store(spec, Box::new(store), seed).unwrap();
    for _ in 0..steps {
        chain.superstep();
    }
    let mut edges = Vec::new();
    chain.stream_edges(&mut |e| edges.push(e));
    edges
}

proptest! {
    #[test]
    fn storage_backend_never_changes_the_sample(
        seed in any::<u64>(),
        steps in 1usize..4,
        batch in 1usize..130,
    ) {
        let dir = temp_dir("prop");
        let graph = syn_gnp_graph(seed ^ 0x00C0_FFEE, 60, 200);
        let reference = in_memory_edges(&ChainSpec::new("seq-es"), &graph, seed, steps);

        // seq-es-ext over the heap store, any batch cap.
        let spec = ChainSpec::parse(&format!("seq-es-ext?batch={batch}")).unwrap();
        prop_assert_eq!(&reference, &in_memory_edges(&spec, &graph, seed, steps));

        // seq-es-ext over the external store at the meanest possible budget
        // (1 byte => a single pinned chunk) and at a roomy one.
        prop_assert_eq!(&reference, &external_edges(&dir, &spec, &graph, seed, steps, 1));
        prop_assert_eq!(&reference, &external_edges(&dir, &spec, &graph, seed, steps, 1 << 20));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Captures every checkpoint the in-memory engine emits, as encoded bytes.
struct ByteSink(Vec<Vec<u8>>);

impl CheckpointSink for ByteSink {
    fn store(&mut self, checkpoint: &Checkpoint) -> Result<(), EngineError> {
        self.0.push(checkpoint.to_bytes());
        Ok(())
    }
}

#[test]
fn checkpoints_are_byte_equal_across_backends_and_resume_crosses_them() {
    let dir = temp_dir("cross");
    let graph = syn_gnp_graph(11, 400, 1400);
    let input = dir.join("input.el");
    write_edge_list_binary_file(&input, &graph).unwrap();
    let spec = ChainSpec::parse("seq-es-ext?batch=32").unwrap();

    // In-memory run with a checkpoint-capturing hook (step 4 checkpoints;
    // step 8 is final and does not).
    let job = JobSpec::new("xjob", GraphSource::InMemory(graph), spec.clone())
        .supersteps(8)
        .thinning(2)
        .seed(7);
    let mut job = job;
    job.checkpoint_every = Some(4);
    let mut sink = MemorySink::new();
    let mut captured = ByteSink(Vec::new());
    run_job_hooked(
        default_registry(),
        &job,
        &mut sink,
        None,
        &JobControl::new(),
        Some(&mut captured),
    )
    .unwrap();
    assert_eq!(captured.0.len(), 1, "exactly the step-4 checkpoint");

    // External run of the same job: the streamed checkpoint must be
    // byte-identical to the in-memory capture.
    let ext = ExternalJob::new("xjob", &input, spec, 4096)
        .supersteps(8)
        .thinning(2)
        .seed(7)
        .scratch(dir.join("run.scratch.el"))
        .output(ExternalOutput::FinalFile(dir.join("external-final.el")))
        .checkpoint(4, &dir);
    run_external_job(default_registry(), &ext).unwrap();
    let external_ckpt = std::fs::read(dir.join("xjob.ckpt")).unwrap();
    assert_eq!(
        external_ckpt, captured.0[0],
        "in-memory and external checkpoints of the same job must be byte-equal"
    );

    // Resume the *in-memory* checkpoint through the *external* (mmap-path)
    // runner: the final sample must match the uninterrupted in-memory run
    // bit for bit.
    let handoff = dir.join("handoff.ckpt");
    std::fs::write(&handoff, &captured.0[0]).unwrap();
    let resume = ExternalJob::new("xjob", &input, ChainSpec::new("seq-es-ext"), 4096)
        .supersteps(8)
        .thinning(2)
        .seed(7)
        .scratch(dir.join("resume.scratch.el"))
        .output(ExternalOutput::FinalFile(dir.join("resumed-final.el")));
    let report = resume_external_job(default_registry(), &resume, &handoff).unwrap();
    assert_eq!(report.resumed_from, 4);

    let store = sink.store();
    let store = store.lock().unwrap();
    let (final_step, final_graph) = store.last().expect("the in-memory run emitted samples");
    assert_eq!(*final_step, 8);
    let mut expected = Vec::new();
    write_edge_list_binary(&mut expected, final_graph).unwrap();
    assert_eq!(
        std::fs::read(dir.join("resumed-final.el")).unwrap(),
        expected,
        "cross-backend resume must reproduce the uninterrupted sample bytes"
    );
    assert_eq!(
        std::fs::read(dir.join("external-final.el")).unwrap(),
        expected,
        "the uninterrupted external run must also match"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn no_mmap_fallback_reads_the_same_bytes() {
    let dir = temp_dir("fallback");
    let graph = syn_gnp_graph(21, 80, 300);
    let path = dir.join("view.el");
    write_edge_list_binary_file(&path, &graph).unwrap();

    std::env::set_var("GESMC_EXMEM_NO_MMAP", "1");
    let fallback = MappedEdgeList::open(&path).unwrap();
    assert!(!fallback.is_mapped(), "the env override must force positioned reads");
    let mut via_fallback = Vec::new();
    fallback.for_each_edge(&mut |_, e| via_fallback.push(e)).unwrap();
    std::env::remove_var("GESMC_EXMEM_NO_MMAP");

    let mapped = MappedEdgeList::open(&path).unwrap();
    let mut via_map = Vec::new();
    mapped.for_each_edge(&mut |_, e| via_map.push(e)).unwrap();

    assert_eq!(via_fallback, graph.edges());
    assert_eq!(via_map, graph.edges());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_mapped_files_error_and_never_misreport() {
    let dir = temp_dir("corrupt");
    let graph = syn_gnp_graph(31, 50, 120);
    let path = dir.join("bad.el");
    let mut pristine = Vec::new();
    write_edge_list_binary(&mut pristine, &graph).unwrap();

    let expect = |bytes: &[u8], needle: &str| {
        std::fs::write(&path, bytes).unwrap();
        match MappedEdgeList::open(&path) {
            Err(e) => assert!(e.to_string().contains(needle), "{e} lacks {needle:?}"),
            Ok(_) => panic!("expected open to fail with {needle:?}"),
        }
    };
    expect(&pristine[..10], "truncated header");
    let mut magic = pristine.clone();
    magic[0..8].copy_from_slice(b"NOTMAGIC");
    expect(&magic, "bad magic");
    expect(&pristine[..pristine.len() - 3], "truncated payload");

    // Per-edge damage surfaces during the validating stream, as an error.
    let mut looped = pristine.clone();
    looped[24..32].copy_from_slice(&[5, 0, 0, 0, 5, 0, 0, 0]);
    std::fs::write(&path, &looped).unwrap();
    let view = MappedEdgeList::open(&path).unwrap();
    let err = view.for_each_edge(&mut |_, _| {}).unwrap_err();
    assert!(err.to_string().contains("self-loop"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
