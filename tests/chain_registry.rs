//! The open algorithm API, end to end through the umbrella crate: the
//! `ChainSpec` grammar round-trips, the default registry is complete (every
//! registered chain builds, runs, preserves degrees, and checkpoints), and
//! registry errors are readable.

use gesmc::prelude::*;
use gesmc_graph::gen::gnp;
use gesmc_randx::rng_from_seed;

#[test]
fn default_registry_covers_core_chains_and_baselines() {
    let names = default_registry().names();
    assert!(names.len() >= 7, "expected at least 7 chains, got {names:?}");
    for name in [
        "seq-es",
        "seq-global-es",
        "par-es",
        "par-global-es",
        "naive-par-es",
        "global-curveball",
        "adjacency-es",
        "sorted-adjacency-es",
    ] {
        assert!(names.contains(&name), "{name} missing from {names:?}");
    }
}

/// Every registered chain builds from its plain name, runs a superstep,
/// preserves the degree sequence, honours its capability flags, and resolves
/// by every advertised spelling.
#[test]
fn every_registered_chain_builds_runs_and_preserves_degrees() {
    let registry = default_registry();
    for info in registry.infos() {
        let graph = gnp(&mut rng_from_seed(5), 90, 0.07);
        let degrees = graph.degrees();
        let spec = ChainSpec::new(info.name);
        let mut chain = registry.build(&spec, graph, 3).unwrap_or_else(|e| {
            panic!("{}: {e}", info.name);
        });
        assert_eq!(chain.name(), info.chain_name, "{}", info.name);
        let stats = chain.superstep();
        assert!(stats.requested > 0, "{}: superstep did nothing", info.name);
        let result = chain.graph();
        assert_eq!(result.degrees(), degrees, "{}: degrees violated", info.name);
        assert!(result.validate().is_ok(), "{}: graph not simple", info.name);
        // The static snapshot capability flag must match the chain's actual
        // behaviour, so `gesmc algorithms` can never lie about it.
        assert_eq!(chain.snapshot().is_some(), info.snapshot, "{}", info.name);
        // Every spelling resolves back to the same chain.
        for spelling in [info.name, info.chain_name].iter().chain(info.aliases.iter()) {
            assert_eq!(registry.resolve(spelling).unwrap().name, info.name, "{spelling}");
        }
    }
}

#[test]
fn spec_strings_round_trip_for_every_registered_chain() {
    for info in default_registry().infos() {
        let plain = ChainSpec::parse(info.name).unwrap();
        assert_eq!(ChainSpec::parse(&plain.to_string()).unwrap(), plain);
        let with_params =
            ChainSpec::parse(&format!("{}?pl=0.125&prefetch=off", info.name)).unwrap();
        assert_eq!(ChainSpec::parse(&with_params.to_string()).unwrap(), with_params);
        assert!(default_registry().validate(&with_params).is_ok(), "{}", info.name);
        // The JSON object form is equivalent to the string form.
        assert_eq!(ChainSpec::from_json(&with_params.to_json()).unwrap(), with_params);
    }
}

#[test]
fn unknown_names_and_bad_params_error_readably() {
    let registry = default_registry();
    match registry.resolve("quantum-es") {
        Err(ChainError::UnknownChain { name, known }) => {
            assert_eq!(name, "quantum-es");
            assert!(known.len() >= 7);
        }
        other => panic!("expected UnknownChain, got {other:?}"),
    }
    assert!(matches!(
        registry.validate(&ChainSpec::parse("par-global-es?warp=9").unwrap()),
        Err(ChainError::UnknownParam { .. })
    ));
    assert!(matches!(
        registry.validate(&ChainSpec::parse("par-global-es?pl=2").unwrap()),
        Err(ChainError::BadParam { .. })
    ));
    // The grammar itself rejects malformed specs without panicking.
    assert!(matches!(ChainSpec::parse("par-global-es?pl"), Err(ChainError::Grammar(_))));
}

/// Chain parameters flow through a whole job: two jobs differing only in
/// `prefetch` / `pl` still agree on the chain trajectory where the paper says
/// they must (prefetch only reorders memory accesses).
#[test]
fn per_job_prefetch_is_plumbed_to_the_chain() {
    let graph = gnp(&mut rng_from_seed(9), 80, 0.08);
    let run = |spec_text: &str| {
        let spec = JobSpec::new(
            "p",
            GraphSource::InMemory(graph.clone()),
            ChainSpec::parse(spec_text).unwrap(),
        )
        .supersteps(4)
        .seed(2);
        let sink = MemorySink::new();
        let store = sink.store();
        let mut sink = sink;
        run_job(&spec, &mut sink, None).unwrap();
        let last = store.lock().unwrap().last().unwrap().1.clone();
        last.canonical_edges()
    };
    // seq-es with and without prefetch visit identical chain states.
    assert_eq!(run("seq-es"), run("seq-es?prefetch=off"));
    // A different P_L genuinely changes a G-ES-MC trajectory.
    assert_ne!(run("seq-global-es?pl=0.001"), run("seq-global-es?pl=0.9"));
}
