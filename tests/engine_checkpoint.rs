//! Checkpoint/resume determinism: a chain checkpointed at superstep `t` and
//! resumed must match the uninterrupted chain's edge set *exactly* at every
//! superstep `T > t`, for all five chain implementations.
//!
//! The checkpoint round-trips through the binary format
//! (`Checkpoint::to_bytes` → `from_bytes`) on every case, so the property
//! also pins the on-disk encoding.

use gesmc::prelude::*;
use gesmc_engine::Checkpoint;
use gesmc_graph::gen::gnp;
use gesmc_randx::rng_from_seed;
use proptest::prelude::*;

/// Run `total` supersteps uninterrupted; independently run `cut`, checkpoint
/// through the binary format, resume into a fresh chain, and run the rest.
/// Returns (uninterrupted, resumed) canonical edge sets.
fn uninterrupted_vs_resumed(
    algorithm: Algorithm,
    graph_seed: u64,
    chain_seed: u64,
    cut: usize,
    total: usize,
) -> (Vec<u64>, Vec<u64>) {
    let graph = gnp(&mut rng_from_seed(graph_seed), 60, 0.09);
    let config = SwitchingConfig::with_seed(chain_seed);

    let mut uninterrupted = algorithm.build(graph.clone(), config);
    uninterrupted.run_supersteps(total);

    let mut interrupted = algorithm.build(graph, config);
    interrupted.run_supersteps(cut);
    let checkpoint = Checkpoint::capture("prop", interrupted.as_ref(), total as u64, 0, 0).unwrap();
    let roundtripped = Checkpoint::from_bytes(&checkpoint.to_bytes()).unwrap();
    assert_eq!(roundtripped, checkpoint, "binary format must round-trip losslessly");

    // Resume exactly as the engine does: build from the checkpoint's graph,
    // then restore the full chain state.
    let snapshot = &roundtripped.snapshot;
    let mut resumed = algorithm.build(snapshot.graph().unwrap(), snapshot.config());
    resumed.restore(snapshot).unwrap();
    assert_eq!(snapshot.supersteps_done, cut as u64);
    resumed.run_supersteps(total - cut);

    (uninterrupted.graph().canonical_edges(), resumed.graph().canonical_edges())
}

fn assert_bit_identical_resume(algorithm: Algorithm, seed: u64, cut: usize, extra: usize) {
    let total = cut + extra;
    let (full, resumed) = uninterrupted_vs_resumed(algorithm, seed ^ 0xABCD, seed, cut, total);
    assert_eq!(
        full,
        resumed,
        "{}: resume from superstep {cut} diverged by superstep {total} (seed {seed})",
        algorithm.chain_name()
    );
}

proptest! {
    #[test]
    fn seq_es_checkpoint_resume_is_exact(seed in any::<u64>(), cut in 1usize..5, extra in 1usize..5) {
        assert_bit_identical_resume(Algorithm::SeqES, seed, cut, extra);
    }

    #[test]
    fn seq_global_es_checkpoint_resume_is_exact(seed in any::<u64>(), cut in 1usize..5, extra in 1usize..5) {
        assert_bit_identical_resume(Algorithm::SeqGlobalES, seed, cut, extra);
    }

    #[test]
    fn par_es_checkpoint_resume_is_exact(seed in any::<u64>(), cut in 1usize..4, extra in 1usize..4) {
        assert_bit_identical_resume(Algorithm::ParES, seed, cut, extra);
    }

    #[test]
    fn par_global_es_checkpoint_resume_is_exact(seed in any::<u64>(), cut in 1usize..4, extra in 1usize..4) {
        assert_bit_identical_resume(Algorithm::ParGlobalES, seed, cut, extra);
    }

    #[test]
    fn naive_par_es_checkpoint_resume_is_exact_single_threaded(seed in any::<u64>(), cut in 1usize..4, extra in 1usize..4) {
        // The inexact baseline's cross-thread interleaving is racy by design
        // (Sec. 5.1); its trajectory is only a function of the checkpoint
        // state under a single-threaded pool.
        let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| assert_bit_identical_resume(Algorithm::NaiveParES, seed, cut, extra));
    }
}

/// The checkpoint captured at `t` must also agree with the uninterrupted
/// chain observed *at* `t` (not only at the final superstep).
#[test]
fn checkpoint_state_matches_uninterrupted_prefix() {
    for algorithm in Algorithm::ALL {
        let graph = gnp(&mut rng_from_seed(7), 60, 0.09);
        let config = SwitchingConfig::with_seed(11);

        let mut reference = algorithm.build(graph.clone(), config);
        reference.run_supersteps(4);

        let mut checkpointed = algorithm.build(graph, config);
        // Interleave snapshots between supersteps: capturing must not
        // disturb the chain.
        for _ in 0..4 {
            checkpointed.superstep();
            let _ = checkpointed.snapshot().unwrap();
        }
        assert_eq!(
            checkpointed.graph().canonical_edges(),
            reference.graph().canonical_edges(),
            "{}: snapshot capture disturbed the chain",
            algorithm.chain_name()
        );
    }
}

/// Resuming twice from the same checkpoint yields the same result (restores
/// do not consume or mutate the snapshot).
#[test]
fn resume_is_repeatable() {
    let graph = gnp(&mut rng_from_seed(21), 60, 0.09);
    let mut chain = Algorithm::ParGlobalES.build(graph, SwitchingConfig::with_seed(3));
    chain.run_supersteps(3);
    let checkpoint = Checkpoint::capture("twice", chain.as_ref(), 8, 0, 0).unwrap();

    let run = |ckpt: &Checkpoint| {
        let snapshot = &ckpt.snapshot;
        let mut resumed =
            Algorithm::ParGlobalES.build(snapshot.graph().unwrap(), snapshot.config());
        resumed.restore(snapshot).unwrap();
        resumed.run_supersteps(5);
        resumed.graph().canonical_edges()
    };
    assert_eq!(run(&checkpoint), run(&checkpoint));
}
