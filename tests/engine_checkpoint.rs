//! Checkpoint/resume determinism: a chain checkpointed at superstep `t` and
//! resumed must match the uninterrupted chain's edge set *exactly* at every
//! superstep `T > t`, for every chain in the default registry — the five core
//! chains and the baselines (Global Curveball, both adjacency-list ES
//! variants) alike.
//!
//! The checkpoint round-trips through the binary format
//! (`Checkpoint::to_bytes` → `from_bytes`) on every case, so the property
//! also pins the on-disk encoding.

use gesmc::prelude::*;
use gesmc_engine::Checkpoint;
use gesmc_graph::gen::gnp;
use gesmc_randx::rng_from_seed;
use proptest::prelude::*;

/// Build `name` through the default registry with an explicit config (the
/// path the engine's resume uses).
fn build(
    name: &str,
    graph: EdgeListGraph,
    config: SwitchingConfig,
) -> Box<dyn EdgeSwitching + Send> {
    default_registry().build_with_config(&ChainSpec::new(name), graph, config).unwrap()
}

/// Run `total` supersteps uninterrupted; independently run `cut`, checkpoint
/// through the binary format, resume into a fresh chain, and run the rest.
/// Returns (uninterrupted, resumed) canonical edge sets.
fn uninterrupted_vs_resumed(
    algorithm: &str,
    graph_seed: u64,
    chain_seed: u64,
    cut: usize,
    total: usize,
) -> (Vec<u64>, Vec<u64>) {
    let graph = gnp(&mut rng_from_seed(graph_seed), 60, 0.09);
    let config = SwitchingConfig::with_seed(chain_seed);

    let mut uninterrupted = build(algorithm, graph.clone(), config);
    uninterrupted.run_supersteps(total);

    let mut interrupted = build(algorithm, graph, config);
    interrupted.run_supersteps(cut);
    let checkpoint = Checkpoint::capture(
        "prop",
        interrupted.as_ref(),
        &ChainSpec::new(algorithm),
        total as u64,
        0,
        0,
    )
    .unwrap();
    let roundtripped = Checkpoint::from_bytes(&checkpoint.to_bytes()).unwrap();
    assert_eq!(roundtripped, checkpoint, "binary format must round-trip losslessly");

    // Resume exactly as the engine does: build from the checkpoint's graph
    // and the chain name recorded in its header, then restore the full state.
    let snapshot = &roundtripped.snapshot;
    let mut resumed =
        build(roundtripped.chain_name(), snapshot.graph().unwrap(), snapshot.config());
    resumed.restore(snapshot).unwrap();
    assert_eq!(snapshot.supersteps_done, cut as u64);
    resumed.run_supersteps(total - cut);

    (uninterrupted.graph().canonical_edges(), resumed.graph().canonical_edges())
}

fn assert_bit_identical_resume(algorithm: &str, seed: u64, cut: usize, extra: usize) {
    let total = cut + extra;
    let (full, resumed) = uninterrupted_vs_resumed(algorithm, seed ^ 0xABCD, seed, cut, total);
    assert_eq!(
        full, resumed,
        "{algorithm}: resume from superstep {cut} diverged by superstep {total} (seed {seed})",
    );
}

proptest! {
    #[test]
    fn seq_es_checkpoint_resume_is_exact(seed in any::<u64>(), cut in 1usize..5, extra in 1usize..5) {
        assert_bit_identical_resume("seq-es", seed, cut, extra);
    }

    #[test]
    fn seq_global_es_checkpoint_resume_is_exact(seed in any::<u64>(), cut in 1usize..5, extra in 1usize..5) {
        assert_bit_identical_resume("seq-global-es", seed, cut, extra);
    }

    #[test]
    fn par_es_checkpoint_resume_is_exact(seed in any::<u64>(), cut in 1usize..4, extra in 1usize..4) {
        assert_bit_identical_resume("par-es", seed, cut, extra);
    }

    #[test]
    fn par_global_es_checkpoint_resume_is_exact(seed in any::<u64>(), cut in 1usize..4, extra in 1usize..4) {
        assert_bit_identical_resume("par-global-es", seed, cut, extra);
    }

    #[test]
    fn naive_par_es_checkpoint_resume_is_exact_single_threaded(seed in any::<u64>(), cut in 1usize..4, extra in 1usize..4) {
        // The inexact baseline's cross-thread interleaving is racy by design
        // (Sec. 5.1); its trajectory is only a function of the checkpoint
        // state under a single-threaded pool.
        let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| assert_bit_identical_resume("naive-par-es", seed, cut, extra));
    }

    #[test]
    fn global_curveball_checkpoint_resume_is_exact(seed in any::<u64>(), cut in 1usize..5, extra in 1usize..5) {
        assert_bit_identical_resume("global-curveball", seed, cut, extra);
    }

    #[test]
    fn adjacency_es_checkpoint_resume_is_exact(seed in any::<u64>(), cut in 1usize..5, extra in 1usize..5) {
        assert_bit_identical_resume("adjacency-es", seed, cut, extra);
    }

    #[test]
    fn sorted_adjacency_es_checkpoint_resume_is_exact(seed in any::<u64>(), cut in 1usize..5, extra in 1usize..5) {
        assert_bit_identical_resume("sorted-adjacency-es", seed, cut, extra);
    }
}

/// The checkpoint captured at `t` must also agree with the uninterrupted
/// chain observed *at* `t` (not only at the final superstep).
#[test]
fn checkpoint_state_matches_uninterrupted_prefix() {
    for info in default_registry().infos() {
        let graph = gnp(&mut rng_from_seed(7), 60, 0.09);
        let config = SwitchingConfig::with_seed(11);

        let mut reference = build(info.name, graph.clone(), config);
        reference.run_supersteps(4);

        let mut checkpointed = build(info.name, graph, config);
        // Interleave snapshots between supersteps: capturing must not
        // disturb the chain.
        for _ in 0..4 {
            checkpointed.superstep();
            let _ = checkpointed.snapshot().unwrap();
        }
        assert_eq!(
            checkpointed.graph().canonical_edges(),
            reference.graph().canonical_edges(),
            "{}: snapshot capture disturbed the chain",
            info.name
        );
    }
}

/// Resuming twice from the same checkpoint yields the same result (restores
/// do not consume or mutate the snapshot).
#[test]
fn resume_is_repeatable() {
    let graph = gnp(&mut rng_from_seed(21), 60, 0.09);
    let mut chain = build("par-global-es", graph, SwitchingConfig::with_seed(3));
    chain.run_supersteps(3);
    let checkpoint =
        Checkpoint::capture("twice", chain.as_ref(), &ChainSpec::new("par-global-es"), 8, 0, 0)
            .unwrap();

    let run = |ckpt: &Checkpoint| {
        let snapshot = &ckpt.snapshot;
        let mut resumed = build(ckpt.chain_name(), snapshot.graph().unwrap(), snapshot.config());
        resumed.restore(snapshot).unwrap();
        resumed.run_supersteps(5);
        resumed.graph().canonical_edges()
    };
    assert_eq!(run(&checkpoint), run(&checkpoint));
}
