//! End-to-end tests of the study pipeline (`gesmc-study`): a spec fans out
//! over the worker pool, streams metrics, and lands in a deterministic
//! report — the acceptance path of `gesmc study studies/fig2_smoke.json`.

use gesmc::study::{run_study, StudyOptions, StudyReport, StudyScale, StudySpec};
use std::path::{Path, PathBuf};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_spec() -> StudySpec {
    StudySpec::parse(
        r#"{
            "name": "e2e",
            "chains": ["seq-es", "seq-global-es", "par-global-es"],
            "graphs": [
                { "family": "gnp", "nodes": 60, "edges": 180 },
                { "family": "pld", "nodes": 80, "edges": 200, "gamma": 2.5 }
            ],
            "thinnings": [1, 2, 4],
            "supersteps": 10,
            "seed": 7,
            "workers": 2
        }"#,
    )
    .unwrap()
}

#[test]
fn study_covers_every_sweep_cell() {
    let dir = temp_dir("gesmc-e2e-study-cells");
    let opts = StudyOptions { output_dir: Some(dir.clone()), ..Default::default() };
    let run = run_study(&small_spec(), &opts).unwrap();

    // 3 chains x 2 graphs = 6 cells, each carrying every thinning point,
    // its fraction, and the exact seeds.
    assert_eq!(run.report.cells.len(), 6);
    let mut seen = std::collections::HashSet::new();
    for cell in &run.report.cells {
        assert!(seen.insert((cell.chain.clone(), cell.label.clone())), "duplicate cell");
        assert_eq!(
            cell.points.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            vec![1, 2, 4],
            "cell {} must carry every thinning value",
            cell.job
        );
        for &(_, frac) in &cell.points {
            assert!((0.0..=1.0).contains(&frac));
        }
        assert!(cell.edges > 0 && cell.nodes > 0);
        // Proxy traces are recorded at the largest thinning (4): supersteps
        // 4 and 8 of the 10-superstep run.
        assert_eq!(cell.proxy_supersteps, vec![4, 8]);
        assert_eq!(cell.triangles.len(), 2);
    }
    // All three chains of one graph randomise the identical input.
    let gnp_cells: Vec<_> = run.report.cells.iter().filter(|c| c.label == "gnp-m180").collect();
    assert_eq!(gnp_cells.len(), 3);
    assert!(gnp_cells.windows(2).all(|w| w[0].graph_seed == w[1].graph_seed));
    assert!(gnp_cells.windows(2).all(|w| w[0].edges == w[1].edges));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn report_files_are_deterministic_and_parse_back() {
    let dir_a = temp_dir("gesmc-e2e-study-det-a");
    let dir_b = temp_dir("gesmc-e2e-study-det-b");
    let spec = small_spec();
    let run_a =
        run_study(&spec, &StudyOptions { output_dir: Some(dir_a.clone()), ..Default::default() })
            .unwrap();
    let run_b =
        run_study(&spec, &StudyOptions { output_dir: Some(dir_b.clone()), ..Default::default() })
            .unwrap();

    let json_a = std::fs::read_to_string(&run_a.json_path).unwrap();
    let json_b = std::fs::read_to_string(&run_b.json_path).unwrap();
    assert_eq!(json_a, json_b, "same spec, same scale => bit-identical JSON report");

    let csv_a = std::fs::read_to_string(dir_a.join("e2e.csv")).unwrap();
    let csv_b = std::fs::read_to_string(dir_b.join("e2e.csv")).unwrap();
    assert_eq!(csv_a, csv_b);
    assert_eq!(csv_a.trim_end().lines().count(), 1 + 6 * 3, "header + cells x thinnings");

    let parsed = StudyReport::parse(&json_a).unwrap();
    assert_eq!(parsed.cells.len(), 6);
    assert_eq!(parsed.thinnings, vec![1, 2, 4]);

    // The timing side-car exists and covers every cell (but is allowed to
    // differ between runs).
    let timing = std::fs::read_to_string(dir_a.join("e2e.timing.json")).unwrap();
    for cell in &parsed.cells {
        assert!(timing.contains(&cell.job), "timing side-car must cover {}", cell.job);
    }

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn interrupted_study_resumes_from_completed_cells() {
    let dir = temp_dir("gesmc-e2e-study-resume");
    let spec = small_spec();
    let opts = StudyOptions { output_dir: Some(dir.clone()), ..Default::default() };
    let full = run_study(&spec, &opts).unwrap();

    // Simulate an interruption that lost two of the six cell files.
    let cells_dir = dir.join("e2e.cells");
    let mut cell_files: Vec<_> =
        std::fs::read_dir(&cells_dir).unwrap().map(|e| e.unwrap().path()).collect();
    cell_files.sort();
    assert_eq!(cell_files.len(), 6);
    std::fs::remove_file(&cell_files[1]).unwrap();
    std::fs::remove_file(&cell_files[4]).unwrap();

    let resumed = run_study(
        &spec,
        &StudyOptions { output_dir: Some(dir.clone()), resume: true, ..Default::default() },
    )
    .unwrap();
    assert_eq!(resumed.resumed_cells, 4, "four intact cells must be reloaded");
    assert_eq!(
        full.report.to_json_string(),
        resumed.report.to_json_string(),
        "resumed report must equal the uninterrupted one"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn committed_smoke_spec_is_valid_and_complete() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("studies/fig2_smoke.json");
    let spec = StudySpec::from_file(&path).unwrap();
    assert_eq!(spec.name, "fig2_smoke");
    assert!(spec.chains.len() >= 2, "the smoke study must compare chains");
    assert!(spec.graphs.len() >= 2, "the smoke study must cover graph families");
    assert!(spec.thinnings.len() >= 3);
    let smoke_cells = spec.cells(StudyScale::Smoke);
    assert_eq!(smoke_cells.len(), spec.chains.len() * spec.graphs.len());
    // Paper scale must scale up, not down.
    assert!(spec.supersteps_at(StudyScale::Paper) > spec.supersteps_at(StudyScale::Smoke));
    let paper_cells = spec.cells(StudyScale::Paper);
    assert!(paper_cells[0].graph.edges > smoke_cells[0].graph.edges);
}

#[test]
fn committed_xl_spec_targets_the_out_of_core_chain() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("studies/outofcore_xl.json");
    let spec = StudySpec::from_file(&path).unwrap();
    assert_eq!(spec.name, "outofcore_xl");
    assert!(
        spec.chains.iter().any(|c| c.name == "seq-es-ext"),
        "the xl study must sweep the external-memory chain"
    );
    assert!(
        spec.chains.iter().any(|c| c.name == "seq-es"),
        "the xl study must keep the in-memory control chain"
    );
    // Xl must scale the graphs past paper scale (that is its point); the
    // superstep count stays within the paper range.
    let base = spec.graphs[0].edges;
    assert!(spec.edges_at(StudyScale::Xl, base) > spec.edges_at(StudyScale::Paper, base));
    assert!(spec.supersteps_at(StudyScale::Xl) >= spec.supersteps_at(StudyScale::Smoke));
    let cells = spec.cells(StudyScale::Xl);
    assert_eq!(cells.len(), spec.chains.len() * spec.graphs.len());
}
