//! End-to-end tests of the sharded serving mode: three real `gesmc-serve`
//! processes joined by `--peers`, driven through the typed `gesmc-client`
//! SDK.
//!
//! Each node is spawned as a **separate child process** (this test binary
//! re-executing itself) with its own data dir, so the suite exercises the
//! same process boundaries, sockets, and SIGKILL semantics production sees.
//! The acceptance properties:
//!
//! * a request landing on the wrong node is forwarded to the ring owner
//!   (`X-Gesmc-Forwarded-By` present, the owner's forward counters rise)
//!   and the body is **bit-identical** to a plain single-node server's
//!   answer for the same spec;
//! * a mixed hot/cold workload through the client routes by the same ring
//!   the servers shard by, so warm keys come back `hit` from the owner;
//! * SIGKILL of one node loses **zero requests**: survivor-owned keys keep
//!   flowing untouched, victim-owned keys fail over to a successor that
//!   recomputes the identical bytes, and both the client pool and the
//!   surviving servers eject the dead peer;
//! * a traced request deliberately sent to the wrong node produces **one**
//!   trace id whose joined span tree covers both processes: the forwarder
//!   contributes the `forward` hop, the owner the cache-probe and
//!   compute/superstep phases, and every parent link resolves inside the
//!   joined tree.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use gesmc::client::PeerStatus;
use gesmc::prelude::{Client, ClusterConfig, HashRing, SampleSpec, ServeConfig, Server};

/// The child half of the re-exec trick: boot one cluster node on the fixed
/// address the parent preallocated, and serve until killed.  `#[ignore]`
/// keeps it out of normal runs; the parent invokes it by name.
#[test]
#[ignore = "child process entry point, spawned by the cluster tests"]
fn child_cluster_node_main() {
    let addr = std::env::var("GESMC_CLUSTER_ADDR").expect("child needs GESMC_CLUSTER_ADDR");
    let peers: Vec<String> = std::env::var("GESMC_CLUSTER_PEERS")
        .expect("child needs GESMC_CLUSTER_PEERS")
        .split(',')
        .map(str::to_string)
        .collect();
    let data_dir = PathBuf::from(
        std::env::var("GESMC_CLUSTER_DATA_DIR").expect("child needs GESMC_CLUSTER_DATA_DIR"),
    );
    let config = ServeConfig {
        addr: addr.clone(),
        http_workers: 2,
        engine_workers: 2,
        data_dir: Some(data_dir),
        cluster: Some(ClusterConfig { advertise: addr, peers }),
        ..ServeConfig::default()
    };
    let server = Server::bind(config).expect("child bind");
    server.wait(); // blocks until SIGKILL
}

struct ClusterNode {
    child: Child,
    addr: SocketAddr,
    endpoint: String,
}

impl ClusterNode {
    /// SIGKILL — no graceful teardown.
    fn kill(mut self) {
        self.child.kill().expect("kill node");
        self.child.wait().expect("reap node");
    }
}

impl Drop for ClusterNode {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Reserve `n` distinct loopback ports by binding them all at once and then
/// dropping the listeners.  The peers list must be known *before* any node
/// boots, so the publish-an-ephemeral-port trick of the durability tests
/// does not work here.
fn free_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port")).collect();
    listeners.iter().map(|l| l.local_addr().expect("port").port()).collect()
}

/// Spawn an `n`-node cluster, each node its own process with its own data
/// dir, and wait until every node answers `/healthz`.
fn spawn_cluster(tag: &str, n: usize) -> Vec<ClusterNode> {
    let base = std::env::temp_dir().join(format!("gesmc-cluster-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let endpoints: Vec<String> =
        free_ports(n).into_iter().map(|port| format!("127.0.0.1:{port}")).collect();
    let peers = endpoints.join(",");
    let nodes: Vec<ClusterNode> = endpoints
        .iter()
        .enumerate()
        .map(|(i, endpoint)| {
            let data_dir = base.join(format!("node{i}"));
            std::fs::create_dir_all(&data_dir).expect("create data dir");
            let child = Command::new(std::env::current_exe().expect("current exe"))
                .args(["child_cluster_node_main", "--exact", "--ignored", "--nocapture"])
                .env("GESMC_CLUSTER_ADDR", endpoint)
                .env("GESMC_CLUSTER_PEERS", &peers)
                .env("GESMC_CLUSTER_DATA_DIR", &data_dir)
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn cluster node");
            ClusterNode { child, addr: endpoint.parse().expect("addr"), endpoint: endpoint.clone() }
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(60);
    for node in &nodes {
        loop {
            if let Ok((200, _, _)) = try_http(node.addr, "GET", "/healthz", None, &[]) {
                break;
            }
            assert!(Instant::now() < deadline, "node {} never became healthy", node.endpoint);
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    nodes
}

fn try_http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    accept: Option<&str>,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<(u16, HashMap<String, String>, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let mut request = format!("{method} {path} HTTP/1.1\r\nHost: e2e\r\n");
    if let Some(accept) = accept {
        request.push_str(&format!("Accept: {accept}\r\n"));
    }
    for (name, value) in extra_headers {
        request.push_str(&format!("{name}: {value}\r\n"));
    }
    request.push_str("\r\n");
    stream.write_all(request.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("no header/body separator"))?;
    let head = String::from_utf8_lossy(&raw[..header_end]).to_string();
    let body = raw[header_end + 4..].to_vec();
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .and_then(|line| line.split(' ').nth(1))
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| std::io::Error::other("bad status line"))?;
    let headers = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok((status, headers, body))
}

fn get(addr: SocketAddr, path: &str) -> (u16, HashMap<String, String>, Vec<u8>) {
    try_http(addr, "GET", path, None, &[]).expect("http exchange")
}

fn get_binary(addr: SocketAddr, path: &str) -> (u16, HashMap<String, String>, Vec<u8>) {
    try_http(addr, "GET", path, Some("application/octet-stream"), &[]).expect("http exchange")
}

fn metric(addr: SocketAddr, name: &str) -> u64 {
    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    String::from_utf8_lossy(&body)
        .lines()
        .find(|line| line.starts_with(name) && !line.starts_with('#'))
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or_else(|| panic!("metric {name} missing")) as u64
}

/// The workload: a spread of small power-law specs, distinct keys.
fn workload_specs() -> Vec<SampleSpec> {
    (1..=8u64)
        .map(|seed| SampleSpec::new(format!("pld:m=120,seed={seed}")).supersteps(10))
        .collect()
}

/// The raw sample path a spec resolves to (the client encodes the same way;
/// the specs here contain no bytes that need escaping).
fn sample_path(spec: &SampleSpec) -> String {
    format!("/v1/sample?graph={}&algo={}&supersteps={}", spec.graph, spec.algo, spec.supersteps)
}

/// Run the same specs against a plain in-process single-node server (no
/// cluster config) — the reference every sharded answer must match
/// bit-identically.
fn reference_bytes(specs: &[SampleSpec]) -> Vec<Vec<u8>> {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        http_workers: 2,
        engine_workers: 2,
        ..ServeConfig::default()
    };
    let server = Server::bind(config).expect("reference bind");
    let addr = server.local_addr();
    let bytes = specs
        .iter()
        .map(|spec| {
            let (status, _, body) = get_binary(addr, &sample_path(spec));
            assert_eq!(status, 200);
            assert!(!body.is_empty());
            body
        })
        .collect();
    server.shutdown();
    bytes
}

#[test]
fn misrouted_requests_forward_to_the_owner_and_match_a_single_node_bit_for_bit() {
    let nodes = spawn_cluster("forward", 3);
    let endpoints: Vec<String> = nodes.iter().map(|n| n.endpoint.clone()).collect();
    let specs = workload_specs();
    let reference = reference_bytes(&specs);

    let client = Client::builder(endpoints.clone()).build().expect("client");
    let ring = HashRing::new(endpoints.clone()).expect("ring");

    // Cold pass through the client: every key routes to its ring owner and
    // computes fresh; every body must match the single-node reference.
    for (spec, expected) in specs.iter().zip(&reference) {
        let sample = client.samples().get(spec).expect("cold fetch");
        assert_eq!(&sample.bytes, expected, "sharded answer diverged for {}", spec.graph);
        assert_ne!(sample.cache, "hit", "first fetch of {} cannot be warm", spec.graph);
        assert_eq!(sample.endpoint, client.samples().owner(spec).expect("owner"));
    }

    // Hot pass: the same keys again, now served from the owners' caches.
    for (spec, expected) in specs.iter().zip(&reference) {
        let sample = client.samples().get(spec).expect("hot fetch");
        assert_eq!(&sample.bytes, expected);
        assert_eq!(sample.cache, "hit", "second fetch of {} must hit", spec.graph);
    }

    // Misroute every key on purpose: ask a non-owner directly.  The wrong
    // node must forward to the owner (one hop), stamp itself into
    // `X-Gesmc-Forwarded-By`, and relay the owner's warm-cache answer
    // bit-identically.
    for (spec, expected) in specs.iter().zip(&reference) {
        let key = spec.key().expect("key");
        let owner = ring.owner(key.ring_hash()).to_string();
        let wrong = nodes.iter().find(|n| n.endpoint != owner).expect("non-owner");
        let owner_node = nodes.iter().find(|n| n.endpoint == owner).expect("owner node");
        let received_before = metric(owner_node.addr, "gesmc_cluster_forwards_received_total");

        let (status, headers, body) = get_binary(wrong.addr, &sample_path(spec));
        assert_eq!(status, 200);
        assert_eq!(&body, expected, "forwarded answer diverged for {}", spec.graph);
        assert_eq!(
            headers.get("x-gesmc-forwarded-by").map(String::as_str),
            Some(wrong.endpoint.as_str()),
            "misrouted fetch of {} must be forwarded",
            spec.graph
        );
        assert_eq!(
            headers.get("x-gesmc-cache").map(String::as_str),
            Some("hit"),
            "the owner's cache is warm, so the relayed verdict must be a hit"
        );
        let received_after = metric(owner_node.addr, "gesmc_cluster_forwards_received_total");
        assert_eq!(received_after, received_before + 1, "owner must count the received forward");
    }

    // The ring status endpoint agrees: every node sees 3 peers, all healthy.
    for node in &nodes {
        let (status, _, body) = get(node.addr, "/v1/cluster");
        assert_eq!(status, 200);
        let text = String::from_utf8_lossy(&body).to_string();
        assert!(text.contains("\"enabled\": true"), "{text}");
        assert!(!text.contains("ejected"), "no peer may be ejected yet: {text}");
        assert_eq!(metric(node.addr, "gesmc_cluster_peers"), 3);
    }

    for node in nodes {
        node.kill();
    }
}

/// Fetch a kept trace fragment from one node, retrying briefly: a node
/// commits spans to its flight recorder when the local root drops, which on
/// the forwarder happens a beat after the response bytes hit the socket.
fn trace_fragment(addr: SocketAddr, trace_id: &str) -> serde_json::Value {
    let path = format!("/v1/debug/trace/{trace_id}");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, _, body) = get(addr, &path);
        if status == 200 {
            return serde_json::from_str(std::str::from_utf8(&body).expect("trace utf8"))
                .expect("trace json");
        }
        assert!(
            Instant::now() < deadline,
            "node {addr} never exposed trace {trace_id} (last status {status})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn a_misrouted_traced_request_yields_one_span_tree_across_both_processes() {
    let nodes = spawn_cluster("trace", 3);
    let endpoints: Vec<String> = nodes.iter().map(|n| n.endpoint.clone()).collect();
    let ring = HashRing::new(endpoints).expect("ring");

    // A spec nothing has warmed: the owner must actually compute, so the
    // engine-side phases (queue_wait / compute / supersteps) appear.
    let spec = SampleSpec::new("pld:m=120,seed=42").supersteps(10);
    let owner = ring.owner(spec.key().expect("key").ring_hash()).to_string();
    let wrong = nodes.iter().find(|n| n.endpoint != owner).expect("non-owner");
    let owner_node = nodes.iter().find(|n| n.endpoint == owner).expect("owner node");

    // Originate the trace ourselves, exactly as the client SDK does: the
    // sampled flag (…-01) forces every hop to keep its spans.
    let trace_id = format!(
        "{:032x}",
        0xe2e0_0000_0000_0000_0000_0000_0000_0000u128 | u128::from(std::process::id())
    );
    let origin_span_id = format!("{:016x}", 0x5eed_0000_0000_0001u64);
    let header = format!("{trace_id}-{origin_span_id}-01");

    let (status, headers, body) = try_http(
        wrong.addr,
        "GET",
        &sample_path(&spec),
        Some("application/octet-stream"),
        &[("X-Gesmc-Trace", &header)],
    )
    .expect("misrouted traced fetch");
    assert_eq!(status, 200);
    assert!(!body.is_empty());
    assert!(
        headers.contains_key("x-gesmc-forwarded-by"),
        "the misrouted request must be forwarded: {headers:?}"
    );
    assert_eq!(
        headers.get("x-gesmc-trace-id").map(String::as_str),
        Some(trace_id.as_str()),
        "the response must echo the originated trace id"
    );

    // Both processes must have kept their fragment of the SAME trace.  Join
    // the fragments on span ids: (id, parent, name, service) per span.
    let fragments =
        [trace_fragment(wrong.addr, &trace_id), trace_fragment(owner_node.addr, &trace_id)];
    let mut spans: Vec<(String, Option<String>, String, String)> = Vec::new();
    for fragment in &fragments {
        assert_eq!(
            fragment.get("trace_id").and_then(|id| id.as_str()),
            Some(trace_id.as_str()),
            "fragment carries a foreign trace id: {fragment:?}"
        );
        for span in fragment.get("spans").and_then(|s| s.as_array()).expect("spans array") {
            let field = |key: &str| span.get(key).and_then(|v| v.as_str()).map(str::to_string);
            spans.push((
                field("span_id").expect("span_id"),
                field("parent_id"),
                field("name").expect("name"),
                field("service").expect("service"),
            ));
        }
    }

    // Each process reported under its own service name, and the phases of
    // both sides of the hop are visible.
    let names_of = |service: &str| -> Vec<&str> {
        spans.iter().filter(|s| s.3 == service).map(|s| s.2.as_str()).collect()
    };
    let forwarder_names = names_of(&wrong.endpoint);
    let owner_names = names_of(&owner);
    for name in ["request", "forward", "queue_wait"] {
        assert!(forwarder_names.contains(&name), "forwarder lacks {name:?}: {forwarder_names:?}");
    }
    for name in ["request", "cache_probe", "compute", "supersteps", "queue_wait"] {
        assert!(owner_names.contains(&name), "owner lacks {name:?}: {owner_names:?}");
    }

    // The joined fragments form ONE tree hanging off the originated span:
    // every parent link resolves to another joined span, except the
    // forwarder's root, which points at the span id we minted.
    let ids: std::collections::HashSet<&str> = spans.iter().map(|s| s.0.as_str()).collect();
    assert_eq!(ids.len(), spans.len(), "span ids must be unique across processes");
    let mut roots = 0;
    for (id, parent, name, service) in &spans {
        let parent = parent
            .as_deref()
            .unwrap_or_else(|| panic!("span {name} ({id}) on {service} lost its parent link"));
        if parent == origin_span_id {
            roots += 1;
            assert_eq!(name, "request");
            assert_eq!(service, &wrong.endpoint, "only the forwarder continues the origin span");
        } else {
            assert!(
                ids.contains(parent),
                "span {name} ({id}) on {service} has dangling parent {parent}"
            );
        }
    }
    assert_eq!(roots, 1, "exactly one span may hang off the originated context");

    for node in nodes {
        node.kill();
    }
}

#[test]
fn killing_one_node_loses_no_requests_and_survivors_eject_it() {
    let nodes = spawn_cluster("failover", 3);
    let endpoints: Vec<String> = nodes.iter().map(|n| n.endpoint.clone()).collect();
    let specs = workload_specs();
    let reference = reference_bytes(&specs);
    let ring = HashRing::new(endpoints.clone()).expect("ring");

    // Fail over fast in the test: dead-node connects are refused instantly
    // on loopback, but keep the timeouts tight anyway.
    let client = Client::builder(endpoints.clone())
        .timeouts(Duration::from_millis(500), Duration::from_secs(30))
        .build()
        .expect("client");

    // Warm every key on its owner first.
    for spec in &specs {
        client.samples().get(spec).expect("warm fetch");
    }

    // Kill the owner of the first spec — guaranteed to own at least one key.
    let victim_endpoint = ring.owner(specs[0].key().expect("key").ring_hash()).to_string();
    let (mut victims, survivors): (Vec<ClusterNode>, Vec<ClusterNode>) =
        nodes.into_iter().partition(|n| n.endpoint == victim_endpoint);
    victims.pop().expect("victim").kill();

    // Three full passes over the whole workload.  Every request must
    // succeed: survivor-owned keys go straight to their live owner;
    // victim-owned keys fail over to the next node in ring order, which
    // recomputes (or re-serves) the identical bytes.
    let mut failures = 0;
    for _pass in 0..3 {
        for (spec, expected) in specs.iter().zip(&reference) {
            match client.samples().get(spec) {
                Ok(sample) => {
                    assert_eq!(&sample.bytes, expected, "failover diverged for {}", spec.graph);
                    assert_ne!(sample.endpoint, victim_endpoint, "dead node answered");
                }
                Err(e) => {
                    failures += 1;
                    eprintln!("lost request for {}: {e}", spec.graph);
                }
            }
        }
    }
    assert_eq!(failures, 0, "failover must lose zero requests");

    // Survivor-owned keys never even noticed: they still come back as cache
    // hits from their owner.
    for (spec, expected) in specs.iter().zip(&reference) {
        let key = spec.key().expect("key");
        if ring.owner(key.ring_hash()) == victim_endpoint {
            continue;
        }
        let sample = client.samples().get(spec).expect("survivor-owned fetch");
        assert_eq!(sample.cache, "hit");
        assert_eq!(&sample.bytes, expected);
    }

    // The survivor that keeps fielding victim-owned keys has tried to
    // forward to the dead owner, fallen back to local compute, and — after
    // enough consecutive failures — ejected the peer.  Hammer one
    // victim-owned key a few more times to push it over the threshold, then
    // check the counters and the status document.
    let victim_spec = specs
        .iter()
        .find(|spec| ring.owner(spec.key().expect("key").ring_hash()) == victim_endpoint)
        .expect("victim owns at least one key");
    for _ in 0..4 {
        client.samples().get(victim_spec).expect("hammer fetch");
    }
    let fallback_survivor = survivors
        .iter()
        .find(|survivor| metric(survivor.addr, "gesmc_cluster_forward_fallbacks_total") > 0)
        .expect("some survivor must have fallen back from the dead owner");
    let (status, _, body) = get(fallback_survivor.addr, "/v1/cluster");
    assert_eq!(status, 200);
    let text = String::from_utf8_lossy(&body).to_string();
    assert!(
        text.contains("ejected"),
        "the dead peer must be ejected on {}: {text}",
        fallback_survivor.endpoint
    );
    let healthy_gauge = format!("gesmc_cluster_peer_healthy{{peer=\"{victim_endpoint}\"}}");
    assert_eq!(metric(fallback_survivor.addr, &healthy_gauge), 0, "dead peer must read unhealthy");

    // The client noticed too: its pool health marks the dead endpoint.
    assert!(
        client.health().iter().any(|(endpoint, status)| {
            endpoint == &victim_endpoint && matches!(status, PeerStatus::Ejected { .. })
        }),
        "client pool must eject the dead endpoint: {:?}",
        client.health()
    );

    for node in survivors {
        node.kill();
    }
}
