//! The study driver: fan the sweep out over the engine's worker pool.
//!
//! [`run_study`] enumerates the sweep cells of a [`StudySpec`], skips cells
//! already completed by an earlier run (cell-level resume), submits the rest
//! as engine jobs — each with a [`MetricsSink`] at thinning interval 1 — and
//! aggregates the per-cell metrics into a [`StudyReport`] written under the
//! study's output directory.
//!
//! ## Determinism
//!
//! Every cell's chain seed is derived from the study seed and the cell index
//! and recorded in the report, so re-running the same spec at the same scale
//! produces a bit-identical `{name}.json` / `{name}.csv` (timings live in a
//! separate side-car file).  The exact parallel chains are deterministic for
//! any thread budget; the inexact `naive-par-es` baseline is *not*, so the
//! runner pins its cells to a single thread regardless of the configured
//! per-job budget.
//!
//! ## Resume
//!
//! After the pool drains, every completed cell is written to
//! `{output_dir}/{name}.cells/cell-*.json` (atomically, via a sibling temp
//! file).  A later run with [`StudyOptions::resume`] reloads any cell file
//! whose identity — job name, seed, superstep count and thinning set — still
//! matches the spec, and only runs the remainder.  Resume granularity is one
//! cell: an interrupted cell re-runs from scratch, because the streaming
//! accumulator's state is not part of the engine's chain checkpoint.

use crate::error::StudyError;
use crate::report::{CellReport, StudyReport};
use crate::sink::{CellOutcome, MetricsSink};
use crate::spec::{CellSpec, StudyScale, StudySpec};
use gesmc_core::spec::PARAM_LOOP_PROBABILITY;
use gesmc_engine::{default_registry, GraphSource, JobQueue, JobSpec, QueuedJob, WorkerPool};
use gesmc_graph::EdgeListGraph;
use serde_json::{Map, Value};
use std::path::{Path, PathBuf};

/// Run-time options of `gesmc study` (everything the spec does not pin).
#[derive(Debug, Clone, Default)]
pub struct StudyOptions {
    /// Workload scale (default smoke).
    pub scale: StudyScale,
    /// Override of the spec's worker count.
    pub workers: Option<usize>,
    /// Override of the spec's per-job thread budget.
    pub threads_per_job: Option<usize>,
    /// Override of the spec's output directory.
    pub output_dir: Option<PathBuf>,
    /// Reuse completed-cell files from an earlier (interrupted) run.
    pub resume: bool,
}

/// The outcome of a study run.
#[derive(Debug)]
pub struct StudyRun {
    /// The aggregated report (already written to disk).
    pub report: StudyReport,
    /// Path of the main JSON report file.
    pub json_path: PathBuf,
    /// How many cells were reloaded from an earlier run instead of re-run.
    pub resumed_cells: usize,
}

/// File name of a cell's resume file.
fn cell_file_name(cell: &CellSpec) -> String {
    format!("cell-{:03}-{}.json", cell.index, cell.job_name)
}

/// The identity of one cell's inputs: everything that, if changed in the
/// spec, must invalidate a cached cell file.  Seeds and superstep counts are
/// carried by the cell report itself; this object covers the rest (the graph
/// definition and the chain parameters).
fn cell_identity(spec: &StudySpec, cell_spec: &CellSpec) -> Value {
    let mut map = Map::new();
    map.insert("family".into(), Value::String(cell_spec.graph.family.clone()));
    map.insert("nodes".into(), Value::Number(cell_spec.graph.nodes as f64));
    map.insert("edge_budget".into(), Value::Number(cell_spec.graph.edges as f64));
    map.insert("gamma".into(), Value::Number(cell_spec.graph.gamma));
    map.insert("loop_probability".into(), Value::Number(spec.loop_probability));
    Value::Object(map)
}

/// Wrap a cell report in the envelope that identifies the run it belongs to.
fn cell_envelope(
    spec: &StudySpec,
    scale: StudyScale,
    cell_spec: &CellSpec,
    cell: &CellReport,
) -> Value {
    let mut map = Map::new();
    map.insert("study".into(), Value::String(spec.name.clone()));
    map.insert("scale".into(), Value::String(scale.name().to_string()));
    map.insert("supersteps".into(), Value::Number(spec.supersteps_at(scale) as f64));
    map.insert(
        "thinnings".into(),
        Value::Array(spec.thinnings.iter().map(|&k| Value::Number(k as f64)).collect()),
    );
    map.insert("identity".into(), cell_identity(spec, cell_spec));
    map.insert("cell".into(), cell.to_value());
    Value::Object(map)
}

/// Atomically write a completed cell's resume file.
fn write_cell_file(
    dir: &Path,
    spec: &StudySpec,
    scale: StudyScale,
    cell_spec: &CellSpec,
    cell: &CellReport,
) -> Result<(), StudyError> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(cell_file_name(cell_spec));
    let tmp = path.with_extension("json.tmp");
    let text = serde_json::to_string_pretty(&cell_envelope(spec, scale, cell_spec, cell))
        .expect("value serialisation cannot fail");
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, &path)?;
    Ok(())
}

/// Try to reload a completed cell from an earlier run.  Returns `None` (not
/// an error) when the file is missing, unreadable, or belongs to a different
/// spec/scale — those cells simply re-run.
fn load_cell_file(
    dir: &Path,
    spec: &StudySpec,
    scale: StudyScale,
    cell: &CellSpec,
) -> Option<CellReport> {
    let text = std::fs::read_to_string(dir.join(cell_file_name(cell))).ok()?;
    let root = serde_json::from_str(&text).ok()?;
    if root.get("study").and_then(Value::as_str) != Some(spec.name.as_str())
        || root.get("scale").and_then(Value::as_str) != Some(scale.name())
        || root.get("supersteps").and_then(Value::as_u64) != Some(spec.supersteps_at(scale))
    {
        return None;
    }
    let thinnings: Vec<usize> = root
        .get("thinnings")?
        .as_array()?
        .iter()
        .map(|v| v.as_u64().map(|k| k as usize))
        .collect::<Option<Vec<_>>>()?;
    if thinnings != spec.thinnings {
        return None;
    }
    // The graph definition and chain parameters must be unchanged — seeds
    // alone do not cover e.g. an edited gamma or edge budget under the same
    // label.
    if root.get("identity")? != &cell_identity(spec, cell) {
        return None;
    }
    let report = CellReport::from_value(root.get("cell")?).ok()?;
    // The cell identity must match the spec-derived cell exactly.
    if report.job != cell.job_name
        || report.seed != cell.seed
        || report.graph_seed != cell.graph_seed
        || report.supersteps != cell.supersteps
    {
        return None;
    }
    Some(report)
}

/// Generate the input graph of one cell (shared by every chain sweeping the
/// same graph index — see [`CellSpec::graph_seed`]).
fn generate_cell_graph(cell: &CellSpec) -> Result<EdgeListGraph, StudyError> {
    let source = GraphSource::Generated {
        family: cell.graph.family.clone(),
        nodes: cell.graph.nodes,
        edges: cell.graph.edges,
        gamma: cell.graph.gamma,
        seed: cell.graph_seed,
    };
    Ok(source.load()?)
}

/// Build the engine job of one cell around its (pre-generated) input graph,
/// returning the queued job, the outcome handle, and the graph's actual
/// dimensions.
fn build_cell_job(
    spec: &StudySpec,
    cell: &CellSpec,
    threads: Option<usize>,
    graph: EdgeListGraph,
) -> (QueuedJob, CellOutcome, usize, usize) {
    let (nodes, edges) = (graph.num_nodes(), graph.num_edges());
    let sink = MetricsSink::new(&graph, &spec.thinnings, spec.effective_proxy_stride());
    let outcome = sink.outcome();
    // Inexact parallel chains (naive-par-es) interleave racily across
    // threads; the registry's capability flags identify them, and the runner
    // pins their cells to one thread so study reports stay reproducible.
    let racy = default_registry()
        .get(&cell.algorithm.name)
        .is_some_and(|info| info.parallel && !info.exact);
    let threads = if racy { Some(1) } else { threads };
    let mut job =
        JobSpec::new(&cell.job_name, GraphSource::InMemory(graph), cell.algorithm.clone())
            .supersteps(cell.supersteps)
            .thinning(1)
            .seed(cell.seed);
    // The study-level P_L is a default: a per-chain `pl` parameter wins.
    if cell.algorithm.param(PARAM_LOOP_PROBABILITY).is_none() {
        job = job.loop_probability(spec.loop_probability);
    }
    job.threads = threads;
    (QueuedJob::new(job, Box::new(sink)), outcome, nodes, edges)
}

/// Run a study end-to-end: sweep, measure, aggregate, write.
///
/// On a per-cell job failure, the successful cells of this run are still
/// written to the resume directory before the error is returned, so a
/// follow-up run with [`StudyOptions::resume`] picks up where this one left
/// off.
pub fn run_study(spec: &StudySpec, opts: &StudyOptions) -> Result<StudyRun, StudyError> {
    let scale = opts.scale;
    let cells = spec.cells(scale);
    let output_dir = opts.output_dir.clone().unwrap_or_else(|| spec.output_dir.clone());
    let cells_dir = output_dir.join(format!("{}.cells", spec.name));
    std::fs::create_dir_all(&output_dir)?;

    let mut completed: Vec<Option<CellReport>> = vec![None; cells.len()];
    let mut resumed_cells = 0usize;
    if opts.resume {
        for cell in &cells {
            if let Some(report) = load_cell_file(&cells_dir, spec, scale, cell) {
                completed[cell.index] = Some(report);
                resumed_cells += 1;
            }
        }
    }

    let threads = opts.threads_per_job.or(spec.threads_per_job);
    let mut queue = JobQueue::new();
    let mut pending: Vec<(usize, CellOutcome, usize, usize)> = Vec::new();
    // Cells sweeping the same graph index share the identical input
    // (same family + graph_seed), so generate each distinct graph once and
    // clone it into the cells that still need to run.
    let mut graph_cache: Vec<Option<EdgeListGraph>> = vec![None; spec.graphs.len()];
    for cell in &cells {
        if completed[cell.index].is_some() {
            continue;
        }
        let graph_index = cell.index % spec.graphs.len();
        if graph_cache[graph_index].is_none() {
            graph_cache[graph_index] = Some(generate_cell_graph(cell)?);
        }
        let graph = graph_cache[graph_index].clone().expect("cache entry just filled");
        let (job, outcome, nodes, edges) = build_cell_job(spec, cell, threads, graph);
        queue.push(job);
        pending.push((cell.index, outcome, nodes, edges));
    }
    drop(graph_cache);

    let workers = opts.workers.unwrap_or(spec.workers);
    let outcomes =
        if pending.is_empty() { Vec::new() } else { WorkerPool::new(workers).run(queue) };

    let mut first_error = None;
    for (outcome, (cell_index, handle, nodes, edges)) in outcomes.into_iter().zip(pending) {
        let cell = &cells[cell_index];
        match outcome.result {
            Ok(_) => {
                let metrics = handle
                    .lock()
                    .map_err(|_| StudyError::Report("cell outcome mutex poisoned".into()))?
                    .take()
                    .ok_or_else(|| {
                        StudyError::Report(format!(
                            "cell {:?} finished without publishing metrics",
                            cell.job_name
                        ))
                    })?;
                let report = CellReport {
                    job: cell.job_name.clone(),
                    chain: cell.algorithm.to_string(),
                    family: cell.graph.family.clone(),
                    label: cell.graph.label.clone(),
                    nodes,
                    edges,
                    gamma: cell.graph.gamma,
                    seed: cell.seed,
                    graph_seed: cell.graph_seed,
                    supersteps: cell.supersteps,
                    points: metrics.thinnings.iter().copied().zip(metrics.fractions).collect(),
                    proxy_supersteps: metrics.proxy_supersteps,
                    triangles: metrics.proxies.triangles,
                    clustering: metrics.proxies.clustering,
                    assortativity: metrics.proxies.assortativity,
                    wall_clock_secs: Some(metrics.wall_clock.as_secs_f64()),
                };
                write_cell_file(&cells_dir, spec, scale, cell, &report)?;
                completed[cell_index] = Some(report);
            }
            Err(e) => {
                first_error.get_or_insert(StudyError::Engine(e));
            }
        }
    }
    if let Some(e) = first_error {
        return Err(e);
    }

    let report = StudyReport {
        study: spec.name.clone(),
        scale: scale.name().to_string(),
        seed: spec.seed,
        supersteps: spec.supersteps_at(scale),
        thinnings: spec.thinnings.clone(),
        cells: completed
            .into_iter()
            .map(|c| c.expect("all cells completed without error"))
            .collect(),
    };
    let json_path = report.write(&output_dir)?;
    Ok(StudyRun { report, json_path, resumed_cells })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(dir: &Path) -> StudySpec {
        let mut spec = StudySpec::parse(
            r#"{
                "name": "runner_unit",
                "chains": ["seq-es", "seq-global-es"],
                "graphs": [{ "family": "gnp", "nodes": 50, "edges": 150 }],
                "thinnings": [1, 2, 4],
                "supersteps": 8,
                "seed": 3,
                "workers": 2
            }"#,
        )
        .unwrap();
        spec.output_dir = dir.to_path_buf();
        spec
    }

    #[test]
    fn runs_every_cell_and_reports_deterministically() {
        let dir = std::env::temp_dir().join("gesmc-study-runner-test");
        let _ = std::fs::remove_dir_all(&dir);
        let spec = tiny_spec(&dir);
        let opts = StudyOptions::default();

        let run = run_study(&spec, &opts).unwrap();
        assert_eq!(run.report.cells.len(), 2);
        assert_eq!(run.resumed_cells, 0);
        assert!(run.json_path.exists());
        for cell in &run.report.cells {
            assert_eq!(cell.points.len(), 3);
            assert!(cell.points.iter().all(|&(_, f)| (0.0..=1.0).contains(&f)));
            assert!(cell.wall_clock_secs.is_some_and(|s| s > 0.0));
            assert_eq!(cell.nodes, 50);
        }
        // Chain seeds differ per cell; both cells share the one input graph.
        assert_ne!(run.report.cells[0].seed, run.report.cells[1].seed);
        assert_eq!(run.report.cells[0].graph_seed, run.report.cells[1].graph_seed);
        assert_eq!(run.report.cells[0].edges, run.report.cells[1].edges);

        // Bit-identical on re-run (fresh directory, no resume).
        let first = std::fs::read_to_string(&run.json_path).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        let rerun = run_study(&spec, &opts).unwrap();
        let second = std::fs::read_to_string(&rerun.json_path).unwrap();
        assert_eq!(first, second);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_reuses_completed_cells() {
        let dir = std::env::temp_dir().join("gesmc-study-resume-test");
        let _ = std::fs::remove_dir_all(&dir);
        let spec = tiny_spec(&dir);

        let first = run_study(&spec, &StudyOptions::default()).unwrap();
        let resumed =
            run_study(&spec, &StudyOptions { resume: true, ..Default::default() }).unwrap();
        assert_eq!(resumed.resumed_cells, 2, "both cells must be reloaded");
        assert_eq!(first.report.to_json_string(), resumed.report.to_json_string());

        // A changed seed invalidates the cached cells.
        let mut reseeded = spec.clone();
        reseeded.seed = 99;
        let fresh =
            run_study(&reseeded, &StudyOptions { resume: true, ..Default::default() }).unwrap();
        assert_eq!(fresh.resumed_cells, 0, "stale cells must not be reused");

        // So does a changed chain/graph parameter that leaves the job names
        // and seeds untouched (here: P_L).
        let mut retuned = spec.clone();
        retuned.loop_probability = 0.25;
        let fresh =
            run_study(&retuned, &StudyOptions { resume: true, ..Default::default() }).unwrap();
        assert_eq!(fresh.resumed_cells, 0, "a changed P_L must not reuse cached cells");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failing_cell_surfaces_the_engine_error() {
        let dir = std::env::temp_dir().join("gesmc-study-fail-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut spec = tiny_spec(&dir);
        spec.graphs[0].family = "unknown-family".into();
        match run_study(&spec, &StudyOptions::default()) {
            Err(StudyError::Engine(_)) => {}
            other => panic!("expected engine error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
