//! Machine-readable study reports: the data behind the paper's Figs. 2-3.
//!
//! A [`StudyReport`] aggregates one [`CellReport`] per sweep cell and is
//! written in three files under the study's output directory:
//!
//! * `{name}.json` — the full report: per cell the non-independent-edge
//!   fraction per thinning value, the scalar proxy traces, the actual graph
//!   dimensions and the exact seed.  **Deterministic**: re-running the same
//!   spec at the same scale produces a bit-identical file.
//! * `{name}.csv` — the flat `(chain, graph, thinning) → fraction` table,
//!   one row per point of Figs. 2-3.  Also deterministic.
//! * `{name}.timing.json` — wall-clock seconds per cell.  Kept out of the
//!   main report precisely because timings are *not* reproducible.
//!
//! Reports parse back via [`StudyReport::parse`] — that path powers both the
//! CI smoke assertion ("the report covers every sweep cell") and cell-level
//! resume (completed cells are reloaded instead of recomputed).

use crate::error::StudyError;
use serde_json::{Map, Value};
use std::path::{Path, PathBuf};

/// The measured results of one sweep cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Job name (`{chain}-{graph label}`).
    pub job: String,
    /// Chain CLI name (`seq-es`, `par-global-es`, …).
    pub chain: String,
    /// Generator family of the input graph.
    pub family: String,
    /// Graph label from the spec.
    pub label: String,
    /// Actual number of nodes of the generated graph.
    pub nodes: usize,
    /// Actual number of edges of the generated graph.
    pub edges: usize,
    /// Power-law exponent used by the generator (2.5 default elsewhere).
    pub gamma: f64,
    /// The exact seed of this cell's chain (re-run the cell with it).
    pub seed: u64,
    /// The exact seed of the cell's graph generator (shared by every chain
    /// sweeping the same graph).
    pub graph_seed: u64,
    /// Supersteps the chain ran.
    pub supersteps: u64,
    /// `(thinning value, fraction of non-independent edges)` pairs, sorted by
    /// thinning value.
    pub points: Vec<(usize, f64)>,
    /// Supersteps at which the scalar proxies were recorded.
    pub proxy_supersteps: Vec<u64>,
    /// Triangle count at each recorded superstep.
    pub triangles: Vec<u64>,
    /// Global clustering coefficient at each recorded superstep.
    pub clustering: Vec<f64>,
    /// Degree assortativity at each recorded superstep (`None` = undefined).
    pub assortativity: Vec<Option<f64>>,
    /// Wall-clock seconds of the cell's job; `None` for cells reloaded from
    /// a resume file (they were not timed by this run).  Excluded from the
    /// deterministic JSON; serialised (as a number or `null`) only into
    /// `{name}.timing.json`.
    pub wall_clock_secs: Option<f64>,
}

fn num(v: f64) -> Value {
    Value::Number(v)
}

fn uint(v: u64) -> Value {
    Value::Number(v as f64)
}

impl CellReport {
    /// The deterministic JSON object of the cell (no wall-clock).
    pub fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("job".into(), Value::String(self.job.clone()));
        map.insert("chain".into(), Value::String(self.chain.clone()));
        map.insert("family".into(), Value::String(self.family.clone()));
        map.insert("label".into(), Value::String(self.label.clone()));
        map.insert("nodes".into(), uint(self.nodes as u64));
        map.insert("edges".into(), uint(self.edges as u64));
        map.insert("gamma".into(), num(self.gamma));
        map.insert("seed".into(), uint(self.seed));
        map.insert("graph_seed".into(), uint(self.graph_seed));
        map.insert("supersteps".into(), uint(self.supersteps));
        let points = self
            .points
            .iter()
            .map(|&(k, frac)| {
                let mut point = Map::new();
                point.insert("thinning".into(), uint(k as u64));
                point.insert("non_independent_fraction".into(), num(frac));
                Value::Object(point)
            })
            .collect();
        map.insert("points".into(), Value::Array(points));
        let mut proxies = Map::new();
        proxies.insert(
            "supersteps".into(),
            Value::Array(self.proxy_supersteps.iter().map(|&s| uint(s)).collect()),
        );
        proxies.insert(
            "triangles".into(),
            Value::Array(self.triangles.iter().map(|&t| uint(t)).collect()),
        );
        proxies.insert(
            "clustering".into(),
            Value::Array(self.clustering.iter().map(|&c| num(c)).collect()),
        );
        proxies.insert(
            "assortativity".into(),
            Value::Array(self.assortativity.iter().map(|a| a.map_or(Value::Null, num)).collect()),
        );
        map.insert("proxies".into(), Value::Object(proxies));
        Value::Object(map)
    }

    /// Parse a cell object back (inverse of [`CellReport::to_value`]; the
    /// wall-clock comes back as `None` — the parsed cell was not timed by
    /// this process).
    pub fn from_value(value: &Value) -> Result<Self, StudyError> {
        let bad = |what: &str| StudyError::Report(format!("cell: missing or invalid {what:?}"));
        let str_field = |key: &str| {
            value.get(key).and_then(Value::as_str).map(str::to_string).ok_or_else(|| bad(key))
        };
        let u64_field = |key: &str| value.get(key).and_then(Value::as_u64).ok_or_else(|| bad(key));
        let points = value
            .get("points")
            .and_then(Value::as_array)
            .ok_or_else(|| bad("points"))?
            .iter()
            .map(|p| {
                let k = p.get("thinning").and_then(Value::as_u64).ok_or_else(|| bad("thinning"))?;
                let frac = p
                    .get("non_independent_fraction")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| bad("non_independent_fraction"))?;
                Ok((k as usize, frac))
            })
            .collect::<Result<Vec<_>, StudyError>>()?;
        let proxies = value.get("proxies").ok_or_else(|| bad("proxies"))?;
        let proxy_array =
            |key: &str| proxies.get(key).and_then(Value::as_array).ok_or_else(|| bad(key)).cloned();
        let proxy_supersteps = proxy_array("supersteps")?
            .iter()
            .map(|v| v.as_u64().ok_or_else(|| bad("proxies.supersteps")))
            .collect::<Result<Vec<_>, _>>()?;
        let triangles = proxy_array("triangles")?
            .iter()
            .map(|v| v.as_u64().ok_or_else(|| bad("proxies.triangles")))
            .collect::<Result<Vec<_>, _>>()?;
        let clustering = proxy_array("clustering")?
            .iter()
            .map(|v| v.as_f64().ok_or_else(|| bad("proxies.clustering")))
            .collect::<Result<Vec<_>, _>>()?;
        let assortativity = proxy_array("assortativity")?
            .iter()
            .map(|v| {
                if v.is_null() {
                    Ok(None)
                } else {
                    v.as_f64().map(Some).ok_or_else(|| bad("proxies.assortativity"))
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            job: str_field("job")?,
            chain: str_field("chain")?,
            family: str_field("family")?,
            label: str_field("label")?,
            nodes: u64_field("nodes")? as usize,
            edges: u64_field("edges")? as usize,
            gamma: value.get("gamma").and_then(Value::as_f64).ok_or_else(|| bad("gamma"))?,
            seed: u64_field("seed")?,
            graph_seed: u64_field("graph_seed")?,
            supersteps: u64_field("supersteps")?,
            points,
            proxy_supersteps,
            triangles,
            clustering,
            assortativity,
            wall_clock_secs: None,
        })
    }
}

/// The aggregated results of a whole study run.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyReport {
    /// Study name from the spec.
    pub study: String,
    /// Scale the run used (`smoke` / `paper`).
    pub scale: String,
    /// Root seed of the spec (cell seeds derive from it by index).
    pub seed: u64,
    /// Supersteps per cell at the run's scale.
    pub supersteps: u64,
    /// The thinning values evaluated in every cell.
    pub thinnings: Vec<usize>,
    /// One entry per sweep cell, in chain-major sweep order.
    pub cells: Vec<CellReport>,
}

impl StudyReport {
    /// The deterministic JSON document (no timings).
    pub fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("study".into(), Value::String(self.study.clone()));
        map.insert("scale".into(), Value::String(self.scale.clone()));
        map.insert("seed".into(), uint(self.seed));
        map.insert("supersteps".into(), uint(self.supersteps));
        map.insert(
            "thinnings".into(),
            Value::Array(self.thinnings.iter().map(|&k| uint(k as u64)).collect()),
        );
        map.insert(
            "cells".into(),
            Value::Array(self.cells.iter().map(CellReport::to_value).collect()),
        );
        Value::Object(map)
    }

    /// The deterministic JSON text of the report.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("value serialisation cannot fail")
    }

    /// Parse a report back from its JSON text.
    pub fn parse(text: &str) -> Result<Self, StudyError> {
        let root = serde_json::from_str(text)
            .map_err(|e| StudyError::Report(format!("invalid JSON: {e}")))?;
        let bad = |what: &str| StudyError::Report(format!("missing or invalid {what:?}"));
        let cells = root
            .get("cells")
            .and_then(Value::as_array)
            .ok_or_else(|| bad("cells"))?
            .iter()
            .map(CellReport::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let thinnings = root
            .get("thinnings")
            .and_then(Value::as_array)
            .ok_or_else(|| bad("thinnings"))?
            .iter()
            .map(|v| v.as_u64().map(|k| k as usize).ok_or_else(|| bad("thinnings")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            study: root
                .get("study")
                .and_then(Value::as_str)
                .ok_or_else(|| bad("study"))?
                .to_string(),
            scale: root
                .get("scale")
                .and_then(Value::as_str)
                .ok_or_else(|| bad("scale"))?
                .to_string(),
            seed: root.get("seed").and_then(Value::as_u64).ok_or_else(|| bad("seed"))?,
            supersteps: root
                .get("supersteps")
                .and_then(Value::as_u64)
                .ok_or_else(|| bad("supersteps"))?,
            thinnings,
            cells,
        })
    }

    /// The flat CSV table: one `(chain, graph, thinning)` row per point.
    pub fn to_csv_string(&self) -> String {
        let mut out = String::from(
            "chain,family,label,nodes,edges,seed,supersteps,thinning,non_independent_fraction\n",
        );
        for cell in &self.cells {
            for &(k, frac) in &cell.points {
                out.push_str(&format!(
                    "{},{},{},{},{},{},{},{k},{frac}\n",
                    cell.chain,
                    cell.family,
                    cell.label,
                    cell.nodes,
                    cell.edges,
                    cell.seed,
                    cell.supersteps,
                ));
            }
        }
        out
    }

    /// The (non-deterministic) timing side-car document.
    pub fn timing_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("study".into(), Value::String(self.study.clone()));
        let cells = self
            .cells
            .iter()
            .map(|cell| {
                let mut entry = Map::new();
                entry.insert("job".into(), Value::String(cell.job.clone()));
                entry.insert(
                    "wall_clock_secs".into(),
                    cell.wall_clock_secs.map_or(Value::Null, num),
                );
                Value::Object(entry)
            })
            .collect();
        map.insert("cells".into(), Value::Array(cells));
        Value::Object(map)
    }

    /// Write `{study}.json`, `{study}.csv` and `{study}.timing.json` into
    /// `dir`, returning the path of the main JSON report.
    pub fn write(&self, dir: impl AsRef<Path>) -> Result<PathBuf, StudyError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let json_path = dir.join(format!("{}.json", self.study));
        std::fs::write(&json_path, self.to_json_string())?;
        std::fs::write(dir.join(format!("{}.csv", self.study)), self.to_csv_string())?;
        let timing = serde_json::to_string_pretty(&self.timing_value())
            .expect("value serialisation cannot fail");
        std::fs::write(dir.join(format!("{}.timing.json", self.study)), timing)?;
        Ok(json_path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cell() -> CellReport {
        CellReport {
            job: "seq-es-pld-m300".into(),
            chain: "seq-es".into(),
            family: "pld".into(),
            label: "pld-m300".into(),
            nodes: 100,
            edges: 297,
            gamma: 2.5,
            seed: 5,
            graph_seed: 11,
            supersteps: 16,
            points: vec![(1, 0.875), (2, 0.5), (8, 0.125)],
            proxy_supersteps: vec![8, 16],
            triangles: vec![12, 9],
            clustering: vec![0.25, 0.125],
            assortativity: vec![Some(-0.125), None],
            wall_clock_secs: Some(0.25),
        }
    }

    fn sample_report() -> StudyReport {
        StudyReport {
            study: "unit".into(),
            scale: "smoke".into(),
            seed: 5,
            supersteps: 16,
            thinnings: vec![1, 2, 8],
            cells: vec![sample_cell()],
        }
    }

    #[test]
    fn json_roundtrip_preserves_everything_but_timing() {
        let report = sample_report();
        let text = report.to_json_string();
        let parsed = StudyReport::parse(&text).unwrap();
        let mut expected = report.clone();
        expected.cells[0].wall_clock_secs = None;
        assert_eq!(parsed, expected);
        // The wall clock must not leak into the deterministic document.
        assert!(!text.contains("wall_clock"));
    }

    #[test]
    fn serialisation_is_deterministic() {
        assert_eq!(sample_report().to_json_string(), sample_report().to_json_string());
    }

    #[test]
    fn csv_has_one_row_per_point() {
        let csv = sample_report().to_csv_string();
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 4, "header + 3 thinning points");
        assert!(lines[0].starts_with("chain,family,label"));
        assert!(lines[1].ends_with("16,1,0.875"));
        assert!(lines[3].ends_with("16,8,0.125"));
    }

    #[test]
    fn timing_sidecar_carries_the_wall_clock() {
        let timing = sample_report().timing_value();
        let cells = timing.get("cells").and_then(Value::as_array).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].get("wall_clock_secs").and_then(Value::as_f64), Some(0.25));
    }

    #[test]
    fn write_emits_all_three_files() {
        let dir = std::env::temp_dir().join("gesmc-study-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = sample_report().write(&dir).unwrap();
        assert!(path.ends_with("unit.json"));
        for file in ["unit.json", "unit.csv", "unit.timing.json"] {
            assert!(dir.join(file).exists(), "{file} missing");
        }
        let reparsed = StudyReport::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(reparsed.cells.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_reports_are_rejected() {
        assert!(matches!(StudyReport::parse("nope"), Err(StudyError::Report(_))));
        assert!(matches!(StudyReport::parse("{}"), Err(StudyError::Report(_))));
        assert!(matches!(
            StudyReport::parse(
                r#"{"study": "x", "scale": "smoke", "seed": 1,
                "supersteps": 4, "thinnings": [1], "cells": [{}]}"#
            ),
            Err(StudyError::Report(_))
        ));
    }
}
