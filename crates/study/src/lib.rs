//! End-to-end mixing-time experiments: the path from a study spec to the
//! data behind the paper's Figs. 2-3.
//!
//! The crates below this one each solve a piece of the puzzle — `gesmc-core`
//! runs a chain, `gesmc-engine` batches jobs, `gesmc-analysis` decides
//! per-edge independence — but none of them turns *a manifest into figure
//! data*.  This crate is that layer:
//!
//! * a [`StudySpec`] (JSON) describes a sweep {chain} × {graph family/size}
//!   with a shared thinning set and seed;
//! * [`run_study`] fans the sweep cells out over the engine's
//!   [`WorkerPool`](gesmc_engine::WorkerPool), one job per cell;
//! * every cell streams each superstep's graph into a [`MetricsSink`] — a
//!   [`SampleSink`](gesmc_engine::SampleSink) that folds the sample into the
//!   [`ThinnedAutocorrelation`](gesmc_analysis::ThinnedAutocorrelation)
//!   accumulator on the fly instead of materialising thinned graphs;
//! * the per-cell results aggregate into a [`StudyReport`] written as
//!   deterministic JSON + CSV (plus a non-deterministic timing side-car)
//!   under `results/`, carrying the fraction of non-independent edges per
//!   thinning value, scalar proxy traces, and the exact seeds for re-runs.
//!
//! On the command line this is `gesmc study studies/fig2_smoke.json`; the
//! pieces compose individually for library use:
//!
//! ```
//! use gesmc_study::{run_study, StudyOptions, StudySpec};
//!
//! let spec = StudySpec::parse(r#"{
//!     "name": "doc_demo",
//!     "chains": ["seq-es", "seq-global-es"],
//!     "graphs": [{ "family": "gnp", "nodes": 40, "edges": 120 }],
//!     "thinnings": [1, 2, 4],
//!     "supersteps": 8,
//!     "seed": 1,
//!     "output_dir": "results"
//! }"#).unwrap();
//! let dir = std::env::temp_dir().join("gesmc-study-doc");
//! let opts = StudyOptions { output_dir: Some(dir.clone()), ..Default::default() };
//! let run = run_study(&spec, &opts).unwrap();
//! assert_eq!(run.report.cells.len(), 2, "one report cell per sweep cell");
//! assert_eq!(run.report.cells[0].points.len(), 3, "one point per thinning");
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod report;
pub mod runner;
pub mod sink;
pub mod spec;

pub use error::StudyError;
pub use report::{CellReport, StudyReport};
pub use runner::{run_study, StudyOptions, StudyRun};
pub use sink::{CellMetrics, CellOutcome, MetricsSink};
pub use spec::{
    derive_seed, CellSpec, GraphSpec, PaperOverrides, StudyScale, StudySpec, XlOverrides,
};
