//! The streaming metrics sink: mixing metrics computed on the fly.
//!
//! `gesmc batch` materialises every thinned sample (edge-list files); for a
//! mixing-time study over many thinning values that would be wasteful — the
//! paper's analysis only needs, per tracked edge and per thinning value, the
//! 2×2 transition counts of the edge's presence series.  [`MetricsSink`]
//! therefore implements the engine's [`SampleSink`] interface and folds every
//! superstep's graph directly into a [`ThinnedAutocorrelation`] accumulator
//! (plus a sparse [`ProxyTrace`] of scalar convergence proxies), so a study
//! cell's memory footprint stays `Θ(m · |thinnings|)` no matter how many
//! supersteps it runs.
//!
//! The sink is moved into its job; results come back through the shared
//! [`CellOutcome`] handle, which [`SampleSink::finish`] fills once the job's
//! last superstep completed.

use gesmc_analysis::{EdgeTracker, ProxyTrace, ThinnedAutocorrelation};
use gesmc_engine::{EngineError, JobReport, SampleContext, SampleSink};
use gesmc_graph::EdgeListGraph;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The measurements of one finished study cell.
#[derive(Debug, Clone)]
pub struct CellMetrics {
    /// The thinning values, in the accumulator's (sorted) order.
    pub thinnings: Vec<usize>,
    /// Fraction of non-independent tracked edges per thinning value.
    pub fractions: Vec<f64>,
    /// Number of supersteps observed.
    pub observations: u64,
    /// Supersteps at which the scalar proxies were recorded.
    pub proxy_supersteps: Vec<u64>,
    /// The scalar proxy traces (triangles, clustering, assortativity).
    pub proxies: ProxyTrace,
    /// Wall-clock duration of the cell's job.
    pub wall_clock: Duration,
}

/// Shared handle through which a [`MetricsSink`] returns its [`CellMetrics`].
///
/// `None` until the job's [`SampleSink::finish`] ran.
pub type CellOutcome = Arc<Mutex<Option<CellMetrics>>>;

/// A [`SampleSink`] that computes mixing metrics instead of storing samples.
///
/// Attach it to a job with **thinning interval 1** so it observes the graph
/// after *every* superstep; the accumulator sub-samples each configured
/// thinning value internally (Sec. 6.1 of the paper).
pub struct MetricsSink {
    tracker: EdgeTracker,
    acc: ThinnedAutocorrelation,
    proxy_stride: u64,
    proxy_supersteps: Vec<u64>,
    proxies: ProxyTrace,
    outcome: CellOutcome,
}

impl MetricsSink {
    /// Create a sink tracking the edges of `initial_graph` over `thinnings`,
    /// recording scalar proxies every `proxy_stride` supersteps (`0` disables
    /// the proxy trace).
    pub fn new(initial_graph: &EdgeListGraph, thinnings: &[usize], proxy_stride: u64) -> Self {
        let tracker = EdgeTracker::initial_edges(initial_graph);
        let acc = ThinnedAutocorrelation::new(tracker.len(), thinnings);
        Self {
            tracker,
            acc,
            proxy_stride,
            proxy_supersteps: Vec::new(),
            proxies: ProxyTrace::default(),
            outcome: Arc::new(Mutex::new(None)),
        }
    }

    /// The handle the finished metrics are published through.
    pub fn outcome(&self) -> CellOutcome {
        Arc::clone(&self.outcome)
    }
}

impl SampleSink for MetricsSink {
    fn emit(&mut self, ctx: &SampleContext<'_>, sample: &EdgeListGraph) -> Result<(), EngineError> {
        let bits = self.tracker.presence(sample);
        self.acc.observe(&bits);
        if self.proxy_stride > 0 && ctx.superstep % self.proxy_stride == 0 {
            self.proxy_supersteps.push(ctx.superstep);
            self.proxies.record(sample);
        }
        Ok(())
    }

    fn finish(&mut self, report: &JobReport) -> Result<(), EngineError> {
        let metrics = CellMetrics {
            thinnings: self.acc.thinnings().to_vec(),
            fractions: self.acc.non_independent_fractions(),
            observations: report.samples,
            proxy_supersteps: std::mem::take(&mut self.proxy_supersteps),
            proxies: std::mem::take(&mut self.proxies),
            wall_clock: report.duration,
        };
        *self
            .outcome
            .lock()
            .map_err(|_| EngineError::Graph("cell outcome mutex poisoned".to_string()))? =
            Some(metrics);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesmc_engine::{run_job, ChainSpec, GraphSource, JobSpec};
    use gesmc_graph::gen::gnp;
    use gesmc_randx::rng_from_seed;

    #[test]
    fn sink_accumulates_through_a_real_job() {
        let graph = gnp(&mut rng_from_seed(7), 60, 0.1);
        let mut sink = MetricsSink::new(&graph, &[1, 2, 4], 4);
        let outcome = sink.outcome();
        let spec = JobSpec::new(
            "cell",
            GraphSource::InMemory(graph.clone()),
            ChainSpec::new("seq-global-es"),
        )
        .supersteps(12)
        .thinning(1)
        .seed(3);
        let report = run_job(&spec, &mut sink, None).unwrap();
        assert_eq!(report.samples, 12);

        let metrics = outcome.lock().unwrap().clone().expect("finish must publish metrics");
        assert_eq!(metrics.thinnings, vec![1, 2, 4]);
        assert_eq!(metrics.fractions.len(), 3);
        assert!(metrics.fractions.iter().all(|f| (0.0..=1.0).contains(f)));
        assert_eq!(metrics.observations, 12);
        // Proxies recorded at supersteps 4, 8, 12.
        assert_eq!(metrics.proxy_supersteps, vec![4, 8, 12]);
        assert_eq!(metrics.proxies.len(), 3);
        assert!(metrics.wall_clock.as_nanos() > 0);
    }

    #[test]
    fn proxy_stride_zero_disables_the_trace() {
        let graph = gnp(&mut rng_from_seed(8), 40, 0.1);
        let mut sink = MetricsSink::new(&graph, &[1], 0);
        let outcome = sink.outcome();
        let spec =
            JobSpec::new("p0", GraphSource::InMemory(graph.clone()), ChainSpec::new("seq-es"))
                .supersteps(4)
                .thinning(1)
                .seed(1);
        run_job(&spec, &mut sink, None).unwrap();
        let metrics = outcome.lock().unwrap().clone().unwrap();
        assert!(metrics.proxies.is_empty());
        assert!(metrics.proxy_supersteps.is_empty());
    }
}
