//! Error type of the study pipeline.

use gesmc_engine::EngineError;

/// Errors raised while parsing a study spec or running a study.
#[derive(Debug)]
pub enum StudyError {
    /// The study spec (JSON) is malformed or inconsistent.
    Spec(String),
    /// A sweep cell's randomization job failed inside the engine.
    Engine(EngineError),
    /// Reading or writing report files failed.
    Io(std::io::Error),
    /// A report file could not be parsed back (resume, CI assertions).
    Report(String),
}

impl std::fmt::Display for StudyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StudyError::Spec(msg) => write!(f, "invalid study spec: {msg}"),
            StudyError::Engine(e) => write!(f, "job failed: {e}"),
            StudyError::Io(e) => write!(f, "I/O error: {e}"),
            StudyError::Report(msg) => write!(f, "invalid report: {msg}"),
        }
    }
}

impl std::error::Error for StudyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StudyError::Engine(e) => Some(e),
            StudyError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for StudyError {
    fn from(e: EngineError) -> Self {
        StudyError::Engine(e)
    }
}

impl From<std::io::Error> for StudyError {
    fn from(e: std::io::Error) -> Self {
        StudyError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure_class() {
        assert!(StudyError::Spec("x".into()).to_string().contains("study spec"));
        assert!(StudyError::Report("y".into()).to_string().contains("report"));
        let io = StudyError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.to_string().contains("gone"));
    }
}
