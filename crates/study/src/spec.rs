//! Study specifications: the JSON input of `gesmc study`.
//!
//! A study sweeps the cross product {chain} × {graph} and, for every cell,
//! drives the chain for a fixed number of supersteps while measuring the
//! fraction of non-independent edges for every thinning value (the quantity
//! of the paper's Figs. 2 and 3).  A spec looks like:
//!
//! ```json
//! {
//!   "name": "fig2_smoke",
//!   "chains": ["seq-es", "global-curveball", "par-global-es?pl=0.001"],
//!   "graphs": [
//!     { "family": "pld", "nodes": 120, "edges": 360, "gamma": 2.5 },
//!     { "family": "gnp", "nodes": 100, "edges": 400 }
//!   ],
//!   "thinnings": [1, 2, 4, 8],
//!   "supersteps": 32,
//!   "seed": 1,
//!   "workers": 2,
//!   "output_dir": "results",
//!   "paper": { "supersteps": 4096, "edge_factor": 64 }
//! }
//! ```
//!
//! The top-level numbers describe the **smoke** scale (seconds on a laptop);
//! the optional `"paper"` object overrides the superstep count and scales
//! every graph's edge budget when the study runs with `--scale paper`.  An
//! optional `"xl"` object of the same shape describes the **xl** scale:
//! graphs sized past main memory, meant to run through the out-of-core
//! `seq-es-ext` chain (`gesmc randomize --mmap`).  Absent an explicit `"xl"`
//! block, xl keeps the paper superstep count and multiplies the paper edge
//! budget by another 16×.
//!
//! Each `"chains"` entry is a [`ChainSpec`] — a plain name, a
//! `name?key=value` string, or the equivalent JSON object — resolved against
//! the engine's [`default_registry`], so baselines (`global-curveball`,
//! `adjacency-es`, …) sweep next to the core chains and per-chain parameters
//! (e.g. two `P_L` values of the same chain) become distinct sweep columns.

use crate::error::StudyError;
use gesmc_engine::{default_registry, ChainSpec};
use serde_json::Value;
use std::path::PathBuf;

/// Workload scale of a study run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StudyScale {
    /// Seconds: the spec's numbers as written; what CI runs.
    #[default]
    Smoke,
    /// Hours: the spec's `"paper"` overrides applied (superstep count and
    /// edge budgets approaching the publication's parameter ranges).
    Paper,
    /// Out-of-core: the spec's `"xl"` overrides applied — edge budgets past
    /// main memory, intended for the external-memory `seq-es-ext` chain.
    Xl,
}

impl StudyScale {
    /// Parse the CLI spelling (`"smoke"` / `"paper"` / `"xl"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "smoke" => Some(StudyScale::Smoke),
            "paper" => Some(StudyScale::Paper),
            "xl" => Some(StudyScale::Xl),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            StudyScale::Smoke => "smoke",
            StudyScale::Paper => "paper",
            StudyScale::Xl => "xl",
        }
    }
}

/// One input graph of the sweep.
#[derive(Debug, Clone)]
pub struct GraphSpec {
    /// Generator family (`gnp`, `pld`, `road`, `mesh`, `dense`).
    pub family: String,
    /// Number of nodes (`0` picks the family default for the edge budget).
    pub nodes: usize,
    /// Target number of edges at smoke scale.
    pub edges: usize,
    /// Power-law exponent (only used by `pld`).
    pub gamma: f64,
    /// Short label used in job names and reports (default
    /// `{family}-m{edges}`).
    pub label: String,
}

/// Overrides applied when a study runs with `--scale paper`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PaperOverrides {
    /// Superstep count at paper scale (default: the smoke count × 64).
    pub supersteps: Option<u64>,
    /// Multiplier on every graph's edge budget (default 16).
    pub edge_factor: Option<u64>,
}

/// Overrides applied when a study runs with `--scale xl`.
#[derive(Debug, Clone, Copy, Default)]
pub struct XlOverrides {
    /// Superstep count at xl scale (default: the paper count).
    pub supersteps: Option<u64>,
    /// Multiplier on every graph's *smoke* edge budget (default: the paper
    /// factor × 16, i.e. another 16× past paper scale).
    pub edge_factor: Option<u64>,
}

/// A parsed study specification.
#[derive(Debug, Clone)]
pub struct StudySpec {
    /// Study name; keys every output file (`results/{name}.json`, …).
    pub name: String,
    /// The chains of the sweep (the outer loop of the cross product), as
    /// registry-resolved specs.
    pub chains: Vec<ChainSpec>,
    /// The graphs of the sweep (the inner loop).
    pub graphs: Vec<GraphSpec>,
    /// Thinning values `k` evaluated in every cell (sorted, deduplicated).
    pub thinnings: Vec<usize>,
    /// Supersteps per cell at smoke scale.
    pub supersteps: u64,
    /// Root seed; per-cell chain and generator seeds derive from it via
    /// [`derive_seed`] and are recorded in the report, so any single cell can
    /// be re-run exactly.
    pub seed: u64,
    /// Worker threads of the job pool (`0` = hardware parallelism).
    pub workers: usize,
    /// Rayon thread budget per cell (`None` = the ambient pool).
    pub threads_per_job: Option<usize>,
    /// `P_L` handed to the G-ES-MC chains.
    pub loop_probability: f64,
    /// Record scalar proxies (triangles, clustering, assortativity) every
    /// this many supersteps; `0` (the default) uses the largest thinning.
    pub proxy_stride: u64,
    /// Directory the report files are written to.
    pub output_dir: PathBuf,
    /// Paper-scale overrides.
    pub paper: PaperOverrides,
    /// Xl-scale (out-of-core) overrides.
    pub xl: XlOverrides,
}

/// One cell of the sweep: a (chain, graph) pair with its derived seeds.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Zero-based position in the sweep (chain-major order).
    pub index: usize,
    /// Job name, `{chain slug}-{graph label}`; keys the cell's resume file.
    pub job_name: String,
    /// The chain of this cell.
    pub algorithm: ChainSpec,
    /// The graph of this cell, with the scale's edge budget applied.
    pub graph: GraphSpec,
    /// Supersteps at the requested scale.
    pub supersteps: u64,
    /// The derived chain seed ([`derive_seed`]`(study seed, CHAIN, index)`).
    pub seed: u64,
    /// The derived generator seed ([`derive_seed`]`(study seed, GRAPH,
    /// graph index)`) — a function of the *graph* position only, so every
    /// chain of the sweep randomises the identical input graph.
    pub graph_seed: u64,
}

/// Seed stream of the graph generators (see [`derive_seed`]).
pub const SEED_STREAM_GRAPH: u64 = 0;
/// Seed stream of the switching chains (see [`derive_seed`]).
pub const SEED_STREAM_CHAIN: u64 = 1;

/// Derive a sub-seed from the study's root seed.
///
/// A splitmix64-style finaliser over `(root, stream, index)`.  Two distinct
/// streams keep the generator and chain PRNG sequences unrelated even for
/// equal indices (both are `Pcg64`-seeded, so a shared raw seed would make
/// the chain replay the exact random stream that placed the edges).  The
/// derived values are recorded in the report, so any single cell can be
/// reconstructed without re-deriving.
///
/// The result is masked to 53 bits: report seeds must survive a JSON
/// round-trip, and JSON numbers (and the vendored `serde_json` shim) only
/// represent integers exactly up to `2^53`.
pub fn derive_seed(root: u64, stream: u64, index: u64) -> u64 {
    let mut z = root
        ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ index.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) & ((1 << 53) - 1)
}

fn field_u64(value: &Value, key: &str, context: &str) -> Result<Option<u64>, StudyError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            StudyError::Spec(format!("{context}: {key:?} must be a non-negative integer"))
        }),
    }
}

fn field_f64(value: &Value, key: &str, context: &str) -> Result<Option<f64>, StudyError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| StudyError::Spec(format!("{context}: {key:?} must be a number"))),
    }
}

fn field_str<'a>(
    value: &'a Value,
    key: &str,
    context: &str,
) -> Result<Option<&'a str>, StudyError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| StudyError::Spec(format!("{context}: {key:?} must be a string"))),
    }
}

fn parse_graph(value: &Value, index: usize) -> Result<GraphSpec, StudyError> {
    let context = format!("graph #{index}");
    if value.as_object().is_none() {
        return Err(StudyError::Spec(format!("{context}: must be an object")));
    }
    let family = field_str(value, "family", &context)?
        .ok_or_else(|| StudyError::Spec(format!("{context}: needs a \"family\"")))?
        .to_string();
    let edges = field_u64(value, "edges", &context)?
        .ok_or_else(|| StudyError::Spec(format!("{context}: needs \"edges\"")))?
        as usize;
    if edges == 0 {
        return Err(StudyError::Spec(format!("{context}: \"edges\" must be positive")));
    }
    let label = field_str(value, "label", &context)?
        .map(str::to_string)
        .unwrap_or_else(|| format!("{family}-m{edges}"));
    // Labels key the cell resume file names and appear unquoted in CSV rows;
    // restrict them the same way the study name is restricted.
    if label.is_empty() || !label.chars().all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c)) {
        return Err(StudyError::Spec(format!(
            "{context}: label {label:?} must be non-empty [A-Za-z0-9_.-] \
             (it keys file names and CSV rows)"
        )));
    }
    Ok(GraphSpec {
        family,
        nodes: field_u64(value, "nodes", &context)?.unwrap_or(0) as usize,
        edges,
        gamma: field_f64(value, "gamma", &context)?.unwrap_or(2.5),
        label,
    })
}

impl StudySpec {
    /// Parse a study spec from JSON text.
    pub fn parse(text: &str) -> Result<Self, StudyError> {
        let root = serde_json::from_str(text)
            .map_err(|e| StudyError::Spec(format!("invalid JSON: {e}")))?;
        if root.as_object().is_none() {
            return Err(StudyError::Spec("top level must be an object".to_string()));
        }
        let name = field_str(&root, "name", "study")?
            .ok_or_else(|| StudyError::Spec("study needs a \"name\"".to_string()))?
            .to_string();
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || "_-".contains(c)) {
            return Err(StudyError::Spec(format!(
                "study name {name:?} must be non-empty [A-Za-z0-9_-] (it keys file names)"
            )));
        }

        let chains_value = root
            .get("chains")
            .and_then(Value::as_array)
            .ok_or_else(|| StudyError::Spec("study needs a \"chains\" array".to_string()))?;
        let chains = chains_value
            .iter()
            .map(|v| {
                let spec = ChainSpec::from_json(v).map_err(|e| StudyError::Spec(e.to_string()))?;
                // Resolve now so unknown names / bad parameters fail at parse
                // time with the registry's message.
                default_registry().validate(&spec).map_err(|e| StudyError::Spec(e.to_string()))?;
                Ok(spec)
            })
            .collect::<Result<Vec<_>, StudyError>>()?;
        if chains.is_empty() {
            return Err(StudyError::Spec("\"chains\" must not be empty".to_string()));
        }
        let mut slugs = std::collections::HashSet::new();
        for chain in &chains {
            if !slugs.insert(chain.slug()) {
                return Err(StudyError::Spec(format!(
                    "duplicate chain {:?}: cell names would collide",
                    chain.to_string()
                )));
            }
        }

        let graphs_value = root
            .get("graphs")
            .and_then(Value::as_array)
            .ok_or_else(|| StudyError::Spec("study needs a \"graphs\" array".to_string()))?;
        let graphs = graphs_value
            .iter()
            .enumerate()
            .map(|(i, v)| parse_graph(v, i))
            .collect::<Result<Vec<_>, _>>()?;
        if graphs.is_empty() {
            return Err(StudyError::Spec("\"graphs\" must not be empty".to_string()));
        }
        let mut labels = std::collections::HashSet::new();
        for graph in &graphs {
            if !labels.insert(graph.label.as_str()) {
                return Err(StudyError::Spec(format!(
                    "duplicate graph label {:?}: cell names would collide",
                    graph.label
                )));
            }
        }

        let thinnings_value = root
            .get("thinnings")
            .and_then(Value::as_array)
            .ok_or_else(|| StudyError::Spec("study needs a \"thinnings\" array".to_string()))?;
        let mut thinnings = thinnings_value
            .iter()
            .map(|v| {
                v.as_u64().filter(|&k| k > 0).map(|k| k as usize).ok_or_else(|| {
                    StudyError::Spec("\"thinnings\" entries must be positive integers".into())
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        thinnings.sort_unstable();
        thinnings.dedup();
        if thinnings.is_empty() {
            return Err(StudyError::Spec("\"thinnings\" must not be empty".to_string()));
        }

        let supersteps = field_u64(&root, "supersteps", "study")?.unwrap_or(32);
        if supersteps == 0 {
            return Err(StudyError::Spec("\"supersteps\" must be positive".to_string()));
        }
        let loop_probability = field_f64(&root, "loop_probability", "study")?.unwrap_or(0.01);
        if !(0.0..1.0).contains(&loop_probability) {
            return Err(StudyError::Spec("\"loop_probability\" must lie in [0, 1)".to_string()));
        }

        let paper = match root.get("paper") {
            None => PaperOverrides::default(),
            Some(v) if v.as_object().is_some() => PaperOverrides {
                supersteps: field_u64(v, "supersteps", "paper")?,
                edge_factor: field_u64(v, "edge_factor", "paper")?,
            },
            Some(_) => {
                return Err(StudyError::Spec("\"paper\" must be an object".to_string()));
            }
        };

        let xl = match root.get("xl") {
            None => XlOverrides::default(),
            Some(v) if v.as_object().is_some() => XlOverrides {
                supersteps: field_u64(v, "supersteps", "xl")?,
                edge_factor: field_u64(v, "edge_factor", "xl")?,
            },
            Some(_) => {
                return Err(StudyError::Spec("\"xl\" must be an object".to_string()));
            }
        };

        Ok(Self {
            name,
            chains,
            graphs,
            thinnings,
            supersteps,
            seed: field_u64(&root, "seed", "study")?.unwrap_or(1),
            workers: field_u64(&root, "workers", "study")?.unwrap_or(0) as usize,
            threads_per_job: field_u64(&root, "threads_per_job", "study")?.map(|t| t as usize),
            loop_probability,
            proxy_stride: field_u64(&root, "proxy_stride", "study")?.unwrap_or(0),
            output_dir: PathBuf::from(
                field_str(&root, "output_dir", "study")?.unwrap_or("results"),
            ),
            paper,
            xl,
        })
    }

    /// Read and parse a study spec file.
    pub fn from_file(path: impl AsRef<std::path::Path>) -> Result<Self, StudyError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| StudyError::Spec(format!("cannot read {}: {e}", path.display())))?;
        Self::parse(&text)
    }

    /// Supersteps per cell at the given scale.
    pub fn supersteps_at(&self, scale: StudyScale) -> u64 {
        match scale {
            StudyScale::Smoke => self.supersteps,
            StudyScale::Paper => {
                self.paper.supersteps.unwrap_or_else(|| self.supersteps.saturating_mul(64))
            }
            // Xl grows the *graphs*, not the chain length: absent an explicit
            // override it keeps the paper superstep count.
            StudyScale::Xl => {
                self.xl.supersteps.unwrap_or_else(|| self.supersteps_at(StudyScale::Paper))
            }
        }
    }

    /// Edge budget of one graph at the given scale.
    pub fn edges_at(&self, scale: StudyScale, base_edges: usize) -> usize {
        match scale {
            StudyScale::Smoke => base_edges,
            StudyScale::Paper => {
                base_edges.saturating_mul(self.paper.edge_factor.unwrap_or(16) as usize)
            }
            StudyScale::Xl => base_edges.saturating_mul(
                self.xl
                    .edge_factor
                    .unwrap_or_else(|| self.paper.edge_factor.unwrap_or(16).saturating_mul(16))
                    as usize,
            ),
        }
    }

    /// The proxy recording stride: the explicit `proxy_stride`, or the
    /// largest thinning value.
    pub fn effective_proxy_stride(&self) -> u64 {
        if self.proxy_stride > 0 {
            self.proxy_stride
        } else {
            self.thinnings.last().copied().unwrap_or(1) as u64
        }
    }

    /// Enumerate the sweep cells in chain-major order, applying the scale.
    pub fn cells(&self, scale: StudyScale) -> Vec<CellSpec> {
        let supersteps = self.supersteps_at(scale);
        let mut cells = Vec::with_capacity(self.chains.len() * self.graphs.len());
        for chain in &self.chains {
            for (graph_index, graph) in self.graphs.iter().enumerate() {
                let index = cells.len();
                let mut graph = graph.clone();
                graph.edges = self.edges_at(scale, graph.edges);
                cells.push(CellSpec {
                    index,
                    job_name: format!("{}-{}", chain.slug(), graph.label),
                    algorithm: chain.clone(),
                    graph,
                    supersteps,
                    seed: derive_seed(self.seed, SEED_STREAM_CHAIN, index as u64),
                    graph_seed: derive_seed(self.seed, SEED_STREAM_GRAPH, graph_index as u64),
                });
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"{
        "name": "unit",
        "chains": ["seq-es", "par-global-es"],
        "graphs": [
            { "family": "pld", "nodes": 100, "edges": 300, "gamma": 2.5 },
            { "family": "gnp", "edges": 400, "label": "gilbert" }
        ],
        "thinnings": [8, 1, 2, 2],
        "supersteps": 16,
        "seed": 5,
        "workers": 2,
        "paper": { "supersteps": 1024, "edge_factor": 8 }
    }"#;

    #[test]
    fn parses_and_enumerates_cells() {
        let spec = StudySpec::parse(SPEC).unwrap();
        assert_eq!(spec.name, "unit");
        assert_eq!(spec.thinnings, vec![1, 2, 8], "sorted and deduplicated");
        assert_eq!(spec.effective_proxy_stride(), 8);

        let cells = spec.cells(StudyScale::Smoke);
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].job_name, "seq-es-pld-m300");
        assert_eq!(cells[1].job_name, "seq-es-gilbert");
        assert_eq!(cells[3].job_name, "par-global-es-gilbert");
        assert!(cells.iter().all(|c| c.supersteps == 16));

        // Chain seeds are distinct per cell; generator seeds depend only on
        // the graph, so both chains randomise the identical input.
        assert_eq!(cells[0].seed, derive_seed(5, SEED_STREAM_CHAIN, 0));
        let chain_seeds: std::collections::HashSet<u64> = cells.iter().map(|c| c.seed).collect();
        assert_eq!(chain_seeds.len(), 4);
        assert_eq!(cells[0].graph_seed, cells[2].graph_seed);
        assert_eq!(cells[1].graph_seed, cells[3].graph_seed);
        assert_ne!(cells[0].graph_seed, cells[1].graph_seed);
        assert!(!chain_seeds.contains(&cells[0].graph_seed));
    }

    #[test]
    fn baseline_and_parameterised_chains_become_distinct_cells() {
        let spec = StudySpec::parse(
            r#"{
                "name": "mix",
                "chains": ["global-curveball", "par-global-es?pl=0.001", "par-global-es"],
                "graphs": [{ "family": "gnp", "edges": 100, "label": "g" }],
                "thinnings": [1]
            }"#,
        )
        .unwrap();
        let cells = spec.cells(StudyScale::Smoke);
        assert_eq!(cells[0].job_name, "global-curveball-g");
        assert_eq!(cells[1].job_name, "par-global-es-pl-0.001-g");
        assert_eq!(cells[2].job_name, "par-global-es-g");
        // Every job name stays within the report's file/CSV-safe charset.
        for cell in &cells {
            assert!(
                cell.job_name.chars().all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c)),
                "{}",
                cell.job_name
            );
        }
    }

    #[test]
    fn seed_derivation_is_stable_and_stream_separated() {
        assert_eq!(derive_seed(1, 0, 0), derive_seed(1, 0, 0));
        assert_ne!(derive_seed(1, SEED_STREAM_GRAPH, 3), derive_seed(1, SEED_STREAM_CHAIN, 3));
        assert_ne!(derive_seed(1, 0, 1), derive_seed(2, 0, 1));
        // Seeds must survive a JSON (f64) round-trip exactly.
        for i in 0..64 {
            assert!(derive_seed(u64::MAX, 1, i) < (1 << 53));
        }
    }

    #[test]
    fn paper_scale_applies_overrides() {
        let spec = StudySpec::parse(SPEC).unwrap();
        let cells = spec.cells(StudyScale::Paper);
        assert_eq!(cells[0].supersteps, 1024);
        assert_eq!(cells[0].graph.edges, 2400);
        assert_eq!(cells[1].graph.edges, 3200);
        // Defaults when the "paper" object is absent.
        let bare = StudySpec::parse(&SPEC.replace(
            r#""paper": { "supersteps": 1024, "edge_factor": 8 }"#,
            r#""proxy_stride": 4"#,
        ))
        .unwrap();
        assert_eq!(bare.supersteps_at(StudyScale::Paper), 16 * 64);
        assert_eq!(bare.edges_at(StudyScale::Paper, 300), 4800);
        assert_eq!(bare.effective_proxy_stride(), 4);
    }

    #[test]
    fn xl_scale_applies_overrides_and_defaults_past_paper() {
        // Explicit "xl" block wins.
        let explicit = StudySpec::parse(&SPEC.replace(
            r#""paper": { "supersteps": 1024, "edge_factor": 8 }"#,
            r#""paper": { "supersteps": 1024, "edge_factor": 8 },
               "xl": { "supersteps": 2048, "edge_factor": 500 }"#,
        ))
        .unwrap();
        let cells = explicit.cells(StudyScale::Xl);
        assert_eq!(cells[0].supersteps, 2048);
        assert_eq!(cells[0].graph.edges, 300 * 500);

        // Without an "xl" block: paper supersteps, paper edge factor × 16.
        let spec = StudySpec::parse(SPEC).unwrap();
        assert_eq!(spec.supersteps_at(StudyScale::Xl), 1024);
        assert_eq!(spec.edges_at(StudyScale::Xl, 300), 300 * 8 * 16);

        // Bare defaults (neither "paper" nor "xl"): 64× smoke supersteps,
        // 16 × 16 = 256× smoke edges.
        let bare = StudySpec::parse(&SPEC.replace(
            r#""paper": { "supersteps": 1024, "edge_factor": 8 }"#,
            r#""proxy_stride": 4"#,
        ))
        .unwrap();
        assert_eq!(bare.supersteps_at(StudyScale::Xl), 16 * 64);
        assert_eq!(bare.edges_at(StudyScale::Xl, 300), 300 * 256);

        assert_eq!(StudyScale::parse("xl"), Some(StudyScale::Xl));
        assert_eq!(StudyScale::Xl.name(), "xl");
        expect_spec_error(
            r#"{"name": "x", "chains": ["seq-es"],
                "graphs": [{"family": "gnp", "edges": 9}], "thinnings": [1], "xl": 3}"#,
            "\"xl\" must be an object",
        );
    }

    fn expect_spec_error(text: &str, needle: &str) {
        match StudySpec::parse(text) {
            Err(StudyError::Spec(msg)) => {
                assert!(msg.contains(needle), "message {msg:?} lacks {needle:?}")
            }
            other => panic!("expected spec error containing {needle:?}, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_specs() {
        expect_spec_error("nonsense", "invalid JSON");
        expect_spec_error("[]", "top level");
        expect_spec_error(r#"{"chains": []}"#, "name");
        expect_spec_error(r#"{"name": "a b", "chains": ["seq-es"]}"#, "must be non-empty");
        expect_spec_error(r#"{"name": "x"}"#, "chains");
        expect_spec_error(r#"{"name": "x", "chains": []}"#, "empty");
        expect_spec_error(r#"{"name": "x", "chains": ["quantum"]}"#, "unknown chain");
        expect_spec_error(r#"{"name": "x", "chains": ["seq-es?pl=9"]}"#, "pl");
        expect_spec_error(r#"{"name": "x", "chains": ["seq-es", "seq-es"]}"#, "duplicate chain");
        expect_spec_error(r#"{"name": "x", "chains": ["seq-es"]}"#, "graphs");
        expect_spec_error(
            r#"{"name": "x", "chains": ["seq-es"], "graphs": [{"edges": 5}]}"#,
            "family",
        );
        expect_spec_error(
            r#"{"name": "x", "chains": ["seq-es"], "graphs": [{"family": "gnp"}]}"#,
            "edges",
        );
        expect_spec_error(
            r#"{"name": "x", "chains": ["seq-es"],
                "graphs": [{"family": "gnp", "edges": 9, "label": "a/b"}], "thinnings": [1]}"#,
            "label",
        );
        expect_spec_error(
            r#"{"name": "x", "chains": ["seq-es"],
                "graphs": [{"family": "gnp", "edges": 9, "label": "a,b"}], "thinnings": [1]}"#,
            "label",
        );
        expect_spec_error(
            r#"{"name": "x", "chains": ["seq-es"],
                "graphs": [{"family": "gnp", "edges": 9, "label": "g"},
                           {"family": "pld", "edges": 9, "label": "g"}],
                "thinnings": [1]}"#,
            "duplicate graph label",
        );
        expect_spec_error(
            r#"{"name": "x", "chains": ["seq-es"], "graphs": [{"family": "gnp", "edges": 9}]}"#,
            "thinnings",
        );
        expect_spec_error(
            r#"{"name": "x", "chains": ["seq-es"], "graphs": [{"family": "gnp", "edges": 9}],
                "thinnings": [0]}"#,
            "positive",
        );
        expect_spec_error(
            r#"{"name": "x", "chains": ["seq-es"], "graphs": [{"family": "gnp", "edges": 9}],
                "thinnings": [1], "supersteps": 0}"#,
            "supersteps",
        );
        expect_spec_error(
            r#"{"name": "x", "chains": ["seq-es"], "graphs": [{"family": "gnp", "edges": 9}],
                "thinnings": [1], "loop_probability": 1.5}"#,
            "[0, 1)",
        );
        expect_spec_error(
            r#"{"name": "x", "chains": ["seq-es"], "graphs": [{"family": "gnp", "edges": 9}],
                "thinnings": [1], "paper": 3}"#,
            "paper",
        );
    }

    #[test]
    fn defaults_are_sensible() {
        let spec = StudySpec::parse(
            r#"{"name": "d", "chains": ["seq-es"],
                "graphs": [{"family": "gnp", "edges": 100}], "thinnings": [1, 4]}"#,
        )
        .unwrap();
        assert_eq!(spec.supersteps, 32);
        assert_eq!(spec.seed, 1);
        assert_eq!(spec.workers, 0);
        assert_eq!(spec.threads_per_job, None);
        assert_eq!(spec.output_dir, PathBuf::from("results"));
        assert!((spec.loop_probability - 0.01).abs() < 1e-12);
        assert_eq!(spec.effective_proxy_stride(), 4);
    }
}
