//! The concurrent dependency table of `ParallelSuperstep` (Algorithm 1).
//!
//! Before a superstep is executed, every switch `σ_k` registers four records
//! keyed by packed edges: one *erase* record per source edge and one *insert*
//! record per target edge, all initially `undecided`.  While deciding a
//! switch, the table answers two queries:
//!
//! * [`DependencyTable::erase_lookup`] — who (if anyone) erases edge `e` in
//!   this superstep, and in which state is that switch?  By Observation 2 of
//!   the paper at most one switch erases a given edge per superstep, so a
//!   single slot per edge suffices.
//! * [`DependencyTable::insert_constraint`] — among the switches with a
//!   smaller index that also try to insert `e`, is any of them already legal
//!   (then the caller is illegal) or still undecided (then the caller must be
//!   delayed)?
//!
//! The table uses open addressing with lock-free bucket acquisition (CAS on
//! the key) and a tiny per-bucket mutex protecting the record payload.  The
//! payload mutex is uncontended except when several switches genuinely target
//! the same edge, which Theorems 2/3 of the paper show is rare.

use crate::hash_edge;
use gesmc_graph::PackedEdge;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Decision state of a switch, as recorded in the dependency table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchState {
    /// Not yet decided (initial state).
    Undecided,
    /// Decided: the switch is legal and its rewiring has been applied.
    Legal,
    /// Decided: the switch is illegal (rejected).
    Illegal,
}

/// Result of looking up the erase record of an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EraseLookup {
    /// No switch of this superstep erases the edge.
    None,
    /// The switch with the given index erases the edge; its current state is
    /// attached.
    By {
        /// Index of the erasing switch within the superstep.
        index: u32,
        /// Current decision state of that switch.
        state: SwitchState,
    },
}

/// Constraint imposed on switch `k` by earlier switches inserting the same
/// target edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertConstraint {
    /// No earlier switch constrains `k`.
    None,
    /// An earlier switch already legally inserted the edge: `k` is illegal.
    EarlierLegal,
    /// An earlier switch targeting the edge is still undecided: `k` must be
    /// delayed to a later round.
    EarlierUndecided,
}

const KEY_EMPTY: u64 = u64::MAX;

#[derive(Debug, Default)]
struct Records {
    /// The unique erase record (switch index, state), if any.
    erase: Option<(u32, SwitchState)>,
    /// All insert records for this edge (switch index, state).  Target
    /// collisions are rare, so the vector almost always has length 1.
    inserts: Vec<(u32, SwitchState)>,
}

#[derive(Debug)]
struct Bucket {
    key: AtomicU64,
    records: Mutex<Records>,
}

/// Concurrent map from packed edge to its erase/insert dependency records.
#[derive(Debug)]
pub struct DependencyTable {
    buckets: Vec<Bucket>,
    mask: usize,
}

impl DependencyTable {
    /// Create a table sized for a superstep of `num_switches` switches.
    ///
    /// Every switch registers records for at most four distinct edges, so the
    /// table allocates `8 × num_switches` buckets (next power of two) to keep
    /// the load factor at or below 1/2.
    pub fn for_switches(num_switches: usize) -> Self {
        let buckets = (num_switches.max(1) * 8).next_power_of_two();
        Self {
            buckets: (0..buckets)
                .map(|_| Bucket {
                    key: AtomicU64::new(KEY_EMPTY),
                    records: Mutex::new(Records::default()),
                })
                .collect(),
            mask: buckets - 1,
        }
    }

    /// Number of buckets (diagnostics only).
    pub fn capacity(&self) -> usize {
        self.buckets.len()
    }

    /// Reset the table for reuse by a later superstep of at most the size it
    /// was created for.  Requires exclusive access.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.key = AtomicU64::new(KEY_EMPTY);
            let records = b.records.get_mut();
            records.erase = None;
            records.inserts.clear();
        }
    }

    /// Find the bucket of `key`, claiming an empty one if necessary.
    fn bucket_for(&self, key: PackedEdge) -> &Bucket {
        debug_assert_ne!(key, KEY_EMPTY);
        let mut idx = (hash_edge(key) as usize) & self.mask;
        loop {
            let bucket = &self.buckets[idx];
            let current = bucket.key.load(Ordering::Acquire);
            if current == key {
                return bucket;
            }
            if current == KEY_EMPTY {
                match bucket.key.compare_exchange(
                    KEY_EMPTY,
                    key,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return bucket,
                    Err(actual) if actual == key => return bucket,
                    Err(_) => { /* someone claimed it for a different key */ }
                }
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Find the bucket of `key` without claiming one; `None` if absent.
    fn find_bucket(&self, key: PackedEdge) -> Option<&Bucket> {
        debug_assert_ne!(key, KEY_EMPTY);
        let mut idx = (hash_edge(key) as usize) & self.mask;
        loop {
            let bucket = &self.buckets[idx];
            let current = bucket.key.load(Ordering::Acquire);
            if current == key {
                return Some(bucket);
            }
            if current == KEY_EMPTY {
                return None;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Register that switch `index` erases edge `key` (phase 1 of a superstep).
    ///
    /// By Observation 2 a superstep without source dependencies erases every
    /// edge at most once; a second registration for the same edge indicates a
    /// bug in the caller and panics in debug builds.
    pub fn register_erase(&self, key: PackedEdge, index: u32) {
        let bucket = self.bucket_for(key);
        let mut records = bucket.records.lock();
        debug_assert!(
            records.erase.is_none(),
            "edge {key:#x} erased twice in one superstep (source dependency?)"
        );
        records.erase = Some((index, SwitchState::Undecided));
    }

    /// Register that switch `index` wants to insert edge `key` (phase 1).
    pub fn register_insert(&self, key: PackedEdge, index: u32) {
        let bucket = self.bucket_for(key);
        let mut records = bucket.records.lock();
        records.inserts.push((index, SwitchState::Undecided));
    }

    /// Who erases `key` in this superstep, and in which state is that switch?
    pub fn erase_lookup(&self, key: PackedEdge) -> EraseLookup {
        match self.find_bucket(key) {
            None => EraseLookup::None,
            Some(bucket) => {
                let records = bucket.records.lock();
                match records.erase {
                    None => EraseLookup::None,
                    Some((index, state)) => EraseLookup::By { index, state },
                }
            }
        }
    }

    /// Constraint imposed on switch `k` by earlier inserts of `key`.
    ///
    /// Mirrors the paper's "tuple with the smallest index `q` where
    /// `t_{e,q} = insert` and `s_q ≠ illegal`" rule: a smaller-index legal
    /// insert makes `k` illegal, a smaller-index undecided insert delays `k`,
    /// and smaller-index illegal inserts impose nothing.
    pub fn insert_constraint(&self, key: PackedEdge, k: u32) -> InsertConstraint {
        let Some(bucket) = self.find_bucket(key) else {
            return InsertConstraint::None;
        };
        let records = bucket.records.lock();
        let mut undecided = false;
        for &(index, state) in &records.inserts {
            if index >= k {
                continue;
            }
            match state {
                SwitchState::Legal => return InsertConstraint::EarlierLegal,
                SwitchState::Undecided => undecided = true,
                SwitchState::Illegal => {}
            }
        }
        if undecided {
            InsertConstraint::EarlierUndecided
        } else {
            InsertConstraint::None
        }
    }

    /// Record the final state of switch `index` on the erase record of `key`.
    pub fn decide_erase(&self, key: PackedEdge, index: u32, state: SwitchState) {
        if let Some(bucket) = self.find_bucket(key) {
            let mut records = bucket.records.lock();
            if let Some((i, s)) = records.erase.as_mut() {
                if *i == index {
                    *s = state;
                }
            }
        }
    }

    /// Record the final state of switch `index` on the insert record of `key`.
    pub fn decide_insert(&self, key: PackedEdge, index: u32, state: SwitchState) {
        if let Some(bucket) = self.find_bucket(key) {
            let mut records = bucket.records.lock();
            for (i, s) in records.inserts.iter_mut() {
                if *i == index {
                    *s = state;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn erase_lookup_lifecycle() {
        let table = DependencyTable::for_switches(4);
        assert_eq!(table.erase_lookup(42), EraseLookup::None);
        table.register_erase(42, 3);
        assert_eq!(
            table.erase_lookup(42),
            EraseLookup::By { index: 3, state: SwitchState::Undecided }
        );
        table.decide_erase(42, 3, SwitchState::Legal);
        assert_eq!(table.erase_lookup(42), EraseLookup::By { index: 3, state: SwitchState::Legal });
        // Deciding with the wrong index is a no-op.
        table.decide_erase(42, 5, SwitchState::Illegal);
        assert_eq!(table.erase_lookup(42), EraseLookup::By { index: 3, state: SwitchState::Legal });
    }

    #[test]
    fn insert_constraint_rules() {
        let table = DependencyTable::for_switches(8);
        // No records at all: no constraint.
        assert_eq!(table.insert_constraint(7, 5), InsertConstraint::None);

        table.register_insert(7, 2);
        table.register_insert(7, 4);
        table.register_insert(7, 9);

        // Earlier undecided insert delays.
        assert_eq!(table.insert_constraint(7, 5), InsertConstraint::EarlierUndecided);
        // Entries with larger index never constrain.
        assert_eq!(table.insert_constraint(7, 1), InsertConstraint::None);

        // Once the earliest becomes illegal, the next earlier entry governs.
        table.decide_insert(7, 2, SwitchState::Illegal);
        assert_eq!(table.insert_constraint(7, 3), InsertConstraint::None);
        assert_eq!(table.insert_constraint(7, 5), InsertConstraint::EarlierUndecided);

        // A legal earlier insert makes later ones illegal.
        table.decide_insert(7, 4, SwitchState::Legal);
        assert_eq!(table.insert_constraint(7, 5), InsertConstraint::EarlierLegal);
        assert_eq!(table.insert_constraint(7, 9), InsertConstraint::EarlierLegal);
        assert_eq!(table.insert_constraint(7, 4), InsertConstraint::None);
    }

    #[test]
    fn clear_resets_the_table() {
        let mut table = DependencyTable::for_switches(4);
        table.register_erase(10, 0);
        table.register_insert(11, 1);
        table.clear();
        assert_eq!(table.erase_lookup(10), EraseLookup::None);
        assert_eq!(table.insert_constraint(11, 5), InsertConstraint::None);
    }

    #[test]
    fn concurrent_registration_over_distinct_edges() {
        let n = 10_000u32;
        let table = DependencyTable::for_switches(n as usize);
        (0..n).into_par_iter().for_each(|i| {
            table.register_erase(u64::from(i) * 2 + 1, i);
            table.register_insert(u64::from(i) * 2 + 2, i);
        });
        (0..n).into_par_iter().for_each(|i| {
            assert_eq!(
                table.erase_lookup(u64::from(i) * 2 + 1),
                EraseLookup::By { index: i, state: SwitchState::Undecided }
            );
            assert_eq!(
                table.insert_constraint(u64::from(i) * 2 + 2, i + 1),
                InsertConstraint::EarlierUndecided
            );
        });
    }

    #[test]
    fn concurrent_inserts_on_the_same_edge() {
        let table = DependencyTable::for_switches(1024);
        (0..1024u32).into_par_iter().for_each(|i| {
            table.register_insert(99, i);
        });
        // The smallest index is 0 and is undecided, so every larger index is
        // delayed.
        assert_eq!(table.insert_constraint(99, 1), InsertConstraint::EarlierUndecided);
        table.decide_insert(99, 0, SwitchState::Legal);
        assert_eq!(table.insert_constraint(99, 1), InsertConstraint::EarlierLegal);
        assert_eq!(table.insert_constraint(99, 0), InsertConstraint::None);
    }

    #[test]
    fn capacity_scales_with_switch_count() {
        assert!(DependencyTable::for_switches(1).capacity() >= 8);
        assert!(DependencyTable::for_switches(1000).capacity() >= 8000);
    }
}
