//! The shared, indexed edge array `E[1..m]` used by the parallel chains.
//!
//! `ParallelSuperstep` guarantees that the switches of one superstep have no
//! source dependencies, i.e. no two switches share an edge index.  Each switch
//! therefore has exclusive logical ownership of its two slots `E[i]`, `E[j]`,
//! and the only synchronisation required is that writes become visible to the
//! next superstep.  Storing the packed edges in `AtomicU64` cells expresses
//! exactly that contract in safe Rust; all accesses use relaxed ordering and
//! the rayon join points provide the necessary happens-before edges between
//! supersteps.

use gesmc_graph::{Edge, EdgeListGraph};
use std::sync::atomic::{AtomicU64, Ordering};

/// An indexed edge array whose slots can be read and rewired concurrently.
#[derive(Debug)]
pub struct AtomicEdgeList {
    num_nodes: usize,
    slots: Vec<AtomicU64>,
}

impl AtomicEdgeList {
    /// Build from an edge-list graph.
    pub fn from_graph(graph: &EdgeListGraph) -> Self {
        let slots = graph.edges().iter().map(|e| AtomicU64::new(e.pack())).collect();
        Self { num_nodes: graph.num_nodes(), slots }
    }

    /// Number of edges `m`.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the edge list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Read `E[i]`.
    #[inline]
    pub fn get(&self, i: usize) -> Edge {
        Edge::unpack(self.slots[i].load(Ordering::Relaxed))
    }

    /// Rewire `E[i] ← e`.
    #[inline]
    pub fn set(&self, i: usize, e: Edge) {
        self.slots[i].store(e.pack(), Ordering::Relaxed);
    }

    /// Snapshot the current edge array into a plain vector.
    pub fn snapshot_edges(&self) -> Vec<Edge> {
        self.slots.iter().map(|s| Edge::unpack(s.load(Ordering::Relaxed))).collect()
    }

    /// Convert back into an [`EdgeListGraph`].
    ///
    /// The switching algorithms preserve simplicity, so the unchecked
    /// constructor is appropriate; debug builds re-validate.
    pub fn to_graph(&self) -> EdgeListGraph {
        EdgeListGraph::from_edges_unchecked(self.num_nodes, self.snapshot_edges())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    fn sample_graph() -> EdgeListGraph {
        EdgeListGraph::new(
            5,
            vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3), Edge::new(3, 4)],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let g = sample_graph();
        let list = AtomicEdgeList::from_graph(&g);
        assert_eq!(list.len(), 4);
        assert_eq!(list.num_nodes(), 5);
        assert_eq!(list.get(2), Edge::new(2, 3));
        assert_eq!(list.to_graph().canonical_edges(), g.canonical_edges());
    }

    #[test]
    fn set_rewires_slot() {
        let g = sample_graph();
        let list = AtomicEdgeList::from_graph(&g);
        list.set(0, Edge::new(0, 4));
        assert_eq!(list.get(0), Edge::new(0, 4));
        assert_eq!(list.get(1), Edge::new(1, 2));
    }

    #[test]
    fn concurrent_disjoint_writes() {
        // Simulate a superstep: every slot is rewired by a different task.
        let n = 10_000usize;
        let edges: Vec<Edge> = (0..n).map(|i| Edge::new(i as u32, (i + 1) as u32)).collect();
        let g = EdgeListGraph::from_edges_unchecked(n + 1, edges);
        let list = AtomicEdgeList::from_graph(&g);
        (0..n).into_par_iter().for_each(|i| {
            let e = list.get(i);
            list.set(i, Edge::new(e.u(), e.v())); // identity rewire
            list.set(i, Edge::new(0, (i + 1) as u32));
        });
        for i in 0..n {
            assert_eq!(list.get(i), Edge::new(0, (i + 1) as u32));
        }
    }

    #[test]
    fn empty_list() {
        let g = EdgeListGraph::new(3, vec![]).unwrap();
        let list = AtomicEdgeList::from_graph(&g);
        assert!(list.is_empty());
        assert_eq!(list.to_graph().num_edges(), 0);
    }
}
