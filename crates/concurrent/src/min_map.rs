//! Concurrent `insert_if_min` map used by `ParES` (Algorithm 2).
//!
//! To find the longest prefix of requested switches without source
//! dependencies, every switch inserts its two edge indices into a concurrent
//! hash map keyed by edge index; the value kept per key is the *minimum*
//! switch index that mentioned it.  The insert operation returns the previous
//! minimum (if any), which the caller uses to tighten the superstep boundary
//! `t`.

use crate::hash_edge;
use std::sync::atomic::{AtomicU64, Ordering};

const KEY_EMPTY: u64 = u64::MAX;

/// A fixed-capacity concurrent map `u64 → u64` with atomic minimum updates.
#[derive(Debug)]
pub struct MinIndexMap {
    keys: Vec<AtomicU64>,
    values: Vec<AtomicU64>,
    mask: usize,
}

impl MinIndexMap {
    /// Create a map able to hold `capacity_hint` keys at load factor ≤ 1/2.
    pub fn with_capacity(capacity_hint: usize) -> Self {
        let buckets = (capacity_hint.max(4) * 2).next_power_of_two();
        Self {
            keys: (0..buckets).map(|_| AtomicU64::new(KEY_EMPTY)).collect(),
            values: (0..buckets).map(|_| AtomicU64::new(u64::MAX)).collect(),
            mask: buckets - 1,
        }
    }

    /// Number of buckets.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Reset for reuse.  Requires exclusive access.
    pub fn clear(&mut self) {
        for (k, v) in self.keys.iter_mut().zip(self.values.iter_mut()) {
            *k = AtomicU64::new(KEY_EMPTY);
            *v = AtomicU64::new(u64::MAX);
        }
    }

    /// Insert `(key, value)` keeping the minimum value per key.
    ///
    /// Returns the previous minimum for `key` if one existed (which may be
    /// smaller or larger than `value`), or `None` if the key is new.
    pub fn insert_if_min(&self, key: u64, value: u64) -> Option<u64> {
        debug_assert_ne!(key, KEY_EMPTY);
        let mut idx = (hash_edge(key) as usize) & self.mask;
        loop {
            let current = self.keys[idx].load(Ordering::Acquire);
            if current == key {
                return Some(self.fetch_min(idx, value));
            }
            if current == KEY_EMPTY {
                match self.keys[idx].compare_exchange(
                    KEY_EMPTY,
                    key,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        let previous = self.fetch_min(idx, value);
                        // The slot was fresh, but another thread may have
                        // raced us between the key CAS and the value update;
                        // report `None` only if we truly were first.
                        return if previous == u64::MAX { None } else { Some(previous) };
                    }
                    Err(actual) if actual == key => return Some(self.fetch_min(idx, value)),
                    Err(_) => { /* bucket taken by a different key */ }
                }
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Current minimum recorded for `key`.
    pub fn get(&self, key: u64) -> Option<u64> {
        debug_assert_ne!(key, KEY_EMPTY);
        let mut idx = (hash_edge(key) as usize) & self.mask;
        loop {
            let current = self.keys[idx].load(Ordering::Acquire);
            if current == key {
                let v = self.values[idx].load(Ordering::Acquire);
                return if v == u64::MAX { None } else { Some(v) };
            }
            if current == KEY_EMPTY {
                return None;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Atomically set `values[idx] = min(values[idx], value)`; returns the
    /// previous value.
    fn fetch_min(&self, idx: usize, value: u64) -> u64 {
        let mut current = self.values[idx].load(Ordering::Acquire);
        loop {
            if value >= current {
                return current;
            }
            match self.values[idx].compare_exchange_weak(
                current,
                value,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(prev) => return prev,
                Err(actual) => current = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn insert_if_min_keeps_minimum() {
        let map = MinIndexMap::with_capacity(16);
        assert_eq!(map.insert_if_min(5, 10), None);
        assert_eq!(map.get(5), Some(10));
        assert_eq!(map.insert_if_min(5, 7), Some(10));
        assert_eq!(map.get(5), Some(7));
        assert_eq!(map.insert_if_min(5, 9), Some(7));
        assert_eq!(map.get(5), Some(7));
        assert_eq!(map.get(6), None);
    }

    #[test]
    fn clear_resets() {
        let mut map = MinIndexMap::with_capacity(4);
        map.insert_if_min(1, 1);
        map.clear();
        assert_eq!(map.get(1), None);
    }

    #[test]
    fn concurrent_min_is_correct() {
        let map = MinIndexMap::with_capacity(64);
        (1..=10_000u64).into_par_iter().for_each(|v| {
            map.insert_if_min(7, v);
        });
        assert_eq!(map.get(7), Some(1));
    }

    #[test]
    fn many_distinct_keys_in_parallel() {
        let n = 20_000u64;
        let map = MinIndexMap::with_capacity(n as usize);
        (0..n).into_par_iter().for_each(|k| {
            map.insert_if_min(k + 1, k * 3 + 5);
            map.insert_if_min(k + 1, k * 3 + 4);
        });
        (0..n).into_par_iter().for_each(|k| {
            assert_eq!(map.get(k + 1), Some(k * 3 + 4));
        });
    }
}
