//! Sequential open-addressing edge hash set.
//!
//! The sequential chains (`SeqES`, `SeqGlobalES`) need a set of packed edges
//! supporting a roughly balanced mix of insertions, deletions and membership
//! queries, all in expected constant time (Sec. 5.2).  This is a linear
//! probing table with power-of-two capacity and a maximum load factor of 1/2,
//! matching the design the paper settled on after comparing several hash-set
//! implementations.
//!
//! Deletions use tombstones; the table rebuilds itself once tombstones would
//! degrade probe lengths.  For the prefetching pipeline (Sec. 5.4) every
//! operation is also available in split form: [`SeqEdgeSet::prefetch`]
//! computes the home bucket and prefetches it, and the actual operation is
//! carried out later.

use crate::hash_edge;
use crate::prefetch::prefetch_read_pair;
use gesmc_graph::PackedEdge;

const EMPTY: u64 = u64::MAX;
const TOMBSTONE: u64 = u64::MAX - 1;

/// A sequential hash set of packed edges.
///
/// Packed edges `(u << 32) | v` with `u <= v` never collide with the two
/// sentinels because both sentinels decode to self-loops, which simple graphs
/// never contain.
#[derive(Clone, Debug)]
pub struct SeqEdgeSet {
    buckets: Vec<u64>,
    mask: usize,
    len: usize,
    tombstones: usize,
}

impl SeqEdgeSet {
    /// Create a set able to hold `capacity_hint` edges at load factor ≤ 1/2.
    pub fn with_capacity(capacity_hint: usize) -> Self {
        let buckets = (capacity_hint.max(4) * 2).next_power_of_two();
        Self { buckets: vec![EMPTY; buckets], mask: buckets - 1, len: 0, tombstones: 0 }
    }

    /// Build a set containing the given edges.
    pub fn from_edges(edges: impl IntoIterator<Item = PackedEdge>, capacity_hint: usize) -> Self {
        let mut set = Self::with_capacity(capacity_hint);
        for e in edges {
            set.insert(e);
        }
        set
    }

    /// Number of edges stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of buckets (for load-factor diagnostics and benchmarks).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn home_bucket(&self, key: PackedEdge) -> usize {
        (hash_edge(key) as usize) & self.mask
    }

    /// Issue a software prefetch for the buckets `key` will probe first.
    ///
    /// Part of the split hash-then-operate API used by the prefetching
    /// pipeline; calling it is optional and has no semantic effect.
    #[inline]
    pub fn prefetch(&self, key: PackedEdge) {
        prefetch_read_pair(&self.buckets, self.home_bucket(key));
    }

    /// Whether `key` is in the set.
    #[inline]
    pub fn contains(&self, key: PackedEdge) -> bool {
        debug_assert!(key < TOMBSTONE);
        let mut idx = self.home_bucket(key);
        loop {
            match self.buckets[idx] {
                EMPTY => return false,
                slot if slot == key => return true,
                _ => idx = (idx + 1) & self.mask,
            }
        }
    }

    /// Insert `key`; returns `false` if it was already present.
    pub fn insert(&mut self, key: PackedEdge) -> bool {
        debug_assert!(key < TOMBSTONE);
        self.maybe_grow();
        let mut idx = self.home_bucket(key);
        let mut first_tombstone: Option<usize> = None;
        loop {
            match self.buckets[idx] {
                EMPTY => {
                    let target = first_tombstone.unwrap_or(idx);
                    if first_tombstone.is_some() {
                        self.tombstones -= 1;
                    }
                    self.buckets[target] = key;
                    self.len += 1;
                    return true;
                }
                TOMBSTONE => {
                    if first_tombstone.is_none() {
                        first_tombstone = Some(idx);
                    }
                    idx = (idx + 1) & self.mask;
                }
                slot if slot == key => return false,
                _ => idx = (idx + 1) & self.mask,
            }
        }
    }

    /// Erase `key`; returns whether it was present.
    pub fn erase(&mut self, key: PackedEdge) -> bool {
        debug_assert!(key < TOMBSTONE);
        let mut idx = self.home_bucket(key);
        loop {
            match self.buckets[idx] {
                EMPTY => return false,
                slot if slot == key => {
                    self.buckets[idx] = TOMBSTONE;
                    self.len -= 1;
                    self.tombstones += 1;
                    return true;
                }
                _ => idx = (idx + 1) & self.mask,
            }
        }
    }

    /// Iterate over the stored edges (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = PackedEdge> + '_ {
        self.buckets.iter().copied().filter(|&b| b < TOMBSTONE)
    }

    /// Grow or clean the table when live entries or tombstones exceed the
    /// load-factor targets (live ≤ 1/2, live + tombstones ≤ 3/4).
    fn maybe_grow(&mut self) {
        let cap = self.buckets.len();
        if (self.len + 1) * 2 > cap || (self.len + self.tombstones + 1) * 4 > cap * 3 {
            let new_cap = if (self.len + 1) * 2 > cap { cap * 2 } else { cap };
            let old = std::mem::replace(&mut self.buckets, vec![EMPTY; new_cap]);
            self.mask = new_cap - 1;
            self.len = 0;
            self.tombstones = 0;
            for key in old.into_iter().filter(|&b| b < TOMBSTONE) {
                let mut idx = self.home_bucket(key);
                while self.buckets[idx] != EMPTY {
                    idx = (idx + 1) & self.mask;
                }
                self.buckets[idx] = key;
                self.len += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesmc_graph::Edge;

    fn key(u: u32, v: u32) -> PackedEdge {
        Edge::new(u, v).pack()
    }

    #[test]
    fn insert_contains_erase_roundtrip() {
        let mut set = SeqEdgeSet::with_capacity(8);
        assert!(set.is_empty());
        assert!(set.insert(key(1, 2)));
        assert!(!set.insert(key(2, 1)), "same undirected edge");
        assert!(set.contains(key(1, 2)));
        assert!(!set.contains(key(1, 3)));
        assert_eq!(set.len(), 1);
        assert!(set.erase(key(1, 2)));
        assert!(!set.erase(key(1, 2)));
        assert!(set.is_empty());
    }

    #[test]
    fn tombstones_do_not_hide_entries() {
        let mut set = SeqEdgeSet::with_capacity(4);
        // Fill, erase, re-insert repeatedly to exercise tombstone reuse.
        for round in 0..50u32 {
            for i in 0..20u32 {
                set.insert(key(round, i + 1 + round));
            }
            for i in 0..10u32 {
                assert!(set.erase(key(round, i + 1 + round)));
            }
            for i in 10..20u32 {
                assert!(set.contains(key(round, i + 1 + round)), "round {round} lost an edge");
            }
        }
    }

    #[test]
    fn grows_beyond_initial_capacity() {
        let mut set = SeqEdgeSet::with_capacity(2);
        for i in 0..10_000u32 {
            assert!(set.insert(key(i, i + 1)));
        }
        assert_eq!(set.len(), 10_000);
        for i in 0..10_000u32 {
            assert!(set.contains(key(i, i + 1)));
        }
        // Load factor stays at or below 1/2.
        assert!(set.capacity() >= 2 * set.len());
    }

    #[test]
    fn iter_returns_exactly_the_live_edges() {
        let mut set = SeqEdgeSet::with_capacity(16);
        let keys: Vec<u64> = (0..100u32).map(|i| key(i, i + 7)).collect();
        for &k in &keys {
            set.insert(k);
        }
        for &k in keys.iter().take(30) {
            set.erase(k);
        }
        let mut live: Vec<u64> = set.iter().collect();
        live.sort_unstable();
        let mut expected: Vec<u64> = keys[30..].to_vec();
        expected.sort_unstable();
        assert_eq!(live, expected);
    }

    #[test]
    fn prefetch_has_no_semantic_effect() {
        let mut set = SeqEdgeSet::with_capacity(8);
        set.insert(key(3, 9));
        set.prefetch(key(3, 9));
        set.prefetch(key(4, 5));
        assert!(set.contains(key(3, 9)));
        assert!(!set.contains(key(4, 5)));
    }

    #[test]
    fn heavy_mixed_workload_matches_std_hashset() {
        use std::collections::HashSet;
        let mut ours = SeqEdgeSet::with_capacity(4);
        let mut reference: HashSet<u64> = HashSet::new();
        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..20_000 {
            let u = (next() % 500) as u32;
            let v = (next() % 500) as u32;
            if u == v {
                continue;
            }
            let k = key(u, v);
            match next() % 3 {
                0 => assert_eq!(ours.insert(k), reference.insert(k)),
                1 => assert_eq!(ours.erase(k), reference.remove(&k)),
                _ => assert_eq!(ours.contains(k), reference.contains(&k)),
            }
        }
        assert_eq!(ours.len(), reference.len());
    }
}
