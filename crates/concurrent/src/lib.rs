//! Concurrent data structures for exact parallel edge switching.
//!
//! Section 5 of the paper describes the data-structure layer that makes the
//! parallel chains fast and exact:
//!
//! * a **concurrent edge hash set** with open addressing, power-of-two
//!   capacity, a low maximum load factor, and an 8-bit lock field per bucket
//!   manipulated with compare-and-swap ([`edge_set::ConcurrentEdgeSet`]),
//! * a **sequential edge hash set** tuned for the single-threaded chains,
//!   including the split hash-then-operate API used for software prefetching
//!   ([`seq_set::SeqEdgeSet`]),
//! * the **dependency table** of `ParallelSuperstep` (Algorithm 1) mapping
//!   packed target/source edges to erase/insert records with three-state
//!   (undecided / legal / illegal) entries ([`dep_table::DependencyTable`]),
//! * the **`insert_if_min` hash map** used by `ParES` (Algorithm 2) to find
//!   the longest source-dependency-free prefix ([`min_map::MinIndexMap`]),
//! * an **atomic edge array** so that switches owning disjoint indices can
//!   rewire `E[i]`/`E[j]` from different threads without locks
//!   ([`atomic_edge_list::AtomicEdgeList`]),
//! * portable **software prefetch** helpers ([`prefetch`]).
//!
//! All structures are safe Rust; the only (optional) unsafe code is the
//! x86_64 prefetch intrinsic, which is isolated in [`prefetch`].

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod atomic_edge_list;
pub mod dep_table;
pub mod edge_set;
pub mod min_map;
pub mod prefetch;
pub mod seq_set;

pub use atomic_edge_list::AtomicEdgeList;
pub use dep_table::{DependencyTable, EraseLookup, InsertConstraint, SwitchState};
pub use edge_set::{ConcurrentEdgeSet, LockOutcome};
pub use min_map::MinIndexMap;
pub use seq_set::SeqEdgeSet;

/// Scramble a packed edge identifier into a well-distributed hash.
///
/// The paper uses the hardware `crc32` instruction; we use the splitmix64 /
/// Murmur3 finalizer, which has equivalent scrambling quality, is portable,
/// and needs no feature detection.
#[inline]
pub fn hash_edge(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_edge_spreads_consecutive_keys() {
        // Consecutive packed edges should spread like random keys: throwing
        // 512 balls into 1024 bins hits ~403 distinct bins in expectation, so
        // anything far below that indicates clustering in the low bits.
        let mask = 1023u64;
        let mut buckets = std::collections::HashSet::new();
        for k in 0..512u64 {
            buckets.insert(hash_edge(k) & mask);
        }
        assert!(buckets.len() > 350, "only {} distinct buckets", buckets.len());
    }

    #[test]
    fn hash_edge_is_deterministic() {
        assert_eq!(hash_edge(12345), hash_edge(12345));
        assert_ne!(hash_edge(1), hash_edge(2));
    }
}
