//! Portable software-prefetch helpers.
//!
//! Randomised edge switching makes inherently unstructured memory accesses
//! (Sec. 5.4 of the paper).  The sequential chains hide part of the resulting
//! cache-miss latency by splitting every hash-set operation into a
//! *hash-and-prefetch* step and an *operate* step, with a small pipeline of
//! switches in flight between the two.  These helpers issue the prefetch; on
//! platforms without a stable prefetch intrinsic they compile to a no-op, so
//! the surrounding algorithm stays portable.

/// Prefetch the cache line containing `slice[index]` for reading.
///
/// A best-effort hint: out-of-range indices are ignored, and on targets other
/// than x86_64 the call is a no-op.
#[inline]
pub fn prefetch_read<T>(slice: &[T], index: usize) {
    if index >= slice.len() {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    {
        let ptr = &slice[index] as *const T;
        // SAFETY: `ptr` points into a live slice element; _mm_prefetch has no
        // memory side effects and is safe for any readable address.
        unsafe {
            core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                ptr as *const i8,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = slice;
        let _ = index;
    }
}

/// Prefetch `slice[index]` and its successor (`index + 1`).
///
/// Linear-probing hash sets with a low load factor nearly always resolve a
/// query within two consecutive buckets, so prefetching the pair removes
/// almost all misses (this mirrors the paper's "prefetch this bucket as well
/// as its direct successor").
#[inline]
pub fn prefetch_read_pair<T>(slice: &[T], index: usize) {
    prefetch_read(slice, index);
    prefetch_read(slice, index + 1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_harmless() {
        let data = vec![1u64, 2, 3, 4];
        prefetch_read(&data, 0);
        prefetch_read(&data, 3);
        prefetch_read(&data, 100); // out of range: ignored
        prefetch_read_pair(&data, 3); // second element out of range: ignored
        prefetch_read_pair::<u64>(&[], 0);
        assert_eq!(data, vec![1, 2, 3, 4]);
    }
}
