//! Concurrent open-addressing edge hash set with per-bucket lock bits.
//!
//! This is the data structure of Sec. 5.2 of the paper: each bucket is a
//! single 64-bit word holding a packed edge in its lower 56 bits and an 8-bit
//! lock/owner field in its upper byte, manipulated exclusively through
//! compare-and-swap.  The 56-bit edge encoding restricts node ids to 28 bits
//! (`n ≤ 2^28`), exactly as in the paper; all evaluation graphs fit
//! comfortably.
//!
//! The set serves two distinct clients:
//!
//! * the **exact parallel chains** use it as the authoritative edge-existence
//!   set: concurrent `contains` during a superstep, then batched parallel
//!   `erase`/`insert` of the decided switches (no locks needed because
//!   Observation 2 guarantees each edge is erased at most once and inserted by
//!   at most one legal switch per superstep);
//! * **`NaiveParES`** uses the ticket semantics — lock an existing edge or
//!   insert-and-lock a new one — to prevent concurrent updates of the same
//!   edge while deliberately ignoring switch dependencies.
//!
//! Deleted entries become tombstones; the owner rebuilds the table between
//! supersteps once tombstones start to degrade probe lengths
//! ([`ConcurrentEdgeSet::needs_rebuild`] / [`ConcurrentEdgeSet::rebuild`]).

use crate::hash_edge;
use crate::prefetch::prefetch_read_pair;
use gesmc_graph::Edge;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

const EMPTY: u64 = 0;
const TOMBSTONE: u64 = 0xFF00_0000_0000_0000;
const EDGE_MASK: u64 = (1 << 56) - 1;

/// Outcome of a ticket-acquisition operation used by `NaiveParES`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockOutcome {
    /// The ticket was acquired (edge locked by the caller).
    Acquired,
    /// The edge exists but is currently locked by another processing unit.
    Busy,
    /// The edge is not in the set.
    NotFound,
    /// The edge is already in the set (insert-and-lock only).
    AlreadyPresent,
}

/// A concurrent hash set of packed edges with 8-bit lock fields.
#[derive(Debug)]
pub struct ConcurrentEdgeSet {
    buckets: Vec<AtomicU64>,
    mask: usize,
    live: AtomicUsize,
    tombstones: AtomicUsize,
}

impl ConcurrentEdgeSet {
    /// Create a set able to hold `capacity_hint` edges at load factor ≤ 1/2.
    pub fn with_capacity(capacity_hint: usize) -> Self {
        let buckets = (capacity_hint.max(4) * 2).next_power_of_two();
        Self {
            buckets: (0..buckets).map(|_| AtomicU64::new(EMPTY)).collect(),
            mask: buckets - 1,
            live: AtomicUsize::new(0),
            tombstones: AtomicUsize::new(0),
        }
    }

    /// Build a set containing the edges of `edges`.
    pub fn from_edges<'a>(edges: impl IntoIterator<Item = &'a Edge>, capacity_hint: usize) -> Self {
        let set = Self::with_capacity(capacity_hint);
        for e in edges {
            set.insert(*e);
        }
        set
    }

    /// Number of live edges (exact when no operations are in flight).
    pub fn len(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of buckets.
    pub fn capacity(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn key_of(edge: Edge) -> u64 {
        edge.pack56()
    }

    #[inline]
    fn entry(key: u64, lock: u8) -> u64 {
        ((lock as u64) << 56) | key
    }

    #[inline]
    fn home_bucket(&self, key: u64) -> usize {
        (hash_edge(key) as usize) & self.mask
    }

    /// Issue a software prefetch for the buckets `edge` will probe first.
    #[inline]
    pub fn prefetch(&self, edge: Edge) {
        prefetch_read_pair(&self.buckets, self.home_bucket(Self::key_of(edge)));
    }

    /// Whether `edge` is in the set (locked or not).
    pub fn contains(&self, edge: Edge) -> bool {
        let key = Self::key_of(edge);
        let mut idx = self.home_bucket(key);
        loop {
            let slot = self.buckets[idx].load(Ordering::Acquire);
            if slot == EMPTY {
                return false;
            }
            if slot != TOMBSTONE && (slot & EDGE_MASK) == key {
                return true;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Insert `edge` unlocked; returns `false` if it was already present.
    ///
    /// Concurrent inserts of the *same* edge are resolved so that exactly one
    /// caller observes `true`.
    pub fn insert(&self, edge: Edge) -> bool {
        assert!(
            self.live.load(Ordering::Relaxed) + self.tombstones.load(Ordering::Relaxed)
                < self.buckets.len() - 1,
            "ConcurrentEdgeSet is overfull: size it for the graph's edge count and rebuild \
             between supersteps to reclaim tombstones"
        );
        let key = Self::key_of(edge);
        let mut idx = self.home_bucket(key);
        loop {
            let slot = self.buckets[idx].load(Ordering::Acquire);
            if slot == EMPTY {
                match self.buckets[idx].compare_exchange(
                    EMPTY,
                    Self::entry(key, 0),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        self.live.fetch_add(1, Ordering::Relaxed);
                        return true;
                    }
                    Err(_) => continue, // re-examine the same bucket
                }
            }
            if slot != TOMBSTONE && (slot & EDGE_MASK) == key {
                return false;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Erase `edge` (regardless of its lock state); returns whether it was
    /// present.
    pub fn erase(&self, edge: Edge) -> bool {
        let key = Self::key_of(edge);
        let mut idx = self.home_bucket(key);
        loop {
            let slot = self.buckets[idx].load(Ordering::Acquire);
            if slot == EMPTY {
                return false;
            }
            if slot != TOMBSTONE && (slot & EDGE_MASK) == key {
                match self.buckets[idx].compare_exchange(
                    slot,
                    TOMBSTONE,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        self.live.fetch_sub(1, Ordering::Relaxed);
                        self.tombstones.fetch_add(1, Ordering::Relaxed);
                        return true;
                    }
                    Err(_) => continue,
                }
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Acquire the ticket of an existing edge by locking it (CAS the owner id
    /// into the lock byte).  `owner` must be non-zero.
    pub fn try_lock_existing(&self, edge: Edge, owner: u8) -> LockOutcome {
        debug_assert!(owner != 0, "owner id 0 denotes the unlocked state");
        let key = Self::key_of(edge);
        let mut idx = self.home_bucket(key);
        loop {
            let slot = self.buckets[idx].load(Ordering::Acquire);
            if slot == EMPTY {
                return LockOutcome::NotFound;
            }
            if slot != TOMBSTONE && (slot & EDGE_MASK) == key {
                if slot >> 56 != 0 {
                    return LockOutcome::Busy;
                }
                return match self.buckets[idx].compare_exchange(
                    slot,
                    Self::entry(key, owner),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => LockOutcome::Acquired,
                    Err(_) => LockOutcome::Busy,
                };
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Acquire a ticket for a *new* edge by inserting it in locked state.
    ///
    /// Returns [`LockOutcome::AlreadyPresent`] if the edge exists (locked or
    /// not), otherwise inserts it locked by `owner` and returns
    /// [`LockOutcome::Acquired`].
    pub fn try_insert_and_lock(&self, edge: Edge, owner: u8) -> LockOutcome {
        debug_assert!(owner != 0, "owner id 0 denotes the unlocked state");
        assert!(
            self.live.load(Ordering::Relaxed) + self.tombstones.load(Ordering::Relaxed)
                < self.buckets.len() - 1,
            "ConcurrentEdgeSet is overfull: size it for the graph's edge count and rebuild \
             between supersteps to reclaim tombstones"
        );
        let key = Self::key_of(edge);
        let mut idx = self.home_bucket(key);
        loop {
            let slot = self.buckets[idx].load(Ordering::Acquire);
            if slot == EMPTY {
                match self.buckets[idx].compare_exchange(
                    EMPTY,
                    Self::entry(key, owner),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        self.live.fetch_add(1, Ordering::Relaxed);
                        return LockOutcome::Acquired;
                    }
                    Err(_) => continue,
                }
            }
            if slot != TOMBSTONE && (slot & EDGE_MASK) == key {
                return LockOutcome::AlreadyPresent;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Release the lock on an edge held by `owner` (keeps the edge in the set).
    ///
    /// Returns whether the unlock happened (i.e. the edge was present and
    /// locked by `owner`).
    pub fn unlock(&self, edge: Edge, owner: u8) -> bool {
        let key = Self::key_of(edge);
        let locked = Self::entry(key, owner);
        let mut idx = self.home_bucket(key);
        loop {
            let slot = self.buckets[idx].load(Ordering::Acquire);
            if slot == EMPTY {
                return false;
            }
            if slot != TOMBSTONE && (slot & EDGE_MASK) == key {
                return self.buckets[idx]
                    .compare_exchange(
                        locked,
                        Self::entry(key, 0),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok();
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Erase an edge whose ticket is held by `owner`.
    ///
    /// Returns whether the erase happened.
    pub fn erase_locked(&self, edge: Edge, owner: u8) -> bool {
        let key = Self::key_of(edge);
        let locked = Self::entry(key, owner);
        let mut idx = self.home_bucket(key);
        loop {
            let slot = self.buckets[idx].load(Ordering::Acquire);
            if slot == EMPTY {
                return false;
            }
            if slot != TOMBSTONE && (slot & EDGE_MASK) == key {
                let ok = self.buckets[idx]
                    .compare_exchange(locked, TOMBSTONE, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok();
                if ok {
                    self.live.fetch_sub(1, Ordering::Relaxed);
                    self.tombstones.fetch_add(1, Ordering::Relaxed);
                }
                return ok;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Whether accumulated tombstones warrant a rebuild (live + tombstones
    /// exceed half of the capacity).
    ///
    /// The threshold is deliberately conservative: the chains call this
    /// between supersteps, and a single superstep can add up to `2m` new
    /// slots (tombstones for erased edges plus freshly inserted ones), so the
    /// table must never enter a superstep more than half full.
    pub fn needs_rebuild(&self) -> bool {
        let used = self.live.load(Ordering::Relaxed) + self.tombstones.load(Ordering::Relaxed);
        2 * used > self.buckets.len()
    }

    /// Rebuild the table from its live entries, dropping all tombstones.
    ///
    /// Requires exclusive access, which the chains have between supersteps.
    pub fn rebuild(&mut self) {
        let live: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .filter(|&slot| slot != EMPTY && slot != TOMBSTONE)
            .map(|slot| slot & EDGE_MASK)
            .collect();
        let cap = self.buckets.len();
        for b in &mut self.buckets {
            *b = AtomicU64::new(EMPTY);
        }
        self.mask = cap - 1;
        self.tombstones.store(0, Ordering::Relaxed);
        self.live.store(live.len(), Ordering::Relaxed);
        for key in live {
            let mut idx = self.home_bucket(key);
            loop {
                if self.buckets[idx].load(Ordering::Relaxed) == EMPTY {
                    self.buckets[idx].store(Self::entry(key, 0), Ordering::Relaxed);
                    break;
                }
                idx = (idx + 1) & self.mask;
            }
        }
    }

    /// Iterate over the live edges (arbitrary order).  Intended for
    /// diagnostics and tests; concurrent modification yields an unspecified
    /// but memory-safe snapshot.
    pub fn iter(&self) -> impl Iterator<Item = Edge> + '_ {
        self.buckets.iter().filter_map(|b| {
            let slot = b.load(Ordering::Relaxed);
            if slot == EMPTY || slot == TOMBSTONE {
                None
            } else {
                Some(Edge::unpack56(slot & EDGE_MASK))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn insert_contains_erase() {
        let set = ConcurrentEdgeSet::with_capacity(16);
        assert!(set.insert(Edge::new(1, 2)));
        assert!(!set.insert(Edge::new(2, 1)));
        assert!(set.contains(Edge::new(1, 2)));
        assert!(!set.contains(Edge::new(1, 3)));
        assert_eq!(set.len(), 1);
        assert!(set.erase(Edge::new(1, 2)));
        assert!(!set.erase(Edge::new(1, 2)));
        assert!(!set.contains(Edge::new(1, 2)));
        assert!(set.is_empty());
    }

    #[test]
    fn lock_semantics() {
        let set = ConcurrentEdgeSet::with_capacity(16);
        set.insert(Edge::new(0, 1));

        assert_eq!(set.try_lock_existing(Edge::new(0, 1), 7), LockOutcome::Acquired);
        assert_eq!(set.try_lock_existing(Edge::new(0, 1), 9), LockOutcome::Busy);
        assert_eq!(set.try_lock_existing(Edge::new(2, 3), 7), LockOutcome::NotFound);
        // Still visible while locked.
        assert!(set.contains(Edge::new(0, 1)));

        // Unlock only succeeds for the owner.
        assert!(!set.unlock(Edge::new(0, 1), 9));
        assert!(set.unlock(Edge::new(0, 1), 7));
        assert_eq!(set.try_lock_existing(Edge::new(0, 1), 9), LockOutcome::Acquired);

        // Erase-locked requires ownership.
        assert!(!set.erase_locked(Edge::new(0, 1), 7));
        assert!(set.erase_locked(Edge::new(0, 1), 9));
        assert!(!set.contains(Edge::new(0, 1)));
    }

    #[test]
    fn insert_and_lock_semantics() {
        let set = ConcurrentEdgeSet::with_capacity(16);
        assert_eq!(set.try_insert_and_lock(Edge::new(4, 5), 3), LockOutcome::Acquired);
        assert_eq!(set.try_insert_and_lock(Edge::new(4, 5), 8), LockOutcome::AlreadyPresent);
        assert!(set.contains(Edge::new(4, 5)));
        // Rollback: erase the edge we just inserted and locked.
        assert!(set.erase_locked(Edge::new(4, 5), 3));
        assert!(!set.contains(Edge::new(4, 5)));
        // Commit path: insert-and-lock then unlock keeps the edge.
        assert_eq!(set.try_insert_and_lock(Edge::new(4, 5), 3), LockOutcome::Acquired);
        assert!(set.unlock(Edge::new(4, 5), 3));
        assert_eq!(set.try_lock_existing(Edge::new(4, 5), 8), LockOutcome::Acquired);
    }

    #[test]
    fn concurrent_inserts_of_distinct_edges() {
        let n = 50_000u32;
        let set = ConcurrentEdgeSet::with_capacity(n as usize);
        (0..n).into_par_iter().for_each(|i| {
            assert!(set.insert(Edge::new(i, i + 1)));
        });
        assert_eq!(set.len(), n as usize);
        (0..n).into_par_iter().for_each(|i| {
            assert!(set.contains(Edge::new(i, i + 1)));
            assert!(!set.contains(Edge::new(i, i + 2)));
        });
    }

    #[test]
    fn concurrent_inserts_of_same_edge_only_one_wins() {
        let set = ConcurrentEdgeSet::with_capacity(64);
        let winners: usize =
            (0..64).into_par_iter().map(|_| set.insert(Edge::new(10, 20)) as usize).sum();
        assert_eq!(winners, 1);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn concurrent_lock_contention_grants_one_ticket() {
        let set = ConcurrentEdgeSet::with_capacity(16);
        set.insert(Edge::new(1, 2));
        let acquired: usize = (1..=64u8)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|tid| {
                (set.try_lock_existing(Edge::new(1, 2), tid) == LockOutcome::Acquired) as usize
            })
            .sum();
        assert_eq!(acquired, 1);
    }

    #[test]
    fn rebuild_drops_tombstones_and_keeps_live_edges() {
        // 256 buckets; erasing converts live entries to tombstones without
        // freeing slots, so 140 total inserts (> 128 = half the capacity)
        // trip the rebuild threshold while the table is never full.
        let mut set = ConcurrentEdgeSet::with_capacity(128);
        for i in 0..140u32 {
            set.insert(Edge::new(i, i + 1));
        }
        for i in 0..100u32 {
            set.erase(Edge::new(i, i + 1));
        }
        assert!(set.needs_rebuild());
        set.rebuild();
        assert!(!set.needs_rebuild());
        assert_eq!(set.len(), 40);
        for i in 100..140u32 {
            assert!(set.contains(Edge::new(i, i + 1)));
        }
        for i in 0..100u32 {
            assert!(!set.contains(Edge::new(i, i + 1)));
        }
    }

    #[test]
    #[should_panic(expected = "overfull")]
    fn overfilling_panics_instead_of_hanging() {
        let set = ConcurrentEdgeSet::with_capacity(4);
        for i in 0..64u32 {
            set.insert(Edge::new(i, i + 1));
        }
    }

    #[test]
    fn iter_snapshot() {
        let set = ConcurrentEdgeSet::with_capacity(16);
        set.insert(Edge::new(1, 2));
        set.insert(Edge::new(3, 4));
        set.insert(Edge::new(5, 6));
        set.erase(Edge::new(3, 4));
        let mut edges: Vec<Edge> = set.iter().collect();
        edges.sort();
        assert_eq!(edges, vec![Edge::new(1, 2), Edge::new(5, 6)]);
    }

    #[test]
    fn parallel_erase_and_insert_batches() {
        // Mimics the end-of-superstep update: first erase a batch, then insert
        // a batch, both in parallel.
        let n = 20_000u32;
        let set = ConcurrentEdgeSet::with_capacity(2 * n as usize);
        (0..n).into_par_iter().for_each(|i| {
            set.insert(Edge::new(i, i + 1));
        });
        (0..n).into_par_iter().for_each(|i| {
            assert!(set.erase(Edge::new(i, i + 1)));
        });
        (0..n).into_par_iter().for_each(|i| {
            assert!(set.insert(Edge::new(i, i + 2)));
        });
        assert_eq!(set.len(), n as usize);
        (0..n).into_par_iter().for_each(|i| {
            assert!(!set.contains(Edge::new(i, i + 1)));
            assert!(set.contains(Edge::new(i, i + 2)));
        });
    }
}
