//! Distributed tracing: cross-process span trees with tail-based sampling.
//!
//! ## Span model
//!
//! A **trace** is one logical request's tree of **spans** across any number
//! of processes.  Trace ids are 128-bit, span ids 64-bit; every span carries
//! its parent span id (if any), a static phase name (`"request"`,
//! `"forward"`, `"compute"`, …), a wall-clock start, a duration, an error
//! flag, and free-form `key=value` annotations.  Spans are cheap value
//! guards: [`Span`] records itself into the process-local [`Tracer`] when
//! dropped, so instrumented code never talks to a collector.
//!
//! ## Recording and tail-based sampling
//!
//! Finished spans land in a bounded, trace-id-sharded pending buffer (one
//! mutexed deque per shard, so concurrent requests rarely contend).  When a
//! trace's **local root** span finishes, every pending span of that trace is
//! gathered and the *tail* decision runs — with the whole trace in hand, not
//! up front:
//!
//! * traces with any **error** span are always kept;
//! * traces whose local root ran at least the policy's **slow threshold**
//!   are always kept;
//! * traces whose propagated flags carry [`FLAG_SAMPLED`] are always kept;
//! * the rest are kept with probability `keep_fraction`, decided by a pure
//!   hash of the trace id — so every process in a cluster keeps or drops
//!   the *same* traces and cross-process trees stay joinable.
//!
//! Kept traces move to a bounded flight-recorder ring (oldest evicted) that
//! `GET /v1/debug/traces` and `GET /v1/debug/trace/{id}` serve as JSON.
//!
//! ## Propagation
//!
//! [`SpanContext`] is the wire form: a traceparent-style
//! `trace_id-span_id-flags` triple carried in the `X-Gesmc-Trace` HTTP
//! header ([`SpanContext::to_header`]/[`SpanContext::parse`]).  Within a
//! process, [`with_context`] installs a context for a scope (e.g. an engine
//! worker running a queued job) and [`child_of_current`] lets deeper layers
//! attach spans without threading handles through every signature.
//!
//! ```
//! let mut root = gesmc_obs::trace::tracer().start_root("request");
//! root.annotate("path", "/v1/samples/demo");
//! {
//!     let mut compute = root.child("compute");
//!     compute.annotate("chain", "seq-es");
//! } // compute records itself here
//! drop(root); // local root: the tail decision runs now
//! ```

use crate::log::push_json_escaped;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Flag bit: the trace was force-sampled at its origin; every process must
/// keep it regardless of the probabilistic decision.
pub const FLAG_SAMPLED: u8 = 1;

/// Pending-span shards; spans of one trace always land in one shard.
const SHARDS: usize = 8;

/// Default bound on buffered spans per shard awaiting their tail decision.
const DEFAULT_PENDING_PER_SHARD: usize = 1024;

/// Default bound on kept traces in the flight-recorder ring.
const DEFAULT_KEPT_TRACES: usize = 256;

/// Bound on spans retained per kept trace (defensive; real traces are small).
const MAX_SPANS_PER_TRACE: usize = 512;

/// A 128-bit trace identifier (32 lowercase hex chars on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u128);

impl TraceId {
    /// Render as 32 lowercase hex chars.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parse exactly 32 hex chars.
    pub fn parse(s: &str) -> Option<TraceId> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(TraceId)
    }
}

/// A 64-bit span identifier (16 lowercase hex chars on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// Render as 16 lowercase hex chars.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parse exactly 16 hex chars.
    pub fn parse(s: &str) -> Option<SpanId> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(SpanId)
    }
}

/// The propagated identity of a span: what crosses process boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// The span itself (a child created from this context uses it as parent).
    pub span: SpanId,
    /// Trace flags; see [`FLAG_SAMPLED`].
    pub flags: u8,
}

impl SpanContext {
    /// Wire form for the `X-Gesmc-Trace` header:
    /// `{trace:032x}-{span:016x}-{flags:02x}`.
    pub fn to_header(&self) -> String {
        format!("{:032x}-{:016x}-{:02x}", self.trace.0, self.span.0, self.flags)
    }

    /// Parse the wire form; `None` on any malformed field.
    pub fn parse(header: &str) -> Option<SpanContext> {
        let header = header.trim();
        if header.len() != 32 + 1 + 16 + 1 + 2 {
            return None;
        }
        let (trace, rest) = header.split_at(32);
        let rest = rest.strip_prefix('-')?;
        let (span, rest) = rest.split_at(16);
        let flags = rest.strip_prefix('-')?;
        Some(SpanContext {
            trace: TraceId::parse(trace)?,
            span: SpanId::parse(span)?,
            flags: u8::from_str_radix(flags, 16).ok()?,
        })
    }

    /// Was the trace force-sampled at its origin?
    pub fn is_sampled(&self) -> bool {
        self.flags & FLAG_SAMPLED != 0
    }
}

/// Tail-sampling policy; see the [module docs](self).
#[derive(Debug, Clone, Copy)]
pub struct TracePolicy {
    /// Local-root durations at or above this are always kept.
    pub slow_threshold: Duration,
    /// Probability (0.0–1.0) of keeping an ordinary trace, decided by a
    /// pure hash of the trace id so all processes agree.
    pub keep_fraction: f64,
}

impl Default for TracePolicy {
    fn default() -> Self {
        TracePolicy { slow_threshold: Duration::from_millis(250), keep_fraction: 0.05 }
    }
}

/// One finished span, as stored and served.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Owning trace.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// Parent span id, `None` for the origin root.
    pub parent: Option<SpanId>,
    /// Static phase name.
    pub name: &'static str,
    /// Wall-clock start, microseconds since the Unix epoch.
    pub start_unix_us: u64,
    /// Duration in microseconds.
    pub duration_us: u64,
    /// Did the spanned operation fail?
    pub error: bool,
    /// Free-form `key=value` annotations.
    pub annotations: Vec<(&'static str, String)>,
}

/// One kept trace: the local fragment of its span tree.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Trace id shared by every span.
    pub trace: TraceId,
    /// Spans recorded in this process, local root last.
    pub spans: Vec<SpanRecord>,
}

/// The process-local span collector and flight recorder.
///
/// Production code uses the global [`tracer()`]; tests construct their own
/// so policies never race across the test harness's threads.
#[derive(Debug)]
pub struct Tracer {
    slow_ns: AtomicU64,
    /// Keep an ordinary trace when `mix64(trace id) < keep_threshold`.
    keep_threshold: AtomicU64,
    pending_cap: usize,
    kept_cap: usize,
    pending: [Mutex<VecDeque<SpanRecord>>; SHARDS],
    kept: Mutex<VecDeque<TraceRecord>>,
    service: Mutex<String>,
}

impl Tracer {
    /// A tracer with `policy` and default buffer bounds.
    pub fn new(policy: TracePolicy) -> Tracer {
        Tracer::with_capacity(policy, DEFAULT_PENDING_PER_SHARD, DEFAULT_KEPT_TRACES)
    }

    /// A tracer with explicit buffer bounds (tests).
    pub fn with_capacity(policy: TracePolicy, pending_per_shard: usize, kept: usize) -> Tracer {
        let tracer = Tracer {
            slow_ns: AtomicU64::new(0),
            keep_threshold: AtomicU64::new(0),
            pending_cap: pending_per_shard.max(1),
            kept_cap: kept.max(1),
            pending: std::array::from_fn(|_| Mutex::new(VecDeque::new())),
            kept: Mutex::new(VecDeque::new()),
            service: Mutex::new("gesmc".to_string()),
        };
        tracer.set_policy(policy);
        tracer
    }

    /// Replace the sampling policy (takes effect for the next tail decision).
    pub fn set_policy(&self, policy: TracePolicy) {
        let slow = u64::try_from(policy.slow_threshold.as_nanos()).unwrap_or(u64::MAX);
        self.slow_ns.store(slow, Ordering::Relaxed);
        let fraction = policy.keep_fraction.clamp(0.0, 1.0);
        let threshold = if fraction >= 1.0 {
            u64::MAX
        } else {
            // fraction in [0,1): scale into the u64 range.
            (fraction * (u64::MAX as f64)) as u64
        };
        self.keep_threshold.store(threshold, Ordering::Relaxed);
    }

    /// Set the service label stamped on every span this process serves
    /// (e.g. the advertised `host:port`, or `"cli"`).
    pub fn set_service(&self, service: impl Into<String>) {
        *self.service.lock().expect("tracer service poisoned") = service.into();
    }

    /// The current service label.
    pub fn service(&self) -> String {
        self.service.lock().expect("tracer service poisoned").clone()
    }

    /// Start a brand-new trace rooted in this process (no inbound context).
    pub fn start_root(&self, name: &'static str) -> Span<'_> {
        self.start_root_flagged(name, 0)
    }

    /// Start a new trace with explicit flags (e.g. [`FLAG_SAMPLED`] from an
    /// origin that wants the trace kept everywhere).
    pub fn start_root_flagged(&self, name: &'static str, flags: u8) -> Span<'_> {
        let trace = TraceId(((next_id() as u128) << 64) | next_id() as u128);
        self.span(trace, None, name, flags, true)
    }

    /// Continue an inbound trace: a local root whose parent lives in the
    /// sending process.
    pub fn continue_trace(&self, ctx: SpanContext, name: &'static str) -> Span<'_> {
        self.span(ctx.trace, Some(ctx.span), name, ctx.flags, true)
    }

    /// A non-root span attached to `ctx` (cross-thread propagation).
    pub fn span_from_context(&self, ctx: SpanContext, name: &'static str) -> Span<'_> {
        self.span(ctx.trace, Some(ctx.span), name, ctx.flags, false)
    }

    fn span(
        &self,
        trace: TraceId,
        parent: Option<SpanId>,
        name: &'static str,
        flags: u8,
        local_root: bool,
    ) -> Span<'_> {
        Span {
            tracer: self,
            trace,
            id: SpanId(next_id()),
            parent,
            name,
            flags,
            local_root,
            start_unix_us: now_unix_us(),
            started: Instant::now(),
            error: false,
            annotations: Vec::new(),
        }
    }

    fn shard(&self, trace: TraceId) -> &Mutex<VecDeque<SpanRecord>> {
        &self.pending[(mix64(trace.0 as u64 ^ (trace.0 >> 64) as u64) as usize) % SHARDS]
    }

    /// Buffer one finished non-root span until its trace's tail decision.
    fn record(&self, record: SpanRecord) {
        let mut shard = self.shard(record.trace).lock().expect("trace shard poisoned");
        if shard.len() >= self.pending_cap {
            shard.pop_front();
        }
        shard.push_back(record);
    }

    /// The tail decision: gather the trace's pending spans, keep or drop.
    fn finish_local_root(&self, root: SpanRecord, flags: u8) {
        let mut spans: Vec<SpanRecord> = {
            let mut shard = self.shard(root.trace).lock().expect("trace shard poisoned");
            let mut gathered = Vec::new();
            shard.retain(|span| {
                if span.trace == root.trace && gathered.len() < MAX_SPANS_PER_TRACE {
                    gathered.push(span.clone());
                    false
                } else {
                    true
                }
            });
            gathered
        };
        let slow = root.duration_us.saturating_mul(1_000) >= self.slow_ns.load(Ordering::Relaxed);
        let errored = root.error || spans.iter().any(|span| span.error);
        let keep = flags & FLAG_SAMPLED != 0
            || errored
            || slow
            || keep_by_hash(root.trace, self.keep_threshold.load(Ordering::Relaxed));
        if !keep {
            return;
        }
        spans.push(root);
        let trace = spans[0].trace;
        let mut kept = self.kept.lock().expect("trace ring poisoned");
        if kept.len() >= self.kept_cap {
            kept.pop_front();
        }
        kept.push_back(TraceRecord { trace, spans });
    }

    /// Snapshot of every kept trace, oldest first (tests, debug dumps).
    pub fn kept_traces(&self) -> Vec<TraceRecord> {
        self.kept.lock().expect("trace ring poisoned").iter().cloned().collect()
    }

    /// The kept trace with `trace` id, if still in the ring.
    pub fn kept_trace(&self, trace: TraceId) -> Option<TraceRecord> {
        self.kept.lock().expect("trace ring poisoned").iter().find(|t| t.trace == trace).cloned()
    }

    /// JSON span tree for one kept trace: `{"trace_id","service","spans":[…]}`.
    pub fn trace_json(&self, trace: TraceId) -> Option<String> {
        let record = self.kept_trace(trace)?;
        let service = self.service();
        let mut out = String::with_capacity(256);
        out.push_str("{\"trace_id\":\"");
        out.push_str(&trace.to_hex());
        out.push_str("\",\"service\":\"");
        push_json_escaped(&mut out, &service);
        out.push_str("\",\"spans\":[");
        for (i, span) in record.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_span_json(&mut out, span, &service);
        }
        out.push_str("]}");
        Some(out)
    }

    /// JSON summaries of kept traces at least `min_ms` long, newest first:
    /// `{"traces":[{"trace_id","root","spans","start_unix_us","duration_us"}]}`.
    pub fn traces_json(&self, min_ms: u64) -> String {
        let kept = self.kept_traces();
        let mut out = String::from("{\"traces\":[");
        let mut first = true;
        for record in kept.iter().rev() {
            let start = record.spans.iter().map(|s| s.start_unix_us).min().unwrap_or(0);
            let end = record
                .spans
                .iter()
                .map(|s| s.start_unix_us.saturating_add(s.duration_us))
                .max()
                .unwrap_or(0);
            let duration_us = end.saturating_sub(start);
            if duration_us < min_ms.saturating_mul(1_000) {
                continue;
            }
            // The local root is recorded last by construction.
            let root = record.spans.last().map(|s| s.name).unwrap_or("");
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"trace_id\":\"");
            out.push_str(&record.trace.to_hex());
            out.push_str("\",\"root\":\"");
            push_json_escaped(&mut out, root);
            out.push_str("\",\"spans\":");
            out.push_str(&record.spans.len().to_string());
            out.push_str(",\"start_unix_us\":");
            out.push_str(&start.to_string());
            out.push_str(",\"duration_us\":");
            out.push_str(&duration_us.to_string());
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn push_span_json(out: &mut String, span: &SpanRecord, service: &str) {
    out.push_str("{\"span_id\":\"");
    out.push_str(&span.span.to_hex());
    out.push_str("\",\"parent_id\":");
    match span.parent {
        Some(parent) => {
            out.push('"');
            out.push_str(&parent.to_hex());
            out.push('"');
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"name\":\"");
    push_json_escaped(out, span.name);
    out.push_str("\",\"service\":\"");
    push_json_escaped(out, service);
    out.push_str("\",\"start_unix_us\":");
    out.push_str(&span.start_unix_us.to_string());
    out.push_str(",\"duration_us\":");
    out.push_str(&span.duration_us.to_string());
    out.push_str(",\"error\":");
    out.push_str(if span.error { "true" } else { "false" });
    out.push_str(",\"annotations\":{");
    for (i, (key, value)) in span.annotations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        push_json_escaped(out, key);
        out.push_str("\":\"");
        push_json_escaped(out, value);
        out.push('"');
    }
    out.push_str("}}");
}

/// An in-flight span; records itself into its [`Tracer`] on drop.
#[derive(Debug)]
pub struct Span<'a> {
    tracer: &'a Tracer,
    trace: TraceId,
    id: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    flags: u8,
    local_root: bool,
    start_unix_us: u64,
    started: Instant,
    error: bool,
    annotations: Vec<(&'static str, String)>,
}

impl<'a> Span<'a> {
    /// The propagation context naming this span as parent.
    pub fn context(&self) -> SpanContext {
        SpanContext { trace: self.trace, span: self.id, flags: self.flags }
    }

    /// This span's trace id.
    pub fn trace_id(&self) -> TraceId {
        self.trace
    }

    /// This span's id.
    pub fn span_id(&self) -> SpanId {
        self.id
    }

    /// A child span in the same trace.
    pub fn child(&self, name: &'static str) -> Span<'a> {
        self.tracer.span(self.trace, Some(self.id), name, self.flags, false)
    }

    /// Attach a `key=value` annotation.
    pub fn annotate(&mut self, key: &'static str, value: impl Into<String>) {
        self.annotations.push((key, value.into()));
    }

    /// Mark the spanned operation as failed (forces the trace to be kept).
    pub fn set_error(&mut self) {
        self.error = true;
    }

    /// Record an already-finished child retroactively: it ended `ended_ago`
    /// before now and ran for `duration`.  Used for phases measured before
    /// the root span could exist (queue wait, request read).
    pub fn record_completed_child(
        &self,
        name: &'static str,
        ended_ago: Duration,
        duration: Duration,
    ) {
        let now = now_unix_us();
        let ended = now.saturating_sub(duration_us(ended_ago));
        let start = ended.saturating_sub(duration_us(duration));
        self.tracer.record(SpanRecord {
            trace: self.trace,
            span: SpanId(next_id()),
            parent: Some(self.id),
            name,
            start_unix_us: start,
            duration_us: duration_us(duration),
            error: false,
            annotations: Vec::new(),
        });
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let record = SpanRecord {
            trace: self.trace,
            span: self.id,
            parent: self.parent,
            name: self.name,
            start_unix_us: self.start_unix_us,
            duration_us: duration_us(self.started.elapsed()),
            error: self.error,
            annotations: std::mem::take(&mut self.annotations),
        };
        if self.local_root {
            self.tracer.finish_local_root(record, self.flags);
        } else {
            self.tracer.record(record);
        }
    }
}

/// The process-global tracer behind [`start_root`], [`child_of_current`],
/// and the serve debug endpoints.
pub fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| Tracer::new(TracePolicy::default()))
}

/// Start a new trace on the global tracer.
pub fn start_root(name: &'static str) -> Span<'static> {
    tracer().start_root(name)
}

thread_local! {
    static CURRENT: Cell<Option<SpanContext>> = const { Cell::new(None) };
}

/// Install `ctx` as the thread's current span context for the duration of
/// `f`, restoring the previous context afterwards (panic-safe).
pub fn with_context<T>(ctx: SpanContext, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<SpanContext>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|cell| cell.set(self.0));
        }
    }
    let _restore = Restore(CURRENT.with(|cell| cell.replace(Some(ctx))));
    f()
}

/// Install `ctx` when present, otherwise just run `f`.
pub fn with_context_opt<T>(ctx: Option<SpanContext>, f: impl FnOnce() -> T) -> T {
    match ctx {
        Some(ctx) => with_context(ctx, f),
        None => f(),
    }
}

/// The thread's current span context, if one is installed.
pub fn current_context() -> Option<SpanContext> {
    CURRENT.with(|cell| cell.get())
}

/// A child span of the thread's current context on the global tracer, or
/// `None` when the work was not traced (one thread-local read).
pub fn child_of_current(name: &'static str) -> Option<Span<'static>> {
    current_context().map(|ctx| tracer().span_from_context(ctx, name))
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

fn now_unix_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Keep decision for ordinary traces: a pure function of the trace id, so
/// every process in the cluster agrees.
fn keep_by_hash(trace: TraceId, threshold: u64) -> bool {
    mix64(trace.0 as u64 ^ (trace.0 >> 64) as u64) < threshold
}

/// splitmix64 finalizer (also the ring's mixer in `gesmc-cluster`).
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Mint a process-unique nonzero 64-bit id.
fn next_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    static BOOT: OnceLock<u64> = OnceLock::new();
    let boot = *BOOT.get_or_init(|| {
        let nanos =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0);
        nanos ^ ((std::process::id() as u64) << 32)
    });
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let id = mix64(boot.wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    if id == 0 {
        1
    } else {
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drop_all() -> Tracer {
        // keep_fraction 0 and an unreachable slow threshold: only errors,
        // slow roots, or the sampled flag can keep a trace.
        Tracer::new(TracePolicy { slow_threshold: Duration::from_secs(3_600), keep_fraction: 0.0 })
    }

    #[test]
    fn header_roundtrip_and_rejection() {
        let ctx = SpanContext { trace: TraceId(0xDEAD_BEEF), span: SpanId(42), flags: 1 };
        let header = ctx.to_header();
        assert_eq!(header.len(), 52);
        assert_eq!(SpanContext::parse(&header), Some(ctx));
        assert_eq!(SpanContext::parse(""), None);
        assert_eq!(SpanContext::parse("zz"), None);
        assert_eq!(SpanContext::parse(&header[..50]), None);
        let mut bad = header.clone();
        bad.replace_range(0..1, "g");
        assert_eq!(SpanContext::parse(&bad), None);
    }

    #[test]
    fn ordinary_traces_are_dropped_at_keep_fraction_zero() {
        let tracer = drop_all();
        drop(tracer.start_root("request"));
        assert!(tracer.kept_traces().is_empty());
    }

    #[test]
    fn error_traces_are_always_kept() {
        let tracer = drop_all();
        let root = tracer.start_root("request");
        let mut child = root.child("compute");
        child.set_error();
        drop(child);
        let id = root.trace_id();
        drop(root);
        let kept = tracer.kept_trace(id).expect("error trace kept");
        assert_eq!(kept.spans.len(), 2);
        assert!(kept.spans.iter().any(|s| s.error));
    }

    #[test]
    fn slow_traces_are_always_kept() {
        let tracer = Tracer::new(TracePolicy {
            slow_threshold: Duration::ZERO, // everything is "slow"
            keep_fraction: 0.0,
        });
        let root = tracer.start_root("request");
        let id = root.trace_id();
        drop(root);
        assert!(tracer.kept_trace(id).is_some());
    }

    #[test]
    fn sampled_flag_forces_keep() {
        let tracer = drop_all();
        let root = tracer.start_root_flagged("request", FLAG_SAMPLED);
        let id = root.trace_id();
        assert!(root.context().is_sampled());
        drop(root);
        assert!(tracer.kept_trace(id).is_some());
    }

    #[test]
    fn keep_fraction_one_keeps_everything() {
        let tracer = Tracer::new(TracePolicy {
            slow_threshold: Duration::from_secs(3_600),
            keep_fraction: 1.0,
        });
        for _ in 0..10 {
            drop(tracer.start_root("request"));
        }
        assert_eq!(tracer.kept_traces().len(), 10);
    }

    #[test]
    fn probabilistic_decision_is_a_pure_function_of_the_trace_id() {
        // Two tracers with the same policy must agree on every trace id —
        // the property that keeps cross-process trees joinable.
        let threshold = u64::MAX / 2;
        for raw in 0..1_000u128 {
            let id = TraceId(raw.wrapping_mul(0x1234_5678_9ABC_DEF0_1122_3344_5566_7788));
            assert_eq!(keep_by_hash(id, threshold), keep_by_hash(id, threshold));
        }
        // And the hash actually discriminates: roughly half survive.
        let kept = (0..1_000u128)
            .filter(|raw| keep_by_hash(TraceId(raw.wrapping_mul(0x9E37_79B9_7F4A_7C15)), threshold))
            .count();
        assert!((300..700).contains(&kept), "kept {kept}/1000 at 50%");
    }

    #[test]
    fn span_tree_links_parents_and_serves_json() {
        let tracer = drop_all();
        tracer.set_service("node-a:8080");
        let mut root = tracer.start_root_flagged("request", FLAG_SAMPLED);
        root.annotate("path", "/v1/samples/x");
        let child = root.child("compute");
        let child_id = child.span_id();
        let root_id = root.span_id();
        drop(child);
        let id = root.trace_id();
        drop(root);

        let kept = tracer.kept_trace(id).unwrap();
        let child_rec = kept.spans.iter().find(|s| s.span == child_id).unwrap();
        assert_eq!(child_rec.parent, Some(root_id));
        let root_rec = kept.spans.iter().find(|s| s.span == root_id).unwrap();
        assert_eq!(root_rec.parent, None);
        assert_eq!(root_rec.annotations, vec![("path", "/v1/samples/x".to_string())]);

        let json = tracer.trace_json(id).unwrap();
        assert!(json.contains(&id.to_hex()), "{json}");
        assert!(json.contains("\"service\":\"node-a:8080\""), "{json}");
        assert!(json.contains("\"name\":\"compute\""), "{json}");
        assert!(json.contains(&format!("\"parent_id\":\"{}\"", root_id.to_hex())), "{json}");
        assert!(tracer.trace_json(TraceId(0)).is_none());

        let list = tracer.traces_json(0);
        assert!(list.contains("\"root\":\"request\""), "{list}");
        // A large min_ms filters this (sub-second) trace out.
        assert_eq!(tracer.traces_json(3_600_000), "{\"traces\":[]}");
    }

    #[test]
    fn retroactive_children_land_before_the_root_finish() {
        let tracer = drop_all();
        let root = tracer.start_root_flagged("request", FLAG_SAMPLED);
        root.record_completed_child(
            "queue_wait",
            Duration::from_millis(5),
            Duration::from_millis(10),
        );
        let id = root.trace_id();
        drop(root);
        let kept = tracer.kept_trace(id).unwrap();
        let queued = kept.spans.iter().find(|s| s.name == "queue_wait").unwrap();
        assert_eq!(queued.duration_us, 10_000);
        let root_rec = kept.spans.iter().find(|s| s.name == "request").unwrap();
        assert!(queued.start_unix_us <= root_rec.start_unix_us.saturating_add(1_000));
    }

    #[test]
    fn kept_ring_is_bounded_and_evicts_oldest() {
        let tracer = Tracer::with_capacity(
            TracePolicy { slow_threshold: Duration::ZERO, keep_fraction: 1.0 },
            16,
            3,
        );
        let ids: Vec<TraceId> = (0..5)
            .map(|_| {
                let root = tracer.start_root("request");
                let id = root.trace_id();
                drop(root);
                id
            })
            .collect();
        assert_eq!(tracer.kept_traces().len(), 3);
        assert!(tracer.kept_trace(ids[0]).is_none(), "oldest evicted");
        assert!(tracer.kept_trace(ids[4]).is_some());
    }

    #[test]
    fn cross_thread_context_attaches_children_to_the_same_trace() {
        // Uses the global tracer (thread-local helpers are global-only); the
        // sampled flag pins the trace against the default 5% policy.
        let root = tracer().start_root_flagged("request", FLAG_SAMPLED);
        let ctx = root.context();
        let handle = std::thread::spawn(move || {
            with_context(ctx, || {
                assert_eq!(current_context(), Some(ctx));
                let mut span = child_of_current("job").expect("context installed");
                span.annotate("worker", "1");
            });
            assert_eq!(current_context(), None);
        });
        handle.join().unwrap();
        assert!(child_of_current("nope").is_none());
        let id = root.trace_id();
        drop(root);
        let kept = tracer().kept_trace(id).expect("sampled trace kept");
        assert!(kept.spans.iter().any(|s| s.name == "job"));
    }
}
