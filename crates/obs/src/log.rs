//! Structured leveled logging with text and JSON line formats.
//!
//! One process-global logger, configured once at startup (CLI flags) and/or
//! via the `GESMC_LOG` environment variable, then used through the
//! [`trace!`](crate::trace!)/[`debug!`](crate::debug!)/[`info!`](crate::info!)/
//! [`warn!`](crate::warn!)/[`error!`](crate::error!) macros:
//!
//! ```
//! gesmc_obs::info!(target: "gesmc_serve", "listening on {}", "127.0.0.1:8080");
//! gesmc_obs::warn!(target: "gesmc_serve", id: "req-00c0ffee", "slow request");
//! ```
//!
//! * **Filtering** — a spec like `info` or `warn,gesmc_serve=debug`: a bare
//!   level sets the default, `target=level` overrides for any target with
//!   that prefix (longest prefix wins).  `GESMC_LOG` takes precedence over
//!   the programmatic default so operators can always turn up verbosity.
//! * **Formats** — `text` (RFC 3339 timestamp, level, target, optional
//!   `[id]`, message) for humans, `json` (one object per line with `ts`,
//!   `level`, `target`, optional `id`, `msg`) for ingestion.
//! * **Correlation ids** — the optional `id:` argument stamps a
//!   per-request/job id on the line; [`next_request_id`] mints them.
//!
//! Output goes to stderr; tests can capture it with [`capture_for_tests`].

use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, ascending.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Very fine-grained tracing.
    Trace = 0,
    /// Developer diagnostics.
    Debug = 1,
    /// Normal operational messages (the default).
    Info = 2,
    /// Something degraded but handled.
    Warn = 3,
    /// An operation failed.
    Error = 4,
}

impl Level {
    /// Parse a level name (case-insensitive); also accepts `off`.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "trace" => Some(Level::Trace),
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }

    /// Lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    fn padded(self) -> &'static str {
        match self {
            Level::Trace => "TRACE",
            Level::Debug => "DEBUG",
            Level::Info => "INFO ",
            Level::Warn => "WARN ",
            Level::Error => "ERROR",
        }
    }
}

/// Line format of the logger output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// Human-readable single line: `ts LEVEL target [id] message`.
    #[default]
    Text,
    /// One JSON object per line: `{"ts","level","target","id"?,"msg"}`.
    Json,
}

impl LogFormat {
    /// Parse `text` or `json` (case-insensitive).
    pub fn parse(s: &str) -> Option<LogFormat> {
        match s.to_ascii_lowercase().as_str() {
            "text" => Some(LogFormat::Text),
            "json" => Some(LogFormat::Json),
            _ => None,
        }
    }
}

/// Per-target level filter parsed from a `GESMC_LOG`-style spec.
#[derive(Debug, Clone)]
struct Filter {
    default: Level,
    // (target prefix, minimum level), longest prefix consulted first.
    targets: Vec<(String, Level)>,
}

impl Filter {
    fn parse(spec: &str, fallback: Level) -> Filter {
        let mut default = fallback;
        let mut targets: Vec<(String, Level)> = Vec::new();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            match token.split_once('=') {
                None => {
                    if let Some(level) = Level::parse(token) {
                        default = level;
                    }
                }
                Some((target, level)) => {
                    if let Some(level) = Level::parse(level.trim()) {
                        targets.push((target.trim().to_string(), level));
                    }
                }
            }
        }
        targets.sort_by_key(|(t, _)| std::cmp::Reverse(t.len()));
        Filter { default, targets }
    }

    fn min_level(&self, target: &str) -> Level {
        for (prefix, level) in &self.targets {
            if target.starts_with(prefix.as_str()) {
                return *level;
            }
        }
        self.default
    }

    /// The lowest level any target can pass, for the fast pre-check.
    fn floor(&self) -> Level {
        self.targets.iter().map(|(_, l)| *l).fold(self.default, Level::min)
    }
}

enum Sink {
    Stderr,
    Capture(Arc<Mutex<Vec<u8>>>),
}

struct LoggerState {
    format: LogFormat,
    filter: Filter,
    sink: Sink,
}

fn state() -> &'static Mutex<LoggerState> {
    static STATE: OnceLock<Mutex<LoggerState>> = OnceLock::new();
    STATE.get_or_init(|| {
        let spec = std::env::var("GESMC_LOG").unwrap_or_default();
        Mutex::new(LoggerState {
            format: LogFormat::Text,
            filter: Filter::parse(&spec, Level::Info),
            sink: Sink::Stderr,
        })
    })
}

/// Cheap lock-free floor for the common "level disabled" early-out.
static LEVEL_FLOOR: AtomicU8 = AtomicU8::new(0);

fn store_floor(filter: &Filter) {
    LEVEL_FLOOR.store(filter.floor() as u8, Ordering::Relaxed);
}

/// Configure the global logger: output `format` and default `level`.
///
/// A non-empty `GESMC_LOG` environment variable still takes precedence for
/// filtering (its bare level, if any, overrides `level`; its `target=level`
/// clauses always apply), so operator overrides survive CLI defaults.
pub fn configure(format: LogFormat, level: Level) {
    let mut state = state().lock().expect("logger state poisoned");
    state.format = format;
    let spec = std::env::var("GESMC_LOG").unwrap_or_default();
    state.filter = Filter::parse(&spec, level);
    store_floor(&state.filter);
}

/// Would a message for `target` at `level` be emitted?
pub fn enabled(target: &str, level: Level) -> bool {
    // Fast path: the floor is monotone under configure(); OnceLock init of
    // the state sets it lazily, so only consult it after first configure.
    if (level as u8) < LEVEL_FLOOR.load(Ordering::Relaxed) {
        return false;
    }
    let state = state().lock().expect("logger state poisoned");
    level >= state.filter.min_level(target)
}

/// Redirect logger output into a buffer and return it (tests only).
pub fn capture_for_tests() -> Arc<Mutex<Vec<u8>>> {
    let buffer = Arc::new(Mutex::new(Vec::new()));
    let mut state = state().lock().expect("logger state poisoned");
    state.sink = Sink::Capture(buffer.clone());
    buffer
}

/// Restore stderr output after [`capture_for_tests`].
pub fn uncapture_for_tests() {
    let mut state = state().lock().expect("logger state poisoned");
    state.sink = Sink::Stderr;
}

/// Emit one log line (used by the level macros; not called directly).
pub fn log(level: Level, target: &str, id: Option<&str>, args: fmt::Arguments<'_>) {
    let mut state = state().lock().expect("logger state poisoned");
    if level < state.filter.min_level(target) {
        return;
    }
    let mut line = format_line(state.format, now_rfc3339().as_str(), level, target, id, args);
    // One write_all per line, newline included: even if another process
    // shares the pipe (no lock can help there), a single write under
    // PIPE_BUF cannot tear mid-line, so JSON lines stay parseable.
    line.push('\n');
    match &mut state.sink {
        Sink::Stderr => {
            let _ = std::io::stderr().lock().write_all(line.as_bytes());
        }
        Sink::Capture(buffer) => {
            let mut buffer = buffer.lock().expect("capture buffer poisoned");
            buffer.extend_from_slice(line.as_bytes());
        }
    }
}

/// Render one line without emitting it (pure; unit-tested directly).
pub fn format_line(
    format: LogFormat,
    timestamp: &str,
    level: Level,
    target: &str,
    id: Option<&str>,
    args: fmt::Arguments<'_>,
) -> String {
    match format {
        LogFormat::Text => match id {
            Some(id) => format!("{timestamp} {} {target} [{id}] {args}", level.padded()),
            None => format!("{timestamp} {} {target} {args}", level.padded()),
        },
        LogFormat::Json => {
            let mut line = String::with_capacity(96);
            line.push_str("{\"ts\":\"");
            line.push_str(timestamp);
            line.push_str("\",\"level\":\"");
            line.push_str(level.as_str());
            line.push_str("\",\"target\":\"");
            push_json_escaped(&mut line, target);
            if let Some(id) = id {
                line.push_str("\",\"id\":\"");
                push_json_escaped(&mut line, id);
            }
            line.push_str("\",\"msg\":\"");
            push_json_escaped(&mut line, &args.to_string());
            line.push_str("\"}");
            line
        }
    }
}

/// Append `s` to `out` with JSON string escaping.
pub(crate) fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Current UTC time as an RFC 3339 timestamp with millisecond precision.
pub fn now_rfc3339() -> String {
    let now = SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or_default();
    rfc3339_from_epoch_millis(now.as_millis())
}

/// Format an epoch-milliseconds value as `YYYY-MM-DDTHH:MM:SS.mmmZ`.
pub fn rfc3339_from_epoch_millis(epoch_millis: u128) -> String {
    let millis = (epoch_millis % 1000) as u32;
    let secs = (epoch_millis / 1000) as i64;
    let days = secs.div_euclid(86_400);
    let tod = secs.rem_euclid(86_400);
    let (hour, minute, second) = (tod / 3600, (tod / 60) % 60, tod % 60);
    // Civil-from-days (Howard Hinnant's algorithm), valid for the epoch era.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { year + 1 } else { year };
    format!("{year:04}-{month:02}-{day:02}T{hour:02}:{minute:02}:{second:02}.{millis:03}Z")
}

/// Mint a process-unique correlation id (16 lowercase hex chars).
///
/// Combines process identity, a coarse boot timestamp, and a counter through
/// a 64-bit mix, so concurrent servers on one host do not collide in logs.
pub fn next_request_id() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    static BOOT: OnceLock<u64> = OnceLock::new();
    let boot = *BOOT.get_or_init(|| {
        let nanos =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0);
        nanos ^ ((std::process::id() as u64) << 32)
    });
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    // splitmix64 finalizer over (boot, counter).
    let mut x = boot.wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    format!("{x:016x}")
}

/// Log at an explicit [`Level`] with a `target:` and optional `id:`.
#[macro_export]
macro_rules! log_at {
    ($level:expr, target: $target:expr, id: $id:expr, $($arg:tt)+) => {
        $crate::log::log($level, $target, Some(::std::convert::AsRef::<str>::as_ref(&$id)),
            format_args!($($arg)+))
    };
    ($level:expr, target: $target:expr, $($arg:tt)+) => {
        $crate::log::log($level, $target, None, format_args!($($arg)+))
    };
    ($level:expr, $($arg:tt)+) => {
        $crate::log::log($level, module_path!(), None, format_args!($($arg)+))
    };
}

/// Log at trace level; same argument forms as [`log_at!`](crate::log_at!).
#[macro_export]
macro_rules! trace {
    ($($arg:tt)+) => { $crate::log_at!($crate::Level::Trace, $($arg)+) };
}

/// Log at debug level; same argument forms as [`log_at!`](crate::log_at!).
#[macro_export]
macro_rules! debug {
    ($($arg:tt)+) => { $crate::log_at!($crate::Level::Debug, $($arg)+) };
}

/// Log at info level; same argument forms as [`log_at!`](crate::log_at!).
#[macro_export]
macro_rules! info {
    ($($arg:tt)+) => { $crate::log_at!($crate::Level::Info, $($arg)+) };
}

/// Log at warn level; same argument forms as [`log_at!`](crate::log_at!).
#[macro_export]
macro_rules! warn {
    ($($arg:tt)+) => { $crate::log_at!($crate::Level::Warn, $($arg)+) };
}

/// Log at error level; same argument forms as [`log_at!`](crate::log_at!).
#[macro_export]
macro_rules! error {
    ($($arg:tt)+) => { $crate::log_at!($crate::Level::Error, $($arg)+) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_and_format_parse() {
        assert_eq!(Level::parse("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        assert_eq!(LogFormat::parse("JSON"), Some(LogFormat::Json));
        assert_eq!(LogFormat::parse("yaml"), None);
    }

    #[test]
    fn filter_spec_longest_prefix_wins() {
        let f = Filter::parse("warn,gesmc_serve=info,gesmc_serve::persist=trace", Level::Info);
        assert_eq!(f.default, Level::Warn);
        assert_eq!(f.min_level("gesmc_engine"), Level::Warn);
        assert_eq!(f.min_level("gesmc_serve"), Level::Info);
        assert_eq!(f.min_level("gesmc_serve::persist::journal"), Level::Trace);
        assert_eq!(f.floor(), Level::Trace);
    }

    #[test]
    fn rfc3339_golden_timestamps() {
        assert_eq!(rfc3339_from_epoch_millis(0), "1970-01-01T00:00:00.000Z");
        // 2026-08-09 12:34:56.789 UTC.
        assert_eq!(rfc3339_from_epoch_millis(1_786_278_896_789), "2026-08-09T12:34:56.789Z");
        // Leap-year day: 2024-02-29 00:00:00 UTC.
        assert_eq!(rfc3339_from_epoch_millis(1_709_164_800_000), "2024-02-29T00:00:00.000Z");
    }

    #[test]
    fn format_line_text_and_json() {
        let text = format_line(
            LogFormat::Text,
            "2026-01-01T00:00:00.000Z",
            Level::Info,
            "gesmc_serve",
            Some("req-1"),
            format_args!("hello {}", 7),
        );
        assert_eq!(text, "2026-01-01T00:00:00.000Z INFO  gesmc_serve [req-1] hello 7");
        let json = format_line(
            LogFormat::Json,
            "2026-01-01T00:00:00.000Z",
            Level::Warn,
            "gesmc_serve",
            None,
            format_args!("a \"quoted\"\nline"),
        );
        assert_eq!(
            json,
            "{\"ts\":\"2026-01-01T00:00:00.000Z\",\"level\":\"warn\",\
             \"target\":\"gesmc_serve\",\"msg\":\"a \\\"quoted\\\"\\nline\"}"
        );
    }

    /// Minimal JSON validator for the capture test: returns the byte length
    /// consumed by one value starting at `s`, or `None` if malformed.
    fn json_value_len(s: &[u8]) -> Option<usize> {
        match *s.first()? {
            b'{' => {
                let mut i = 1;
                loop {
                    match *s.get(i)? {
                        b'}' => return Some(i + 1),
                        b',' if i > 1 => i += 1,
                        _ => {}
                    }
                    i += json_value_len(&s[i..])?; // key
                    if *s.get(i)? != b':' {
                        return None;
                    }
                    i += 1;
                    i += json_value_len(&s[i..])?; // value
                }
            }
            b'"' => {
                let mut i = 1;
                loop {
                    match *s.get(i)? {
                        b'"' => return Some(i + 1),
                        b'\\' => i += 2,
                        c if c < 0x20 => return None,
                        _ => i += 1,
                    }
                }
            }
            b'0'..=b'9' | b'-' => {
                let digits = s
                    .iter()
                    .take_while(|c| matches!(c, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
                    .count();
                Some(digits)
            }
            b't' => s.starts_with(b"true").then_some(4),
            b'f' => s.starts_with(b"false").then_some(5),
            b'n' => s.starts_with(b"null").then_some(4),
            _ => None,
        }
    }

    fn assert_valid_json_line(line: &str) {
        let bytes = line.as_bytes();
        let len = json_value_len(bytes).unwrap_or_else(|| panic!("torn JSON line: {line:?}"));
        assert_eq!(len, bytes.len(), "trailing garbage after JSON object: {line:?}");
    }

    #[test]
    fn concurrent_json_lines_never_tear() {
        let buffer = capture_for_tests();
        configure(LogFormat::Json, Level::Info);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..50 {
                        crate::info!(
                            target: "gesmc_obs::tear_test",
                            id: format!("t{t}"),
                            "line {i} with \"quotes\" and a\nnewline"
                        );
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let bytes = buffer.lock().unwrap().clone();
        uncapture_for_tests();
        configure(LogFormat::Text, Level::Info);

        let text = String::from_utf8(bytes).expect("captured lines are UTF-8");
        let lines: Vec<&str> =
            text.lines().filter(|l| l.contains("gesmc_obs::tear_test")).collect();
        assert_eq!(lines.len(), 8 * 50, "every line arrived whole");
        for line in lines {
            assert_valid_json_line(line);
        }
    }

    #[test]
    fn request_ids_are_unique_and_hex() {
        let a = next_request_id();
        let b = next_request_id();
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
