//! Process-global registry of histograms and counters.
//!
//! Metrics register themselves by `(name, labels)` on first use —
//! [`histogram`]/[`counter`] are get-or-create — so any crate in the
//! workspace can record into a family and every scrape surface
//! (`/metrics` Prometheus text, `/v1/debug/stats` JSON, `gesmc-bench`
//! snapshot dumps) sees the union without explicit wiring.
//!
//! Rendering groups series by family: one `# HELP`/`# TYPE` header per
//! family name, then each labeled series.  Histograms render the full
//! Prometheus histogram syntax — cumulative `_bucket{le="…"}` lines ending
//! in `+Inf`, `_sum` (seconds), `_count` — with bucket bounds converted from
//! nanoseconds to seconds.

use crate::hist::{Histogram, HistogramSnapshot};
use crate::log::push_json_escaped;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter registered for scraping.
#[derive(Debug)]
pub struct Counter {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    value: AtomicU64,
}

impl Counter {
    /// Metric family name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Label pairs of this series.
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Point-in-time view.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            name: self.name.clone(),
            help: self.help.clone(),
            labels: self.labels.clone(),
            value: self.get(),
        }
    }
}

/// A point-in-time view of one counter series.
#[derive(Debug, Clone)]
pub struct CounterSnapshot {
    /// Metric family name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Label pairs of this series.
    pub labels: Vec<(String, String)>,
    /// Counter value.
    pub value: u64,
}

/// A consistent snapshot of every registered metric.
#[derive(Debug, Clone)]
pub struct ObsSnapshot {
    /// All histogram series, in registration order.
    pub histograms: Vec<HistogramSnapshot>,
    /// All counter series, in registration order.
    pub counters: Vec<CounterSnapshot>,
}

#[derive(Default)]
struct Registry {
    histograms: Vec<Arc<Histogram>>,
    counters: Vec<Arc<Counter>>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn labels_match(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && have.iter().zip(want).all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
}

/// Get or create the unlabeled histogram series `name`.
///
/// Callers on hot paths should cache the returned `Arc` (the lookup takes a
/// registry lock).  The first registration's `help` text wins.
pub fn histogram(name: &str, help: &str) -> Arc<Histogram> {
    histogram_with(name, help, &[])
}

/// Get or create the histogram series `name{labels…}`.
pub fn histogram_with(name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
    let mut registry = registry().lock().expect("metric registry poisoned");
    if let Some(existing) =
        registry.histograms.iter().find(|h| h.name() == name && labels_match(h.labels(), labels))
    {
        return existing.clone();
    }
    let created = Arc::new(Histogram::new(name, help, labels));
    registry.histograms.push(created.clone());
    created
}

/// Get or create the unlabeled counter series `name`.
pub fn counter(name: &str, help: &str) -> Arc<Counter> {
    counter_with(name, help, &[])
}

/// Get or create the counter series `name{labels…}`.
pub fn counter_with(name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
    let mut registry = registry().lock().expect("metric registry poisoned");
    if let Some(existing) =
        registry.counters.iter().find(|c| c.name() == name && labels_match(c.labels(), labels))
    {
        return existing.clone();
    }
    let created = Arc::new(Counter {
        name: name.to_string(),
        help: help.to_string(),
        labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
        value: AtomicU64::new(0),
    });
    registry.counters.push(created.clone());
    created
}

/// Snapshot every registered metric (the `/v1/debug/stats` payload).
pub fn snapshot() -> ObsSnapshot {
    let registry = registry().lock().expect("metric registry poisoned");
    ObsSnapshot {
        histograms: registry.histograms.iter().map(|h| h.snapshot()).collect(),
        counters: registry.counters.iter().map(|c| c.snapshot()).collect(),
    }
}

/// Format a nanosecond bound as a Prometheus `le` value in seconds.
fn le_seconds(le_ns: u64) -> String {
    // f64 `Display` prints the shortest decimal round-trip, never scientific
    // notation, which is exactly the Prometheus text form we want.
    format!("{}", le_ns as f64 / 1e9)
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v))).collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Escape a label value per the Prometheus text exposition format.
fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Render every registered metric in the Prometheus text exposition format.
///
/// Series of the same family are grouped under one `# HELP`/`# TYPE` pair.
/// `gesmc-serve` appends this to its own counters/gauges for `/metrics`.
pub fn render_prometheus() -> String {
    let snapshot = snapshot();
    let mut out = String::new();
    let mut seen_families: Vec<String> = Vec::new();

    for series in &snapshot.counters {
        if !seen_families.contains(&series.name) {
            seen_families.push(series.name.clone());
            out.push_str(&format!("# HELP {} {}\n", series.name, series.help));
            out.push_str(&format!("# TYPE {} counter\n", series.name));
            for s in snapshot.counters.iter().filter(|s| s.name == series.name) {
                out.push_str(&format!("{}{} {}\n", s.name, label_block(&s.labels, None), s.value));
            }
        }
    }

    for series in &snapshot.histograms {
        if !seen_families.contains(&series.name) {
            seen_families.push(series.name.clone());
            out.push_str(&format!("# HELP {} {}\n", series.name, series.help));
            out.push_str(&format!("# TYPE {} histogram\n", series.name));
            for s in snapshot.histograms.iter().filter(|s| s.name == series.name) {
                for bucket in &s.buckets {
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        s.name,
                        label_block(&s.labels, Some(("le", &le_seconds(bucket.le_ns)))),
                        bucket.count
                    ));
                }
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    s.name,
                    label_block(&s.labels, Some(("le", "+Inf"))),
                    s.count
                ));
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    s.name,
                    label_block(&s.labels, None),
                    s.sum_seconds()
                ));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    s.name,
                    label_block(&s.labels, None),
                    s.count
                ));
            }
        }
    }
    out
}

/// Render the full snapshot as a JSON object (no external dependencies).
///
/// Shape: `{"histograms":[{name,labels,help,count,sum_seconds,buckets:
/// [{le_seconds,count}…]}…],"counters":[{name,labels,help,value}…]}`.
/// Bucket lists contain only the finite bounds; the top-level `count` is the
/// `+Inf` total.  `gesmc-bench` writes this next to `GESMC_BENCH_JSON`, and
/// `/v1/debug/stats` embeds it.
pub fn render_json() -> String {
    render_json_snapshot(&snapshot())
}

/// Render a specific [`ObsSnapshot`] as JSON (see [`render_json`]).
pub fn render_json_snapshot(snapshot: &ObsSnapshot) -> String {
    let mut out = String::from("{\"histograms\":[");
    for (i, h) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        push_json_escaped(&mut out, &h.name);
        out.push_str("\",\"labels\":");
        push_labels_json(&mut out, &h.labels);
        out.push_str(",\"help\":\"");
        push_json_escaped(&mut out, &h.help);
        out.push_str(&format!(
            "\",\"count\":{},\"sum_seconds\":{},\"buckets\":[",
            h.count,
            h.sum_seconds()
        ));
        for (j, bucket) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"le_seconds\":{},\"count\":{}}}",
                le_seconds(bucket.le_ns),
                bucket.count
            ));
        }
        out.push_str("]}");
    }
    out.push_str("],\"counters\":[");
    for (i, c) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        push_json_escaped(&mut out, &c.name);
        out.push_str("\",\"labels\":");
        push_labels_json(&mut out, &c.labels);
        out.push_str(",\"help\":\"");
        push_json_escaped(&mut out, &c.help);
        out.push_str(&format!("\",\"value\":{}}}", c.value));
    }
    out.push_str("]}");
    out
}

fn push_labels_json(out: &mut String, labels: &[(String, String)]) {
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        push_json_escaped(out, k);
        out.push_str("\":\"");
        push_json_escaped(out, v);
        out.push('"');
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_deduplicates_by_name_and_labels() {
        let a = histogram("reg_test_family_seconds", "help a");
        let b = histogram("reg_test_family_seconds", "help ignored");
        assert!(Arc::ptr_eq(&a, &b));
        let c = histogram_with("reg_test_family_seconds", "help a", &[("phase", "read")]);
        assert!(!Arc::ptr_eq(&a, &c));
        let d = histogram_with("reg_test_family_seconds", "x", &[("phase", "read")]);
        assert!(Arc::ptr_eq(&c, &d));
    }

    #[test]
    fn prometheus_rendering_round_trip() {
        let h = histogram_with("reg_render_seconds", "Render test.", &[("phase", "compute")]);
        h.record_ns(300); // bucket le=512ns
        h.record_ns(1_000_000_000); // 1 s
        let text = render_prometheus();
        assert!(text.contains("# HELP reg_render_seconds Render test."));
        assert!(text.contains("# TYPE reg_render_seconds histogram"));
        assert!(text.contains("reg_render_seconds_bucket{phase=\"compute\",le=\"0.000000512\"} 1"));
        assert!(text.contains("reg_render_seconds_bucket{phase=\"compute\",le=\"+Inf\"} 2"));
        assert!(text.contains("reg_render_seconds_count{phase=\"compute\"} 2"));
        assert!(text.contains("reg_render_seconds_sum{phase=\"compute\"} 1.0000003"));
        // Cumulative buckets: the last finite bucket holds everything ≤ bound.
        let last_finite =
            format!("reg_render_seconds_bucket{{phase=\"compute\",le=\"{}\"}} 2", "274.877906944");
        assert!(text.contains(&last_finite), "missing `{last_finite}` in:\n{text}");

        // Round-trip: buckets are cumulative (monotone) and bounded by count.
        for snapshot in snapshot().histograms {
            let mut previous = 0;
            for bucket in &snapshot.buckets {
                assert!(bucket.count >= previous, "non-monotone buckets in {}", snapshot.name);
                previous = bucket.count;
            }
            assert!(previous <= snapshot.count);
        }
    }

    #[test]
    fn counters_render_as_counter_type() {
        let c = counter_with("reg_test_total", "Counter test.", &[("kind", "x")]);
        c.add(3);
        let text = render_prometheus();
        assert!(text.contains("# TYPE reg_test_total counter"));
        assert!(text.contains("reg_test_total{kind=\"x\"} 3"));
    }

    #[test]
    fn json_snapshot_is_parseable_shape() {
        let h = histogram("reg_json_seconds", "Json test.");
        h.record_ns(400);
        let json = render_json();
        assert!(json.starts_with("{\"histograms\":["));
        assert!(json.contains("\"name\":\"reg_json_seconds\""));
        assert!(json.contains("\"buckets\":[{\"le_seconds\":0.000000256,\"count\":0}"));
        assert!(json.ends_with("]}"));
        // Balanced braces/brackets as a cheap well-formedness check.
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
