//! `gesmc-obs` — the workspace's dependency-free observability layer.
//!
//! Three pieces, all built on `std` only so every crate in the workspace can
//! depend on it without pulling anything in:
//!
//! * **Structured leveled logging** ([`log`]) — a process-global logger with
//!   text and JSON line formats, RFC 3339 timestamps, per-target level
//!   filtering (`GESMC_LOG=info,gesmc_serve=debug`), and optional
//!   per-request/job correlation ids.  The [`trace!`]/[`debug!`]/[`info!`]/
//!   [`warn!`]/[`error!`] macros are the only sanctioned way to emit
//!   diagnostics; raw `eprintln!` is banned in `cli`, `serve`, and `engine`
//!   (CI greps for it).
//! * **Latency histograms + spans** ([`hist`]) — a lock-cheap [`Histogram`]
//!   with fixed log2 (power-of-two nanosecond) buckets.  Recording picks one
//!   of a small set of cache-line-aligned shards by a per-thread index and
//!   does three relaxed atomic adds; shards are only merged when a scrape
//!   takes a [`HistogramSnapshot`].  [`Timer`] and the [`span!`] macro time a
//!   region into a histogram.
//! * **A process-global registry** ([`registry`]) — histograms and counters
//!   register themselves by `(name, labels)` on first use, so `/metrics`
//!   (Prometheus text with `_bucket`/`_sum`/`_count`), `/v1/debug/stats`
//!   (JSON), and `gesmc-bench`'s snapshot dumps can enumerate everything
//!   recorded anywhere in the process without wiring.
//!
//! Two further pieces ride on the same zero-dependency base:
//!
//! * **Distributed tracing** ([`mod@trace`]) — 128-bit trace ids, span trees
//!   with parent links and annotations, an `X-Gesmc-Trace` wire context,
//!   and a tail-sampled flight recorder (always keep error and slow
//!   traces; keep the rest by a deterministic hash of the trace id so all
//!   cluster nodes agree).
//! * **Self-telemetry** ([`telemetry`]) — best-effort procfs collection of
//!   peak RSS, open fds, and I/O byte counts for gauge export.
//!
//! ```
//! let requests = gesmc_obs::histogram("doc_request_seconds", "Example latency.");
//! {
//!     let _t = gesmc_obs::Timer::start(&requests);
//!     // ... timed region ...
//! }
//! assert_eq!(requests.snapshot().count, 1);
//! gesmc_obs::info!(target: "doc", "handled one request");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod log;
pub mod registry;
pub mod telemetry;
pub mod trace;

pub use hist::{BucketCount, Histogram, HistogramSnapshot, Timer, BUCKETS};
pub use log::{next_request_id, Level, LogFormat};
pub use registry::{
    counter, counter_with, histogram, histogram_with, render_json, render_prometheus, snapshot,
    Counter, CounterSnapshot, ObsSnapshot,
};
pub use telemetry::{self_telemetry, SelfTelemetry};
pub use trace::{Span, SpanContext, SpanId, TraceId, TracePolicy, Tracer};
