//! Fixed-bucket latency histograms and the [`Timer`]/[`span!`](crate::span!) API.
//!
//! ## Design
//!
//! A [`Histogram`] has a fixed set of log2 buckets: bucket `i` counts
//! observations `≤ 2^(8+i)` nanoseconds, for `i` in `0..31` (256 ns up to
//! ~275 s), plus an implicit `+Inf` bucket.  Power-of-two boundaries make
//! bucket selection a `leading_zeros` instruction — no search, no float math
//! on the record path.
//!
//! Recording is lock-free and contention-cheap: each histogram owns
//! `SHARDS` cache-line-aligned shards, every thread is assigned a stable
//! shard index on first use (a per-thread counter, so up to `SHARDS`
//! threads never share a cache line), and one observation is three `Relaxed`
//! atomic adds into that shard.  Shards are merged only when a scrape calls
//! [`Histogram::snapshot`], so the hot path never synchronises with
//! `/metrics`.
//!
//! Snapshots are internally consistent by construction: the total `count` is
//! derived from the merged bucket counters (not a separate atomic), so the
//! rendered Prometheus `_count` always equals the `+Inf` cumulative bucket.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Number of finite log2 buckets (`≤ 2^(8+i)` ns for `i in 0..BUCKETS`).
pub const BUCKETS: usize = 31;

/// Exponent of the first bucket boundary: bucket 0 is `≤ 2^LOW_EXP` ns.
const LOW_EXP: u32 = 8;

/// Number of shards; threads are striped across them by a per-thread index.
const SHARDS: usize = 16;

/// One shard of bucket counters, aligned so shards never share a cache line.
#[repr(align(128))]
#[derive(Debug)]
struct Shard {
    buckets: [AtomicU64; BUCKETS],
    overflow: AtomicU64,
    sum_ns: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

/// Stable per-thread shard index: the first [`SHARDS`] threads each get a
/// private shard; later threads wrap around and share.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static INDEX: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    INDEX.with(|cell| {
        let mut index = cell.get();
        if index == usize::MAX {
            index = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            cell.set(index);
        }
        index
    })
}

/// The inclusive upper bound of finite bucket `i`, in nanoseconds.
pub(crate) fn bucket_bound_ns(i: usize) -> u64 {
    1u64 << (LOW_EXP + i as u32)
}

/// Index of the finite bucket for `value_ns`, or `None` for the `+Inf`
/// overflow bucket.
fn bucket_index(value_ns: u64) -> Option<usize> {
    if value_ns <= bucket_bound_ns(0) {
        return Some(0);
    }
    // ceil(log2(v)) for v ≥ 2: position of the highest set bit of v-1, +1.
    let ceil_log2 = 64 - (value_ns - 1).leading_zeros();
    let index = (ceil_log2 - LOW_EXP) as usize;
    if index < BUCKETS {
        Some(index)
    } else {
        None
    }
}

/// A fixed log2-bucket latency histogram; see the [module docs](self).
///
/// Histograms are usually obtained from the process-global registry via
/// [`crate::histogram`]/[`crate::histogram_with`], which deduplicates by
/// `(name, labels)` and makes them visible to `/metrics` and snapshots.
#[derive(Debug)]
pub struct Histogram {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    shards: Vec<Shard>,
}

impl Histogram {
    /// Create an unregistered histogram (tests; production code should use
    /// the registry constructors so scrapes can see it).
    pub fn new(name: &str, help: &str, labels: &[(&str, &str)]) -> Self {
        Self {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
        }
    }

    /// Metric family name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Help text (first registration wins).
    pub fn help(&self) -> &str {
        &self.help
    }

    /// Label pairs of this series (empty for an unlabeled family).
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }

    /// Record one observation of `value_ns` nanoseconds.
    pub fn record_ns(&self, value_ns: u64) {
        let shard = &self.shards[shard_index()];
        match bucket_index(value_ns) {
            Some(i) => shard.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => shard.overflow.fetch_add(1, Ordering::Relaxed),
        };
        shard.sum_ns.fetch_add(value_ns, Ordering::Relaxed);
    }

    /// Record one observation of a [`Duration`].
    pub fn observe(&self, duration: Duration) {
        self.record_ns(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Merge all shards into a consistent snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut per_bucket = [0u64; BUCKETS];
        let mut overflow = 0u64;
        let mut sum_ns = 0u64;
        for shard in &self.shards {
            for (total, bucket) in per_bucket.iter_mut().zip(&shard.buckets) {
                *total += bucket.load(Ordering::Relaxed);
            }
            overflow += shard.overflow.load(Ordering::Relaxed);
            sum_ns = sum_ns.saturating_add(shard.sum_ns.load(Ordering::Relaxed));
        }
        let mut buckets = Vec::with_capacity(BUCKETS);
        let mut cumulative = 0u64;
        for (i, count) in per_bucket.iter().enumerate() {
            cumulative += count;
            buckets.push(BucketCount { le_ns: bucket_bound_ns(i), count: cumulative });
        }
        HistogramSnapshot {
            name: self.name.clone(),
            help: self.help.clone(),
            labels: self.labels.clone(),
            buckets,
            count: cumulative + overflow,
            sum_ns,
        }
    }
}

/// One cumulative bucket of a [`HistogramSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketCount {
    /// Inclusive upper bound in nanoseconds.
    pub le_ns: u64,
    /// Cumulative count of observations `≤ le_ns`.
    pub count: u64,
}

/// A point-in-time merged view of one histogram series.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Metric family name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Label pairs of this series.
    pub labels: Vec<(String, String)>,
    /// Cumulative finite buckets, ascending by bound.
    pub buckets: Vec<BucketCount>,
    /// Total observations (the `+Inf` cumulative bucket).
    pub count: u64,
    /// Sum of all observed values, in nanoseconds (saturating).
    pub sum_ns: u64,
}

impl HistogramSnapshot {
    /// Sum of all observed values in seconds (Prometheus `_sum`).
    pub fn sum_seconds(&self) -> f64 {
        self.sum_ns as f64 / 1e9
    }
}

/// Times a region into a [`Histogram`]; records on drop unless
/// [`cancel`](Timer::cancel)led.
#[derive(Debug)]
pub struct Timer<'a> {
    histogram: &'a Histogram,
    start: Instant,
    armed: bool,
}

impl<'a> Timer<'a> {
    /// Start timing into `histogram`.
    pub fn start(histogram: &'a Histogram) -> Self {
        Self { histogram, start: Instant::now(), armed: true }
    }

    /// Stop now, record, and return the elapsed time.
    pub fn stop(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        self.armed = false;
        self.histogram.observe(elapsed);
        elapsed
    }

    /// Discard the timer without recording.
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.histogram.observe(self.start.elapsed());
        }
    }
}

/// Time a block into a histogram: `span!(hist, { work() })` evaluates the
/// block, records its wall time, and yields the block's value (also on early
/// `return`/panic unwind, via [`Timer`]'s drop).
#[macro_export]
macro_rules! span {
    ($histogram:expr, $body:block) => {{
        let __gesmc_obs_timer = $crate::Timer::start(&$histogram);
        $body
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundary_goldens() {
        // Bucket 0 is ≤ 256 ns and also absorbs 0.
        assert_eq!(bucket_index(0), Some(0));
        assert_eq!(bucket_index(1), Some(0));
        assert_eq!(bucket_index(256), Some(0));
        // One past a power-of-two boundary moves up exactly one bucket.
        assert_eq!(bucket_index(257), Some(1));
        assert_eq!(bucket_index(512), Some(1));
        assert_eq!(bucket_index(513), Some(2));
        // 1 ms = 1_000_000 ns: 2^19 = 524288 < 1e6 ≤ 2^20, bucket 20-8 = 12.
        assert_eq!(bucket_index(1_000_000), Some(12));
        // Last finite bucket is ≤ 2^38 ns (~274.9 s).
        assert_eq!(bucket_index(1 << 38), Some(BUCKETS - 1));
        assert_eq!(bucket_index((1 << 38) + 1), None);
        assert_eq!(bucket_index(u64::MAX), None);
    }

    #[test]
    fn snapshot_is_cumulative_and_counts_overflow() {
        let h = Histogram::new("t", "test", &[]);
        h.record_ns(1); // bucket 0
        h.record_ns(300); // bucket 1
        h.record_ns(300); // bucket 1
        h.record_ns(u64::MAX); // +Inf
        let s = h.snapshot();
        assert_eq!(s.buckets[0].count, 1);
        assert_eq!(s.buckets[1].count, 3);
        assert_eq!(s.buckets.last().unwrap().count, 3);
        assert_eq!(s.count, 4);
        // The shard's atomic sum wraps on the u64::MAX add: 601 + MAX ≡ 600.
        assert_eq!(s.sum_ns, 600);
    }

    #[test]
    fn sum_saturates_instead_of_wrapping_across_shards() {
        let h = Histogram::new("t", "test", &[]);
        h.record_ns(u64::MAX);
        h.record_ns(u64::MAX);
        // Per-shard atomics wrap, but a single thread lands in one shard, so
        // the merged sum reflects that shard's (wrapped) value; the merge
        // itself must still saturate rather than panic in debug builds.
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        let _ = s.sum_seconds();
    }

    #[test]
    fn concurrent_recording_merges_across_thread_shards() {
        let h = std::sync::Arc::new(Histogram::new("t", "test", &[]));
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record_ns(1 + (i + t) % 4096);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, threads * per_thread);
        assert_eq!(s.buckets.last().unwrap().count, threads * per_thread);
        // Every recorded value was ≤ 4096 = 2^12, bucket index 4.
        assert_eq!(s.buckets[4].count, threads * per_thread);
        assert!(s.sum_ns > 0);
    }

    #[test]
    fn timer_records_and_cancel_does_not() {
        let h = Histogram::new("t", "test", &[]);
        let elapsed = Timer::start(&h).stop();
        assert!(elapsed.as_nanos() > 0 || elapsed.is_zero());
        Timer::start(&h).cancel();
        {
            let _implicit = Timer::start(&h);
        }
        assert_eq!(h.snapshot().count, 2); // stop + drop, not cancel
    }

    #[test]
    fn span_macro_yields_block_value() {
        let h = Histogram::new("t", "test", &[]);
        let v = span!(h, { 21 * 2 });
        assert_eq!(v, 42);
        assert_eq!(h.snapshot().count, 1);
    }
}
