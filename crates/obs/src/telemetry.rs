//! Process self-telemetry from procfs: peak RSS, open fds, I/O byte counts.
//!
//! A best-effort collector over `/proc/self/*` so `/metrics` scrapes (and
//! trace investigations) can be correlated with resource pressure without
//! any external agent.  Every field is `Option`: on platforms without
//! procfs — or when a file is unreadable — the field is simply absent and
//! the caller skips the gauge.  The line parsers are pure and unit-tested;
//! [`self_telemetry`] just feeds them the live files.

/// A point-in-time snapshot of this process's resource footprint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelfTelemetry {
    /// Peak resident set size in bytes (`VmHWM` from `/proc/self/status`).
    pub peak_rss_bytes: Option<u64>,
    /// Currently open file descriptors (entries in `/proc/self/fd`).
    pub open_fds: Option<u64>,
    /// Bytes read from the storage layer (`read_bytes` in `/proc/self/io`).
    pub read_bytes: Option<u64>,
    /// Bytes written to the storage layer (`write_bytes` in `/proc/self/io`).
    pub write_bytes: Option<u64>,
}

/// Collect a [`SelfTelemetry`] snapshot from procfs (best-effort).
pub fn self_telemetry() -> SelfTelemetry {
    let status = std::fs::read_to_string("/proc/self/status").ok();
    let io = std::fs::read_to_string("/proc/self/io").ok();
    let open_fds = std::fs::read_dir("/proc/self/fd")
        .ok()
        .map(|entries| entries.filter_map(Result::ok).count() as u64);
    let (read_bytes, write_bytes) = match io.as_deref() {
        Some(io) => parse_io_bytes(io),
        None => (None, None),
    };
    SelfTelemetry {
        peak_rss_bytes: status.as_deref().and_then(parse_peak_rss_bytes),
        open_fds,
        read_bytes,
        write_bytes,
    }
}

/// Extract `VmHWM` (peak RSS) in bytes from `/proc/self/status` content.
pub fn parse_peak_rss_bytes(status: &str) -> Option<u64> {
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb.saturating_mul(1024));
        }
    }
    None
}

/// Extract `(read_bytes, write_bytes)` from `/proc/self/io` content.
pub fn parse_io_bytes(io: &str) -> (Option<u64>, Option<u64>) {
    let mut read = None;
    let mut write = None;
    for line in io.lines() {
        if let Some(rest) = line.strip_prefix("read_bytes:") {
            read = rest.trim().parse().ok();
        } else if let Some(rest) = line.strip_prefix("write_bytes:") {
            write = rest.trim().parse().ok();
        }
    }
    (read, write)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vmhwm_from_a_status_excerpt() {
        let status = "Name:\tgesmc\nVmPeak:\t  123456 kB\nVmHWM:\t    2048 kB\nVmRSS:\t 1024 kB\n";
        assert_eq!(parse_peak_rss_bytes(status), Some(2048 * 1024));
        assert_eq!(parse_peak_rss_bytes("Name:\tgesmc\n"), None);
        assert_eq!(parse_peak_rss_bytes("VmHWM:\tgarbage kB\n"), None);
    }

    #[test]
    fn parses_io_byte_counters() {
        let io =
            "rchar: 99\nwchar: 11\nread_bytes: 4096\nwrite_bytes: 8192\ncancelled_write_bytes: 0\n";
        assert_eq!(parse_io_bytes(io), (Some(4096), Some(8192)));
        assert_eq!(parse_io_bytes(""), (None, None));
    }

    #[test]
    fn live_collection_never_panics() {
        // On Linux CI this returns real numbers; elsewhere all-None is fine.
        let snapshot = self_telemetry();
        if let Some(fds) = snapshot.open_fds {
            assert!(fds > 0, "a running process has at least stdio open");
        }
    }
}
