//! `ParGlobalES` (Algorithm 3): the exact shared-memory parallel G-ES-MC.
//!
//! Because a global switch contains no source dependencies by construction —
//! every edge index occurs at most once in the permutation prefix — the whole
//! algorithm is a loop that draws a random global switch and hands it to
//! [`parallel_superstep`](crate::superstep::parallel_superstep).  The chain is
//! *exact*: given the same permutation and trial count, the resulting graph is
//! identical to executing the switches sequentially (this is asserted by the
//! integration tests against [`crate::SeqGlobalES`]).

use crate::chain::{EdgeSwitching, SwitchingConfig};
use crate::seq_global::SeqGlobalES;
use crate::snapshot::{ChainSnapshot, SnapshotError};
use crate::stats::SuperstepStats;
use gesmc_concurrent::{AtomicEdgeList, ConcurrentEdgeSet};
use gesmc_graph::EdgeListGraph;
use gesmc_randx::permutation::parallel_permutation;
use gesmc_randx::{rng_from_seed, sample_binomial, Rng, RngState, SeedSequence};

/// Exact parallel G-ES-MC chain.
pub struct ParGlobalES {
    edges: AtomicEdgeList,
    edge_set: ConcurrentEdgeSet,
    rng: Rng,
    seeds: SeedSequence,
    supersteps_done: u64,
    config: SwitchingConfig,
}

impl ParGlobalES {
    /// Create a chain randomising `graph`.
    ///
    /// The concurrent edge set is sized for the (constant) number of edges of
    /// the graph plus the tombstones of a few supersteps; it is rebuilt
    /// automatically between supersteps when necessary.
    pub fn new(graph: EdgeListGraph, config: SwitchingConfig) -> Self {
        let edge_set = ConcurrentEdgeSet::from_edges(graph.edges().iter(), graph.num_edges() * 2);
        let edges = AtomicEdgeList::from_graph(&graph);
        Self {
            edges,
            edge_set,
            rng: rng_from_seed(config.seed),
            seeds: SeedSequence::new(config.seed ^ 0x9E37_79B9_7F4A_7C15),
            supersteps_done: 0,
            config,
        }
    }

    /// Execute one global switch and report its statistics.
    pub fn global_switch(&mut self) -> SuperstepStats {
        let m = self.edges.len();
        if m < 2 {
            return SuperstepStats::default();
        }

        // Draw the global switch Γ = (π, ℓ).
        let perm_seed = self.seeds.child(self.supersteps_done);
        self.supersteps_done += 1;
        let perm = parallel_permutation(perm_seed, m);
        let ell = sample_binomial(&mut self.rng, (m / 2) as u64, 1.0 - self.config.loop_probability)
            as usize;
        let switches = SeqGlobalES::switches_from_permutation(&perm, ell);

        let stats = crate::superstep::parallel_superstep(&self.edges, &self.edge_set, &switches);

        if self.edge_set.needs_rebuild() {
            self.edge_set.rebuild();
        }
        stats
    }
}

impl EdgeSwitching for ParGlobalES {
    fn name(&self) -> &'static str {
        "ParGlobalES"
    }

    fn num_edges(&self) -> usize {
        self.edges.len()
    }

    fn graph(&self) -> EdgeListGraph {
        self.edges.to_graph()
    }

    fn superstep(&mut self) -> SuperstepStats {
        self.global_switch()
    }

    fn snapshot(&self) -> Option<ChainSnapshot> {
        Some(ChainSnapshot {
            algorithm: self.name().to_string(),
            num_nodes: self.edges.num_nodes(),
            edges: self.edges.snapshot_edges(),
            rng: RngState::capture(&self.rng),
            aux_seed_state: self.seeds.raw_state(),
            supersteps_done: self.supersteps_done,
            seed: self.config.seed,
            loop_probability: self.config.loop_probability,
            prefetch: self.config.prefetch,
        })
    }

    fn restore(&mut self, snapshot: &ChainSnapshot) -> Result<(), SnapshotError> {
        snapshot.check_algorithm(self.name())?;
        let graph = snapshot.graph()?;
        self.edge_set = ConcurrentEdgeSet::from_edges(graph.edges().iter(), graph.num_edges() * 2);
        self.edges = AtomicEdgeList::from_graph(&graph);
        self.rng = snapshot.rng.restore();
        self.seeds = SeedSequence::from_raw_state(snapshot.aux_seed_state);
        self.supersteps_done = snapshot.supersteps_done;
        self.config = snapshot.config();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesmc_graph::gen::{gnp, havel_hakimi, powerlaw_degree_sequence, PowerlawConfig};

    fn gnp_graph(seed: u64, n: usize, p: f64) -> EdgeListGraph {
        let mut rng = rng_from_seed(seed);
        gnp(&mut rng, n, p)
    }

    #[test]
    fn preserves_degrees_and_simplicity() {
        let graph = gnp_graph(1, 200, 0.05);
        let degrees = graph.degrees();
        let mut chain = ParGlobalES::new(graph, SwitchingConfig::with_seed(2));
        chain.run_supersteps(6);
        let result = chain.graph();
        assert_eq!(result.degrees(), degrees);
        assert!(result.validate().is_ok());
    }

    #[test]
    fn randomises_power_law_graphs() {
        let mut rng = rng_from_seed(3);
        let seq = powerlaw_degree_sequence(&mut rng, &PowerlawConfig::paper(256, 2.2));
        let graph = havel_hakimi(&seq).unwrap();
        let before = graph.canonical_edges();
        let mut chain = ParGlobalES::new(graph, SwitchingConfig::with_seed(4));
        let stats = chain.run_supersteps(8);
        let result = chain.graph();
        assert_eq!(result.degrees().sorted_desc(), seq.sorted_desc());
        assert!(result.validate().is_ok());
        assert_ne!(result.canonical_edges(), before);
        assert!(stats.total_legal() > 0);
        // Theorem 3 / Fig. 9: rounds stay in the single digits.
        assert!(stats.max_rounds() <= 12, "max rounds {}", stats.max_rounds());
    }

    #[test]
    fn repeated_supersteps_keep_edge_set_consistent() {
        // Run enough supersteps to force at least one rebuild of the edge set.
        let graph = gnp_graph(5, 150, 0.08);
        let m = graph.num_edges();
        let mut chain = ParGlobalES::new(graph, SwitchingConfig::with_seed(6));
        chain.run_supersteps(20);
        let result = chain.graph();
        assert_eq!(result.num_edges(), m);
        assert!(result.validate().is_ok());
        // The edge set must agree exactly with the edge array.
        let mut from_set: Vec<u64> = chain.edge_set.iter().map(|e| e.pack()).collect();
        from_set.sort_unstable();
        assert_eq!(from_set, result.canonical_edges());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let graph = gnp_graph(7, 120, 0.06);
        let mut a = ParGlobalES::new(graph.clone(), SwitchingConfig::with_seed(99));
        let mut b = ParGlobalES::new(graph, SwitchingConfig::with_seed(99));
        a.run_supersteps(4);
        b.run_supersteps(4);
        assert_eq!(a.graph().canonical_edges(), b.graph().canonical_edges());
    }

    #[test]
    fn tiny_graph_is_a_noop() {
        let graph = EdgeListGraph::new(2, vec![gesmc_graph::Edge::new(0, 1)]).unwrap();
        let mut chain = ParGlobalES::new(graph.clone(), SwitchingConfig::with_seed(8));
        let stats = chain.superstep();
        assert_eq!(stats.requested, 0);
        assert_eq!(chain.graph().canonical_edges(), graph.canonical_edges());
    }
}
