//! `ChainRegistry` — an open, name-keyed registry of switching chains.
//!
//! Every layer that selects an algorithm by name (the engine's job specs and
//! checkpoints, study sweeps, the CLI) goes through a registry instead of a
//! closed enum: a [`ChainRegistry`] maps kebab-case names to [`ChainInfo`]
//! descriptors, each carrying the chain's factory, its accepted parameters,
//! and its capabilities (exact? parallel? snapshot-capable?).  Adding a chain
//! anywhere in the stack is therefore one [`ChainRegistry::register`] call —
//! no engine, manifest, or CLI change required.
//!
//! [`ChainRegistry::with_core_chains`] pre-populates the five chains of this
//! crate; `gesmc_baselines::register_baselines` adds the baselines, and
//! `gesmc_engine::default_registry()` exposes the combined default set.
//!
//! ```
//! use gesmc_core::{ChainRegistry, ChainSpec};
//! use gesmc_graph::gen::gnp;
//! use gesmc_randx::rng_from_seed;
//!
//! let registry = ChainRegistry::with_core_chains();
//! let spec = ChainSpec::parse("par-global-es?pl=0.001").unwrap();
//! let graph = gnp(&mut rng_from_seed(1), 100, 0.05);
//! let degrees = graph.degrees();
//!
//! let mut chain = registry.build(&spec, graph, 42).unwrap();
//! chain.run_supersteps(5);
//! assert_eq!(chain.graph().degrees(), degrees);
//! ```

use crate::chain::{EdgeSwitching, SwitchingConfig};
use crate::spec::{ChainError, ChainSpec, ParamValue, PARAM_LOOP_PROBABILITY, PARAM_PREFETCH};
use crate::store_chain::StoreSwitching;
use crate::{NaiveParES, ParES, ParGlobalES, SeqES, SeqGlobalES};
use gesmc_graph::{EdgeListGraph, EdgeStore};
use std::collections::HashMap;

/// The factory signature of a registered chain: build a boxed chain
/// randomising `graph` under `config`.
///
/// The full [`ChainSpec`] is passed through so chains with parameters beyond
/// the common `pl`/`prefetch` pair (already folded into the
/// [`SwitchingConfig`]) can read them; the spec's parameters were validated
/// against the chain's [`ChainInfo::params`] before the factory runs.
pub type ChainFactory = fn(
    EdgeListGraph,
    SwitchingConfig,
    &ChainSpec,
) -> Result<Box<dyn EdgeSwitching + Send>, ChainError>;

/// The factory signature of a chain that can run over any
/// [`EdgeStore`] backend (in-memory or external) — the capability behind
/// `--mmap` out-of-core execution.
///
/// Registered *in addition to* a chain's ordinary [`ChainFactory`] via
/// [`ChainRegistry::register_store_factory`], so the external runner resolves
/// it through the registry like everything else — no engine special-casing.
pub type StoreChainFactory = fn(
    Box<dyn EdgeStore + Send>,
    SwitchingConfig,
    &ChainSpec,
) -> Result<Box<dyn StoreSwitching + Send>, ChainError>;

/// The type of a chain parameter (see [`ParamInfo`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// `true` / `false` (also `on` / `off` in string specs).
    Bool,
    /// An integer.
    Int,
    /// A floating-point number (integer literals coerce).
    Float,
}

impl ParamKind {
    /// Human-readable name (`bool`, `int`, `float`).
    pub fn name(&self) -> &'static str {
        match self {
            ParamKind::Bool => "bool",
            ParamKind::Int => "int",
            ParamKind::Float => "float",
        }
    }

    /// Whether `value` is acceptable for this kind.
    fn accepts(&self, value: &ParamValue) -> bool {
        match self {
            ParamKind::Bool => matches!(value, ParamValue::Bool(_)),
            ParamKind::Int => matches!(value, ParamValue::Int(_)),
            ParamKind::Float => matches!(value, ParamValue::Int(_) | ParamValue::Float(_)),
        }
    }
}

/// One parameter a chain accepts: name, type, rendered default, and a short
/// description (surfaced by `gesmc algorithms`).
#[derive(Debug, Clone, Copy)]
pub struct ParamInfo {
    /// Parameter name as it appears in specs (e.g. `pl`).
    pub name: &'static str,
    /// Value type.
    pub kind: ParamKind,
    /// The default, rendered for display (e.g. `0.01`).
    pub default: &'static str,
    /// One-line description.
    pub doc: &'static str,
}

/// The common parameters every chain accepts: they configure the
/// [`SwitchingConfig`] each factory receives.  Chains that ignore one of them
/// say so in their summary / the parameter doc.
pub const COMMON_PARAMS: &[ParamInfo] = &[
    ParamInfo {
        name: PARAM_LOOP_PROBABILITY,
        kind: ParamKind::Float,
        default: "0.01",
        doc: "per-switch rejection probability P_L in [0, 1) (G-ES-MC chains; \
              ES-MC-style chains accept and ignore it)",
    },
    ParamInfo {
        name: PARAM_PREFETCH,
        kind: ParamKind::Bool,
        default: "true",
        doc: "software-prefetch pipeline of the sequential hash-set chains (Sec. 5.4; \
              other chains accept and ignore it)",
    },
];

/// Everything the registry knows about one chain.
#[derive(Debug, Clone)]
pub struct ChainInfo {
    /// Registry name (kebab-case, e.g. `par-global-es`) — the spelling of
    /// [`ChainSpec::name`], CLI flags, manifests, and study specs.
    pub name: &'static str,
    /// The [`EdgeSwitching::name`] of built chains (e.g. `ParGlobalES`) —
    /// the spelling `GESMCKP1` checkpoint headers record.
    pub chain_name: &'static str,
    /// Alternative registry names that resolve to this chain.
    pub aliases: &'static [&'static str],
    /// One-line description.
    pub summary: &'static str,
    /// Whether the chain has the correct (uniform) stationary distribution;
    /// `false` for deliberately inexact baselines such as `naive-par-es`.
    pub exact: bool,
    /// Whether a superstep runs on multiple rayon threads.
    pub parallel: bool,
    /// Whether the chain supports [`EdgeSwitching::snapshot`]/`restore`
    /// (i.e. can be checkpointed and resumed).
    pub snapshot: bool,
    /// The parameters the chain accepts.
    pub params: &'static [ParamInfo],
    /// The factory building the chain.
    pub factory: ChainFactory,
}

impl ChainInfo {
    /// Look an accepted parameter up by name.
    pub fn param(&self, name: &str) -> Option<&ParamInfo> {
        self.params.iter().find(|p| p.name == name)
    }
}

/// An open registry mapping chain names to factories.
///
/// Lookups resolve the primary [`ChainInfo::name`], any alias, and the
/// [`ChainInfo::chain_name`] (so checkpoint headers resolve too); listings
/// iterate in registration order.
#[derive(Debug, Clone, Default)]
pub struct ChainRegistry {
    infos: Vec<ChainInfo>,
    /// Every resolvable spelling → index into `infos`.
    index: HashMap<&'static str, usize>,
    /// Chains that can additionally run over any [`EdgeStore`] backend:
    /// index into `infos` → store-aware factory.
    store_factories: HashMap<usize, StoreChainFactory>,
}

impl ChainRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-populated with the five chains of this crate
    /// (`seq-es`, `seq-global-es`, `par-es`, `par-global-es`,
    /// `naive-par-es`).
    pub fn with_core_chains() -> Self {
        let mut registry = Self::new();
        for info in core_chain_infos() {
            registry.register(info);
        }
        registry
    }

    /// Register a chain.
    ///
    /// # Panics
    ///
    /// If any of the chain's spellings (name, aliases, chain name) is already
    /// taken — duplicate registration is a programming error, not an input
    /// error.
    pub fn register(&mut self, info: ChainInfo) {
        let index = self.infos.len();
        let mut spellings = vec![info.name, info.chain_name];
        spellings.extend_from_slice(info.aliases);
        for spelling in spellings {
            if let Some(&taken) = self.index.get(spelling) {
                if taken != index {
                    panic!(
                        "chain name {spelling:?} already registered by {:?}",
                        self.infos[taken].name
                    );
                }
            }
            self.index.insert(spelling, index);
        }
        self.infos.push(info);
    }

    /// The registered chains, in registration order.
    pub fn infos(&self) -> impl Iterator<Item = &ChainInfo> {
        self.infos.iter()
    }

    /// Number of registered chains.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// Whether no chain is registered.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// The primary names of every registered chain, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.infos.iter().map(|i| i.name).collect()
    }

    /// Look a chain up by any spelling (primary name, alias, or chain name).
    pub fn get(&self, name: &str) -> Option<&ChainInfo> {
        self.index.get(name).map(|&i| &self.infos[i])
    }

    /// Like [`ChainRegistry::get`], with a [`ChainError::UnknownChain`]
    /// listing every known chain on failure.
    pub fn resolve(&self, name: &str) -> Result<&ChainInfo, ChainError> {
        self.get(name).ok_or_else(|| ChainError::UnknownChain {
            name: name.to_string(),
            known: self.names().iter().map(|n| n.to_string()).collect(),
        })
    }

    /// Resolve `spec` and validate its parameters against the chain's
    /// declared [`ChainInfo::params`] (existence, type, and the common
    /// parameters' value ranges).  Returns the resolved descriptor.
    pub fn validate(&self, spec: &ChainSpec) -> Result<&ChainInfo, ChainError> {
        let info = self.resolve(&spec.name)?;
        for (key, value) in &spec.params {
            let param = info.param(key).ok_or_else(|| ChainError::UnknownParam {
                chain: info.name.to_string(),
                param: key.clone(),
                accepted: info.params.iter().map(|p| p.name.to_string()).collect(),
            })?;
            if !param.kind.accepts(value) {
                return Err(ChainError::BadParam {
                    chain: info.name.to_string(),
                    param: key.clone(),
                    message: format!("expected a {}, got {value}", param.kind.name()),
                });
            }
        }
        // Range-check the common parameters (P_L ∈ [0, 1)) without building.
        spec.switching_config(0)?;
        Ok(info)
    }

    /// Validate `spec` and build the chain randomising `graph`, seeding its
    /// pseudo-random stream with `seed`.
    pub fn build(
        &self,
        spec: &ChainSpec,
        graph: EdgeListGraph,
        seed: u64,
    ) -> Result<Box<dyn EdgeSwitching + Send>, ChainError> {
        let info = self.validate(spec)?;
        let config = spec.switching_config(seed)?;
        (info.factory)(graph, config, spec)
    }

    /// Build a chain from an explicit [`SwitchingConfig`], bypassing
    /// parameter validation — the resume path, where the configuration and
    /// the spec come from a trusted checkpoint rather than user input.
    /// `spec.name` may be any resolvable spelling (checkpoint headers use
    /// the chain name); the spec's parameters are passed through to the
    /// factory, so chain-specific parameters survive a resume.
    pub fn build_with_config(
        &self,
        spec: &ChainSpec,
        graph: EdgeListGraph,
        config: SwitchingConfig,
    ) -> Result<Box<dyn EdgeSwitching + Send>, ChainError> {
        let info = self.resolve(&spec.name)?;
        (info.factory)(graph, config, spec)
    }

    /// Additionally register a store-aware factory for an already-registered
    /// chain, making it selectable for out-of-core (`--mmap`) execution.
    ///
    /// # Panics
    ///
    /// If `name` does not resolve, or the chain already has a store factory —
    /// both are programming errors, like duplicate [`ChainRegistry::register`]
    /// calls.
    pub fn register_store_factory(&mut self, name: &str, factory: StoreChainFactory) {
        let index = *self
            .index
            .get(name)
            .unwrap_or_else(|| panic!("store factory for unregistered chain {name:?}"));
        if self.store_factories.insert(index, factory).is_some() {
            panic!("chain {:?} already has a store factory", self.infos[index].name);
        }
    }

    /// The store-aware factory of a chain, if it registered one (resolves
    /// every spelling, like [`ChainRegistry::get`]).
    pub fn store_factory(&self, name: &str) -> Option<StoreChainFactory> {
        let index = *self.index.get(name)?;
        self.store_factories.get(&index).copied()
    }

    /// Primary names of the chains that can run over an external
    /// [`EdgeStore`], in registration order (surfaced by `--mmap` error
    /// messages and `gesmc algorithms`).
    pub fn store_capable_names(&self) -> Vec<&'static str> {
        (0..self.infos.len())
            .filter(|i| self.store_factories.contains_key(i))
            .map(|i| self.infos[i].name)
            .collect()
    }

    /// Validate `spec` and build the store-aware chain over `store`, seeding
    /// its pseudo-random stream with `seed`.  Fails with
    /// [`ChainError::BadParam`] naming the store-capable chains when the
    /// chain has no store factory.
    pub fn build_store(
        &self,
        spec: &ChainSpec,
        store: Box<dyn EdgeStore + Send>,
        seed: u64,
    ) -> Result<Box<dyn StoreSwitching + Send>, ChainError> {
        self.validate(spec)?;
        let config = spec.switching_config(seed)?;
        self.build_store_with_config(spec, store, config)
    }

    /// Build a store-aware chain from an explicit [`SwitchingConfig`],
    /// bypassing parameter validation (the resume path; see
    /// [`ChainRegistry::build_with_config`]).
    pub fn build_store_with_config(
        &self,
        spec: &ChainSpec,
        store: Box<dyn EdgeStore + Send>,
        config: SwitchingConfig,
    ) -> Result<Box<dyn StoreSwitching + Send>, ChainError> {
        let info = self.resolve(&spec.name)?;
        let factory = self.store_factory(info.name).ok_or_else(|| ChainError::BadParam {
            chain: info.name.to_string(),
            param: "mmap".to_string(),
            message: format!(
                "chain does not support external-memory execution (store-capable chains: {})",
                self.store_capable_names().join(", ")
            ),
        })?;
        factory(store, config, spec)
    }
}

/// Descriptors of the five core chains.
fn core_chain_infos() -> Vec<ChainInfo> {
    vec![
        ChainInfo {
            name: "seq-es",
            chain_name: "SeqES",
            aliases: &[],
            summary: "sequential ES-MC on an edge array + hash set (Def. 1, Sec. 5)",
            exact: true,
            parallel: false,
            snapshot: true,
            params: COMMON_PARAMS,
            factory: |graph, config, _| Ok(Box::new(SeqES::new(graph, config))),
        },
        ChainInfo {
            name: "seq-global-es",
            chain_name: "SeqGlobalES",
            aliases: &[],
            summary: "sequential G-ES-MC: global switches over a permuted edge array (Def. 3)",
            exact: true,
            parallel: false,
            snapshot: true,
            params: COMMON_PARAMS,
            factory: |graph, config, _| Ok(Box::new(SeqGlobalES::new(graph, config))),
        },
        ChainInfo {
            name: "par-es",
            chain_name: "ParES",
            aliases: &[],
            summary: "exact parallel ES-MC via dependency-resolving supersteps (Algorithm 2)",
            exact: true,
            parallel: true,
            snapshot: true,
            params: COMMON_PARAMS,
            factory: |graph, config, _| Ok(Box::new(ParES::new(graph, config))),
        },
        ChainInfo {
            name: "par-global-es",
            chain_name: "ParGlobalES",
            aliases: &[],
            summary: "exact parallel G-ES-MC, the paper's main contribution (Algorithm 3)",
            exact: true,
            parallel: true,
            snapshot: true,
            params: COMMON_PARAMS,
            factory: |graph, config, _| Ok(Box::new(ParGlobalES::new(graph, config))),
        },
        ChainInfo {
            name: "naive-par-es",
            chain_name: "NaiveParES",
            aliases: &[],
            summary: "inexact lock-per-edge parallel ES-MC baseline (Sec. 5.1); racy across \
                      threads",
            exact: false,
            parallel: true,
            snapshot: true,
            params: COMMON_PARAMS,
            factory: |graph, config, _| Ok(Box::new(NaiveParES::new(graph, config))),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesmc_graph::gen::gnp;
    use gesmc_randx::rng_from_seed;

    fn test_graph() -> EdgeListGraph {
        gnp(&mut rng_from_seed(3), 80, 0.08)
    }

    #[test]
    fn core_registry_builds_every_chain() {
        let registry = ChainRegistry::with_core_chains();
        assert_eq!(registry.len(), 5);
        for info in registry.infos() {
            let graph = test_graph();
            let degrees = graph.degrees();
            let mut chain = registry.build(&ChainSpec::new(info.name), graph, 1).unwrap();
            assert_eq!(chain.name(), info.chain_name);
            chain.superstep();
            assert_eq!(chain.graph().degrees(), degrees, "{}", info.name);
            assert_eq!(chain.snapshot().is_some(), info.snapshot, "{}", info.name);
        }
    }

    #[test]
    fn chain_names_resolve_like_primary_names() {
        let registry = ChainRegistry::with_core_chains();
        assert_eq!(registry.resolve("SeqGlobalES").unwrap().name, "seq-global-es");
        assert_eq!(registry.resolve("seq-global-es").unwrap().chain_name, "SeqGlobalES");
    }

    #[test]
    fn unknown_chains_list_the_known_ones() {
        let registry = ChainRegistry::with_core_chains();
        match registry.resolve("quantum-es") {
            Err(ChainError::UnknownChain { name, known }) => {
                assert_eq!(name, "quantum-es");
                assert_eq!(known.len(), 5);
                assert!(known.contains(&"par-global-es".to_string()));
            }
            other => panic!("expected UnknownChain, got {other:?}"),
        }
    }

    #[test]
    fn per_chain_param_validation() {
        let registry = ChainRegistry::with_core_chains();
        // Common params pass everywhere.
        let spec = ChainSpec::parse("par-global-es?pl=0.001&prefetch=off").unwrap();
        assert!(registry.validate(&spec).is_ok());
        // Unknown parameter names fail with the accepted list.
        let spec = ChainSpec::parse("seq-es?plx=1").unwrap();
        match registry.validate(&spec) {
            Err(ChainError::UnknownParam { chain, param, accepted }) => {
                assert_eq!(chain, "seq-es");
                assert_eq!(param, "plx");
                assert_eq!(accepted, vec!["pl", "prefetch"]);
            }
            other => panic!("expected UnknownParam, got {other:?}"),
        }
        // Wrong types and out-of-range values fail as errors, not panics.
        for bad in ["seq-es?prefetch=0.5", "seq-global-es?pl=1.5", "seq-global-es?pl=on"] {
            let spec = ChainSpec::parse(bad).unwrap();
            assert!(matches!(registry.validate(&spec), Err(ChainError::BadParam { .. })), "{bad}");
        }
    }

    #[test]
    fn built_chains_honour_spec_params() {
        let registry = ChainRegistry::with_core_chains();
        let graph = test_graph();
        // pl flows into the chain: a snapshot records it.
        let spec = ChainSpec::parse("seq-global-es?pl=0.25").unwrap();
        let chain = registry.build(&spec, graph.clone(), 9).unwrap();
        let snapshot = chain.snapshot().unwrap();
        assert!((snapshot.loop_probability - 0.25).abs() < 1e-12);
        assert_eq!(snapshot.seed, 9);
        // prefetch flows into the chain likewise.
        let spec = ChainSpec::parse("seq-es?prefetch=off").unwrap();
        let chain = registry.build(&spec, graph, 9).unwrap();
        assert!(!chain.snapshot().unwrap().prefetch);
    }

    #[test]
    fn custom_chains_register_with_their_own_params() {
        // The registry is open: a chain with its own parameter set validates
        // against exactly that set.
        fn noop_factory(
            graph: EdgeListGraph,
            config: SwitchingConfig,
            _spec: &ChainSpec,
        ) -> Result<Box<dyn EdgeSwitching + Send>, ChainError> {
            Ok(Box::new(SeqES::new(graph, config)))
        }
        let mut registry = ChainRegistry::new();
        registry.register(ChainInfo {
            name: "custom-es",
            chain_name: "CustomES",
            aliases: &["my-es"],
            summary: "test chain",
            exact: true,
            parallel: false,
            snapshot: true,
            params: &[ParamInfo {
                name: "depth",
                kind: ParamKind::Int,
                default: "4",
                doc: "pipeline depth",
            }],
            factory: noop_factory,
        });
        assert_eq!(registry.resolve("my-es").unwrap().name, "custom-es");
        assert!(registry.validate(&ChainSpec::parse("custom-es?depth=8").unwrap()).is_ok());
        assert!(matches!(
            registry.validate(&ChainSpec::parse("custom-es?depth=0.5").unwrap()),
            Err(ChainError::BadParam { .. })
        ));
        assert!(matches!(
            registry.validate(&ChainSpec::parse("custom-es?pl=0.1").unwrap()),
            Err(ChainError::UnknownParam { .. })
        ));
        let graph = test_graph();
        assert!(registry.build(&ChainSpec::parse("my-es?depth=2").unwrap(), graph, 1).is_ok());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_registration_panics() {
        let mut registry = ChainRegistry::with_core_chains();
        registry.register(core_chain_infos().remove(0));
    }

    /// Minimal store-aware chain used to exercise the registry surface; the
    /// real implementation lives in `gesmc-exmem`.
    struct StubStoreChain {
        store: std::sync::Mutex<Box<dyn EdgeStore + Send>>,
        config: SwitchingConfig,
        supersteps_done: u64,
    }

    impl EdgeSwitching for StubStoreChain {
        fn name(&self) -> &'static str {
            "StubStore"
        }
        fn num_edges(&self) -> usize {
            self.store.lock().unwrap().num_edges()
        }
        fn graph(&self) -> EdgeListGraph {
            self.store.lock().unwrap().materialize()
        }
        fn superstep(&mut self) -> crate::SuperstepStats {
            self.supersteps_done += 1;
            crate::SuperstepStats::default()
        }
    }

    impl crate::StoreSwitching for StubStoreChain {
        fn store_num_nodes(&self) -> usize {
            self.store.lock().unwrap().num_nodes()
        }
        fn stream_edges(&mut self, visit: &mut dyn FnMut(gesmc_graph::Edge)) {
            self.store.get_mut().unwrap().for_each_edge(&mut |_, e| visit(e));
        }
        fn snapshot_meta(&self) -> crate::ChainSnapshot {
            crate::ChainSnapshot {
                algorithm: "StubStore".to_string(),
                num_nodes: self.store_num_nodes(),
                edges: Vec::new(),
                rng: gesmc_randx::RngState::default(),
                aux_seed_state: 0,
                supersteps_done: self.supersteps_done,
                seed: self.config.seed,
                loop_probability: self.config.loop_probability,
                prefetch: self.config.prefetch,
            }
        }
        fn restore_meta(
            &mut self,
            snapshot: &crate::ChainSnapshot,
        ) -> Result<(), crate::SnapshotError> {
            snapshot.check_algorithm("StubStore")?;
            self.supersteps_done = snapshot.supersteps_done;
            Ok(())
        }
        fn flush_store(&mut self) -> std::io::Result<()> {
            self.store.get_mut().unwrap().flush()
        }
    }

    fn stub_store_factory(
        store: Box<dyn EdgeStore + Send>,
        config: SwitchingConfig,
        _spec: &ChainSpec,
    ) -> Result<Box<dyn crate::StoreSwitching + Send>, ChainError> {
        Ok(Box::new(StubStoreChain {
            store: std::sync::Mutex::new(store),
            config,
            supersteps_done: 0,
        }))
    }

    #[test]
    fn store_factories_register_and_resolve_through_every_spelling() {
        let mut registry = ChainRegistry::with_core_chains();
        assert!(registry.store_factory("seq-es").is_none());
        assert!(registry.store_capable_names().is_empty());

        registry.register_store_factory("seq-es", stub_store_factory);
        assert!(registry.store_factory("seq-es").is_some());
        // Chain-name spelling resolves too, like plain lookups.
        assert!(registry.store_factory("SeqES").is_some());
        assert_eq!(registry.store_capable_names(), vec!["seq-es"]);

        let graph = test_graph();
        let edges = graph.edges().to_vec();
        let mut chain =
            registry.build_store(&ChainSpec::new("seq-es"), Box::new(graph), 7).unwrap();
        let mut streamed = Vec::new();
        chain.stream_edges(&mut |e| streamed.push(e));
        assert_eq!(streamed, edges);
    }

    #[test]
    fn chains_without_store_factories_fail_with_the_capable_list() {
        let mut registry = ChainRegistry::with_core_chains();
        registry.register_store_factory("seq-es", stub_store_factory);
        let err = registry
            .build_store(&ChainSpec::new("par-es"), Box::new(test_graph()), 1)
            .map(|_| ())
            .unwrap_err();
        match err {
            ChainError::BadParam { chain, param, message } => {
                assert_eq!(chain, "par-es");
                assert_eq!(param, "mmap");
                assert!(message.contains("seq-es"), "{message}");
            }
            other => panic!("expected BadParam, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "already has a store factory")]
    fn duplicate_store_factory_registration_panics() {
        let mut registry = ChainRegistry::with_core_chains();
        registry.register_store_factory("seq-es", stub_store_factory);
        registry.register_store_factory("SeqES", stub_store_factory);
    }

    #[test]
    #[should_panic(expected = "unregistered chain")]
    fn store_factory_for_unknown_chain_panics() {
        let mut registry = ChainRegistry::new();
        registry.register_store_factory("ghost-es", stub_store_factory);
    }
}
