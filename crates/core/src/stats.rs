//! Execution statistics reported by the switching chains.
//!
//! The paper's evaluation needs more than wall-clock time: Fig. 9 reports the
//! number of rounds `ParallelSuperstep` takes per global switch and the
//! fraction of runtime spent outside the first round, and the mixing-time
//! study counts supersteps.  Every chain therefore returns a
//! [`SuperstepStats`] per superstep and aggregates them into [`ChainStats`].

use std::time::Duration;

/// Statistics of a single superstep.
#[derive(Debug, Clone, Default)]
pub struct SuperstepStats {
    /// Number of switches attempted in this superstep.
    pub requested: usize,
    /// Number of switches that were legal (applied).
    pub legal: usize,
    /// Number of switches that were rejected.
    pub illegal: usize,
    /// Number of decision rounds `ParallelSuperstep` needed (1 for the
    /// sequential chains).
    pub rounds: usize,
    /// Wall-clock duration of each round (empty for chains that do not track
    /// per-round timing).
    pub round_durations: Vec<Duration>,
    /// Total wall-clock duration of the superstep.
    pub duration: Duration,
}

impl SuperstepStats {
    /// Time spent in rounds after the first one (Fig. 9's y-axis).
    pub fn time_after_first_round(&self) -> Duration {
        self.round_durations.iter().skip(1).sum()
    }

    /// Fraction of the round time spent after the first round; `0.0` when no
    /// per-round timing is available.
    pub fn fraction_after_first_round(&self) -> f64 {
        let total: Duration = self.round_durations.iter().sum();
        if total.is_zero() {
            return 0.0;
        }
        self.time_after_first_round().as_secs_f64() / total.as_secs_f64()
    }

    /// Acceptance rate of this superstep.
    pub fn acceptance_rate(&self) -> f64 {
        if self.requested == 0 {
            return 0.0;
        }
        self.legal as f64 / self.requested as f64
    }
}

/// Aggregated statistics over several supersteps.
#[derive(Debug, Clone, Default)]
pub struct ChainStats {
    /// Per-superstep statistics, in execution order.
    pub supersteps: Vec<SuperstepStats>,
}

impl ChainStats {
    /// Number of supersteps recorded.
    pub fn num_supersteps(&self) -> usize {
        self.supersteps.len()
    }

    /// Total number of attempted switches.
    pub fn total_requested(&self) -> usize {
        self.supersteps.iter().map(|s| s.requested).sum()
    }

    /// Total number of applied switches.
    pub fn total_legal(&self) -> usize {
        self.supersteps.iter().map(|s| s.legal).sum()
    }

    /// Total wall-clock time.
    pub fn total_duration(&self) -> Duration {
        self.supersteps.iter().map(|s| s.duration).sum()
    }

    /// Mean number of rounds per superstep (Fig. 9's x-axis aggregation).
    pub fn mean_rounds(&self) -> f64 {
        if self.supersteps.is_empty() {
            return 0.0;
        }
        self.supersteps.iter().map(|s| s.rounds as f64).sum::<f64>() / self.supersteps.len() as f64
    }

    /// Maximum number of rounds over all supersteps.
    pub fn max_rounds(&self) -> usize {
        self.supersteps.iter().map(|s| s.rounds).max().unwrap_or(0)
    }

    /// Overall acceptance rate.
    pub fn acceptance_rate(&self) -> f64 {
        let total = self.total_requested();
        if total == 0 {
            return 0.0;
        }
        self.total_legal() as f64 / total as f64
    }

    /// Mean fraction of round time spent outside the first round.
    pub fn mean_fraction_after_first_round(&self) -> f64 {
        if self.supersteps.is_empty() {
            return 0.0;
        }
        self.supersteps.iter().map(|s| s.fraction_after_first_round()).sum::<f64>()
            / self.supersteps.len() as f64
    }

    /// Append another superstep record.
    pub fn push(&mut self, stats: SuperstepStats) {
        self.supersteps.push(stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(requested: usize, legal: usize, rounds: usize, durs_ms: &[u64]) -> SuperstepStats {
        SuperstepStats {
            requested,
            legal,
            illegal: requested - legal,
            rounds,
            round_durations: durs_ms.iter().map(|&d| Duration::from_millis(d)).collect(),
            duration: Duration::from_millis(durs_ms.iter().sum()),
        }
    }

    #[test]
    fn superstep_derived_metrics() {
        let s = stats(100, 80, 3, &[90, 5, 5]);
        assert!((s.acceptance_rate() - 0.8).abs() < 1e-12);
        assert_eq!(s.time_after_first_round(), Duration::from_millis(10));
        assert!((s.fraction_after_first_round() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_superstep_is_well_defined() {
        let s = SuperstepStats::default();
        assert_eq!(s.acceptance_rate(), 0.0);
        assert_eq!(s.fraction_after_first_round(), 0.0);
    }

    #[test]
    fn chain_aggregation() {
        let mut chain = ChainStats::default();
        chain.push(stats(10, 5, 2, &[10, 2]));
        chain.push(stats(10, 10, 4, &[20, 1, 1, 2]));
        assert_eq!(chain.num_supersteps(), 2);
        assert_eq!(chain.total_requested(), 20);
        assert_eq!(chain.total_legal(), 15);
        assert!((chain.mean_rounds() - 3.0).abs() < 1e-12);
        assert_eq!(chain.max_rounds(), 4);
        assert!((chain.acceptance_rate() - 0.75).abs() < 1e-12);
        assert_eq!(chain.total_duration(), Duration::from_millis(36));
    }

    #[test]
    fn empty_chain_is_well_defined() {
        let chain = ChainStats::default();
        assert_eq!(chain.mean_rounds(), 0.0);
        assert_eq!(chain.max_rounds(), 0);
        assert_eq!(chain.acceptance_rate(), 0.0);
    }
}
