//! `SeqES` — the fast sequential implementation of ES-MC (Def. 1, Sec. 5).
//!
//! The graph is kept twice: as an indexed edge array (to pick switch sources
//! uniformly at random) and as a hash set of packed edges (to answer the
//! existence queries of the legality test and to apply rewirings).  This is
//! exactly the design of the paper's `SeqES`: sampling from an auxiliary edge
//! array combined with a low-load-factor hash set was measured there to beat
//! sampling from the hash set directly.
//!
//! When [`SwitchingConfig::prefetch`] is enabled, switches are processed in a
//! small pipeline: the hash-set buckets of the next few switches are
//! prefetched while the current switch is decided (Sec. 5.4).

use crate::chain::{EdgeSwitching, SwitchingConfig};
use crate::snapshot::{ChainSnapshot, SnapshotError};
use crate::stats::SuperstepStats;
use crate::switch::{switch_targets, SwitchRequest};
use gesmc_concurrent::SeqEdgeSet;
use gesmc_graph::{Edge, EdgeListGraph};
use gesmc_randx::bounded::UniformIndex;
use gesmc_randx::{rng_from_seed, Rng, RngState};
use rand::Rng as _;
use std::time::Instant;

/// Depth of the prefetch pipeline (number of switches in flight).
const PIPELINE: usize = 4;

/// Sequential ES-MC chain.
pub struct SeqES {
    num_nodes: usize,
    edges: Vec<Edge>,
    set: SeqEdgeSet,
    rng: Rng,
    supersteps_done: u64,
    config: SwitchingConfig,
}

impl SeqES {
    /// Create a chain randomising `graph`.
    pub fn new(graph: EdgeListGraph, config: SwitchingConfig) -> Self {
        let set = SeqEdgeSet::from_edges(graph.edges().iter().map(|e| e.pack()), graph.num_edges());
        let rng = rng_from_seed(config.seed);
        let num_nodes = graph.num_nodes();
        Self { num_nodes, edges: graph.into_edges(), set, rng, supersteps_done: 0, config }
    }

    /// Attempt a single uniformly random edge switch; returns whether it was
    /// applied.
    pub fn single_switch(&mut self) -> bool {
        let m = self.edges.len();
        if m < 2 {
            return false;
        }
        let sampler = UniformIndex::new(m as u64);
        let (i, j) = sampler.sample_distinct_pair(&mut self.rng);
        let g: bool = self.rng.gen();
        self.apply(SwitchRequest::new(i as usize, j as usize, g))
    }

    /// Apply one explicit switch request (Def. 1); returns whether it was
    /// legal.
    pub fn apply(&mut self, request: SwitchRequest) -> bool {
        let e1 = self.edges[request.i];
        let e2 = self.edges[request.j];
        let (e3, e4) = switch_targets(e1, e2, request.g);
        if e3.is_loop() || e4.is_loop() {
            return false;
        }
        if self.set.contains(e3.pack()) || self.set.contains(e4.pack()) {
            return false;
        }
        self.set.erase(e1.pack());
        self.set.erase(e2.pack());
        self.set.insert(e3.pack());
        self.set.insert(e4.pack());
        self.edges[request.i] = e3;
        self.edges[request.j] = e4;
        true
    }

    /// Perform `count` uniformly random switches; returns the number applied.
    pub fn run_switches(&mut self, count: usize) -> usize {
        let m = self.edges.len();
        if m < 2 {
            return 0;
        }
        if self.config.prefetch {
            self.run_switches_pipelined(count)
        } else {
            (0..count).filter(|_| self.single_switch()).count()
        }
    }

    /// Pipelined variant: sample a window of switches ahead of time and
    /// prefetch the hash-set buckets of their candidate target edges before
    /// deciding them.
    fn run_switches_pipelined(&mut self, count: usize) -> usize {
        let m = self.edges.len();
        let sampler = UniformIndex::new(m as u64);
        let mut applied = 0usize;
        let mut window: Vec<SwitchRequest> = Vec::with_capacity(PIPELINE);
        let mut remaining = count;
        while remaining > 0 {
            let batch = remaining.min(PIPELINE);
            window.clear();
            for _ in 0..batch {
                let (i, j) = sampler.sample_distinct_pair(&mut self.rng);
                let g: bool = self.rng.gen();
                window.push(SwitchRequest::new(i as usize, j as usize, g));
            }
            // Stage 1: prefetch the buckets the legality test will touch.
            for request in &window {
                let e1 = self.edges[request.i];
                let e2 = self.edges[request.j];
                let (e3, e4) = switch_targets(e1, e2, request.g);
                self.set.prefetch(e3.pack());
                self.set.prefetch(e4.pack());
            }
            // Stage 2: decide and apply.  Note that switches within the window
            // are applied strictly in order, so the chain is unchanged; only
            // the memory accesses are overlapped.
            for request in &window {
                applied += self.apply(*request) as usize;
            }
            remaining -= batch;
        }
        applied
    }
}

impl EdgeSwitching for SeqES {
    fn name(&self) -> &'static str {
        "SeqES"
    }

    fn num_edges(&self) -> usize {
        self.edges.len()
    }

    fn graph(&self) -> EdgeListGraph {
        EdgeListGraph::from_edges_unchecked(self.num_nodes, self.edges.clone())
    }

    fn superstep(&mut self) -> SuperstepStats {
        let start = Instant::now();
        let requested = self.edges.len() / 2;
        let legal = self.run_switches(requested);
        self.supersteps_done += 1;
        SuperstepStats {
            requested,
            legal,
            illegal: requested - legal,
            rounds: 1,
            round_durations: vec![start.elapsed()],
            duration: start.elapsed(),
        }
    }

    fn snapshot(&self) -> Option<ChainSnapshot> {
        Some(ChainSnapshot {
            algorithm: self.name().to_string(),
            num_nodes: self.num_nodes,
            edges: self.edges.clone(),
            rng: RngState::capture(&self.rng),
            aux_seed_state: 0,
            supersteps_done: self.supersteps_done,
            seed: self.config.seed,
            loop_probability: self.config.loop_probability,
            prefetch: self.config.prefetch,
        })
    }

    fn restore(&mut self, snapshot: &ChainSnapshot) -> Result<(), SnapshotError> {
        snapshot.check_algorithm(self.name())?;
        snapshot.validate()?;
        self.num_nodes = snapshot.num_nodes;
        self.edges = snapshot.edges.clone();
        self.set = SeqEdgeSet::from_edges(self.edges.iter().map(|e| e.pack()), self.edges.len());
        self.rng = snapshot.rng.restore();
        self.supersteps_done = snapshot.supersteps_done;
        self.config = snapshot.config();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesmc_graph::gen::gnp;

    fn test_graph(seed: u64) -> EdgeListGraph {
        let mut rng = rng_from_seed(seed);
        gnp(&mut rng, 100, 0.08)
    }

    #[test]
    fn preserves_degrees_and_simplicity() {
        let graph = test_graph(1);
        let degrees = graph.degrees();
        let mut chain = SeqES::new(graph, SwitchingConfig::with_seed(2));
        chain.run_supersteps(5);
        let result = chain.graph();
        assert_eq!(result.degrees(), degrees);
        assert!(result.validate().is_ok());
    }

    #[test]
    fn actually_changes_the_graph() {
        let graph = test_graph(3);
        let before = graph.canonical_edges();
        let mut chain = SeqES::new(graph, SwitchingConfig::with_seed(4));
        chain.run_supersteps(3);
        assert_ne!(chain.graph().canonical_edges(), before);
    }

    #[test]
    fn prefetch_and_plain_variants_agree() {
        // With the same seed, pipelined and non-pipelined execution must visit
        // the same chain states (the pipeline only reorders memory accesses).
        let graph = test_graph(5);
        let mut with_pf = SeqES::new(graph.clone(), SwitchingConfig::with_seed(6).prefetch(true));
        let mut without_pf = SeqES::new(graph, SwitchingConfig::with_seed(6).prefetch(false));
        with_pf.run_switches(500);
        without_pf.run_switches(500);
        assert_eq!(with_pf.graph().canonical_edges(), without_pf.graph().canonical_edges());
    }

    #[test]
    fn rejects_switches_that_would_create_loops_or_duplicates() {
        // Triangle: every switch is rejected, graph must stay identical.
        let graph =
            EdgeListGraph::new(3, vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)]).unwrap();
        let before = graph.canonical_edges();
        let mut chain = SeqES::new(graph, SwitchingConfig::with_seed(7));
        let stats = chain.run_supersteps(10);
        assert_eq!(stats.total_legal(), 0);
        assert_eq!(chain.graph().canonical_edges(), before);
    }

    #[test]
    fn explicit_request_application() {
        // Two disjoint edges can always be switched.
        let graph = EdgeListGraph::new(4, vec![Edge::new(0, 1), Edge::new(2, 3)]).unwrap();
        let mut chain = SeqES::new(graph, SwitchingConfig::with_seed(8));
        assert!(chain.apply(SwitchRequest::new(0, 1, false)));
        let result = chain.graph();
        assert!(result.has_edge_slow(0, 2));
        assert!(result.has_edge_slow(1, 3));
        // Re-applying the same request now produces the original edges again.
        assert!(chain.apply(SwitchRequest::new(0, 1, false)));
        assert!(chain.graph().has_edge_slow(0, 1));
    }

    #[test]
    fn tiny_graphs_do_not_panic() {
        for edges in [vec![], vec![Edge::new(0, 1)]] {
            let graph = EdgeListGraph::new(2, edges).unwrap();
            let mut chain = SeqES::new(graph, SwitchingConfig::with_seed(9));
            let stats = chain.superstep();
            assert_eq!(stats.legal, 0);
        }
    }
}
