//! `StoreSwitching` — the extra surface an out-of-core-capable chain exposes.
//!
//! A chain built over an [`EdgeStore`](gesmc_graph::EdgeStore) can run on
//! graphs that never fit in RAM, so the in-memory convenience methods of
//! [`EdgeSwitching`] (`graph()`, `snapshot()` with a full edge vector) are the
//! wrong interface for it: the engine's external runner instead streams edges
//! straight from the store ([`StoreSwitching::stream_edges`]) and checkpoints
//! metadata and edge payload separately ([`StoreSwitching::snapshot_meta`] /
//! [`StoreSwitching::restore_meta`]).
//!
//! The invariant tying the two interfaces together: **the storage backend
//! never changes the sample bytes**.  A `StoreSwitching` chain over an
//! external store must visit exactly the chain states of the same chain over
//! the in-memory store at the same seed (property-tested in the workspace's
//! `exmem_equivalence` suite).

use crate::chain::EdgeSwitching;
use crate::snapshot::{ChainSnapshot, SnapshotError};
use gesmc_graph::Edge;

/// An [`EdgeSwitching`] chain that runs over a pluggable
/// [`EdgeStore`](gesmc_graph::EdgeStore) and supports streaming access to its
/// state, for out-of-core execution.
pub trait StoreSwitching: EdgeSwitching {
    /// Number of nodes `n` (cheap; does not materialize the graph).
    fn store_num_nodes(&self) -> usize;

    /// Visit the current edge array in slot order without materializing it.
    ///
    /// Includes buffered writes that have not been flushed to the backing
    /// storage yet.
    fn stream_edges(&mut self, visit: &mut dyn FnMut(Edge));

    /// Capture the chain state *without* the edge payload: the returned
    /// snapshot's `edges` vector is empty and its `num_nodes`/counters/RNG
    /// words are authoritative.  The edge payload is streamed separately via
    /// [`StoreSwitching::stream_edges`].
    fn snapshot_meta(&self) -> ChainSnapshot;

    /// Restore the chain bookkeeping (RNG state, superstep counter,
    /// configuration) from a metadata snapshot, keeping the current store
    /// contents — the resume path loads the edge payload into the store
    /// before building the chain.
    ///
    /// The snapshot's `num_nodes` and the store's node count must agree;
    /// its (empty) edge vector is ignored.
    fn restore_meta(&mut self, snapshot: &ChainSnapshot) -> Result<(), SnapshotError>;

    /// Flush buffered dirty state to the backing storage.
    fn flush_store(&mut self) -> std::io::Result<()>;

    /// Cumulative backend I/O counters (defaults to all-zero for stores
    /// without real I/O); used to annotate trace spans with chunk traffic.
    fn store_io_stats(&self) -> gesmc_graph::StoreIoStats {
        gesmc_graph::StoreIoStats::default()
    }
}
