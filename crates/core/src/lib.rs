//! Edge switching Markov chains for the uniform sampling of simple graphs
//! with prescribed degrees.
//!
//! This crate implements the paper's primary contribution:
//!
//! * the classic **Edge Switching Markov Chain** (`ES-MC`, Def. 1) —
//!   [`SeqES`] (sequential) and [`ParES`] (exact parallel, Algorithm 2),
//! * the novel **Global Edge Switching Markov Chain** (`G-ES-MC`, Def. 3) —
//!   [`SeqGlobalES`] (sequential) and [`ParGlobalES`] (exact parallel,
//!   Algorithm 3),
//! * the **`ParallelSuperstep`** primitive (Algorithm 1) both parallel chains
//!   are built on ([`superstep::parallel_superstep`]),
//! * **`NaiveParES`** (Sec. 5.1), the inexact lock-per-edge parallel baseline.
//!
//! All chains expose the same [`EdgeSwitching`] interface so the examples,
//! analysis tooling and benchmarks can treat them interchangeably.  A
//! *superstep* is the unit of comparison defined in Sec. 6.1 of the paper:
//! `⌊m/2⌋` uniformly random edge switches for the ES-MC family and one global
//! switch for the G-ES-MC family.
//!
//! ```
//! use gesmc_core::{ParGlobalES, EdgeSwitching, SwitchingConfig};
//! use gesmc_graph::gen::gnp;
//! use gesmc_randx::rng_from_seed;
//!
//! let mut rng = rng_from_seed(7);
//! let graph = gnp(&mut rng, 200, 0.05);
//! let degrees_before = graph.degrees();
//!
//! let mut chain = ParGlobalES::new(graph, SwitchingConfig::with_seed(7));
//! chain.run_supersteps(10);
//! let randomized = chain.graph();
//!
//! assert_eq!(randomized.degrees(), degrees_before);
//! assert!(randomized.validate().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod naive_par;
pub mod par_es;
pub mod par_global;
pub mod registry;
pub mod seq_es;
pub mod seq_global;
pub mod snapshot;
pub mod spec;
pub mod stats;
pub mod store_chain;
pub mod superstep;
pub mod switch;

pub use chain::{EdgeSwitching, SwitchingConfig};
pub use naive_par::NaiveParES;
pub use par_es::ParES;
pub use par_global::ParGlobalES;
pub use registry::{
    ChainFactory, ChainInfo, ChainRegistry, ParamInfo, ParamKind, StoreChainFactory,
};
pub use seq_es::SeqES;
pub use seq_global::SeqGlobalES;
pub use snapshot::{ChainSnapshot, SnapshotError};
pub use spec::{ChainError, ChainSpec, ParamValue};
pub use stats::{ChainStats, SuperstepStats};
pub use store_chain::StoreSwitching;
pub use switch::{switch_targets, SwitchRequest};
