//! `SeqGlobalES` — the sequential implementation of G-ES-MC (Def. 3).
//!
//! One step of the chain (a *global switch*) draws a uniformly random
//! permutation `π` of the edge indices and a number of trials
//! `ℓ ~ Binom(⌊m/2⌋, 1 − P_L)`, then executes the edge switches
//! `σ_k = (π(2k−1), π(2k), g_k)` with `g_k = 1_{π(2k−1) < π(2k)}` strictly in
//! sequence.  Because `π` is a uniform permutation the direction bits are
//! unbiased and independent, and every edge participates in at most one
//! switch, which is exactly what removes the source dependencies exploited by
//! the parallel algorithm.

use crate::chain::{EdgeSwitching, SwitchingConfig};
use crate::snapshot::{ChainSnapshot, SnapshotError};
use crate::stats::SuperstepStats;
use crate::switch::{switch_targets, SwitchRequest};
use gesmc_concurrent::SeqEdgeSet;
use gesmc_graph::{Edge, EdgeListGraph};
use gesmc_randx::permutation::random_permutation;
use gesmc_randx::{rng_from_seed, sample_binomial, Rng, RngState};
use std::time::Instant;

/// Sequential G-ES-MC chain.
pub struct SeqGlobalES {
    num_nodes: usize,
    edges: Vec<Edge>,
    set: SeqEdgeSet,
    rng: Rng,
    supersteps_done: u64,
    config: SwitchingConfig,
}

impl SeqGlobalES {
    /// Create a chain randomising `graph`.
    pub fn new(graph: EdgeListGraph, config: SwitchingConfig) -> Self {
        let set = SeqEdgeSet::from_edges(graph.edges().iter().map(|e| e.pack()), graph.num_edges());
        let rng = rng_from_seed(config.seed);
        let num_nodes = graph.num_nodes();
        Self { num_nodes, edges: graph.into_edges(), set, rng, supersteps_done: 0, config }
    }

    /// Build the switch sequence of one global switch from a permutation and
    /// the number of executed switches `ℓ`.
    ///
    /// Exposed so that the exactness tests can replay the very same global
    /// switch on the parallel implementation.
    pub fn switches_from_permutation(perm: &[u64], ell: usize) -> Vec<SwitchRequest> {
        (0..ell)
            .map(|k| {
                let a = perm[2 * k] as usize;
                let b = perm[2 * k + 1] as usize;
                SwitchRequest::new(a, b, a < b)
            })
            .collect()
    }

    /// Apply one explicit switch (Def. 1 legality rules); returns whether it
    /// was legal.
    pub fn apply(&mut self, request: SwitchRequest) -> bool {
        let e1 = self.edges[request.i];
        let e2 = self.edges[request.j];
        let (e3, e4) = switch_targets(e1, e2, request.g);
        if e3.is_loop() || e4.is_loop() {
            return false;
        }
        if self.set.contains(e3.pack()) || self.set.contains(e4.pack()) {
            return false;
        }
        self.set.erase(e1.pack());
        self.set.erase(e2.pack());
        self.set.insert(e3.pack());
        self.set.insert(e4.pack());
        self.edges[request.i] = e3;
        self.edges[request.j] = e4;
        true
    }

    /// Execute one global switch; returns `(requested, legal)`.
    pub fn global_switch(&mut self) -> (usize, usize) {
        let m = self.edges.len();
        if m < 2 {
            return (0, 0);
        }
        let perm = random_permutation(&mut self.rng, m);
        let ell = sample_binomial(&mut self.rng, (m / 2) as u64, 1.0 - self.config.loop_probability)
            as usize;
        let switches = Self::switches_from_permutation(&perm, ell);
        let mut legal = 0usize;
        for request in &switches {
            legal += self.apply(*request) as usize;
        }
        (switches.len(), legal)
    }
}

impl EdgeSwitching for SeqGlobalES {
    fn name(&self) -> &'static str {
        "SeqGlobalES"
    }

    fn num_edges(&self) -> usize {
        self.edges.len()
    }

    fn graph(&self) -> EdgeListGraph {
        EdgeListGraph::from_edges_unchecked(self.num_nodes, self.edges.clone())
    }

    fn superstep(&mut self) -> SuperstepStats {
        let start = Instant::now();
        let (requested, legal) = self.global_switch();
        self.supersteps_done += 1;
        SuperstepStats {
            requested,
            legal,
            illegal: requested - legal,
            rounds: 1,
            round_durations: vec![start.elapsed()],
            duration: start.elapsed(),
        }
    }

    fn snapshot(&self) -> Option<ChainSnapshot> {
        Some(ChainSnapshot {
            algorithm: self.name().to_string(),
            num_nodes: self.num_nodes,
            edges: self.edges.clone(),
            rng: RngState::capture(&self.rng),
            aux_seed_state: 0,
            supersteps_done: self.supersteps_done,
            seed: self.config.seed,
            loop_probability: self.config.loop_probability,
            prefetch: self.config.prefetch,
        })
    }

    fn restore(&mut self, snapshot: &ChainSnapshot) -> Result<(), SnapshotError> {
        snapshot.check_algorithm(self.name())?;
        snapshot.validate()?;
        self.num_nodes = snapshot.num_nodes;
        self.edges = snapshot.edges.clone();
        self.set = SeqEdgeSet::from_edges(self.edges.iter().map(|e| e.pack()), self.edges.len());
        self.rng = snapshot.rng.restore();
        self.supersteps_done = snapshot.supersteps_done;
        self.config = snapshot.config();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesmc_graph::gen::gnp;

    fn test_graph(seed: u64) -> EdgeListGraph {
        let mut rng = rng_from_seed(seed);
        gnp(&mut rng, 120, 0.07)
    }

    #[test]
    fn preserves_degrees_and_simplicity() {
        let graph = test_graph(1);
        let degrees = graph.degrees();
        let mut chain = SeqGlobalES::new(graph, SwitchingConfig::with_seed(2));
        chain.run_supersteps(5);
        let result = chain.graph();
        assert_eq!(result.degrees(), degrees);
        assert!(result.validate().is_ok());
    }

    #[test]
    fn each_edge_index_used_at_most_once_per_global_switch() {
        let perm: Vec<u64> = vec![4, 1, 0, 3, 2, 5];
        let switches = SeqGlobalES::switches_from_permutation(&perm, 3);
        let mut seen = std::collections::HashSet::new();
        for s in &switches {
            assert!(seen.insert(s.i));
            assert!(seen.insert(s.j));
        }
        // Direction bits follow g_k = 1 iff first index < second index.
        assert_eq!(switches[0], SwitchRequest::new(4, 1, false));
        assert_eq!(switches[1], SwitchRequest::new(0, 3, true));
        assert_eq!(switches[2], SwitchRequest::new(2, 5, true));
    }

    #[test]
    fn loop_probability_one_half_reduces_executed_switches() {
        let graph = test_graph(3);
        let m = graph.num_edges();
        let mut chain =
            SeqGlobalES::new(graph, SwitchingConfig::with_seed(4).loop_probability(0.5));
        let stats = chain.run_supersteps(20);
        let mean_requested = stats.total_requested() as f64 / 20.0;
        // E[ℓ] = (m/2) * 0.5.
        let expected = (m / 2) as f64 * 0.5;
        assert!(
            (mean_requested - expected).abs() < 0.25 * expected,
            "mean {mean_requested} vs expected {expected}"
        );
    }

    #[test]
    fn randomises_the_graph() {
        let graph = test_graph(5);
        let before = graph.canonical_edges();
        let mut chain = SeqGlobalES::new(graph, SwitchingConfig::with_seed(6));
        chain.run_supersteps(3);
        assert_ne!(chain.graph().canonical_edges(), before);
    }

    #[test]
    fn tiny_graphs_do_not_panic() {
        let graph = EdgeListGraph::new(2, vec![Edge::new(0, 1)]).unwrap();
        let mut chain = SeqGlobalES::new(graph, SwitchingConfig::with_seed(7));
        let stats = chain.superstep();
        assert_eq!(stats.requested, 0);
    }
}
