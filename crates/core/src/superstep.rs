//! `ParallelSuperstep` (Algorithm 1): execute a batch of source-dependency
//! free edge switches in parallel while preserving the sequential outcome.
//!
//! The batch is processed in two phases.  **Registration** records, for every
//! switch, an *erase* record per source edge and an *insert* record per target
//! edge in the concurrent [`DependencyTable`].  **Decision rounds** then
//! repeatedly try to decide every still-undecided switch in parallel:
//!
//! * a switch is **illegal** if a target edge is a self-loop, is one of its
//!   own source edges (Def. 1 tests existence before removing the sources),
//!   is present in the graph and not erased by any switch of the batch, is
//!   erased only by a *later* switch, is erased by a switch that itself turned
//!   out illegal, or has already been inserted by an earlier *legal* switch;
//! * a switch is **delayed** if it depends on a switch (erasing or inserting
//!   one of its targets, with a smaller index) that is still undecided;
//! * otherwise it is **legal**: its slots in the shared edge array are rewired
//!   immediately.
//!
//! Dependencies always point towards smaller switch indices, so every round
//! decides at least the smallest undecided switch and the loop terminates.
//! The edge *set* is only updated after all switches are decided (first all
//! erases, then all inserts, both in parallel); during the rounds it serves as
//! the immutable snapshot of the graph at the start of the superstep, which is
//! exactly the semantics the decision rules above require.

use crate::stats::SuperstepStats;
use crate::switch::{switch_targets, SwitchRequest};
use gesmc_concurrent::{
    AtomicEdgeList, ConcurrentEdgeSet, DependencyTable, EraseLookup, InsertConstraint, SwitchState,
};
use gesmc_graph::Edge;
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Pre-resolved data of one switch within a superstep.
#[derive(Debug, Clone, Copy)]
struct SwitchWork {
    request: SwitchRequest,
    e1: Edge,
    e2: Edge,
    e3: Edge,
    e4: Edge,
}

/// Execute a superstep of switches without source dependencies.
///
/// `edges` is the shared indexed edge array, `edge_set` the authoritative set
/// of edges of the current graph (updated in place), and `switches` the batch
/// to execute, ordered by their position in the original (sequential) switch
/// sequence.
///
/// # Panics
/// Debug builds assert that the batch really is free of source dependencies;
/// violating that precondition is a caller bug.
pub fn parallel_superstep(
    edges: &AtomicEdgeList,
    edge_set: &ConcurrentEdgeSet,
    switches: &[SwitchRequest],
) -> SuperstepStats {
    let start = Instant::now();
    let requested = switches.len();
    if requested == 0 {
        return SuperstepStats {
            requested: 0,
            legal: 0,
            illegal: 0,
            rounds: 0,
            round_durations: Vec::new(),
            duration: start.elapsed(),
        };
    }

    // Phase 1: resolve sources/targets and register all dependency records.
    let table = DependencyTable::for_switches(requested);
    let work: Vec<SwitchWork> = switches
        .par_iter()
        .enumerate()
        .map(|(k, &request)| {
            let e1 = edges.get(request.i);
            let e2 = edges.get(request.j);
            let (e3, e4) = switch_targets(e1, e2, request.g);
            let k = k as u32;
            table.register_erase(e1.pack(), k);
            table.register_erase(e2.pack(), k);
            table.register_insert(e3.pack(), k);
            table.register_insert(e4.pack(), k);
            SwitchWork { request, e1, e2, e3, e4 }
        })
        .collect();

    // Phase 2: decision rounds.
    let legal_count = AtomicUsize::new(0);
    let mut undecided: Vec<u32> = (0..requested as u32).collect();
    let mut round_durations = Vec::new();
    let mut rounds = 0usize;

    while !undecided.is_empty() {
        let round_start = Instant::now();
        rounds += 1;
        let delayed: Vec<u32> = undecided
            .par_iter()
            .copied()
            .filter_map(|k| {
                let w = &work[k as usize];
                match decide(&table, edge_set, w, k) {
                    Decision::Delay => Some(k),
                    Decision::Decide(state) => {
                        if state == SwitchState::Legal {
                            edges.set(w.request.i, w.e3);
                            edges.set(w.request.j, w.e4);
                            legal_count.fetch_add(1, Ordering::Relaxed);
                        }
                        table.decide_erase(w.e1.pack(), k, state);
                        table.decide_erase(w.e2.pack(), k, state);
                        table.decide_insert(w.e3.pack(), k, state);
                        table.decide_insert(w.e4.pack(), k, state);
                        None
                    }
                }
            })
            .collect();
        debug_assert!(
            delayed.len() < undecided.len(),
            "a decision round must decide at least one switch"
        );
        undecided = delayed;
        round_durations.push(round_start.elapsed());
    }

    // Phase 3: apply the decided switches to the edge set.  All erases first
    // (each edge is erased at most once per superstep), then all inserts (each
    // edge is inserted by at most one legal switch), so the two parallel
    // passes cannot conflict.
    work.par_iter().enumerate().for_each(|(k, w)| {
        if is_legal(&table, w, k as u32) {
            let erased1 = edge_set.erase(w.e1);
            let erased2 = edge_set.erase(w.e2);
            debug_assert!(erased1 && erased2, "legal switch must erase existing edges");
        }
    });
    work.par_iter().enumerate().for_each(|(k, w)| {
        if is_legal(&table, w, k as u32) {
            let inserted1 = edge_set.insert(w.e3);
            let inserted2 = edge_set.insert(w.e4);
            debug_assert!(inserted1 && inserted2, "legal switch must insert fresh edges");
        }
    });

    let legal = legal_count.load(Ordering::Relaxed);
    SuperstepStats {
        requested,
        legal,
        illegal: requested - legal,
        rounds,
        round_durations,
        duration: start.elapsed(),
    }
}

/// Whether switch `k` was decided legal (read back from its erase record).
fn is_legal(table: &DependencyTable, w: &SwitchWork, k: u32) -> bool {
    match table.erase_lookup(w.e1.pack()) {
        EraseLookup::By { index, state } if index == k => state == SwitchState::Legal,
        _ => false,
    }
}

enum Decision {
    Decide(SwitchState),
    Delay,
}

/// Apply the decision rules of Algorithm 1 to switch `k`.
fn decide(
    table: &DependencyTable,
    edge_set: &ConcurrentEdgeSet,
    w: &SwitchWork,
    k: u32,
) -> Decision {
    let targets = [w.e3, w.e4];

    // Definitive illegality checks first: they hold regardless of how the
    // still-undecided switches turn out.
    for &target in &targets {
        if target.is_loop() {
            return Decision::Decide(SwitchState::Illegal);
        }
        match table.erase_lookup(target.pack()) {
            EraseLookup::None => {
                // Nobody in this superstep erases the target; it is illegal to
                // insert it iff it already exists in the graph.
                if edge_set.contains(target) {
                    return Decision::Decide(SwitchState::Illegal);
                }
            }
            EraseLookup::By { index: p, state: sp } => {
                // `p == k` means the target equals one of this switch's own
                // source edges; Def. 1 tests existence *before* removing the
                // sources, so such a switch is rejected.  (Algorithm 1 as
                // printed would label it legal and rewire the two slots to the
                // same pair of edges — the graph is identical either way, but
                // rejecting keeps the edge array bitwise equal to a sequential
                // Def. 1 execution, which is what our exactness tests demand.)
                if k < p || p == k || sp == SwitchState::Illegal {
                    return Decision::Decide(SwitchState::Illegal);
                }
            }
        }
        if table.insert_constraint(target.pack(), k) == InsertConstraint::EarlierLegal {
            return Decision::Decide(SwitchState::Illegal);
        }
    }

    // No definitive reason to reject; check whether we must wait for an
    // earlier, still-undecided switch.
    for &target in &targets {
        if let EraseLookup::By { index: p, state: SwitchState::Undecided } =
            table.erase_lookup(target.pack())
        {
            if k > p {
                return Decision::Delay;
            }
        }
        if table.insert_constraint(target.pack(), k) == InsertConstraint::EarlierUndecided {
            return Decision::Delay;
        }
    }

    Decision::Decide(SwitchState::Legal)
}

/// Convenience wrapper: run a superstep on a plain graph and return the new
/// graph (used by tests and by callers that do not keep persistent state).
pub fn run_superstep_on_graph(
    graph: &gesmc_graph::EdgeListGraph,
    switches: &[SwitchRequest],
) -> (gesmc_graph::EdgeListGraph, SuperstepStats) {
    let edges = AtomicEdgeList::from_graph(graph);
    let edge_set = ConcurrentEdgeSet::from_edges(graph.edges().iter(), graph.num_edges() * 2);
    let stats = parallel_superstep(&edges, &edge_set, switches);
    (edges.to_graph(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{EdgeSwitching, SwitchingConfig};
    use crate::seq_global::SeqGlobalES;
    use gesmc_graph::gen::gnp;
    use gesmc_graph::EdgeListGraph;
    use gesmc_randx::permutation::random_permutation;
    use gesmc_randx::rng_from_seed;

    /// Sequential oracle: apply the switches strictly in order with Def. 1.
    fn sequential_oracle(graph: &EdgeListGraph, switches: &[SwitchRequest]) -> EdgeListGraph {
        let mut chain = SeqGlobalES::new(graph.clone(), SwitchingConfig::with_seed(0));
        for &s in switches {
            chain.apply(s);
        }
        chain.graph()
    }

    /// Build a random global switch (source-dependency free by construction).
    fn random_global_switch(
        rng: &mut gesmc_randx::Rng,
        m: usize,
        ell: usize,
    ) -> Vec<SwitchRequest> {
        let perm = random_permutation(rng, m);
        SeqGlobalES::switches_from_permutation(&perm, ell.min(m / 2))
    }

    #[test]
    fn empty_superstep() {
        let graph = EdgeListGraph::new(3, vec![Edge::new(0, 1)]).unwrap();
        let (out, stats) = run_superstep_on_graph(&graph, &[]);
        assert_eq!(out.canonical_edges(), graph.canonical_edges());
        assert_eq!(stats.rounds, 0);
    }

    #[test]
    fn single_switch_matches_sequential() {
        let graph = EdgeListGraph::new(4, vec![Edge::new(0, 1), Edge::new(2, 3)]).unwrap();
        let switches = vec![SwitchRequest::new(0, 1, false)];
        let (out, stats) = run_superstep_on_graph(&graph, &switches);
        assert_eq!(out.canonical_edges(), sequential_oracle(&graph, &switches).canonical_edges());
        assert_eq!(stats.legal, 1);
    }

    #[test]
    fn rejects_loop_and_duplicate_targets() {
        // Triangle plus an extra edge; switching (0-1, 1-2) with g = 1 creates
        // a loop at 1, and with g = 0 the targets equal the sources (which by
        // Def. 1 "already exist in E").  Both must be rejected and leave the
        // graph untouched.
        let graph = EdgeListGraph::new(
            4,
            vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2), Edge::new(2, 3)],
        )
        .unwrap();
        for g in [false, true] {
            let switches = vec![SwitchRequest::new(0, 1, g)];
            let (out, stats) = run_superstep_on_graph(&graph, &switches);
            assert_eq!(stats.legal, 0, "g = {g}");
            assert_eq!(out.canonical_edges(), graph.canonical_edges());
        }
    }

    #[test]
    fn erase_dependency_is_respected() {
        // Switch 0 frees the edge {0,1}; switch 1 wants to create {0,1} and is
        // only legal because switch 0 comes first.
        let graph = EdgeListGraph::new(
            6,
            vec![Edge::new(0, 1), Edge::new(2, 3), Edge::new(0, 4), Edge::new(1, 5)],
        )
        .unwrap();
        // Switch 0: indices (0, 1) with g=0: {0,1},{2,3} -> {0,2},{1,3}
        // Switch 1: indices (2, 3) with g=0: {0,4},{1,5} -> {0,1},{4,5}
        let switches = vec![SwitchRequest::new(0, 1, false), SwitchRequest::new(2, 3, false)];
        let (out, stats) = run_superstep_on_graph(&graph, &switches);
        let oracle = sequential_oracle(&graph, &switches);
        assert_eq!(out.canonical_edges(), oracle.canonical_edges());
        assert_eq!(stats.legal, 2);
        assert!(out.has_edge_slow(0, 1), "edge {{0,1}} re-created by switch 1");
        assert!(out.has_edge_slow(4, 5));
    }

    #[test]
    fn erase_dependency_in_wrong_order_is_illegal() {
        // Same as above but the creating switch comes first: it must be
        // rejected because {0,1} still exists at its (sequential) time.
        let graph = EdgeListGraph::new(
            6,
            vec![Edge::new(0, 1), Edge::new(2, 3), Edge::new(0, 4), Edge::new(1, 5)],
        )
        .unwrap();
        let switches = vec![SwitchRequest::new(2, 3, false), SwitchRequest::new(0, 1, false)];
        let (out, stats) = run_superstep_on_graph(&graph, &switches);
        let oracle = sequential_oracle(&graph, &switches);
        assert_eq!(out.canonical_edges(), oracle.canonical_edges());
        // The first (in sequence) switch is rejected, the second is fine.
        assert_eq!(stats.legal, 1);
    }

    #[test]
    fn insert_dependency_only_first_switch_wins() {
        // Two switches both want to create the edge {0,2}; only the one with
        // the smaller index may succeed.
        let graph = EdgeListGraph::new(
            8,
            vec![Edge::new(0, 1), Edge::new(2, 3), Edge::new(0, 4), Edge::new(2, 5)],
        )
        .unwrap();
        // Switch 0: ({0,1},{2,3}) g=0 -> {0,2},{1,3}
        // Switch 1: ({0,4},{2,5}) g=0 -> {0,2},{4,5}
        let switches = vec![SwitchRequest::new(0, 1, false), SwitchRequest::new(2, 3, false)];
        let (out, stats) = run_superstep_on_graph(&graph, &switches);
        let oracle = sequential_oracle(&graph, &switches);
        assert_eq!(out.canonical_edges(), oracle.canonical_edges());
        assert_eq!(stats.legal, 1);
        assert!(out.has_edge_slow(0, 2));
        assert!(out.has_edge_slow(1, 3));
        // Switch 1 was rejected: its sources remain.
        assert!(out.has_edge_slow(0, 4));
        assert!(out.has_edge_slow(2, 5));
    }

    #[test]
    fn matches_sequential_oracle_on_random_global_switches() {
        let mut rng = rng_from_seed(42);
        for trial in 0..30 {
            let graph = gnp(&mut rng, 60, 0.12);
            let m = graph.num_edges();
            if m < 4 {
                continue;
            }
            let switches = random_global_switch(&mut rng, m, m / 2);
            let (out, _) = run_superstep_on_graph(&graph, &switches);
            let oracle = sequential_oracle(&graph, &switches);
            assert_eq!(
                out.canonical_edges(),
                oracle.canonical_edges(),
                "mismatch on trial {trial}"
            );
            assert_eq!(out.degrees(), graph.degrees());
            assert!(out.validate().is_ok());
        }
    }

    #[test]
    fn rounds_stay_small_on_random_graphs() {
        let mut rng = rng_from_seed(7);
        let graph = gnp(&mut rng, 300, 0.05);
        let m = graph.num_edges();
        let switches = random_global_switch(&mut rng, m, m / 2);
        let (_, stats) = run_superstep_on_graph(&graph, &switches);
        // Theorem 2: for nearly-regular graphs the expected number of rounds
        // is below 4; allow generous slack for this single sample.
        assert!(stats.rounds <= 8, "unexpectedly many rounds: {}", stats.rounds);
        assert!(stats.requested == m / 2);
    }
}
