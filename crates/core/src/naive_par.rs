//! `NaiveParES` (Sec. 5.1): the inexact lock-per-edge parallel baseline.
//!
//! Every processing unit performs switches independently; the only
//! synchronisation is that an edge must be *ticketed* before it is erased or
//! inserted — by locking an existing edge or by inserting-and-locking a new
//! one, both implemented with compare-and-swap on the concurrent edge set.
//! A switch that fails to acquire all four tickets rolls back and counts as
//! rejected.
//!
//! The algorithm performs every switch that is legal *after* this implicit
//! synchronisation but ignores the dependencies between switches, so — unlike
//! [`ParES`](crate::ParES) and [`ParGlobalES`](crate::ParGlobalES) — it does
//! **not** faithfully implement ES-MC: the distribution of the produced graphs
//! may deviate from the sequential chain.  It exists purely as the performance
//! baseline of the paper's Fig. 4/5 comparison.

use crate::chain::{EdgeSwitching, SwitchingConfig};
use crate::snapshot::{ChainSnapshot, SnapshotError};
use crate::stats::SuperstepStats;
use crate::switch::switch_targets;
use gesmc_concurrent::{AtomicEdgeList, ConcurrentEdgeSet, LockOutcome};
use gesmc_graph::{Edge, EdgeListGraph};
use gesmc_randx::bounded::UniformIndex;
use gesmc_randx::{RngState, SeedSequence};
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Inexact lock-per-edge parallel ES-MC baseline.
pub struct NaiveParES {
    edges: AtomicEdgeList,
    edge_set: ConcurrentEdgeSet,
    seeds: SeedSequence,
    supersteps_done: u64,
    config: SwitchingConfig,
}

impl NaiveParES {
    /// Create a chain randomising `graph`.
    pub fn new(graph: EdgeListGraph, config: SwitchingConfig) -> Self {
        let edge_set = ConcurrentEdgeSet::from_edges(graph.edges().iter(), graph.num_edges() * 2);
        let edges = AtomicEdgeList::from_graph(&graph);
        Self { edges, edge_set, seeds: SeedSequence::new(config.seed), supersteps_done: 0, config }
    }

    /// Attempt `count` switches distributed over all rayon worker threads;
    /// returns the number of switches that were applied.
    pub fn run_switches(&mut self, count: usize) -> usize {
        let m = self.edges.len();
        if m < 2 {
            return 0;
        }
        let sampler = UniformIndex::new(m as u64);
        let applied = AtomicUsize::new(0);
        let chunk = 256usize;
        let epoch = self.supersteps_done;
        self.supersteps_done += 1;
        let num_chunks = count.div_ceil(chunk);

        (0..num_chunks).into_par_iter().for_each(|c| {
            // One deterministic RNG stream per chunk; the interleaving of
            // switches across threads is *not* deterministic, which is exactly
            // the inexactness of this baseline.
            let mut rng = self.seeds.child_rng(epoch.wrapping_mul(1_000_003) ^ c as u64);
            let owner = (rayon::current_thread_index().unwrap_or(0) % 254 + 1) as u8;
            let in_this_chunk = chunk.min(count - c * chunk);
            let mut local_applied = 0usize;
            for _ in 0..in_this_chunk {
                let (i, j) = sampler.sample_distinct_pair(&mut rng);
                local_applied +=
                    self.attempt_switch(i as usize, j as usize, rand::Rng::gen(&mut rng), owner)
                        as usize;
            }
            applied.fetch_add(local_applied, Ordering::Relaxed);
        });
        applied.load(Ordering::Relaxed)
    }

    /// Attempt a single switch with ticket acquisition; returns whether it was
    /// applied.
    fn attempt_switch(&self, i: usize, j: usize, g: bool, owner: u8) -> bool {
        if i == j {
            return false;
        }
        let e1 = self.edges.get(i);
        let e2 = self.edges.get(j);
        let (e3, e4) = switch_targets(e1, e2, g);
        if e3.is_loop() || e4.is_loop() {
            return false;
        }
        // Acquire tickets: lock both source edges, insert-and-lock both
        // target edges.  Roll back on any failure.
        let mut locked_sources: Vec<Edge> = Vec::with_capacity(2);
        let mut inserted_targets: Vec<Edge> = Vec::with_capacity(2);
        let mut ok = true;

        for &source in &[e1, e2] {
            match self.edge_set.try_lock_existing(source, owner) {
                LockOutcome::Acquired => locked_sources.push(source),
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            for &target in &[e3, e4] {
                match self.edge_set.try_insert_and_lock(target, owner) {
                    LockOutcome::Acquired => inserted_targets.push(target),
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
        }

        if !ok {
            for &target in &inserted_targets {
                self.edge_set.erase_locked(target, owner);
            }
            for &source in &locked_sources {
                self.edge_set.unlock(source, owner);
            }
            return false;
        }

        // Commit: remove the sources, publish the targets, rewire the slots.
        for &source in &locked_sources {
            self.edge_set.erase_locked(source, owner);
        }
        for &target in &inserted_targets {
            self.edge_set.unlock(target, owner);
        }
        self.edges.set(i, e3);
        self.edges.set(j, e4);
        true
    }

    /// Access the underlying edge set (rebuild hook for long runs).
    pub fn maybe_rebuild(&mut self) {
        if self.edge_set.needs_rebuild() {
            self.edge_set.rebuild();
        }
    }
}

impl EdgeSwitching for NaiveParES {
    fn name(&self) -> &'static str {
        "NaiveParES"
    }

    fn num_edges(&self) -> usize {
        self.edges.len()
    }

    fn graph(&self) -> EdgeListGraph {
        self.edges.to_graph()
    }

    fn superstep(&mut self) -> SuperstepStats {
        let start = Instant::now();
        let requested = self.edges.len() / 2;
        let legal = self.run_switches(requested);
        self.maybe_rebuild();
        SuperstepStats {
            requested,
            legal,
            illegal: requested - legal,
            rounds: 1,
            round_durations: vec![start.elapsed()],
            duration: start.elapsed(),
        }
    }

    /// Capture the chain state — **with a caveat the other chains do not
    /// have**: the interleaving of switches across threads is inherently
    /// racy (that is what makes this baseline inexact, Sec. 5.1), so a
    /// restored run is bit-identical to the uninterrupted one **only under a
    /// single-threaded rayon pool**.  With more than one thread the resumed
    /// run is a valid continuation but not a reproduction; `gesmc resume`
    /// prints a warning in that case.
    fn snapshot(&self) -> Option<ChainSnapshot> {
        // The per-chunk RNG streams are derived statelessly from
        // (seeds, supersteps_done), so those two values pin down all future
        // randomness.
        Some(ChainSnapshot {
            algorithm: self.name().to_string(),
            num_nodes: self.edges.num_nodes(),
            edges: self.edges.snapshot_edges(),
            rng: RngState::default(),
            aux_seed_state: self.seeds.raw_state(),
            supersteps_done: self.supersteps_done,
            seed: self.config.seed,
            loop_probability: self.config.loop_probability,
            prefetch: self.config.prefetch,
        })
    }

    /// Restore a [`NaiveParES::snapshot`] capture.  The same caveat applies:
    /// continuation is deterministic only when the ambient rayon pool has a
    /// single thread; otherwise the racy switch interleaving makes every
    /// resumed trajectory distinct (though still degree-preserving).
    fn restore(&mut self, snapshot: &ChainSnapshot) -> Result<(), SnapshotError> {
        snapshot.check_algorithm(self.name())?;
        let graph = snapshot.graph()?;
        self.edge_set = ConcurrentEdgeSet::from_edges(graph.edges().iter(), graph.num_edges() * 2);
        self.edges = AtomicEdgeList::from_graph(&graph);
        self.seeds = SeedSequence::from_raw_state(snapshot.aux_seed_state);
        self.supersteps_done = snapshot.supersteps_done;
        self.config = snapshot.config();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesmc_graph::gen::gnp;
    use gesmc_randx::rng_from_seed;

    fn gnp_graph(seed: u64, n: usize, p: f64) -> EdgeListGraph {
        let mut rng = rng_from_seed(seed);
        gnp(&mut rng, n, p)
    }

    #[test]
    fn preserves_degrees_and_simplicity() {
        let graph = gnp_graph(1, 200, 0.05);
        let degrees = graph.degrees();
        let mut chain = NaiveParES::new(graph, SwitchingConfig::with_seed(2));
        chain.run_supersteps(6);
        let result = chain.graph();
        assert_eq!(result.degrees(), degrees);
        assert!(result.validate().is_ok());
    }

    #[test]
    fn edge_set_and_edge_array_stay_consistent() {
        let graph = gnp_graph(3, 150, 0.07);
        let mut chain = NaiveParES::new(graph, SwitchingConfig::with_seed(4));
        chain.run_supersteps(10);
        let result = chain.graph();
        let mut from_set: Vec<u64> = chain.edge_set.iter().map(|e| e.pack()).collect();
        from_set.sort_unstable();
        assert_eq!(from_set, result.canonical_edges());
    }

    #[test]
    fn randomises_the_graph() {
        let graph = gnp_graph(5, 150, 0.07);
        let before = graph.canonical_edges();
        let mut chain = NaiveParES::new(graph, SwitchingConfig::with_seed(6));
        let stats = chain.run_supersteps(4);
        assert!(stats.total_legal() > 0);
        assert_ne!(chain.graph().canonical_edges(), before);
    }

    #[test]
    fn all_switches_rejected_on_complete_graph() {
        // In a complete graph every target edge already exists.
        let mut rng = rng_from_seed(7);
        let graph = gnp(&mut rng, 12, 1.0);
        let before = graph.canonical_edges();
        let mut chain = NaiveParES::new(graph, SwitchingConfig::with_seed(8));
        let stats = chain.run_supersteps(3);
        assert_eq!(stats.total_legal(), 0);
        assert_eq!(chain.graph().canonical_edges(), before);
    }

    #[test]
    fn tiny_graph_is_a_noop() {
        let graph = EdgeListGraph::new(2, vec![Edge::new(0, 1)]).unwrap();
        let mut chain = NaiveParES::new(graph.clone(), SwitchingConfig::with_seed(9));
        let stats = chain.superstep();
        assert_eq!(stats.legal, 0);
        assert_eq!(chain.graph().canonical_edges(), graph.canonical_edges());
    }
}
