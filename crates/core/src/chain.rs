//! The common interface of all switching chains and their configuration.

use crate::snapshot::{ChainSnapshot, SnapshotError};
use crate::stats::{ChainStats, SuperstepStats};
use gesmc_graph::EdgeListGraph;

/// Configuration shared by every chain implementation.
#[derive(Debug, Clone, Copy)]
pub struct SwitchingConfig {
    /// Seed of the pseudo-random stream driving the chain.
    pub seed: u64,
    /// Per-switch rejection probability `P_L` of the G-ES-MC (Def. 3).
    ///
    /// Each of the `⌊m/2⌋` switches of a global switch is executed with
    /// probability `1 − P_L`; a small positive value guarantees aperiodicity.
    /// Ignored by the ES-MC family.
    pub loop_probability: f64,
    /// Enable the software-prefetch pipeline in the sequential chains
    /// (Sec. 5.4).  Parallel chains currently ignore this flag.
    pub prefetch: bool,
}

impl SwitchingConfig {
    /// Default configuration with the given seed (`P_L = 0.01`, prefetching
    /// enabled).
    pub fn with_seed(seed: u64) -> Self {
        Self { seed, loop_probability: 0.01, prefetch: true }
    }

    /// Builder-style override of `P_L`.
    ///
    /// # Panics
    ///
    /// If `p` is outside `[0, 1)`.  This is the programmer-facing builder;
    /// user input should go through [`ChainSpec`](crate::ChainSpec), whose
    /// validation reports errors instead of panicking.
    pub fn loop_probability(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "P_L must lie in [0, 1)");
        self.loop_probability = p;
        self
    }

    /// Builder-style override of the prefetch flag.
    pub fn prefetch(mut self, enabled: bool) -> Self {
        self.prefetch = enabled;
        self
    }
}

impl Default for SwitchingConfig {
    fn default() -> Self {
        Self::with_seed(0)
    }
}

/// Common interface of every switching chain.
///
/// A *superstep* is the unit used throughout the paper's evaluation:
/// `⌊m/2⌋` uniformly random edge switches for ES-MC style chains and one
/// global switch for G-ES-MC style chains, so that one superstep of either
/// family attempts a comparable amount of work.
pub trait EdgeSwitching {
    /// Human-readable name of the algorithm (used by the benchmark tables).
    fn name(&self) -> &'static str;

    /// Number of edges `m` of the graph being randomised.
    fn num_edges(&self) -> usize;

    /// Snapshot of the current graph.
    fn graph(&self) -> EdgeListGraph;

    /// Perform one superstep and report its statistics.
    fn superstep(&mut self) -> SuperstepStats;

    /// Perform `count` supersteps and aggregate the statistics.
    fn run_supersteps(&mut self, count: usize) -> ChainStats {
        let mut stats = ChainStats::default();
        for _ in 0..count {
            stats.push(self.superstep());
        }
        stats
    }

    /// Capture the complete chain state for checkpoint/resume.
    ///
    /// Restoring the returned snapshot (into a chain of the same algorithm)
    /// and continuing yields a run *bit-identical* to never having been
    /// interrupted.  Returns `None` for implementations that do not support
    /// snapshots; all five chains of `gesmc-core` and all three
    /// `gesmc-baselines` chains do (a chain's
    /// [`ChainInfo::snapshot`](crate::ChainInfo::snapshot) capability flag
    /// records it).
    ///
    /// **Exception**: the inexact [`NaiveParES`](crate::NaiveParES) baseline
    /// interleaves switches racily across threads, so its resumes are
    /// bit-identical only under a single-threaded rayon pool (see its
    /// `snapshot` documentation).
    fn snapshot(&self) -> Option<ChainSnapshot> {
        None
    }

    /// Replace this chain's state with `snapshot`, continuing its run.
    ///
    /// The snapshot must come from the same algorithm
    /// ([`SnapshotError::AlgorithmMismatch`] otherwise); the graph it carries
    /// fully replaces the current one, so the chain being restored into may
    /// have been constructed from any placeholder graph.
    fn restore(&mut self, snapshot: &ChainSnapshot) -> Result<(), SnapshotError> {
        let _ = snapshot;
        Err(SnapshotError::Unsupported(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders() {
        let cfg = SwitchingConfig::with_seed(9).loop_probability(0.25).prefetch(false);
        assert_eq!(cfg.seed, 9);
        assert!((cfg.loop_probability - 0.25).abs() < 1e-12);
        assert!(!cfg.prefetch);
        let def = SwitchingConfig::default();
        assert!((def.loop_probability - 0.01).abs() < 1e-12);
        assert!(def.prefetch);
    }

    #[test]
    #[should_panic]
    fn invalid_loop_probability_panics() {
        let _ = SwitchingConfig::with_seed(0).loop_probability(1.0);
    }
}
