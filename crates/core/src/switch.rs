//! The edge switch primitive (Def. 1 of the paper).
//!
//! An edge switch is described by two edge indices `i ≠ j` and a direction
//! bit `g`.  With the canonical orientations `⃗e₁ = (u, v)` and `⃗e₂ = (x, y)`
//! (smaller endpoint first), the target edges are
//!
//! ```text
//! τ((u,v), (x,y), 0) = ((u,x), (v,y))
//! τ((u,v), (x,y), 1) = ((u,y), (v,x))
//! ```
//!
//! The switch is *legal* iff neither target is a self-loop and neither target
//! already exists in the graph; only then are `E[i] ← e₃` and `E[j] ← e₄`
//! rewired.  Degrees are preserved in either case.

use gesmc_graph::Edge;

/// A requested edge switch `σ = (i, j, g)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchRequest {
    /// Index of the first source edge in the edge array.
    pub i: usize,
    /// Index of the second source edge in the edge array.
    pub j: usize,
    /// Direction bit selecting which target pairing `τ` produces.
    pub g: bool,
}

impl SwitchRequest {
    /// Construct a request; `i` and `j` must differ.
    pub fn new(i: usize, j: usize, g: bool) -> Self {
        debug_assert_ne!(i, j, "an edge switch needs two distinct edge indices");
        Self { i, j, g }
    }
}

/// Compute the target edges `(e₃, e₄) = τ(⃗e₁, ⃗e₂, g)` from the canonical
/// orientations of the source edges.
///
/// The targets may be self-loops or duplicates of existing edges; deciding
/// legality is the caller's responsibility.
#[inline]
pub fn switch_targets(e1: Edge, e2: Edge, g: bool) -> (Edge, Edge) {
    let (u, v) = e1.endpoints();
    let (x, y) = e2.endpoints();
    if !g {
        (Edge::new(u, x), Edge::new(v, y))
    } else {
        (Edge::new(u, y), Edge::new(v, x))
    }
}

/// Why a switch was rejected (or that it was accepted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchOutcome {
    /// The switch was applied.
    Accepted,
    /// A target edge would be a self-loop.
    RejectedLoop,
    /// A target edge already exists in the graph.
    RejectedExisting,
}

impl SwitchOutcome {
    /// Whether the switch was applied.
    #[inline]
    pub fn is_accepted(&self) -> bool {
        matches!(self, SwitchOutcome::Accepted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_matches_definition() {
        // e1 = {1,2} -> (1,2), e2 = {3,4} -> (3,4)
        let e1 = Edge::new(2, 1);
        let e2 = Edge::new(3, 4);
        assert_eq!(switch_targets(e1, e2, false), (Edge::new(1, 3), Edge::new(2, 4)));
        assert_eq!(switch_targets(e1, e2, true), (Edge::new(1, 4), Edge::new(2, 3)));
    }

    #[test]
    fn tau_preserves_degrees() {
        // Every node keeps exactly the same number of endpoints among targets.
        let e1 = Edge::new(0, 5);
        let e2 = Edge::new(3, 7);
        for g in [false, true] {
            let (t1, t2) = switch_targets(e1, e2, g);
            let mut before = vec![e1.u(), e1.v(), e2.u(), e2.v()];
            let mut after = vec![t1.u(), t1.v(), t2.u(), t2.v()];
            before.sort_unstable();
            after.sort_unstable();
            assert_eq!(before, after);
        }
    }

    #[test]
    fn tau_can_produce_loops() {
        // Sharing a node produces a loop for one of the direction bits.
        let e1 = Edge::new(1, 2);
        let e2 = Edge::new(2, 3);
        let (t1, t2) = switch_targets(e1, e2, true); // ((1,3),(2,2))
        assert_eq!(t1, Edge::new(1, 3));
        assert!(t2.is_loop());
        let (t1, t2) = switch_targets(e1, e2, false); // ((1,2),(2,3)) = original edges
        assert_eq!(t1, e1);
        assert_eq!(t2, e2);
    }

    #[test]
    fn outcome_accessors() {
        assert!(SwitchOutcome::Accepted.is_accepted());
        assert!(!SwitchOutcome::RejectedLoop.is_accepted());
        assert!(!SwitchOutcome::RejectedExisting.is_accepted());
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn request_with_equal_indices_panics_in_debug() {
        let _ = SwitchRequest::new(3, 3, false);
    }
}
