//! `ParES` (Algorithm 2): the exact shared-memory parallel ES-MC.
//!
//! The requested number of uniformly random switches is sampled up front into
//! an array `R`.  The algorithm then repeatedly extracts the longest prefix of
//! the remaining switches that contains **no source dependencies** — found by
//! inserting every switch's two edge indices into a concurrent
//! `insert_if_min` hash map and tracking the earliest collision — and executes
//! that prefix with [`parallel_superstep`](crate::superstep::parallel_superstep).
//!
//! Because each superstep boundary is placed *before* the first switch that
//! shares an edge index with an earlier unprocessed switch, executing the
//! supersteps in order is equivalent to executing `R` strictly sequentially,
//! making `ParES` an exact parallelisation of ES-MC.  The expected superstep
//! size is `Θ(√m)` (birthday bound), which the paper identifies as the
//! scalability limit of this approach and the motivation for G-ES-MC.

use crate::chain::{EdgeSwitching, SwitchingConfig};
use crate::snapshot::{ChainSnapshot, SnapshotError};
use crate::stats::SuperstepStats;
use crate::switch::SwitchRequest;
use gesmc_concurrent::{AtomicEdgeList, ConcurrentEdgeSet, MinIndexMap};
use gesmc_graph::EdgeListGraph;
use gesmc_randx::bounded::UniformIndex;
use gesmc_randx::{rng_from_seed, Rng, RngState};
use rand::Rng as _;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Exact parallel ES-MC chain.
pub struct ParES {
    edges: AtomicEdgeList,
    edge_set: ConcurrentEdgeSet,
    rng: Rng,
    supersteps_done: u64,
    config: SwitchingConfig,
}

impl ParES {
    /// Create a chain randomising `graph`.
    pub fn new(graph: EdgeListGraph, config: SwitchingConfig) -> Self {
        let edge_set = ConcurrentEdgeSet::from_edges(graph.edges().iter(), graph.num_edges() * 2);
        let edges = AtomicEdgeList::from_graph(&graph);
        Self { edges, edge_set, rng: rng_from_seed(config.seed), supersteps_done: 0, config }
    }

    /// Sample `count` uniformly random switch requests (the array `R` of
    /// Algorithm 2).
    pub fn sample_requests(&mut self, count: usize) -> Vec<SwitchRequest> {
        let m = self.edges.len();
        if m < 2 {
            return Vec::new();
        }
        let sampler = UniformIndex::new(m as u64);
        (0..count)
            .map(|_| {
                let (i, j) = sampler.sample_distinct_pair(&mut self.rng);
                let g: bool = self.rng.gen();
                SwitchRequest::new(i as usize, j as usize, g)
            })
            .collect()
    }

    /// Execute an explicit sequence of switch requests exactly (i.e. with the
    /// same outcome as executing them in order), splitting it into source
    /// dependency-free supersteps.  Returns one [`SuperstepStats`] per
    /// superstep.
    pub fn run_requests(&mut self, requests: &[SwitchRequest]) -> Vec<SuperstepStats> {
        let mut all_stats = Vec::new();
        let mut s = 0usize;
        // Window of switches examined per boundary search; the expected
        // dependency-free prefix is Θ(√m), so a few multiples of that keeps
        // the wasted work low while still allowing large supersteps on sparse
        // collision patterns.
        let window_len = ((self.edges.len() as f64).sqrt() as usize * 4 + 64).max(64);

        while s < requests.len() {
            let window_end = (s + window_len).min(requests.len());
            let window = &requests[s..window_end];

            // Find the first index t (absolute) at which a source collision
            // with an earlier switch of the window occurs.
            let map = MinIndexMap::with_capacity(window.len() * 2);
            let t_bound = AtomicU64::new(requests.len() as u64 + 1);
            window.par_iter().enumerate().for_each(|(offset, request)| {
                let k = (s + offset) as u64;
                for idx in [request.i as u64, request.j as u64] {
                    if let Some(previous) = map.insert_if_min(idx + 1, k) {
                        // Two switches share this edge index; the collision
                        // becomes effective at the larger of the two.
                        let collision_at = previous.max(k);
                        t_bound.fetch_min(collision_at, Ordering::Relaxed);
                    }
                }
            });
            let t = (t_bound.load(Ordering::Relaxed) as usize).min(window_end);
            debug_assert!(t > s, "a superstep must contain at least one switch");

            let superstep = &requests[s..t];
            let stats =
                crate::superstep::parallel_superstep(&self.edges, &self.edge_set, superstep);
            all_stats.push(stats);
            if self.edge_set.needs_rebuild() {
                self.edge_set.rebuild();
            }
            s = t;
        }
        all_stats
    }

    /// Perform `count` uniformly random switches exactly; returns the
    /// per-superstep statistics.
    pub fn run_switches(&mut self, count: usize) -> Vec<SuperstepStats> {
        let requests = self.sample_requests(count);
        self.run_requests(&requests)
    }
}

impl EdgeSwitching for ParES {
    fn name(&self) -> &'static str {
        "ParES"
    }

    fn num_edges(&self) -> usize {
        self.edges.len()
    }

    fn graph(&self) -> EdgeListGraph {
        self.edges.to_graph()
    }

    fn superstep(&mut self) -> SuperstepStats {
        // One ES-MC superstep = ⌊m/2⌋ uniformly random switches (Sec. 6.1).
        let start = Instant::now();
        let requested = self.edges.len() / 2;
        let parts = self.run_switches(requested);
        let mut merged = SuperstepStats {
            requested,
            legal: parts.iter().map(|p| p.legal).sum(),
            illegal: parts.iter().map(|p| p.illegal).sum(),
            rounds: parts.iter().map(|p| p.rounds).sum(),
            round_durations: parts.iter().flat_map(|p| p.round_durations.clone()).collect(),
            duration: start.elapsed(),
        };
        merged.illegal = merged.requested - merged.legal;
        self.supersteps_done += 1;
        merged
    }

    fn snapshot(&self) -> Option<ChainSnapshot> {
        Some(ChainSnapshot {
            algorithm: self.name().to_string(),
            num_nodes: self.edges.num_nodes(),
            edges: self.edges.snapshot_edges(),
            rng: RngState::capture(&self.rng),
            aux_seed_state: 0,
            supersteps_done: self.supersteps_done,
            seed: self.config.seed,
            loop_probability: self.config.loop_probability,
            prefetch: self.config.prefetch,
        })
    }

    fn restore(&mut self, snapshot: &ChainSnapshot) -> Result<(), SnapshotError> {
        snapshot.check_algorithm(self.name())?;
        let graph = snapshot.graph()?;
        self.edge_set = ConcurrentEdgeSet::from_edges(graph.edges().iter(), graph.num_edges() * 2);
        self.edges = AtomicEdgeList::from_graph(&graph);
        self.rng = snapshot.rng.restore();
        self.supersteps_done = snapshot.supersteps_done;
        self.config = snapshot.config();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq_es::SeqES;
    use gesmc_graph::gen::gnp;

    fn gnp_graph(seed: u64, n: usize, p: f64) -> EdgeListGraph {
        let mut rng = rng_from_seed(seed);
        gnp(&mut rng, n, p)
    }

    /// Oracle: run the same requests strictly sequentially with SeqES.
    fn sequential_oracle(graph: &EdgeListGraph, requests: &[SwitchRequest]) -> EdgeListGraph {
        let mut chain = SeqES::new(graph.clone(), SwitchingConfig::with_seed(0));
        for &r in requests {
            chain.apply(r);
        }
        chain.graph()
    }

    #[test]
    fn matches_sequential_es_on_explicit_requests() {
        let mut rng = rng_from_seed(11);
        for trial in 0..10 {
            let graph = gnp(&mut rng, 80, 0.1);
            let m = graph.num_edges();
            if m < 4 {
                continue;
            }
            let mut par = ParES::new(graph.clone(), SwitchingConfig::with_seed(trial));
            let requests = par.sample_requests(3 * m);
            par.run_requests(&requests);
            let oracle = sequential_oracle(&graph, &requests);
            assert_eq!(
                par.graph().canonical_edges(),
                oracle.canonical_edges(),
                "trial {trial} diverged from the sequential execution"
            );
        }
    }

    #[test]
    fn preserves_degrees_and_simplicity() {
        let graph = gnp_graph(13, 150, 0.06);
        let degrees = graph.degrees();
        let mut chain = ParES::new(graph, SwitchingConfig::with_seed(14));
        chain.run_supersteps(4);
        let result = chain.graph();
        assert_eq!(result.degrees(), degrees);
        assert!(result.validate().is_ok());
    }

    #[test]
    fn superstep_boundaries_have_no_source_dependencies() {
        // Construct a request list with a deliberate early collision and make
        // sure the outcome still matches the sequential oracle.
        let graph = gnp_graph(15, 40, 0.2);
        let requests = vec![
            SwitchRequest::new(0, 1, false),
            SwitchRequest::new(2, 3, true),
            SwitchRequest::new(1, 4, false), // collides with request 0 (index 1)
            SwitchRequest::new(5, 6, true),
            SwitchRequest::new(2, 7, false), // collides with request 1 (index 2)
        ];
        let mut par = ParES::new(graph.clone(), SwitchingConfig::with_seed(16));
        let stats = par.run_requests(&requests);
        assert!(stats.len() >= 2, "collisions must split the batch into supersteps");
        assert_eq!(
            par.graph().canonical_edges(),
            sequential_oracle(&graph, &requests).canonical_edges()
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let graph = gnp_graph(17, 90, 0.08);
        let mut a = ParES::new(graph.clone(), SwitchingConfig::with_seed(5));
        let mut b = ParES::new(graph, SwitchingConfig::with_seed(5));
        a.run_supersteps(3);
        b.run_supersteps(3);
        assert_eq!(a.graph().canonical_edges(), b.graph().canonical_edges());
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let graph = EdgeListGraph::new(3, vec![]).unwrap();
        let mut chain = ParES::new(graph, SwitchingConfig::with_seed(18));
        let stats = chain.superstep();
        assert_eq!(stats.requested, 0);
    }
}
