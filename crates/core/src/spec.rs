//! `ChainSpec` — a parsed, serializable description of *which* chain to run
//! plus *its* parameters.
//!
//! A spec has two equivalent surface forms that round-trip losslessly:
//!
//! * a **string** form for CLI flags and compact manifests —
//!   `par-global-es?pl=0.001&prefetch=off` (a kebab-case chain name,
//!   optionally followed by `?key=value` pairs joined with `&`);
//! * a **JSON** form for manifests and study specs — either the plain string
//!   above, or an object whose `"name"` key names the chain and whose other
//!   keys are the parameters: `{ "name": "par-global-es", "pl": 0.001,
//!   "prefetch": false }`.
//!
//! Parameter values are typed ([`ParamValue`]: bool / integer / float); what
//! a given chain *accepts* is declared by its
//! [`ChainInfo`](crate::registry::ChainInfo) in the
//! [`ChainRegistry`](crate::registry::ChainRegistry), which validates specs
//! before building.  The spec itself only enforces the grammar, so it can
//! describe chains the local registry has never heard of (e.g. when shipping
//! manifests between builds).
//!
//! ```
//! use gesmc_core::ChainSpec;
//!
//! let spec = ChainSpec::parse("par-global-es?pl=0.001&prefetch=off").unwrap();
//! assert_eq!(spec.name, "par-global-es");
//! assert_eq!(spec.to_string(), "par-global-es?pl=0.001&prefetch=false");
//! assert_eq!(ChainSpec::parse(&spec.to_string()).unwrap(), spec);
//! ```

use crate::chain::SwitchingConfig;
use serde_json::{Map, Value};
use std::collections::BTreeMap;

/// Name of the common `P_L` parameter (per-switch rejection probability of
/// the G-ES-MC chains, [`SwitchingConfig::loop_probability`]).
pub const PARAM_LOOP_PROBABILITY: &str = "pl";

/// Name of the common prefetch parameter ([`SwitchingConfig::prefetch`]).
pub const PARAM_PREFETCH: &str = "prefetch";

/// A typed chain parameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// A boolean (`true`/`false`, also spelled `on`/`off` in string specs).
    Bool(bool),
    /// An integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
}

impl ParamValue {
    /// Parse the string spelling of a value: `true`/`false`/`on`/`off` →
    /// [`ParamValue::Bool`], an integer literal → [`ParamValue::Int`], any
    /// other number → [`ParamValue::Float`].
    pub fn parse(raw: &str) -> Result<Self, ChainError> {
        match raw {
            "true" | "on" => return Ok(ParamValue::Bool(true)),
            "false" | "off" => return Ok(ParamValue::Bool(false)),
            _ => {}
        }
        if let Ok(i) = raw.parse::<i64>() {
            return Ok(ParamValue::Int(i));
        }
        if let Ok(f) = raw.parse::<f64>() {
            if f.is_finite() {
                return Ok(ParamValue::Float(f));
            }
        }
        Err(ChainError::Grammar(format!(
            "parameter value {raw:?} is not a bool (true/false/on/off), integer, or finite number"
        )))
    }

    /// The boolean payload (`None` for non-bool values).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ParamValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload (`None` for non-integer values).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ParamValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric payload; integers coerce to floats.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ParamValue::Int(i) => Some(*i as f64),
            ParamValue::Float(f) => Some(*f),
            ParamValue::Bool(_) => None,
        }
    }

    /// The JSON encoding of the value.
    ///
    /// Integers whose magnitude exceeds `2^53` are encoded as strings (JSON
    /// numbers are `f64`-backed here and would silently lose low bits);
    /// [`ParamValue::from_json`] parses them back, so the JSON form
    /// round-trips losslessly for the full `i64` range.
    pub fn to_json(&self) -> Value {
        match self {
            ParamValue::Bool(b) => Value::Bool(*b),
            ParamValue::Int(i) if i.unsigned_abs() <= 1 << 53 => Value::Number(*i as f64),
            ParamValue::Int(i) => Value::String(i.to_string()),
            ParamValue::Float(f) => Value::Number(*f),
        }
    }

    /// Convert a JSON value (integral numbers become [`ParamValue::Int`];
    /// strings are parsed like the string-spec spelling, so `"off"` works).
    pub fn from_json(value: &Value) -> Result<Self, ChainError> {
        match value {
            Value::Bool(b) => Ok(ParamValue::Bool(*b)),
            Value::Number(n) if n.fract() == 0.0 && n.abs() <= (1u64 << 53) as f64 => {
                Ok(ParamValue::Int(*n as i64))
            }
            Value::Number(n) if n.is_finite() => Ok(ParamValue::Float(*n)),
            Value::String(s) => ParamValue::parse(s),
            other => Err(ChainError::Grammar(format!(
                "parameter value {other:?} must be a bool, number, or string"
            ))),
        }
    }
}

impl std::fmt::Display for ParamValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamValue::Bool(b) => write!(f, "{b}"),
            ParamValue::Int(i) => write!(f, "{i}"),
            ParamValue::Float(v) => write!(f, "{v}"),
        }
    }
}

/// Errors raised while parsing a [`ChainSpec`] or resolving it against a
/// [`ChainRegistry`](crate::registry::ChainRegistry).
///
/// These are plain errors, never panics: malformed user input (CLI flags,
/// manifests, study specs) must surface as readable messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ChainError {
    /// The spec string or JSON value violates the grammar.
    Grammar(String),
    /// No registered chain answers to this name.
    UnknownChain {
        /// The name that failed to resolve.
        name: String,
        /// Every name the registry does know, in registration order.
        known: Vec<String>,
    },
    /// The named chain does not accept this parameter.
    UnknownParam {
        /// The chain the spec addressed.
        chain: String,
        /// The offending parameter name.
        param: String,
        /// The parameters the chain does accept.
        accepted: Vec<String>,
    },
    /// A parameter value has the wrong type or an out-of-range value.
    BadParam {
        /// The chain the spec addressed.
        chain: String,
        /// The offending parameter name.
        param: String,
        /// What was wrong with the value.
        message: String,
    },
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::Grammar(msg) => write!(f, "invalid chain spec: {msg}"),
            ChainError::UnknownChain { name, known } => {
                write!(f, "unknown chain {name:?} (known: {})", known.join(", "))
            }
            ChainError::UnknownParam { chain, param, accepted } => {
                if accepted.is_empty() {
                    write!(f, "chain {chain:?} takes no parameters (got {param:?})")
                } else {
                    write!(
                        f,
                        "chain {chain:?} does not accept parameter {param:?} (accepted: {})",
                        accepted.join(", ")
                    )
                }
            }
            ChainError::BadParam { chain, param, message } => {
                write!(f, "chain {chain:?}, parameter {param:?}: {message}")
            }
        }
    }
}

impl std::error::Error for ChainError {}

/// A parsed, serializable description of which chain to run and with which
/// parameters (see the [module docs](self) for the two surface forms).
#[derive(Debug, Clone, PartialEq)]
pub struct ChainSpec {
    /// The chain's registry name (kebab-case, e.g. `par-global-es`).
    pub name: String,
    /// The typed parameters, sorted by name (the canonical order of the
    /// string form).
    pub params: BTreeMap<String, ParamValue>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
}

fn valid_key(key: &str) -> bool {
    !key.is_empty()
        && key.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "_-".contains(c))
}

impl ChainSpec {
    /// A spec naming `name` with no parameters.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), params: BTreeMap::new() }
    }

    /// Parse the string form: `name` or `name?key=value&key=value`.
    pub fn parse(text: &str) -> Result<Self, ChainError> {
        let (name, query) = match text.split_once('?') {
            Some((name, query)) => (name, Some(query)),
            None => (text, None),
        };
        if !valid_name(name) {
            return Err(ChainError::Grammar(format!(
                "chain name {name:?} must be non-empty kebab-case [a-z0-9-]"
            )));
        }
        let mut spec = ChainSpec::new(name);
        if let Some(query) = query {
            for pair in query.split('&') {
                let (key, raw) = pair.split_once('=').ok_or_else(|| {
                    ChainError::Grammar(format!("parameter {pair:?} is not of the form key=value"))
                })?;
                if !valid_key(key) {
                    return Err(ChainError::Grammar(format!(
                        "parameter name {key:?} must be non-empty [a-z0-9_-]"
                    )));
                }
                if spec.params.insert(key.to_string(), ParamValue::parse(raw)?).is_some() {
                    return Err(ChainError::Grammar(format!("parameter {key:?} given twice")));
                }
            }
        }
        Ok(spec)
    }

    /// Parse the JSON form: a string (handled exactly like [`ChainSpec::parse`])
    /// or an object with a `"name"` key whose other keys are parameters.
    pub fn from_json(value: &Value) -> Result<Self, ChainError> {
        match value {
            Value::String(s) => Self::parse(s),
            Value::Object(map) => {
                let name = map.get("name").and_then(Value::as_str).ok_or_else(|| {
                    ChainError::Grammar(
                        "chain object needs a \"name\" string key (e.g. {\"name\": \"seq-es\"})"
                            .to_string(),
                    )
                })?;
                if !valid_name(name) {
                    return Err(ChainError::Grammar(format!(
                        "chain name {name:?} must be non-empty kebab-case [a-z0-9-]"
                    )));
                }
                let mut spec = ChainSpec::new(name);
                for (key, raw) in map.iter() {
                    if key == "name" {
                        continue;
                    }
                    if !valid_key(key) {
                        return Err(ChainError::Grammar(format!(
                            "parameter name {key:?} must be non-empty [a-z0-9_-]"
                        )));
                    }
                    spec.params.insert(key.clone(), ParamValue::from_json(raw)?);
                }
                Ok(spec)
            }
            other => Err(ChainError::Grammar(format!(
                "chain spec must be a string or object, got {other:?}"
            ))),
        }
    }

    /// The JSON form: the plain name string for parameter-less specs, the
    /// flat `{"name": …, param: value, …}` object otherwise.
    pub fn to_json(&self) -> Value {
        if self.params.is_empty() {
            return Value::String(self.name.clone());
        }
        let mut map = Map::new();
        map.insert("name".to_string(), Value::String(self.name.clone()));
        for (key, value) in &self.params {
            map.insert(key.clone(), value.to_json());
        }
        Value::Object(map)
    }

    /// Builder-style parameter insertion.
    pub fn with_param(mut self, key: impl Into<String>, value: ParamValue) -> Self {
        self.params.insert(key.into(), value);
        self
    }

    /// Look a parameter up by name.
    pub fn param(&self, key: &str) -> Option<&ParamValue> {
        self.params.get(key)
    }

    /// A file-name-safe rendering (`[a-z0-9._-]`): the name, followed by
    /// `-key-value` per parameter in canonical order.  Used wherever the spec
    /// keys a file name or CSV row (e.g. study cell names).
    pub fn slug(&self) -> String {
        let mut out = self.name.clone();
        for (key, value) in &self.params {
            out.push('-');
            out.push_str(key);
            out.push('-');
            out.push_str(&value.to_string());
        }
        out
    }

    /// Build the [`SwitchingConfig`] the spec's *common* parameters describe:
    /// `pl` ([`SwitchingConfig::loop_probability`], a float in `[0, 1)`) and
    /// `prefetch` ([`SwitchingConfig::prefetch`], a bool), around `seed`.
    ///
    /// Malformed values are reported as [`ChainError::BadParam`], never
    /// panics; whether the chain *accepts* these parameters at all is the
    /// registry's per-chain validation, not this method's.
    pub fn switching_config(&self, seed: u64) -> Result<SwitchingConfig, ChainError> {
        let mut config = SwitchingConfig::with_seed(seed);
        if let Some(value) = self.param(PARAM_LOOP_PROBABILITY) {
            let p = value.as_f64().ok_or_else(|| ChainError::BadParam {
                chain: self.name.clone(),
                param: PARAM_LOOP_PROBABILITY.to_string(),
                message: format!("expected a number in [0, 1), got {value}"),
            })?;
            if !(0.0..1.0).contains(&p) {
                return Err(ChainError::BadParam {
                    chain: self.name.clone(),
                    param: PARAM_LOOP_PROBABILITY.to_string(),
                    message: format!("P_L must lie in [0, 1), got {p}"),
                });
            }
            config.loop_probability = p;
        }
        if let Some(value) = self.param(PARAM_PREFETCH) {
            config.prefetch = value.as_bool().ok_or_else(|| ChainError::BadParam {
                chain: self.name.clone(),
                param: PARAM_PREFETCH.to_string(),
                message: format!("expected a bool (true/false/on/off), got {value}"),
            })?;
        }
        Ok(config)
    }
}

impl std::fmt::Display for ChainSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)?;
        for (i, (key, value)) in self.params.iter().enumerate() {
            write!(f, "{}{key}={value}", if i == 0 { '?' } else { '&' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_names_parse_and_display() {
        let spec = ChainSpec::parse("seq-global-es").unwrap();
        assert_eq!(spec, ChainSpec::new("seq-global-es"));
        assert_eq!(spec.to_string(), "seq-global-es");
        assert_eq!(spec.slug(), "seq-global-es");
    }

    #[test]
    fn parameters_parse_typed_and_canonicalise() {
        let spec = ChainSpec::parse("par-global-es?prefetch=off&pl=0.001").unwrap();
        assert_eq!(spec.param("pl"), Some(&ParamValue::Float(0.001)));
        assert_eq!(spec.param("prefetch"), Some(&ParamValue::Bool(false)));
        // Canonical order is sorted by key; on/off normalise to true/false.
        assert_eq!(spec.to_string(), "par-global-es?pl=0.001&prefetch=false");
        assert_eq!(spec.slug(), "par-global-es-pl-0.001-prefetch-false");
        assert_eq!(ChainSpec::parse(&spec.to_string()).unwrap(), spec);
    }

    #[test]
    fn string_roundtrip_for_every_value_kind() {
        for text in ["x?a=true", "x?a=-3", "x?a=42", "x?a=0.125", "x?a=1e-3"] {
            let spec = ChainSpec::parse(text).unwrap();
            assert_eq!(ChainSpec::parse(&spec.to_string()).unwrap(), spec, "{text}");
        }
    }

    #[test]
    fn grammar_errors_are_reported() {
        for bad in ["", "Bad Name", "se q", "x?pl", "x?=1", "x?pl=0.1&pl=0.2", "x?pl=abc", "x?PL=1"]
        {
            let err = ChainSpec::parse(bad).unwrap_err();
            assert!(matches!(err, ChainError::Grammar(_)), "{bad:?}: {err}");
        }
    }

    #[test]
    fn json_string_and_object_forms_are_equivalent() {
        let from_string =
            ChainSpec::from_json(&serde_json::from_str("\"par-global-es?pl=0.001\"").unwrap())
                .unwrap();
        let from_object = ChainSpec::from_json(
            &serde_json::from_str(r#"{"name": "par-global-es", "pl": 0.001}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(from_string, from_object);
        // JSON round-trip through to_json.
        assert_eq!(ChainSpec::from_json(&from_object.to_json()).unwrap(), from_object);
        let plain = ChainSpec::new("seq-es");
        assert_eq!(plain.to_json(), Value::String("seq-es".into()));
        assert_eq!(ChainSpec::from_json(&plain.to_json()).unwrap(), plain);
    }

    #[test]
    fn json_object_values_are_typed() {
        let spec = ChainSpec::from_json(
            &serde_json::from_str(r#"{"name": "x", "a": true, "b": 3, "c": 0.5, "d": "off"}"#)
                .unwrap(),
        )
        .unwrap();
        assert_eq!(spec.param("a"), Some(&ParamValue::Bool(true)));
        assert_eq!(spec.param("b"), Some(&ParamValue::Int(3)));
        assert_eq!(spec.param("c"), Some(&ParamValue::Float(0.5)));
        assert_eq!(spec.param("d"), Some(&ParamValue::Bool(false)));
    }

    #[test]
    fn json_errors_are_reported() {
        for bad in ["3", "[]", "{}", r#"{"name": 3}"#, r#"{"name": "x", "p": null}"#] {
            let value = serde_json::from_str(bad).unwrap();
            assert!(ChainSpec::from_json(&value).is_err(), "{bad}");
        }
    }

    #[test]
    fn switching_config_reads_common_params() {
        let spec = ChainSpec::parse("seq-global-es?pl=0.25&prefetch=off").unwrap();
        let config = spec.switching_config(7).unwrap();
        assert_eq!(config.seed, 7);
        assert!((config.loop_probability - 0.25).abs() < 1e-12);
        assert!(!config.prefetch);
        // Defaults when the params are absent.
        let config = ChainSpec::new("seq-es").switching_config(1).unwrap();
        assert!((config.loop_probability - 0.01).abs() < 1e-12);
        assert!(config.prefetch);
    }

    #[test]
    fn switching_config_rejects_bad_values_without_panicking() {
        for (bad, param) in [("x?pl=1.5", "pl"), ("x?pl=true", "pl"), ("x?prefetch=3", "prefetch")]
        {
            let err = ChainSpec::parse(bad).unwrap().switching_config(0).unwrap_err();
            match err {
                ChainError::BadParam { param: p, .. } => assert_eq!(p, param, "{bad}"),
                other => panic!("{bad}: expected BadParam, got {other}"),
            }
        }
    }

    #[test]
    fn huge_integers_survive_the_json_form() {
        // JSON numbers are f64-backed; integers beyond 2^53 round-trip via
        // the string encoding instead of silently losing low bits.
        let spec = ChainSpec::parse("x?a=9007199254740993").unwrap();
        assert_eq!(spec.param("a"), Some(&ParamValue::Int(9007199254740993)));
        assert_eq!(ChainSpec::from_json(&spec.to_json()).unwrap(), spec);
        let small = ChainSpec::parse("x?a=42").unwrap();
        assert_eq!(small.to_json().get("a").and_then(Value::as_u64), Some(42));
    }

    #[test]
    fn integer_pl_coerces_to_float() {
        let spec = ChainSpec::parse("x?pl=0").unwrap();
        assert_eq!(spec.param("pl"), Some(&ParamValue::Int(0)));
        assert!((spec.switching_config(0).unwrap().loop_probability).abs() < 1e-12);
    }
}
