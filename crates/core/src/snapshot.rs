//! Chain state snapshots: the foundation of checkpoint/resume.
//!
//! A [`ChainSnapshot`] captures everything a switching chain needs to
//! continue *bit-identically* to an uninterrupted run: the edge array in slot
//! order (slot indices are sampled by the chains, so order matters), the raw
//! PRNG stream state, the auxiliary seed-derivation state of the parallel
//! chains, the superstep counter, and the [`SwitchingConfig`].
//!
//! Snapshots are plain in-memory values; the binary on-disk format lives in
//! `gesmc-engine` (`gesmc_engine::Checkpoint`), which wraps a snapshot
//! together with job-level metadata.

use crate::chain::SwitchingConfig;
use gesmc_graph::{Edge, EdgeListGraph, GraphError};
use gesmc_randx::RngState;

/// Errors raised by [`EdgeSwitching::restore`](crate::EdgeSwitching::restore).
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The snapshot was taken from a different algorithm.
    AlgorithmMismatch {
        /// Name of the chain being restored into.
        expected: String,
        /// Algorithm recorded in the snapshot.
        found: String,
    },
    /// The chain implementation does not support snapshots.
    Unsupported(&'static str),
    /// The snapshot's edge list violates the simple-graph invariants.
    InvalidGraph(GraphError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::AlgorithmMismatch { expected, found } => {
                write!(f, "snapshot of algorithm {found:?} cannot restore a {expected:?} chain")
            }
            SnapshotError::Unsupported(name) => {
                write!(f, "algorithm {name:?} does not support snapshot/restore")
            }
            SnapshotError::InvalidGraph(e) => write!(f, "snapshot graph is not simple: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<GraphError> for SnapshotError {
    fn from(e: GraphError) -> Self {
        SnapshotError::InvalidGraph(e)
    }
}

/// A complete, resumable capture of a switching chain's state.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainSnapshot {
    /// Name of the algorithm the snapshot was taken from (must match the
    /// chain it is restored into).
    pub algorithm: String,
    /// Number of nodes `n` of the graph.
    pub num_nodes: usize,
    /// The edge array **in slot order** — chains sample slot indices, so the
    /// order is part of the chain state, unlike in a canonical edge set.
    pub edges: Vec<Edge>,
    /// Raw state of the chain's main PRNG; the empty marker
    /// ([`RngState::is_empty`]) for chains that do not own one.
    pub rng: RngState,
    /// Raw state of the chain's [`gesmc_randx::SeedSequence`] (per-superstep
    /// seed derivation in the parallel chains); `0` if unused.
    pub aux_seed_state: u64,
    /// Number of supersteps executed so far.
    pub supersteps_done: u64,
    /// [`SwitchingConfig::seed`] the chain was created with.
    pub seed: u64,
    /// [`SwitchingConfig::loop_probability`] of the chain.
    pub loop_probability: f64,
    /// [`SwitchingConfig::prefetch`] of the chain.
    pub prefetch: bool,
}

impl ChainSnapshot {
    /// Reconstruct the [`SwitchingConfig`] recorded in the snapshot.
    pub fn config(&self) -> SwitchingConfig {
        SwitchingConfig {
            seed: self.seed,
            loop_probability: self.loop_probability,
            prefetch: self.prefetch,
        }
    }

    /// The captured graph (validating the simplicity invariants).
    pub fn graph(&self) -> Result<EdgeListGraph, GraphError> {
        EdgeListGraph::new(self.num_nodes, self.edges.clone())
    }

    /// Verify that the snapshot's edge list is a valid simple graph.
    pub fn validate(&self) -> Result<(), GraphError> {
        self.graph().map(|_| ())
    }

    /// Guard used by the chain `restore` implementations (also available to
    /// chains implemented outside this crate, e.g. the baselines).
    pub fn check_algorithm(&self, expected: &'static str) -> Result<(), SnapshotError> {
        if self.algorithm == expected {
            Ok(())
        } else {
            Err(SnapshotError::AlgorithmMismatch {
                expected: expected.to_string(),
                found: self.algorithm.clone(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> ChainSnapshot {
        ChainSnapshot {
            algorithm: "SeqES".to_string(),
            num_nodes: 4,
            edges: vec![Edge::new(0, 1), Edge::new(2, 3)],
            rng: RngState::default(),
            aux_seed_state: 0,
            supersteps_done: 7,
            seed: 42,
            loop_probability: 0.01,
            prefetch: true,
        }
    }

    #[test]
    fn config_reconstruction() {
        let snap = sample_snapshot();
        let cfg = snap.config();
        assert_eq!(cfg.seed, 42);
        assert!((cfg.loop_probability - 0.01).abs() < 1e-12);
        assert!(cfg.prefetch);
    }

    #[test]
    fn graph_is_validated() {
        let mut snap = sample_snapshot();
        assert!(snap.validate().is_ok());
        snap.edges.push(Edge::new(0, 1));
        assert!(matches!(snap.validate(), Err(GraphError::MultiEdge(_))));
    }

    #[test]
    fn algorithm_guard() {
        let snap = sample_snapshot();
        assert!(snap.check_algorithm("SeqES").is_ok());
        let err = snap.check_algorithm("ParES").unwrap_err();
        assert!(matches!(err, SnapshotError::AlgorithmMismatch { .. }));
        assert!(err.to_string().contains("SeqES"));
    }
}

#[cfg(test)]
mod chain_roundtrip_tests {
    use crate::chain::{EdgeSwitching, SwitchingConfig};
    use crate::{NaiveParES, ParES, ParGlobalES, SeqES, SeqGlobalES};
    use gesmc_graph::gen::gnp;
    use gesmc_graph::EdgeListGraph;
    use gesmc_randx::rng_from_seed;

    fn test_graph(seed: u64) -> EdgeListGraph {
        let mut rng = rng_from_seed(seed);
        gnp(&mut rng, 90, 0.08)
    }

    /// Run `total` supersteps uninterrupted; run `cut` supersteps, snapshot,
    /// restore into a *fresh* chain built from a placeholder graph, run the
    /// remaining supersteps there.  Both must land on the identical edge set.
    fn assert_resume_bit_identical<C, F>(make: F, cut: usize, total: usize)
    where
        C: EdgeSwitching,
        F: Fn(EdgeListGraph) -> C,
    {
        let graph = test_graph(17);
        let mut uninterrupted = make(graph.clone());
        uninterrupted.run_supersteps(total);

        let mut interrupted = make(graph.clone());
        interrupted.run_supersteps(cut);
        let snap = interrupted.snapshot().expect("core chains must support snapshots");
        assert_eq!(snap.supersteps_done, cut as u64);

        // Restore into a chain constructed from an unrelated placeholder
        // graph, as the resume path of the engine does.
        let placeholder = test_graph(99);
        let mut resumed = make(placeholder);
        resumed.restore(&snap).expect("restore must succeed");
        assert_eq!(resumed.graph().canonical_edges(), interrupted.graph().canonical_edges());
        resumed.run_supersteps(total - cut);

        assert_eq!(
            resumed.graph().canonical_edges(),
            uninterrupted.graph().canonical_edges(),
            "{} resumed run diverged from the uninterrupted run",
            resumed.name()
        );
    }

    #[test]
    fn seq_es_resumes_bit_identically() {
        assert_resume_bit_identical(|g| SeqES::new(g, SwitchingConfig::with_seed(5)), 3, 9);
    }

    #[test]
    fn seq_global_es_resumes_bit_identically() {
        assert_resume_bit_identical(|g| SeqGlobalES::new(g, SwitchingConfig::with_seed(5)), 3, 9);
    }

    #[test]
    fn par_es_resumes_bit_identically() {
        assert_resume_bit_identical(|g| ParES::new(g, SwitchingConfig::with_seed(5)), 3, 9);
    }

    #[test]
    fn par_global_es_resumes_bit_identically() {
        assert_resume_bit_identical(|g| ParGlobalES::new(g, SwitchingConfig::with_seed(5)), 3, 9);
    }

    #[test]
    fn naive_par_es_resumes_bit_identically_single_threaded() {
        // The inexact baseline's switch interleaving is racy across threads;
        // only under a single-threaded pool is its trajectory a function of
        // its snapshot state.
        let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            assert_resume_bit_identical(
                |g| NaiveParES::new(g, SwitchingConfig::with_seed(5)),
                3,
                9,
            );
        });
    }

    #[test]
    fn restore_rejects_foreign_snapshots() {
        let graph = test_graph(1);
        let seq = SeqES::new(graph.clone(), SwitchingConfig::with_seed(2));
        let snap = seq.snapshot().unwrap();
        let mut global = SeqGlobalES::new(graph, SwitchingConfig::with_seed(2));
        assert!(matches!(
            global.restore(&snap),
            Err(crate::SnapshotError::AlgorithmMismatch { .. })
        ));
    }

    #[test]
    fn restore_carries_the_config() {
        let graph = test_graph(3);
        let chain =
            SeqGlobalES::new(graph.clone(), SwitchingConfig::with_seed(7).loop_probability(0.3));
        let snap = chain.snapshot().unwrap();
        let mut other = SeqGlobalES::new(graph, SwitchingConfig::with_seed(1));
        other.restore(&snap).unwrap();
        let roundtrip = other.snapshot().unwrap();
        assert_eq!(roundtrip.seed, 7);
        assert!((roundtrip.loop_probability - 0.3).abs() < 1e-12);
    }
}
