//! The engine's unified error type.

use gesmc_core::{ChainError, SnapshotError};
use gesmc_graph::GraphError;

/// Any failure raised while queueing, running, sampling, or checkpointing a
/// randomization job.
#[derive(Debug)]
pub enum EngineError {
    /// Underlying filesystem / I/O failure.
    Io(std::io::Error),
    /// A graph could not be loaded or violates the simple-graph invariants.
    Graph(String),
    /// Snapshot capture or restore failed.
    Snapshot(SnapshotError),
    /// A chain spec failed to parse, resolve, or validate against the
    /// registry (unknown chain name, unknown or malformed parameter).
    Chain(ChainError),
    /// The manifest JSON is malformed or missing required fields.
    Manifest(String),
    /// A checkpoint file is malformed, truncated, or corrupt.
    Checkpoint(String),
    /// A job produced a sample whose degree sequence differs from its input —
    /// a broken chain invariant, never expected in a correct build.
    DegreesViolated {
        /// Name of the offending job.
        job: String,
        /// Superstep at which the violation was detected.
        superstep: u64,
    },
    /// The job was cancelled via its [`JobControl`](crate::JobControl)
    /// before finishing.  Samples emitted before the cancel were delivered;
    /// the chain stopped on a superstep boundary.
    Cancelled {
        /// Name of the cancelled job.
        job: String,
        /// Last completed superstep.
        superstep: u64,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Io(e) => write!(f, "I/O error: {e}"),
            EngineError::Graph(msg) => write!(f, "graph error: {msg}"),
            EngineError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            EngineError::Chain(e) => write!(f, "chain error: {e}"),
            EngineError::Manifest(msg) => write!(f, "manifest error: {msg}"),
            EngineError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            EngineError::DegreesViolated { job, superstep } => {
                write!(f, "job {job:?}: degree sequence violated at superstep {superstep}")
            }
            EngineError::Cancelled { job, superstep } => {
                write!(f, "job {job:?}: cancelled after superstep {superstep}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Io(e) => Some(e),
            EngineError::Snapshot(e) => Some(e),
            EngineError::Chain(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}

impl From<SnapshotError> for EngineError {
    fn from(e: SnapshotError) -> Self {
        EngineError::Snapshot(e)
    }
}

impl From<ChainError> for EngineError {
    fn from(e: ChainError) -> Self {
        EngineError::Chain(e)
    }
}

impl From<GraphError> for EngineError {
    fn from(e: GraphError) -> Self {
        EngineError::Graph(e.to_string())
    }
}
