//! Cooperative job control: cancellation flags and progress hooks.
//!
//! A [`JobControl`] is shared (via `Arc`) between whoever *drives* a job —
//! [`run_job_controlled`](crate::run_job_controlled), or a
//! [`ServicePool`](crate::ServicePool) worker — and whoever *observes* it: a
//! status endpoint polling [`JobControl::progress`], or a client requesting
//! [`JobControl::request_cancel`].  The chains themselves are untouched;
//! control is checked once per superstep, so a cancel lands within one
//! superstep of being requested and the job's state (including any pending
//! checkpoint) stays consistent.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A snapshot of a job's progress, as recorded by the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobProgress {
    /// Last completed superstep.
    pub superstep: u64,
    /// The job's superstep target (0 until the driver started).
    pub total: u64,
}

/// Shared cancellation flag + progress counters for one job.
///
/// All operations are lock-free atomics; observers may poll from any thread
/// while the job runs.
#[derive(Debug, Default)]
pub struct JobControl {
    cancel: AtomicBool,
    superstep: AtomicU64,
    total: AtomicU64,
    /// Optional pool-level superstep meter: every completed superstep also
    /// increments this shared counter, so a service can export aggregate
    /// supersteps/sec without polling per-job state.
    meter: Option<Arc<AtomicU64>>,
}

impl JobControl {
    /// A fresh control with no cancel request and zeroed progress.
    pub fn new() -> Self {
        Self::default()
    }

    /// Like [`JobControl::new`], additionally incrementing `meter` once per
    /// completed superstep (the pool-level progress hook).
    pub fn with_meter(meter: Arc<AtomicU64>) -> Self {
        Self { meter: Some(meter), ..Self::default() }
    }

    /// Ask the driver to stop before the next superstep.  Idempotent; the
    /// driver reports [`EngineError::Cancelled`](crate::EngineError) once it
    /// observes the flag.
    pub fn request_cancel(&self) {
        self.cancel.store(true, Ordering::Release);
    }

    /// Whether a cancel was requested.
    pub fn is_cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::Acquire)
    }

    /// The driver-recorded progress.
    pub fn progress(&self) -> JobProgress {
        JobProgress {
            superstep: self.superstep.load(Ordering::Acquire),
            total: self.total.load(Ordering::Acquire),
        }
    }

    /// Record the job's superstep target (driver side).
    pub(crate) fn set_total(&self, total: u64) {
        self.total.store(total, Ordering::Release);
    }

    /// Record a completed superstep (driver side).
    pub(crate) fn record(&self, superstep: u64) {
        self.superstep.store(superstep, Ordering::Release);
        if let Some(meter) = &self.meter {
            meter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a resume point without ticking the meter (driver side).
    pub(crate) fn record_start(&self, superstep: u64) {
        self.superstep.store(superstep, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_flag_round_trips() {
        let control = JobControl::new();
        assert!(!control.is_cancel_requested());
        control.request_cancel();
        assert!(control.is_cancel_requested());
        control.request_cancel();
        assert!(control.is_cancel_requested(), "cancel is idempotent");
    }

    #[test]
    fn progress_is_observable_and_meter_ticks() {
        let meter = Arc::new(AtomicU64::new(0));
        let control = JobControl::with_meter(Arc::clone(&meter));
        control.set_total(10);
        control.record_start(4);
        assert_eq!(control.progress(), JobProgress { superstep: 4, total: 10 });
        assert_eq!(meter.load(Ordering::Relaxed), 0, "resume point must not tick the meter");
        control.record(5);
        control.record(6);
        assert_eq!(control.progress(), JobProgress { superstep: 6, total: 10 });
        assert_eq!(meter.load(Ordering::Relaxed), 2);
    }
}
