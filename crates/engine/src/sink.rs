//! Streaming sample sinks: where thinned chain samples go.
//!
//! The null-model workload of Sec. 6 consumes *every* `k`-th superstep's
//! graph as an independent sample, not just the final state.  A
//! [`SampleSink`] receives those samples as the chain produces them, so a
//! job's memory footprint stays one graph regardless of how many samples it
//! emits (unless the sink itself chooses to retain them).

use crate::error::EngineError;
use crate::pool::JobReport;
use gesmc_graph::io::write_edge_list_file;
use gesmc_graph::EdgeListGraph;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Metadata accompanying every emitted sample.
#[derive(Debug, Clone, Copy)]
pub struct SampleContext<'a> {
    /// Name of the job that produced the sample.
    pub job: &'a str,
    /// Superstep after which the sample was taken (1-based).
    pub superstep: u64,
    /// Zero-based index of the sample within the job.
    pub sample_index: u64,
}

/// A consumer of thinned chain samples.
///
/// Sinks are owned by their job and driven from the job's worker thread, so
/// implementations need `Send` but not `Sync`.
pub trait SampleSink: Send {
    /// Receive one thinned sample.
    fn emit(&mut self, ctx: &SampleContext<'_>, sample: &EdgeListGraph) -> Result<(), EngineError>;

    /// Called once after the job's last superstep, with its final report.
    fn finish(&mut self, report: &JobReport) -> Result<(), EngineError> {
        let _ = report;
        Ok(())
    }
}

/// Writes each sample as a plain-text edge list `{job}-s{superstep}.txt`
/// under a directory.
pub struct EdgeListFileSink {
    dir: PathBuf,
    prefix: String,
    written: Vec<PathBuf>,
}

impl EdgeListFileSink {
    /// Create the sink (and the directory, if missing).
    pub fn new(dir: impl AsRef<Path>, prefix: impl Into<String>) -> Result<Self, EngineError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir, prefix: prefix.into(), written: Vec::new() })
    }

    /// Paths of the sample files written so far.
    pub fn written(&self) -> &[PathBuf] {
        &self.written
    }
}

impl SampleSink for EdgeListFileSink {
    fn emit(&mut self, ctx: &SampleContext<'_>, sample: &EdgeListGraph) -> Result<(), EngineError> {
        let path = self.dir.join(format!("{}-s{:06}.txt", self.prefix, ctx.superstep));
        write_edge_list_file(&path, sample)?;
        self.written.push(path);
        Ok(())
    }
}

/// Shared handle to the samples collected by a [`MemorySink`].
pub type SampleStore = Arc<Mutex<Vec<(u64, EdgeListGraph)>>>;

/// Retains every sample (with its superstep) in memory.
///
/// The store is shared: clone the handle from [`MemorySink::store`] before
/// moving the sink into a job, and read the samples after the job finished.
#[derive(Default)]
pub struct MemorySink {
    store: SampleStore,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared sample store.
    pub fn store(&self) -> SampleStore {
        Arc::clone(&self.store)
    }
}

impl SampleSink for MemorySink {
    fn emit(&mut self, ctx: &SampleContext<'_>, sample: &EdgeListGraph) -> Result<(), EngineError> {
        self.store
            .lock()
            .map_err(|_| EngineError::Graph("sample store mutex poisoned".to_string()))?
            .push((ctx.superstep, sample.clone()));
        Ok(())
    }
}

/// Invokes a closure for every sample (streaming analysis without retention).
pub struct CallbackSink<F> {
    callback: F,
}

impl<F> CallbackSink<F>
where
    F: FnMut(&SampleContext<'_>, &EdgeListGraph) -> Result<(), EngineError> + Send,
{
    /// Wrap `callback` as a sink.
    pub fn new(callback: F) -> Self {
        Self { callback }
    }
}

impl<F> SampleSink for CallbackSink<F>
where
    F: FnMut(&SampleContext<'_>, &EdgeListGraph) -> Result<(), EngineError> + Send,
{
    fn emit(&mut self, ctx: &SampleContext<'_>, sample: &EdgeListGraph) -> Result<(), EngineError> {
        (self.callback)(ctx, sample)
    }
}

/// Counts samples and discards them (throughput benchmarks).
#[derive(Debug, Default)]
pub struct NullSink {
    /// Number of samples received.
    pub samples: u64,
}

impl SampleSink for NullSink {
    fn emit(
        &mut self,
        _ctx: &SampleContext<'_>,
        _sample: &EdgeListGraph,
    ) -> Result<(), EngineError> {
        self.samples += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesmc_graph::io::read_edge_list_file;
    use gesmc_graph::Edge;

    fn sample_graph() -> EdgeListGraph {
        EdgeListGraph::new(4, vec![Edge::new(0, 1), Edge::new(2, 3)]).unwrap()
    }

    fn ctx(superstep: u64, index: u64) -> SampleContext<'static> {
        SampleContext { job: "test", superstep, sample_index: index }
    }

    #[test]
    fn file_sink_writes_readable_edge_lists() {
        let dir = std::env::temp_dir().join("gesmc-engine-sink-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut sink = EdgeListFileSink::new(&dir, "job").unwrap();
        let g = sample_graph();
        sink.emit(&ctx(5, 0), &g).unwrap();
        sink.emit(&ctx(10, 1), &g).unwrap();
        assert_eq!(sink.written().len(), 2);
        assert!(sink.written()[0].to_string_lossy().ends_with("job-s000005.txt"));
        let reread = read_edge_list_file(&sink.written()[1]).unwrap();
        assert_eq!(reread.canonical_edges(), g.canonical_edges());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_sink_retains_samples_with_supersteps() {
        let mut sink = MemorySink::new();
        let store = sink.store();
        sink.emit(&ctx(3, 0), &sample_graph()).unwrap();
        sink.emit(&ctx(6, 1), &sample_graph()).unwrap();
        let samples = store.lock().unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].0, 3);
        assert_eq!(samples[1].0, 6);
    }

    #[test]
    fn callback_sink_streams_and_propagates_errors() {
        let mut seen = Vec::new();
        let mut sink = CallbackSink::new(|ctx: &SampleContext<'_>, g: &EdgeListGraph| {
            seen.push((ctx.superstep, g.num_edges()));
            if ctx.superstep > 5 {
                Err(EngineError::Graph("stop".to_string()))
            } else {
                Ok(())
            }
        });
        assert!(sink.emit(&ctx(2, 0), &sample_graph()).is_ok());
        assert!(sink.emit(&ctx(8, 1), &sample_graph()).is_err());
        assert_eq!(seen, vec![(2, 2), (8, 2)]);
    }

    #[test]
    fn null_sink_counts() {
        let mut sink = NullSink::default();
        for i in 0..4 {
            sink.emit(&ctx(i, i), &sample_graph()).unwrap();
        }
        assert_eq!(sink.samples, 4);
    }
}
