//! The work queue feeding the [`WorkerPool`](crate::WorkerPool).

use crate::checkpoint::{Checkpoint, CheckpointSink};
use crate::job::JobSpec;
use crate::sink::SampleSink;
use std::collections::VecDeque;
use std::sync::Mutex;

/// One queued unit of work: a spec, its sink, and an optional checkpoint to
/// resume from.
pub struct QueuedJob {
    /// What to run.
    pub spec: JobSpec,
    /// Where its samples go.
    pub sink: Box<dyn SampleSink>,
    /// Resume point (`None` = start from superstep 0).
    pub resume: Option<Checkpoint>,
    /// Where periodic checkpoints go, in addition to (or instead of) the
    /// spec's `checkpoint_dir` (`None` = directory files only).
    pub checkpoints: Option<Box<dyn CheckpointSink>>,
    /// Trace context of the submitting request, if it was traced: the worker
    /// installs it so engine-side spans join the submitter's trace.
    pub trace: Option<gesmc_obs::SpanContext>,
}

impl QueuedJob {
    /// A job starting from scratch.
    pub fn new(spec: JobSpec, sink: Box<dyn SampleSink>) -> Self {
        Self { spec, sink, resume: None, checkpoints: None, trace: None }
    }

    /// A job continuing from `checkpoint`.
    pub fn resuming(spec: JobSpec, sink: Box<dyn SampleSink>, checkpoint: Checkpoint) -> Self {
        Self { spec, sink, resume: Some(checkpoint), checkpoints: None, trace: None }
    }

    /// Builder-style attachment of a [`CheckpointSink`] receiving this job's
    /// periodic checkpoints.
    pub fn with_checkpoint_sink(mut self, sink: Box<dyn CheckpointSink>) -> Self {
        self.checkpoints = Some(sink);
        self
    }

    /// Builder-style attachment of the submitter's
    /// [`gesmc_obs::SpanContext`] so engine spans join its trace.
    pub fn with_trace(mut self, trace: Option<gesmc_obs::SpanContext>) -> Self {
        self.trace = trace;
        self
    }
}

/// A FIFO queue of jobs, shared by the pool's worker threads.
///
/// Jobs are enqueued before the pool starts (`push`) and drained concurrently
/// (`pop`); each job remembers its submission index so batch results can be
/// reported in submission order regardless of completion order.
#[derive(Default)]
pub struct JobQueue {
    inner: Mutex<VecDeque<(usize, QueuedJob)>>,
    submitted: usize,
}

impl JobQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a job.
    pub fn push(&mut self, job: QueuedJob) {
        let index = self.submitted;
        self.submitted += 1;
        self.inner.get_mut().expect("queue mutex poisoned").push_back((index, job));
    }

    /// Number of jobs ever submitted.
    pub fn len(&self) -> usize {
        self.submitted
    }

    /// Whether no job was ever submitted.
    pub fn is_empty(&self) -> bool {
        self.submitted == 0
    }

    /// Claim the next job (called concurrently by the workers).
    pub(crate) fn pop(&self) -> Option<(usize, QueuedJob)> {
        self.inner.lock().expect("queue mutex poisoned").pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::GraphSource;
    use crate::sink::NullSink;
    use gesmc_core::ChainSpec;

    fn spec(name: &str) -> JobSpec {
        let source = GraphSource::Generated {
            family: "gnp".into(),
            nodes: 0,
            edges: 100,
            gamma: 2.5,
            seed: 1,
        };
        JobSpec::new(name, source, ChainSpec::new("seq-es"))
    }

    #[test]
    fn fifo_order_with_submission_indices() {
        let mut queue = JobQueue::new();
        assert!(queue.is_empty());
        for name in ["a", "b", "c"] {
            queue.push(QueuedJob::new(spec(name), Box::new(NullSink::default())));
        }
        assert_eq!(queue.len(), 3);
        let popped: Vec<(usize, String)> =
            std::iter::from_fn(|| queue.pop()).map(|(i, job)| (i, job.spec.name.clone())).collect();
        assert_eq!(popped, vec![(0, "a".to_string()), (1, "b".to_string()), (2, "c".to_string())]);
        // Drained, but the submission count stays.
        assert!(queue.pop().is_none());
        assert_eq!(queue.len(), 3);
    }
}
