//! JSON batch manifests: the `gesmc batch` input format.
//!
//! ```json
//! {
//!   "workers": 2,
//!   "output_dir": "samples",
//!   "checkpoint_dir": "checkpoints",
//!   "jobs": [
//!     {
//!       "name": "web-null-model",
//!       "input": "web.txt",
//!       "algorithm": "par-global-es?pl=0.001",
//!       "supersteps": 40,
//!       "thinning": 10,
//!       "seed": 1,
//!       "threads": 4,
//!       "checkpoint_every": 20
//!     },
//!     {
//!       "name": "curveball-reference",
//!       "generate": { "family": "pld", "edges": 20000, "gamma": 2.5, "seed": 7 },
//!       "algorithm": { "name": "global-curveball" },
//!       "supersteps": 30,
//!       "thinning": 5
//!     }
//!   ]
//! }
//! ```
//!
//! Per job, exactly one of `input` (edge-list file) or `generate` (synthetic
//! family) selects the graph.  The chain is a [`ChainSpec`] under the
//! `"algorithm"` key — a string (`"par-global-es?pl=0.001"`) or the
//! equivalent object (`{"name": "par-global-es", "pl": 0.001}`) — validated
//! against the engine's [`default_registry`](crate::default_registry()), so
//! every registered chain (baselines included) is reachable.  `"algo"` is the
//! pre-registry spelling of the same key, and the job-level
//! `"loop_probability"` / `"prefetch"` keys shorthand the chain's `pl` /
//! `prefetch` parameters; all three keep older manifests loading unchanged.
//! Omitted fields fall back to the [`JobSpec`] defaults; `checkpoint_every`
//! requires a top-level `checkpoint_dir`.

use crate::default_registry;
use crate::error::EngineError;
use crate::job::{GraphSource, JobSpec};
use gesmc_core::spec::{ChainSpec, PARAM_LOOP_PROBABILITY, PARAM_PREFETCH};
use gesmc_core::ChainRegistry;
use serde_json::Value;
use std::path::{Path, PathBuf};

/// A parsed batch manifest.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Worker threads of the job pool (`0` = hardware parallelism).
    pub workers: usize,
    /// Directory sample files are written to.
    pub output_dir: PathBuf,
    /// Directory periodic checkpoints are written to, if any job requests
    /// them.
    pub checkpoint_dir: Option<PathBuf>,
    /// The jobs, in submission order.
    pub jobs: Vec<JobSpec>,
}

fn field_u64(value: &Value, key: &str, context: &str) -> Result<Option<u64>, EngineError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            EngineError::Manifest(format!("{context}: {key:?} must be a non-negative integer"))
        }),
    }
}

fn field_f64(value: &Value, key: &str, context: &str) -> Result<Option<f64>, EngineError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| EngineError::Manifest(format!("{context}: {key:?} must be a number"))),
    }
}

fn field_str<'a>(
    value: &'a Value,
    key: &str,
    context: &str,
) -> Result<Option<&'a str>, EngineError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| EngineError::Manifest(format!("{context}: {key:?} must be a string"))),
    }
}

fn parse_job(
    registry: &ChainRegistry,
    value: &Value,
    index: usize,
    checkpoint_dir: Option<&Path>,
) -> Result<JobSpec, EngineError> {
    let context = format!("job #{index}");
    if value.as_object().is_none() {
        return Err(EngineError::Manifest(format!("{context}: must be an object")));
    }
    let name = field_str(value, "name", &context)?
        .map(str::to_string)
        .unwrap_or_else(|| format!("job{index}"));
    let context = format!("job {name:?}");

    let source = match (value.get("input"), value.get("generate")) {
        (Some(_), Some(_)) => {
            return Err(EngineError::Manifest(format!(
                "{context}: \"input\" and \"generate\" are mutually exclusive"
            )))
        }
        (Some(input), None) => {
            let path = input.as_str().ok_or_else(|| {
                EngineError::Manifest(format!("{context}: \"input\" must be a file path string"))
            })?;
            GraphSource::File(PathBuf::from(path))
        }
        (None, Some(generate)) => {
            let family = field_str(generate, "family", &context)?
                .ok_or_else(|| {
                    EngineError::Manifest(format!("{context}: \"generate\" needs a \"family\""))
                })?
                .to_string();
            GraphSource::Generated {
                family,
                nodes: field_u64(generate, "nodes", &context)?.unwrap_or(0) as usize,
                edges: field_u64(generate, "edges", &context)?.ok_or_else(|| {
                    EngineError::Manifest(format!("{context}: \"generate\" needs \"edges\""))
                })? as usize,
                gamma: field_f64(generate, "gamma", &context)?.unwrap_or(2.5),
                seed: field_u64(generate, "seed", &context)?.unwrap_or(1),
            }
        }
        (None, None) => {
            return Err(EngineError::Manifest(format!(
                "{context}: needs either \"input\" (edge-list file) or \"generate\""
            )))
        }
    };

    let algorithm = match (value.get("algorithm"), value.get("algo")) {
        (Some(_), Some(_)) => {
            return Err(EngineError::Manifest(format!(
                "{context}: \"algorithm\" and \"algo\" are the same key; give only one"
            )))
        }
        (Some(v), None) | (None, Some(v)) => ChainSpec::from_json(v)?,
        (None, None) => ChainSpec::new("par-global-es"),
    };

    let mut spec = JobSpec::new(name, source, algorithm);
    if let Some(supersteps) = field_u64(value, "supersteps", &context)? {
        spec.supersteps = supersteps;
    }
    if let Some(thinning) = field_u64(value, "thinning", &context)? {
        spec.thinning = thinning;
    }
    if let Some(seed) = field_u64(value, "seed", &context)? {
        spec.seed = seed;
    }
    if let Some(threads) = field_u64(value, "threads", &context)? {
        spec.threads = Some(threads as usize);
    }
    // Job-level shorthands for the chain's common parameters (also the
    // pre-registry spelling, so older manifests keep loading).
    if let Some(p) = field_f64(value, "loop_probability", &context)? {
        if !(0.0..1.0).contains(&p) {
            return Err(EngineError::Manifest(format!(
                "{context}: \"loop_probability\" must lie in [0, 1)"
            )));
        }
        if spec.algorithm.param(PARAM_LOOP_PROBABILITY).is_some() {
            return Err(EngineError::Manifest(format!(
                "{context}: \"loop_probability\" and the chain parameter \
                 {PARAM_LOOP_PROBABILITY:?} are the same knob; give only one"
            )));
        }
        spec = spec.loop_probability(p);
    }
    if let Some(v) = value.get("prefetch") {
        let enabled = v.as_bool().ok_or_else(|| {
            EngineError::Manifest(format!("{context}: \"prefetch\" must be a boolean"))
        })?;
        if spec.algorithm.param(PARAM_PREFETCH).is_some() {
            return Err(EngineError::Manifest(format!(
                "{context}: \"prefetch\" and the chain parameter {PARAM_PREFETCH:?} are the \
                 same knob; give only one"
            )));
        }
        spec = spec.prefetch(enabled);
    }
    // Resolve the chain against the registry now, so bad names and
    // parameters fail at parse time with a readable message, not mid-batch.
    registry.validate(&spec.algorithm)?;
    if let Some(every) = field_u64(value, "checkpoint_every", &context)? {
        let dir = checkpoint_dir.ok_or_else(|| {
            EngineError::Manifest(format!(
                "{context}: \"checkpoint_every\" needs a top-level \"checkpoint_dir\""
            ))
        })?;
        spec.checkpoint_every = Some(every);
        spec.checkpoint_dir = Some(dir.to_path_buf());
    }
    Ok(spec)
}

impl Manifest {
    /// Parse a manifest from JSON text, validating chains against the
    /// [`default_registry`].
    pub fn parse(text: &str) -> Result<Self, EngineError> {
        Self::parse_with(default_registry(), text)
    }

    /// Like [`Manifest::parse`], validating chains against `registry` — the
    /// manifest counterpart of [`run_job_with`](crate::run_job_with) /
    /// [`WorkerPool::run_with`](crate::WorkerPool::run_with) for users who
    /// registered chains of their own.
    pub fn parse_with(registry: &ChainRegistry, text: &str) -> Result<Self, EngineError> {
        let root = serde_json::from_str(text)
            .map_err(|e| EngineError::Manifest(format!("invalid JSON: {e}")))?;
        if root.as_object().is_none() {
            return Err(EngineError::Manifest("top level must be an object".to_string()));
        }
        let workers = field_u64(&root, "workers", "manifest")?.unwrap_or(0) as usize;
        let output_dir =
            PathBuf::from(field_str(&root, "output_dir", "manifest")?.unwrap_or("samples"));
        let checkpoint_dir = field_str(&root, "checkpoint_dir", "manifest")?.map(PathBuf::from);

        let jobs_value = root
            .get("jobs")
            .ok_or_else(|| EngineError::Manifest("manifest needs a \"jobs\" array".to_string()))?;
        let jobs_array = jobs_value
            .as_array()
            .ok_or_else(|| EngineError::Manifest("\"jobs\" must be an array".to_string()))?;
        if jobs_array.is_empty() {
            return Err(EngineError::Manifest("\"jobs\" must not be empty".to_string()));
        }
        let jobs = jobs_array
            .iter()
            .enumerate()
            .map(|(i, v)| parse_job(registry, v, i, checkpoint_dir.as_deref()))
            .collect::<Result<Vec<_>, _>>()?;

        // Job names key the sample and checkpoint file paths; duplicates
        // would silently overwrite each other's output.
        let mut seen = std::collections::HashSet::new();
        for job in &jobs {
            if !seen.insert(job.name.as_str()) {
                return Err(EngineError::Manifest(format!(
                    "duplicate job name {:?}: sample/checkpoint files would collide",
                    job.name
                )));
            }
        }

        Ok(Self { workers, output_dir, checkpoint_dir, jobs })
    }

    /// Read and parse a manifest file (default registry).
    pub fn from_file(path: impl AsRef<Path>) -> Result<Self, EngineError> {
        Self::from_file_with(default_registry(), path)
    }

    /// Read and parse a manifest file, validating chains against `registry`.
    pub fn from_file_with(
        registry: &ChainRegistry,
        path: impl AsRef<Path>,
    ) -> Result<Self, EngineError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| EngineError::Manifest(format!("cannot read {}: {e}", path.display())))?;
        Self::parse_with(registry, &text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesmc_core::ChainError;

    const FULL: &str = r#"{
        "workers": 2,
        "output_dir": "out",
        "checkpoint_dir": "ckpt",
        "jobs": [
            {
                "name": "file-job",
                "input": "graph.txt",
                "algo": "seq-es",
                "supersteps": 12,
                "thinning": 3,
                "seed": 9,
                "threads": 2,
                "loop_probability": 0.05,
                "checkpoint_every": 6
            },
            {
                "generate": { "family": "pld", "edges": 5000, "gamma": 2.2 },
                "supersteps": 7
            }
        ]
    }"#;

    #[test]
    fn parses_a_full_manifest() {
        let manifest = Manifest::parse(FULL).unwrap();
        assert_eq!(manifest.workers, 2);
        assert_eq!(manifest.output_dir, PathBuf::from("out"));
        assert_eq!(manifest.jobs.len(), 2);

        let job = &manifest.jobs[0];
        assert_eq!(job.name, "file-job");
        assert!(matches!(&job.source, GraphSource::File(p) if p == &PathBuf::from("graph.txt")));
        // The legacy "algo" + "loop_probability" keys land in the chain spec.
        assert_eq!(job.algorithm.to_string(), "seq-es?pl=0.05");
        assert_eq!(job.supersteps, 12);
        assert_eq!(job.thinning, 3);
        assert_eq!(job.seed, 9);
        assert_eq!(job.threads, Some(2));
        assert!((job.config().unwrap().loop_probability - 0.05).abs() < 1e-12);
        assert_eq!(job.checkpoint_every, Some(6));
        assert_eq!(job.checkpoint_dir, Some(PathBuf::from("ckpt")));

        let generated = &manifest.jobs[1];
        assert_eq!(generated.name, "job1");
        assert_eq!(generated.algorithm, ChainSpec::new("par-global-es"));
        assert_eq!(generated.supersteps, 7);
        assert_eq!(generated.thinning, 0);
        assert!(matches!(
            &generated.source,
            GraphSource::Generated { family, edges: 5000, .. } if family == "pld"
        ));
    }

    #[test]
    fn algorithm_key_takes_chain_spec_strings_and_objects() {
        let manifest = Manifest::parse(
            r#"{"jobs": [
                {"name": "a", "input": "x", "algorithm": "global-curveball"},
                {"name": "b", "input": "x", "algorithm": "par-global-es?pl=0.001&prefetch=off"},
                {"name": "c", "input": "x",
                 "algorithm": {"name": "seq-global-es", "pl": 0.25}},
                {"name": "d", "input": "x", "algo": "adjacency-es"},
                {"name": "e", "input": "x", "algorithm": "seq-es", "prefetch": false}
            ]}"#,
        )
        .unwrap();
        assert_eq!(manifest.jobs[0].algorithm, ChainSpec::new("global-curveball"));
        assert_eq!(manifest.jobs[1].algorithm.to_string(), "par-global-es?pl=0.001&prefetch=false");
        assert!((manifest.jobs[2].config().unwrap().loop_probability - 0.25).abs() < 1e-12);
        assert_eq!(manifest.jobs[3].algorithm, ChainSpec::new("adjacency-es"));
        assert!(!manifest.jobs[4].config().unwrap().prefetch, "per-job prefetch must be plumbed");
    }

    fn expect_manifest_error(text: &str, needle: &str) {
        match Manifest::parse(text) {
            Err(EngineError::Manifest(msg)) => {
                assert!(msg.contains(needle), "message {msg:?} lacks {needle:?}")
            }
            Err(EngineError::Chain(e)) if needle == "chain" => {
                let _ = e;
            }
            other => panic!("expected manifest error containing {needle:?}, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_manifests() {
        expect_manifest_error("nonsense", "invalid JSON");
        expect_manifest_error("[1, 2]", "top level");
        expect_manifest_error("{}", "jobs");
        expect_manifest_error(r#"{"jobs": []}"#, "empty");
        expect_manifest_error(r#"{"jobs": [{}]}"#, "input");
        expect_manifest_error(
            r#"{"jobs": [{"input": "a", "generate": {"family": "gnp", "edges": 1}}]}"#,
            "mutually exclusive",
        );
        expect_manifest_error(r#"{"jobs": [{"input": "a", "supersteps": "ten"}]}"#, "integer");
        expect_manifest_error(
            r#"{"jobs": [{"input": "a", "checkpoint_every": 5}]}"#,
            "checkpoint_dir",
        );
        expect_manifest_error(r#"{"jobs": [{"input": "a", "loop_probability": 1.5}]}"#, "[0, 1)");
        expect_manifest_error(r#"{"jobs": [{"generate": {"family": "pld"}}]}"#, "edges");
        expect_manifest_error(
            r#"{"jobs": [{"input": "a", "algo": "x", "algorithm": "y"}]}"#,
            "only one",
        );
        expect_manifest_error(
            r#"{"jobs": [{"input": "a", "algorithm": "seq-es?pl=0.1", "loop_probability": 0.2}]}"#,
            "same knob",
        );
        expect_manifest_error(r#"{"jobs": [{"input": "a", "prefetch": "yes"}]}"#, "boolean");
    }

    #[test]
    fn chain_errors_surface_at_parse_time() {
        // Unknown chain names, unknown parameters and bad parameter values
        // fail while the manifest is parsed, with the registry's messages.
        let unknown = Manifest::parse(r#"{"jobs": [{"input": "a", "algo": "quantum"}]}"#);
        match unknown {
            Err(EngineError::Chain(ChainError::UnknownChain { name, known })) => {
                assert_eq!(name, "quantum");
                assert!(known.contains(&"global-curveball".to_string()));
            }
            other => panic!("expected UnknownChain, got {other:?}"),
        }
        assert!(matches!(
            Manifest::parse(r#"{"jobs": [{"input": "a", "algorithm": "seq-es?bogus=1"}]}"#),
            Err(EngineError::Chain(ChainError::UnknownParam { .. }))
        ));
        assert!(matches!(
            Manifest::parse(r#"{"jobs": [{"input": "a", "algorithm": "seq-es?pl=7"}]}"#),
            Err(EngineError::Chain(ChainError::BadParam { .. }))
        ));
    }

    #[test]
    fn rejects_duplicate_job_names() {
        expect_manifest_error(
            r#"{"jobs": [{"name": "a", "input": "x"}, {"name": "a", "input": "y"}]}"#,
            "duplicate job name",
        );
        // An explicit name colliding with another job's default name.
        expect_manifest_error(
            r#"{"jobs": [{"name": "job1", "input": "x"}, {"input": "y"}]}"#,
            "duplicate job name",
        );
    }

    #[test]
    fn defaults_are_sensible() {
        let manifest = Manifest::parse(r#"{"jobs": [{"input": "g.txt"}]}"#).unwrap();
        assert_eq!(manifest.workers, 0);
        assert_eq!(manifest.output_dir, PathBuf::from("samples"));
        assert!(manifest.checkpoint_dir.is_none());
        let job = &manifest.jobs[0];
        assert_eq!(job.supersteps, 20);
        assert_eq!(job.thinning, 0);
        assert_eq!(job.seed, 1);
        assert_eq!(job.threads, None);
    }
}
