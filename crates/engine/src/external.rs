//! Out-of-core job runner: drive a store-aware chain over a disk-backed
//! edge store in bounded memory.
//!
//! [`run_job`](crate::run_job) loads the whole graph onto the heap; this
//! module is its sibling for graphs that do not fit.  The chain runs over an
//! [`ExternalEdgeStore`] (a bounded chunk cache over a `GESMCEL1` scratch
//! file), samples stream straight from the store into binary edge-list files,
//! and checkpoints stream through [`CheckpointWriter`] — no step ever
//! materialises the edge array.  Peak memory is the store's budget plus
//! O(num_nodes) for the degree-invariant check.
//!
//! The chain is resolved through the [`ChainRegistry`]'s store-aware factory
//! surface ([`ChainRegistry::build_store`]); the runner has no chain-specific
//! code.  Because store-backed chains are bit-identical to their in-memory
//! twins at the same seed (the `gesmc-exmem` invariant), an out-of-core run
//! emits byte-for-byte the samples an unconstrained run would.

use crate::checkpoint::{Checkpoint, CheckpointReader, CheckpointWriter};
use crate::error::EngineError;
use crate::pool::JobReport;
use gesmc_core::{ChainRegistry, ChainSpec, StoreSwitching};
use gesmc_exmem::ExternalEdgeStore;
use gesmc_graph::io::BinaryEdgeListWriter;
use gesmc_graph::Edge;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Where an out-of-core job puts its thinned samples.
#[derive(Debug, Clone)]
pub enum ExternalOutput {
    /// Drop samples after the degree-invariant check (dry runs, benchmarks).
    Discard,
    /// Write each sample as a binary `GESMCEL1` file
    /// `{job}-s{superstep:06}.el` under this directory.
    Directory(PathBuf),
    /// Write every emitted sample to this exact path (each emit replaces the
    /// previous one), so after the run the file holds the final state.  The
    /// natural choice for `randomize --out`.
    FinalFile(PathBuf),
}

/// An out-of-core randomization job over a `GESMCEL1` input file.
///
/// The input is stream-validated into a private scratch copy (the input file
/// itself is never written), randomized in place under `memory_budget` bytes
/// of cached chunks, and sampled/checkpointed by streaming.
#[derive(Debug, Clone)]
pub struct ExternalJob {
    /// Job name (sample file prefix, checkpoint name, report label).
    pub name: String,
    /// Path of the binary `GESMCEL1` input.
    pub input: PathBuf,
    /// Chain to run; must be store-capable (e.g. `seq-es-ext`).
    pub algorithm: ChainSpec,
    /// Superstep target.
    pub supersteps: u64,
    /// Thinning interval: emit every `k`-th superstep (0 = final state only).
    pub thinning: u64,
    /// PRNG seed.
    pub seed: u64,
    /// Byte budget for the store's chunk cache.
    pub memory_budget: usize,
    /// Scratch file path; defaults to the input path with a `scratch.el`
    /// extension.  Removed on successful completion.
    pub scratch: Option<PathBuf>,
    /// Sample destination.
    pub output: ExternalOutput,
    /// Checkpoint cadence (requires `checkpoint_dir`).
    pub checkpoint_every: Option<u64>,
    /// Directory receiving `{name}.ckpt`, written via [`CheckpointWriter`].
    pub checkpoint_dir: Option<PathBuf>,
}

impl ExternalJob {
    /// A job with the same defaults as [`JobSpec`](crate::JobSpec): 20
    /// supersteps, thinning 0, seed 1, no checkpoints, samples discarded.
    pub fn new(
        name: impl Into<String>,
        input: impl Into<PathBuf>,
        algorithm: ChainSpec,
        memory_budget: usize,
    ) -> Self {
        Self {
            name: name.into(),
            input: input.into(),
            algorithm,
            supersteps: 20,
            thinning: 0,
            seed: 1,
            memory_budget,
            scratch: None,
            output: ExternalOutput::Discard,
            checkpoint_every: None,
            checkpoint_dir: None,
        }
    }

    /// Set the superstep target.
    pub fn supersteps(mut self, supersteps: u64) -> Self {
        self.supersteps = supersteps;
        self
    }

    /// Set the thinning interval.
    pub fn thinning(mut self, thinning: u64) -> Self {
        self.thinning = thinning;
        self
    }

    /// Set the PRNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the scratch file path.
    pub fn scratch(mut self, path: impl Into<PathBuf>) -> Self {
        self.scratch = Some(path.into());
        self
    }

    /// Set the sample destination.
    pub fn output(mut self, output: ExternalOutput) -> Self {
        self.output = output;
        self
    }

    /// Enable periodic checkpoints every `every` supersteps into `dir`.
    pub fn checkpoint(mut self, every: u64, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_every = Some(every);
        self.checkpoint_dir = Some(dir.into());
        self
    }

    fn scratch_path(&self) -> PathBuf {
        self.scratch.clone().unwrap_or_else(|| self.input.with_extension("scratch.el"))
    }
}

/// Run `job` from its input file: validate + copy into the scratch store,
/// build the chain through the registry's store-aware factory, and drive it
/// to completion in bounded memory.
pub fn run_external_job(
    registry: &ChainRegistry,
    job: &ExternalJob,
) -> Result<JobReport, EngineError> {
    let start = Instant::now();
    let scratch = job.scratch_path();
    let mut create_span = gesmc_obs::trace::child_of_current("store_create");
    let store =
        ExternalEdgeStore::create(&job.input, &scratch, job.memory_budget).map_err(|e| {
            if let Some(span) = create_span.as_mut() {
                span.set_error();
            }
            EngineError::Graph(format!("{}: {e}", job.input.display()))
        })?;
    if let Some(span) = create_span.as_mut() {
        span.annotate("input", job.input.display().to_string());
        span.annotate("budget_bytes", job.memory_budget.to_string());
        span.annotate("max_chunks", store.max_chunks().to_string());
    }
    drop(create_span);
    let chain = registry.build_store(&job.algorithm, Box::new(store), job.seed)?;
    drive(job, &scratch, chain, &job.algorithm, 0, 0, start)
}

/// Resume `job` from a checkpoint file, streaming the checkpointed edges
/// into a fresh scratch store without materialising them.
///
/// The checkpoint's FNV-1a checksum sits at the end of the file, so edges
/// stream out *before* it can be verified; the half-built scratch is only
/// published (and the chain only built) once the reader's
/// [`finish`](CheckpointReader::finish) accepts the file.  On a checksum
/// mismatch nothing is left behind.
///
/// The chain and its parameters come from the checkpoint (exactly like
/// [`run_job`](crate::run_job)'s resume path); `job.algorithm` is ignored.
pub fn resume_external_job(
    registry: &ChainRegistry,
    job: &ExternalJob,
    checkpoint: impl AsRef<Path>,
) -> Result<JobReport, EngineError> {
    let start = Instant::now();
    let scratch = job.scratch_path();
    let mut restore_span = gesmc_obs::trace::child_of_current("checkpoint_restore");
    let mut reader = CheckpointReader::open(checkpoint)?;
    let num_nodes = reader.meta().snapshot.num_nodes as u64;
    let mut writer = BinaryEdgeListWriter::create(&scratch, num_nodes)
        .map_err(|e| EngineError::Graph(format!("{}: {e}", scratch.display())))?;
    for _ in 0..reader.num_edges() {
        let edge = reader.next_edge()?;
        writer
            .push(edge)
            .map_err(|e| EngineError::Checkpoint(format!("invalid checkpoint edge: {e}")))?;
    }
    // Verify the trailing checksum BEFORE publishing the scratch file: `?`
    // here drops the unfinished writer, which unlinks its temp file.
    let meta = reader.finish().map_err(|e| {
        if let Some(span) = restore_span.as_mut() {
            span.set_error();
        }
        e
    })?;
    writer.finish().map_err(|e| EngineError::Graph(format!("{}: {e}", scratch.display())))?;
    if let Some(span) = restore_span.as_mut() {
        span.annotate("resumed_from", meta.snapshot.supersteps_done.to_string());
    }
    drop(restore_span);

    let spec = meta.chain_spec();
    let store = ExternalEdgeStore::adopt(&scratch, job.memory_budget)
        .map_err(|e| EngineError::Graph(format!("{}: {e}", scratch.display())))?;
    let mut chain =
        registry.build_store_with_config(&spec, Box::new(store), meta.snapshot.config())?;
    chain.restore_meta(&meta.snapshot)?;
    drive(job, &scratch, chain, &spec, meta.snapshot.supersteps_done, meta.samples_emitted, start)
}

/// The superstep loop shared by fresh and resumed runs.
fn drive(
    job: &ExternalJob,
    scratch: &Path,
    mut chain: Box<dyn StoreSwitching + Send>,
    algorithm_spec: &ChainSpec,
    resumed_from: u64,
    mut samples_emitted: u64,
    start: Instant,
) -> Result<JobReport, EngineError> {
    // Reference degree sequence for the per-sample invariant check: the one
    // O(num_nodes) allocation this runner makes.
    let num_nodes = chain.store_num_nodes();
    let mut degrees = vec![0u64; num_nodes];
    chain.stream_edges(&mut |edge| {
        degrees[edge.u() as usize] += 1;
        degrees[edge.v() as usize] += 1;
    });

    // Same meters as the in-memory driver, so out-of-core supersteps land in
    // the same histograms and dashboards.
    let superstep_hist = gesmc_obs::histogram_with(
        "gesmc_superstep_duration_seconds",
        "Wall time of one Markov-chain superstep.",
        &[("chain", chain.name())],
    );
    let samples_counter = gesmc_obs::counter(
        "gesmc_samples_emitted_total",
        "Thinned samples emitted to sinks by the engine.",
    );
    let capture_hist = gesmc_obs::histogram(
        "gesmc_checkpoint_capture_duration_seconds",
        "Wall time to capture (and optionally write) one engine checkpoint.",
    );

    let mut requested = 0u64;
    let mut legal = 0u64;
    let mut checkpoints = 0u64;

    // One trace span over the whole loop, annotated with the store's chunk
    // traffic on completion — the per-superstep histogram keeps fine timing.
    let mut loop_span = gesmc_obs::trace::child_of_current("supersteps");
    if let Some(span) = loop_span.as_mut() {
        span.annotate("job", job.name.clone());
        span.annotate("chain", chain.name());
        span.annotate("supersteps", job.supersteps.saturating_sub(resumed_from).to_string());
        span.annotate("budget_bytes", job.memory_budget.to_string());
    }
    let io_before = chain.store_io_stats();
    let loop_result = (|| -> Result<(), EngineError> {
        for step in resumed_from + 1..=job.supersteps {
            let stats = gesmc_obs::span!(superstep_hist, { chain.superstep() });
            requested += stats.requested as u64;
            legal += stats.legal as u64;

            let emit =
                if job.thinning == 0 { step == job.supersteps } else { step % job.thinning == 0 };
            if emit {
                let out = match &job.output {
                    ExternalOutput::Discard => None,
                    ExternalOutput::Directory(dir) => {
                        Some(dir.join(format!("{}-s{step:06}.el", job.name)))
                    }
                    ExternalOutput::FinalFile(path) => Some(path.clone()),
                };
                emit_sample(chain.as_mut(), out.as_deref(), &degrees, &job.name, step)?;
                samples_emitted += 1;
                samples_counter.inc();
            }

            let due = job
                .checkpoint_every
                .is_some_and(|every| every > 0 && step % every == 0 && step < job.supersteps);
            if due {
                if let Some(dir) = &job.checkpoint_dir {
                    let mut ckpt_span = gesmc_obs::trace::child_of_current("checkpoint");
                    if let Some(span) = ckpt_span.as_mut() {
                        span.annotate("superstep", step.to_string());
                        span.annotate("edges", chain.num_edges().to_string());
                    }
                    let capture_timer = gesmc_obs::Timer::start(&capture_hist);
                    let meta = Checkpoint {
                        job_name: job.name.clone(),
                        snapshot: chain.snapshot_meta(),
                        algorithm_spec: Some(algorithm_spec.clone()),
                        total_supersteps: job.supersteps,
                        thinning: job.thinning,
                        samples_emitted,
                    };
                    let path = dir.join(format!("{}.ckpt", job.name));
                    let mut writer =
                        CheckpointWriter::create(&path, &meta, chain.num_edges() as u64)?;
                    let mut push_err = None;
                    chain.stream_edges(&mut |edge| {
                        if push_err.is_none() {
                            push_err = writer.push_edge(edge).err();
                        }
                    });
                    if let Some(e) = push_err {
                        return Err(e);
                    }
                    writer.finish()?;
                    drop(capture_timer);
                    checkpoints += 1;
                }
            }
        }
        Ok(())
    })();
    if let Some(span) = loop_span.as_mut() {
        let io = chain.store_io_stats();
        span.annotate(
            "chunks_loaded",
            io.chunks_loaded.saturating_sub(io_before.chunks_loaded).to_string(),
        );
        span.annotate(
            "chunks_written",
            io.chunks_written.saturating_sub(io_before.chunks_written).to_string(),
        );
        if loop_result.is_err() {
            span.set_error();
        }
    }
    drop(loop_span);
    loop_result?;

    chain.flush_store()?;
    let report = JobReport {
        job: job.name.clone(),
        algorithm: chain.name().to_string(),
        resumed_from,
        supersteps: job.supersteps,
        samples: samples_emitted,
        requested,
        legal,
        checkpoints,
        duration: start.elapsed(),
    };
    gesmc_obs::debug!(
        target: "gesmc_engine",
        id: job.name,
        "external job finished: chain={} budget={}B resumed_from={} supersteps={} samples={} elapsed={:.3}s",
        report.algorithm,
        job.memory_budget,
        report.resumed_from,
        report.supersteps,
        report.samples,
        report.duration.as_secs_f64()
    );
    // The scratch has served its purpose; every sample already streamed to
    // its destination.  (Error paths keep it for post-mortems.)
    drop(chain);
    let _ = std::fs::remove_file(scratch);
    Ok(report)
}

/// Stream the current store contents to `out` (when given) while checking
/// the degree-sequence invariant against `reference`.
fn emit_sample(
    chain: &mut (dyn StoreSwitching + Send),
    out: Option<&Path>,
    reference: &[u64],
    job: &str,
    step: u64,
) -> Result<(), EngineError> {
    let mut counts = vec![0u64; reference.len()];
    let mut out_of_range = false;
    let count = |edge: Edge, counts: &mut [u64], flag: &mut bool| {
        for node in [edge.u(), edge.v()] {
            match counts.get_mut(node as usize) {
                Some(c) => *c += 1,
                None => *flag = true,
            }
        }
    };
    match out {
        Some(path) => {
            let mut writer = BinaryEdgeListWriter::create(path, reference.len() as u64)
                .map_err(|e| EngineError::Graph(format!("{}: {e}", path.display())))?;
            let mut push_err = None;
            chain.stream_edges(&mut |edge| {
                count(edge, &mut counts, &mut out_of_range);
                if push_err.is_none() {
                    push_err = writer.push(edge).err();
                }
            });
            if let Some(e) = push_err {
                return Err(EngineError::Graph(format!("{}: {e}", path.display())));
            }
            writer.finish().map_err(|e| EngineError::Graph(format!("{}: {e}", path.display())))?;
        }
        None => chain.stream_edges(&mut |edge| count(edge, &mut counts, &mut out_of_range)),
    }
    if out_of_range || counts != reference {
        return Err(EngineError::DegreesViolated { job: job.to_string(), superstep: step });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::GraphSource;
    use crate::pool::run_job_with;
    use crate::sink::MemorySink;
    use crate::{default_registry, JobSpec};
    use gesmc_graph::gen::gnp;
    use gesmc_graph::io::{read_edge_list_binary_file, write_edge_list_binary_file};
    use gesmc_graph::EdgeListGraph;
    use gesmc_randx::rng_from_seed;

    fn setup(dir_name: &str, seed: u64) -> (PathBuf, EdgeListGraph) {
        let dir = std::env::temp_dir().join(dir_name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let graph = gnp(&mut rng_from_seed(seed), 120, 0.07);
        write_edge_list_binary_file(dir.join("input.el"), &graph).unwrap();
        (dir, graph)
    }

    /// The in-memory engine's samples for the same chain/seed, for parity.
    fn in_memory_samples(
        graph: &EdgeListGraph,
        supersteps: u64,
        thinning: u64,
    ) -> Vec<EdgeListGraph> {
        let spec = JobSpec::new(
            "control",
            GraphSource::InMemory(graph.clone()),
            ChainSpec::parse("seq-es-ext?batch=64").unwrap(),
        )
        .supersteps(supersteps)
        .thinning(thinning)
        .seed(7);
        let mut sink = MemorySink::new();
        run_job_with(default_registry(), &spec, &mut sink, None).unwrap();
        let store = sink.store();
        let samples = store.lock().unwrap();
        samples.iter().map(|(_, g)| g.clone()).collect()
    }

    #[test]
    fn external_run_matches_the_in_memory_engine_sample_for_sample() {
        let (dir, graph) = setup("gesmc-external-run-test", 11);
        let job = ExternalJob::new(
            "xjob",
            dir.join("input.el"),
            ChainSpec::parse("seq-es-ext?batch=64").unwrap(),
            1, // 1-byte budget: a single cached chunk, maximal eviction traffic
        )
        .supersteps(6)
        .thinning(2)
        .seed(7)
        .output(ExternalOutput::Directory(dir.clone()));

        let report = run_external_job(default_registry(), &job).unwrap();
        assert_eq!(report.samples, 3);
        assert_eq!(report.algorithm, "SeqESExt");
        assert!(!dir.join("input.scratch.el").exists(), "scratch removed on success");

        let control = in_memory_samples(&graph, 6, 2);
        for (i, step) in [2u64, 4, 6].iter().enumerate() {
            let sample =
                read_edge_list_binary_file(dir.join(format!("xjob-s{step:06}.el"))).unwrap();
            assert_eq!(sample.edges(), control[i].edges(), "superstep {step}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_to_an_uninterrupted_run() {
        let (dir, _) = setup("gesmc-external-resume-test", 12);
        let algo = ChainSpec::parse("seq-es-ext?batch=32").unwrap();

        // Uninterrupted control.
        let full = ExternalJob::new("job", dir.join("input.el"), algo.clone(), 4096)
            .supersteps(8)
            .seed(3)
            .scratch(dir.join("full.scratch.el"))
            .output(ExternalOutput::FinalFile(dir.join("full.el")));
        run_external_job(default_registry(), &full).unwrap();

        // A checkpointing run leaves its superstep-4 capture behind; resuming
        // from that mid-run file must land exactly where the control did.
        let first = ExternalJob::new("job", dir.join("input.el"), algo.clone(), 4096)
            .supersteps(8)
            .seed(3)
            .scratch(dir.join("part.scratch.el"))
            .checkpoint(4, &dir);
        run_external_job(default_registry(), &first).unwrap();
        let resumed = ExternalJob::new("job", dir.join("input.el"), algo, 4096)
            .supersteps(8)
            .seed(3)
            .scratch(dir.join("resume.scratch.el"))
            .output(ExternalOutput::FinalFile(dir.join("resumed.el")));
        let report =
            resume_external_job(default_registry(), &resumed, dir.join("job.ckpt")).unwrap();
        assert_eq!(report.resumed_from, 4);

        let full_bytes = std::fs::read(dir.join("full.el")).unwrap();
        let resumed_bytes = std::fs::read(dir.join("resumed.el")).unwrap();
        assert_eq!(full_bytes, resumed_bytes, "resume must be bit-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoints_leave_no_scratch_behind() {
        let (dir, _) = setup("gesmc-external-corrupt-test", 13);
        let algo = ChainSpec::new("seq-es-ext");
        let job = ExternalJob::new("job", dir.join("input.el"), algo.clone(), 4096)
            .supersteps(6)
            .seed(5)
            .scratch(dir.join("first.scratch.el"))
            .checkpoint(3, &dir);
        run_external_job(default_registry(), &job).unwrap();

        // Flip a bit inside the checkpoint's edge payload.
        let ckpt_path = dir.join("job.ckpt");
        let mut bytes = std::fs::read(&ckpt_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&ckpt_path, &bytes).unwrap();

        let resume = ExternalJob::new("job", dir.join("input.el"), algo, 4096)
            .supersteps(6)
            .seed(5)
            .scratch(dir.join("resume.scratch.el"));
        let err = resume_external_job(default_registry(), &resume, &ckpt_path).unwrap_err();
        assert!(matches!(err, EngineError::Checkpoint(_)), "got {err:?}");
        assert!(
            !dir.join("resume.scratch.el").exists(),
            "corrupt checkpoint must not publish a scratch store"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_store_chains_are_rejected_with_the_capable_list() {
        let (dir, _) = setup("gesmc-external-reject-test", 14);
        let job = ExternalJob::new("job", dir.join("input.el"), ChainSpec::new("seq-es"), 4096);
        let err = run_external_job(default_registry(), &job).unwrap_err();
        match err {
            EngineError::Chain(gesmc_core::ChainError::BadParam { param, message, .. }) => {
                assert_eq!(param, "mmap");
                assert!(message.contains("seq-es-ext"), "{message}");
            }
            other => panic!("expected BadParam, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
