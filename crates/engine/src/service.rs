//! The long-running service pool: non-blocking submission, job handles,
//! bounded admission, graceful shutdown.
//!
//! [`WorkerPool`](crate::WorkerPool) is a *batch* API: it consumes a closed
//! [`JobQueue`](crate::JobQueue) and blocks until every job finished.  A
//! network service needs the opposite shape — jobs arrive one at a time,
//! callers must not block the submitter, load must be shed before it piles
//! up, and ctrl-C must drain cleanly.  [`ServicePool`] provides that shape on
//! the same execution path ([`run_job_controlled`](crate::run_job_controlled)
//! with per-job thread budgets):
//!
//! * [`ServicePool::submit`] enqueues a job and returns a [`JobHandle`]
//!   immediately; the handle polls status/progress, waits for completion, or
//!   cancels;
//! * admission is **bounded**: once `max_pending` jobs wait in the queue,
//!   further submissions fail fast with [`SubmitError::Saturated`] (the
//!   server layer turns this into `429 Retry-After`) instead of growing an
//!   unbounded backlog;
//! * [`ServicePool::shutdown`] is the graceful path: new submissions are
//!   rejected with [`SubmitError::ShuttingDown`], already-accepted jobs are
//!   drained to completion, and the worker threads are joined.
//!   [`ServicePool::shutdown_now`] additionally cancels queued and running
//!   jobs (they stop on their next superstep boundary).

use crate::control::{JobControl, JobProgress};
use crate::error::EngineError;
use crate::pool::{run_claimed, JobReport};
use crate::queue::QueuedJob;
use crate::{default_registry, ChainRegistry};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The pool is shutting down; no new jobs are accepted.
    ShuttingDown,
    /// The admission queue is full.  Callers should retry later (or shed the
    /// request upstream); `pending` is the queue depth at rejection time.
    Saturated {
        /// Jobs waiting in the queue when the submission was rejected.
        pending: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::ShuttingDown => write!(f, "pool is shutting down"),
            SubmitError::Saturated { pending } => {
                write!(f, "admission queue is full ({pending} jobs pending)")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Terminal or in-flight state of a submitted job.
#[derive(Debug, Clone)]
pub enum JobState {
    /// Waiting in the admission queue.
    Queued,
    /// Claimed by a worker and running.
    Running,
    /// Finished successfully.
    Done(JobReport),
    /// Failed; the engine error, rendered.
    Failed(String),
    /// Cancelled after the given superstep (samples emitted before the
    /// cancel were delivered to the sink).
    Cancelled(u64),
}

impl JobState {
    /// Whether the state is terminal (`Done`, `Failed`, or `Cancelled`).
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done(_) | JobState::Failed(_) | JobState::Cancelled(_))
    }

    /// Short lowercase status label (`queued`, `running`, `done`, `failed`,
    /// `cancelled`).
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
            JobState::Cancelled(_) => "cancelled",
        }
    }
}

/// Per-job shared slot the worker publishes state transitions into.
struct JobSlot {
    state: Mutex<JobState>,
    done: Condvar,
}

/// A caller-side handle to one submitted job.
///
/// Cloneable and cheap; all methods are safe to call from any thread while
/// the job runs.
#[derive(Clone)]
pub struct JobHandle {
    name: String,
    control: Arc<JobControl>,
    slot: Arc<JobSlot>,
}

impl JobHandle {
    /// Name of the submitted job.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current state (cloned snapshot).
    pub fn state(&self) -> JobState {
        self.slot.state.lock().expect("job slot mutex poisoned").clone()
    }

    /// Driver-recorded progress (last completed superstep / target).
    pub fn progress(&self) -> JobProgress {
        self.control.progress()
    }

    /// Ask the job to stop on its next superstep boundary.  Queued jobs are
    /// cancelled without running.
    pub fn cancel(&self) {
        self.control.request_cancel();
    }

    /// Whether the job reached a terminal state.
    pub fn is_finished(&self) -> bool {
        self.state().is_terminal()
    }

    /// A handle that is not connected to a live pool job, seeded with a
    /// fixed state and progress snapshot.
    ///
    /// Used to represent jobs restored from a persistent store after a
    /// restart: the job already reached `state` in a previous process, so
    /// the handle only needs to report it (and a plausible progress
    /// snapshot), never transition.  Terminal states behave exactly like a
    /// finished live handle (`wait` returns immediately).
    pub fn detached(name: impl Into<String>, state: JobState, superstep: u64, total: u64) -> Self {
        let control = Arc::new(JobControl::new());
        control.set_total(total);
        if superstep > 0 {
            control.record_start(superstep);
        }
        Self {
            name: name.into(),
            control,
            slot: Arc::new(JobSlot { state: Mutex::new(state), done: Condvar::new() }),
        }
    }

    /// Block until the job reaches a terminal state, returning it.
    pub fn wait(&self) -> JobState {
        let mut state = self.slot.state.lock().expect("job slot mutex poisoned");
        while !state.is_terminal() {
            state = self.slot.done.wait(state).expect("job slot mutex poisoned");
        }
        state.clone()
    }
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("name", &self.name)
            .field("state", &self.state().label())
            .finish()
    }
}

/// One queued unit: the job plus its shared control and state slot.
struct ServiceJob {
    job: QueuedJob,
    control: Arc<JobControl>,
    slot: Arc<JobSlot>,
}

struct ServiceInner {
    registry: &'static ChainRegistry,
    queue: Mutex<VecDeque<ServiceJob>>,
    work_available: Condvar,
    accepting: AtomicBool,
    max_pending: usize,
    running: AtomicUsize,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    supersteps: Arc<AtomicU64>,
}

/// A fixed set of worker threads draining an open, bounded submission queue.
///
/// See the [module docs](crate::service) for the full contract.  Dropping
/// the pool performs a graceful [`shutdown`](ServicePool::shutdown).
pub struct ServicePool {
    inner: Arc<ServiceInner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl ServicePool {
    /// Start `workers` threads (`0` = hardware parallelism) resolving chains
    /// against the [`default_registry`]; at most `max_pending` jobs may wait
    /// in the queue (`0` = unbounded).
    pub fn start(workers: usize, max_pending: usize) -> Self {
        Self::start_with(default_registry(), workers, max_pending)
    }

    /// Like [`ServicePool::start`] with a caller-provided registry (leak a
    /// custom registry with `Box::leak` to obtain the `'static` borrow the
    /// worker threads need).
    pub fn start_with(
        registry: &'static ChainRegistry,
        workers: usize,
        max_pending: usize,
    ) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            workers
        };
        let inner = Arc::new(ServiceInner {
            registry,
            queue: Mutex::new(VecDeque::new()),
            work_available: Condvar::new(),
            accepting: AtomicBool::new(true),
            max_pending,
            running: AtomicUsize::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            supersteps: Arc::new(AtomicU64::new(0)),
        });
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || Self::worker_loop(&inner))
            })
            .collect();
        Self { inner, workers: Mutex::new(handles) }
    }

    fn worker_loop(inner: &ServiceInner) {
        loop {
            let next = {
                let mut queue = inner.queue.lock().expect("service queue mutex poisoned");
                loop {
                    if let Some(job) = queue.pop_front() {
                        break Some(job);
                    }
                    if !inner.accepting.load(Ordering::Acquire) {
                        break None;
                    }
                    queue = inner.work_available.wait(queue).expect("service queue mutex poisoned");
                }
            };
            let Some(mut service_job) = next else {
                // Shutdown with an empty queue: wake siblings and exit.
                inner.work_available.notify_all();
                return;
            };

            Self::publish(&service_job.slot, JobState::Running);
            inner.running.fetch_add(1, Ordering::Release);
            // A panicking job (a generator assert, a poisoned sink) must
            // cost one Failed state, not this worker thread: without the
            // unwind boundary the slot would never publish (waiters hang
            // forever) and the pool would lose a worker for the process
            // lifetime.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_claimed(inner.registry, &mut service_job.job, &service_job.control)
            }));
            inner.running.fetch_sub(1, Ordering::Release);

            let state = match result {
                Ok(Ok(report)) => {
                    inner.completed.fetch_add(1, Ordering::Relaxed);
                    JobState::Done(report)
                }
                Ok(Err(EngineError::Cancelled { superstep, .. })) => {
                    inner.cancelled.fetch_add(1, Ordering::Relaxed);
                    JobState::Cancelled(superstep)
                }
                Ok(Err(e)) => {
                    inner.failed.fetch_add(1, Ordering::Relaxed);
                    JobState::Failed(e.to_string())
                }
                Err(panic) => {
                    inner.failed.fetch_add(1, Ordering::Relaxed);
                    let message = panic
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    JobState::Failed(format!("job panicked: {message}"))
                }
            };
            Self::publish(&service_job.slot, state);
        }
    }

    fn publish(slot: &JobSlot, state: JobState) {
        *slot.state.lock().expect("job slot mutex poisoned") = state;
        slot.done.notify_all();
    }

    /// Submit a job, returning its handle immediately.
    ///
    /// Fails with [`SubmitError::ShuttingDown`] after
    /// [`shutdown`](ServicePool::shutdown) began, and with
    /// [`SubmitError::Saturated`] when `max_pending` jobs already wait.
    pub fn submit(&self, job: QueuedJob) -> Result<JobHandle, SubmitError> {
        if !self.inner.accepting.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let control = Arc::new(JobControl::with_meter(Arc::clone(&self.inner.supersteps)));
        let slot = Arc::new(JobSlot { state: Mutex::new(JobState::Queued), done: Condvar::new() });
        let handle = JobHandle {
            name: job.spec.name.clone(),
            control: Arc::clone(&control),
            slot: Arc::clone(&slot),
        };
        {
            let mut queue = self.inner.queue.lock().expect("service queue mutex poisoned");
            // Re-check under the lock so a racing shutdown cannot strand the
            // job in the queue after the workers exited.
            if !self.inner.accepting.load(Ordering::Acquire) {
                return Err(SubmitError::ShuttingDown);
            }
            if self.inner.max_pending > 0 && queue.len() >= self.inner.max_pending {
                return Err(SubmitError::Saturated { pending: queue.len() });
            }
            queue.push_back(ServiceJob { job, control, slot });
        }
        self.inner.work_available.notify_one();
        Ok(handle)
    }

    /// Worker thread count.
    pub fn workers(&self) -> usize {
        self.workers.lock().expect("worker handles mutex poisoned").len()
    }

    /// Jobs waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.lock().expect("service queue mutex poisoned").len()
    }

    /// Jobs currently executing on workers.
    pub fn running(&self) -> usize {
        self.inner.running.load(Ordering::Acquire)
    }

    /// Whether submissions are still accepted.
    pub fn is_accepting(&self) -> bool {
        self.inner.accepting.load(Ordering::Acquire)
    }

    /// Lifetime counters: (completed, failed, cancelled) jobs.
    pub fn job_counts(&self) -> (u64, u64, u64) {
        (
            self.inner.completed.load(Ordering::Relaxed),
            self.inner.failed.load(Ordering::Relaxed),
            self.inner.cancelled.load(Ordering::Relaxed),
        )
    }

    /// Total supersteps completed across all jobs (live; the pool-level
    /// progress hook).
    pub fn supersteps_total(&self) -> u64 {
        self.inner.supersteps.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: reject new submissions, drain already-accepted
    /// jobs (queued and running) to completion, join the workers.
    /// Idempotent; concurrent calls join once.
    pub fn shutdown(&self) {
        self.inner.accepting.store(false, Ordering::Release);
        // Notify under the queue mutex: a worker between its accepting-flag
        // check and its wait holds that mutex, so the wakeup cannot be lost.
        {
            let _queue = self.inner.queue.lock().expect("service queue mutex poisoned");
            self.inner.work_available.notify_all();
        }
        let handles =
            std::mem::take(&mut *self.workers.lock().expect("worker handles mutex poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Hard shutdown: like [`shutdown`](ServicePool::shutdown), but queued
    /// jobs are cancelled without running and in-flight jobs are asked to
    /// stop on their next superstep boundary.
    pub fn shutdown_now(&self) {
        self.inner.accepting.store(false, Ordering::Release);
        // In-flight jobs hold clones of their controls, so cancelling the
        // queued jobs here plus the submitters' own handles covers
        // everything.  Notifying under the queue mutex prevents a lost
        // wakeup (see `shutdown`).
        {
            let mut queue = self.inner.queue.lock().expect("service queue mutex poisoned");
            for job in queue.drain(..) {
                self.inner.cancelled.fetch_add(1, Ordering::Relaxed);
                job.control.request_cancel();
                Self::publish(&job.slot, JobState::Cancelled(job.control.progress().superstep));
            }
            self.inner.work_available.notify_all();
        }
        let handles =
            std::mem::take(&mut *self.workers.lock().expect("worker handles mutex poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for ServicePool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{GraphSource, JobSpec};
    use crate::sink::{MemorySink, NullSink};
    use gesmc_core::ChainSpec;
    use gesmc_graph::gen::gnp;
    use gesmc_randx::rng_from_seed;

    fn spec(name: &str, supersteps: u64) -> JobSpec {
        let graph = gnp(&mut rng_from_seed(1), 60, 0.1);
        JobSpec::new(name, GraphSource::InMemory(graph), ChainSpec::new("seq-global-es"))
            .supersteps(supersteps)
            .thinning(2)
            .seed(7)
    }

    fn queued(name: &str, supersteps: u64) -> QueuedJob {
        QueuedJob::new(spec(name, supersteps), Box::new(NullSink::default()))
    }

    /// A gate that parks the worker inside the sink of a "blocker" job until
    /// released, so tests can deterministically occupy a worker.
    #[derive(Clone, Default)]
    struct Gate {
        state: Arc<(Mutex<bool>, Condvar)>,
    }

    impl Gate {
        fn new() -> Self {
            Self::default()
        }

        fn release(&self) {
            let (lock, cv) = &*self.state;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }

        fn wait_released(&self) {
            let (lock, cv) = &*self.state;
            let mut released = lock.lock().unwrap();
            while !*released {
                released = cv.wait(released).unwrap();
            }
        }

        /// Submit a job whose first sample emission blocks on this gate;
        /// returns once the worker is parked inside it.
        fn park_worker(&self, pool: &ServicePool) -> JobHandle {
            let entered = Arc::new((Mutex::new(false), Condvar::new()));
            let entered_in_sink = Arc::clone(&entered);
            let gate = self.clone();
            let sink = crate::sink::CallbackSink::new(
                move |_ctx: &crate::sink::SampleContext<'_>, _g: &gesmc_graph::EdgeListGraph| {
                    {
                        let (lock, cv) = &*entered_in_sink;
                        *lock.lock().unwrap() = true;
                        cv.notify_all();
                    }
                    gate.wait_released();
                    Ok(())
                },
            );
            let blocker = spec("blocker", 2).thinning(1);
            let handle = pool.submit(QueuedJob::new(blocker, Box::new(sink))).unwrap();
            let (lock, cv) = &*entered;
            let mut seen = lock.lock().unwrap();
            while !*seen {
                seen = cv.wait(seen).unwrap();
            }
            handle
        }
    }

    #[test]
    fn submit_wait_roundtrip_delivers_samples() {
        let pool = ServicePool::start(2, 0);
        let sink = MemorySink::new();
        let store = sink.store();
        let handle = pool.submit(QueuedJob::new(spec("svc", 8), Box::new(sink))).unwrap();
        let state = handle.wait();
        match state {
            JobState::Done(report) => {
                assert_eq!(report.samples, 4);
                assert_eq!(report.supersteps, 8);
            }
            other => panic!("expected Done, got {:?}", other.label()),
        }
        assert_eq!(store.lock().unwrap().len(), 4);
        assert_eq!(handle.progress().superstep, 8);
        assert_eq!(pool.job_counts().0, 1);
        assert!(pool.supersteps_total() >= 8);
        pool.shutdown();
    }

    #[test]
    fn many_jobs_drain_over_few_workers() {
        let pool = ServicePool::start(2, 0);
        let handles: Vec<_> =
            (0..8).map(|i| pool.submit(queued(&format!("j{i}"), 4)).unwrap()).collect();
        for handle in &handles {
            assert!(matches!(handle.wait(), JobState::Done(_)));
        }
        assert_eq!(pool.job_counts(), (8, 0, 0));
        assert_eq!(pool.queue_depth(), 0);
        pool.shutdown();
    }

    #[test]
    fn saturated_queue_rejects_with_pending_depth() {
        // One worker, queue bound 1: park the worker inside a blocker job,
        // fill the queue, then the next submission must shed.
        let pool = ServicePool::start(1, 1);
        let gate = Gate::new();
        let blocker = gate.park_worker(&pool);
        assert_eq!(pool.running(), 1);
        let filler = pool.submit(queued("fill", 4)).unwrap();
        match pool.submit(queued("shed", 4)) {
            Err(SubmitError::Saturated { pending }) => assert_eq!(pending, 1),
            other => panic!("expected Saturated, got {other:?}"),
        }
        gate.release();
        assert!(matches!(blocker.wait(), JobState::Done(_)));
        assert!(matches!(filler.wait(), JobState::Done(_)));
        pool.shutdown();
    }

    #[test]
    fn graceful_shutdown_drains_accepted_jobs_and_rejects_new_ones() {
        let pool = ServicePool::start(1, 0);
        let handles: Vec<_> =
            (0..4).map(|i| pool.submit(queued(&format!("d{i}"), 6)).unwrap()).collect();
        pool.shutdown();
        for handle in &handles {
            assert!(
                matches!(handle.state(), JobState::Done(_)),
                "accepted jobs must drain: {:?}",
                handle
            );
        }
        assert!(!pool.is_accepting());
        assert!(matches!(pool.submit(queued("late", 4)), Err(SubmitError::ShuttingDown)));
        // Idempotent.
        pool.shutdown();
    }

    #[test]
    fn shutdown_now_cancels_queued_jobs() {
        let pool = ServicePool::start(1, 0);
        let gate = Gate::new();
        let blocker = gate.park_worker(&pool);
        let parked: Vec<_> =
            (0..3).map(|i| pool.submit(queued(&format!("p{i}"), 8)).unwrap()).collect();
        blocker.cancel();
        // shutdown_now drains (cancels) the queued jobs before joining the
        // workers; only then release the parked worker, so it can never claim
        // a queued job first.
        let pool = Arc::new(pool);
        let pool_in_thread = Arc::clone(&pool);
        let shutdown = std::thread::spawn(move || pool_in_thread.shutdown_now());
        while pool.queue_depth() > 0 {
            std::thread::yield_now();
        }
        gate.release();
        shutdown.join().unwrap();
        assert!(matches!(blocker.wait(), JobState::Cancelled(_)));
        for handle in &parked {
            assert!(
                matches!(handle.state(), JobState::Cancelled(_)),
                "queued jobs must be cancelled without running: {handle:?}"
            );
        }
        let (_, _, cancelled) = pool.job_counts();
        assert_eq!(cancelled, 4);
    }

    #[test]
    fn cancel_before_claim_skips_the_run() {
        let pool = ServicePool::start(1, 0);
        let gate = Gate::new();
        let blocker = gate.park_worker(&pool);
        let victim = pool.submit(queued("victim", 8)).unwrap();
        victim.cancel();
        blocker.cancel();
        gate.release();
        let state = victim.wait();
        match state {
            JobState::Cancelled(superstep) => assert_eq!(superstep, 0),
            other => panic!("expected Cancelled(0), got {:?}", other.label()),
        }
        pool.shutdown();
    }

    #[test]
    fn panicking_jobs_fail_without_killing_the_worker() {
        let pool = ServicePool::start(1, 0);
        // A pld generator with gamma <= 1 panics inside the job (generator
        // assert); the pool must publish Failed and keep its worker.
        let panicking = JobSpec::new(
            "boom",
            GraphSource::Generated {
                family: "pld".into(),
                nodes: 0,
                edges: 100,
                gamma: 0.5,
                seed: 1,
            },
            ChainSpec::new("seq-es"),
        );
        let handle = pool.submit(QueuedJob::new(panicking, Box::new(NullSink::default()))).unwrap();
        match handle.wait() {
            JobState::Failed(msg) => assert!(msg.contains("panicked"), "{msg}"),
            other => panic!("expected Failed, got {:?}", other.label()),
        }
        // The single worker survived and still runs jobs.
        let after = pool.submit(queued("after", 4)).unwrap();
        assert!(matches!(after.wait(), JobState::Done(_)));
        assert_eq!(pool.job_counts(), (1, 1, 0));
        pool.shutdown();
    }

    #[test]
    fn failed_jobs_surface_their_error_text() {
        let pool = ServicePool::start(1, 0);
        let bad = JobSpec::new(
            "bad",
            GraphSource::File("/nonexistent/missing.txt".into()),
            ChainSpec::new("seq-es"),
        );
        let handle = pool.submit(QueuedJob::new(bad, Box::new(NullSink::default()))).unwrap();
        match handle.wait() {
            JobState::Failed(msg) => assert!(msg.contains("missing.txt"), "{msg}"),
            other => panic!("expected Failed, got {:?}", other.label()),
        }
        assert_eq!(pool.job_counts().1, 1);
        pool.shutdown();
    }
}
