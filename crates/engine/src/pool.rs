//! Job execution: the single-job driver and the multi-job worker pool.

use crate::checkpoint::{Checkpoint, CheckpointSink};
use crate::control::JobControl;
use crate::default_registry;
use crate::error::EngineError;
use crate::job::JobSpec;
use crate::queue::{JobQueue, QueuedJob};
use crate::sink::{SampleContext, SampleSink};
use gesmc_core::ChainRegistry;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What a finished job reports back.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Job name.
    pub job: String,
    /// Chain name (`SeqES`, `ParGlobalES`, …).
    pub algorithm: String,
    /// Superstep the run started from (0, or the checkpoint's counter).
    pub resumed_from: u64,
    /// Superstep the run finished at (the job's total).
    pub supersteps: u64,
    /// Samples emitted over the job's lifetime (including before a resume).
    pub samples: u64,
    /// Switches requested across the supersteps of this run.
    pub requested: u64,
    /// Switches legally applied across the supersteps of this run.
    pub legal: u64,
    /// Checkpoints written during this run.
    pub checkpoints: u64,
    /// Wall-clock duration of this run.
    pub duration: Duration,
}

impl JobReport {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let acceptance = if self.requested == 0 {
            0.0
        } else {
            100.0 * self.legal as f64 / self.requested as f64
        };
        format!(
            "{}: {} supersteps {}..{}, {} samples, {:.1}% of {} switches legal, {:.3} s",
            self.job,
            self.algorithm,
            self.resumed_from,
            self.supersteps,
            self.samples,
            acceptance,
            self.requested,
            self.duration.as_secs_f64()
        )
    }
}

/// The result of one batch entry, in submission order.
#[derive(Debug)]
pub struct JobOutcome {
    /// Job name.
    pub job: String,
    /// The report, or the error that stopped the job.
    pub result: Result<JobReport, EngineError>,
}

/// Run one job to completion on the current thread, resolving its chain
/// against the [`default_registry`].
///
/// See [`run_job_with`] for the registry-parameterised variant.
pub fn run_job(
    spec: &JobSpec,
    sink: &mut dyn SampleSink,
    resume: Option<&Checkpoint>,
) -> Result<JobReport, EngineError> {
    run_job_with(default_registry(), spec, sink, resume)
}

/// Run one job to completion on the current thread, resolving its chain
/// against `registry`.
///
/// Drives the chain superstep by superstep, streaming every `thinning`-th
/// graph into `sink` (or only the final graph when `thinning` is 0),
/// verifying that each emitted sample preserves the input degree sequence,
/// and writing periodic checkpoints when the spec asks for them.  With
/// `resume`, the chain named by the checkpoint header is rebuilt, its state
/// restored, and the run continues at its superstep counter — bit-identically
/// to a run that was never interrupted.
pub fn run_job_with(
    registry: &ChainRegistry,
    spec: &JobSpec,
    sink: &mut dyn SampleSink,
    resume: Option<&Checkpoint>,
) -> Result<JobReport, EngineError> {
    run_job_controlled(registry, spec, sink, resume, &JobControl::new())
}

/// Like [`run_job_with`], under cooperative control: `control` is consulted
/// once per superstep, so observers can poll progress
/// ([`JobControl::progress`]) and request cancellation
/// ([`JobControl::request_cancel`]) while the job runs.  A cancel surfaces as
/// [`EngineError::Cancelled`] naming the last completed superstep; the sink
/// keeps every sample emitted before the cancel, and a job that checkpoints
/// periodically can be resumed past a cancel like past any interruption.
pub fn run_job_controlled(
    registry: &ChainRegistry,
    spec: &JobSpec,
    sink: &mut dyn SampleSink,
    resume: Option<&Checkpoint>,
    control: &JobControl,
) -> Result<JobReport, EngineError> {
    run_job_hooked(registry, spec, sink, resume, control, None)
}

/// Like [`run_job_controlled`], additionally handing each periodic
/// checkpoint to `checkpoint_sink`.
///
/// The cadence is [`JobSpec::checkpoint_every`]; with a sink present,
/// checkpoints are captured even when [`JobSpec::checkpoint_dir`] is unset
/// (the sink owns storage).  When both are set, each capture is first written
/// to the directory, then offered to the sink.
pub fn run_job_hooked(
    registry: &ChainRegistry,
    spec: &JobSpec,
    sink: &mut dyn SampleSink,
    resume: Option<&Checkpoint>,
    control: &JobControl,
    mut checkpoint_sink: Option<&mut (dyn CheckpointSink + '_)>,
) -> Result<JobReport, EngineError> {
    let start = Instant::now();

    // The spec a resumed run re-checkpoints under is the checkpoint's own
    // (it may carry chain-specific parameters the caller's JobSpec lacks).
    let algorithm_spec = match resume {
        Some(checkpoint) => checkpoint.chain_spec(),
        None => spec.algorithm.clone(),
    };
    let (mut chain, resumed_from, mut samples_emitted) = match resume {
        Some(checkpoint) => {
            let graph = checkpoint.snapshot.graph()?;
            let mut chain =
                registry.build_with_config(&algorithm_spec, graph, checkpoint.snapshot.config())?;
            chain.restore(&checkpoint.snapshot)?;
            (chain, checkpoint.snapshot.supersteps_done, checkpoint.samples_emitted)
        }
        None => {
            let graph = spec.source.load()?;
            (registry.build(&spec.algorithm, graph, spec.seed)?, 0, 0)
        }
    };

    // Every emitted sample must preserve the input's degree sequence; compute
    // the reference once.
    let degrees = chain.graph().degrees();

    // Per-chain superstep latency plus workspace-wide emit/capture meters.
    // Resolved once per job; the per-superstep cost is two clock reads and
    // three relaxed atomic adds into a thread-private histogram shard.
    let superstep_hist = gesmc_obs::histogram_with(
        "gesmc_superstep_duration_seconds",
        "Wall time of one Markov-chain superstep.",
        &[("chain", chain.name())],
    );
    let samples_counter = gesmc_obs::counter(
        "gesmc_samples_emitted_total",
        "Thinned samples emitted to sinks by the engine.",
    );
    let capture_hist = gesmc_obs::histogram(
        "gesmc_checkpoint_capture_duration_seconds",
        "Wall time to capture (and optionally write) one engine checkpoint.",
    );

    let mut requested = 0u64;
    let mut legal = 0u64;
    let mut checkpoints = 0u64;

    control.set_total(spec.supersteps);
    control.record_start(resumed_from);

    // One trace span for the whole superstep loop (when the submitting
    // request was traced) — per-superstep spans would swamp the bounded
    // trace buffers on long jobs; the per-superstep histogram keeps the
    // fine-grained timing.
    let mut loop_span = gesmc_obs::trace::child_of_current("supersteps");
    if let Some(span) = loop_span.as_mut() {
        span.annotate("job", spec.name.clone());
        span.annotate("chain", chain.name());
        span.annotate("supersteps", (spec.supersteps.saturating_sub(resumed_from)).to_string());
    }
    let loop_result = (|| -> Result<(), EngineError> {
        for step in resumed_from + 1..=spec.supersteps {
            if control.is_cancel_requested() {
                return Err(EngineError::Cancelled { job: spec.name.clone(), superstep: step - 1 });
            }
            let stats = gesmc_obs::span!(superstep_hist, { chain.superstep() });
            requested += stats.requested as u64;
            legal += stats.legal as u64;
            control.record(step);

            let emit = if spec.thinning == 0 {
                step == spec.supersteps
            } else {
                step % spec.thinning == 0
            };
            if emit {
                let sample = chain.graph();
                if sample.degrees() != degrees {
                    return Err(EngineError::DegreesViolated {
                        job: spec.name.clone(),
                        superstep: step,
                    });
                }
                let ctx = SampleContext {
                    job: &spec.name,
                    superstep: step,
                    sample_index: samples_emitted,
                };
                sink.emit(&ctx, &sample)?;
                samples_emitted += 1;
                samples_counter.inc();
            }

            let due = spec
                .checkpoint_every
                .is_some_and(|every| every > 0 && step % every == 0 && step < spec.supersteps);
            if due && (spec.checkpoint_dir.is_some() || checkpoint_sink.is_some()) {
                let mut ckpt_span = gesmc_obs::trace::child_of_current("checkpoint");
                if let Some(span) = ckpt_span.as_mut() {
                    span.annotate("superstep", step.to_string());
                }
                let capture_timer = gesmc_obs::Timer::start(&capture_hist);
                let checkpoint = Checkpoint::capture(
                    &spec.name,
                    chain.as_ref(),
                    &algorithm_spec,
                    spec.supersteps,
                    spec.thinning,
                    samples_emitted,
                )?;
                if let Some(dir) = &spec.checkpoint_dir {
                    checkpoint.write_to_file(dir.join(format!("{}.ckpt", spec.name)))?;
                }
                if let Some(hook) = checkpoint_sink.as_deref_mut() {
                    hook.store(&checkpoint)?;
                }
                drop(capture_timer);
                checkpoints += 1;
            }
        }
        Ok(())
    })();
    if loop_result.is_err() {
        if let Some(span) = loop_span.as_mut() {
            span.set_error();
        }
    }
    drop(loop_span);
    loop_result?;

    let report = JobReport {
        job: spec.name.clone(),
        algorithm: chain.name().to_string(),
        resumed_from,
        supersteps: spec.supersteps,
        samples: samples_emitted,
        requested,
        legal,
        checkpoints,
        duration: start.elapsed(),
    };
    gesmc_obs::debug!(
        target: "gesmc_engine",
        id: spec.name,
        "job finished: chain={} resumed_from={} supersteps={} samples={} elapsed={:.3}s",
        report.algorithm,
        report.resumed_from,
        report.supersteps,
        report.samples,
        report.duration.as_secs_f64()
    );
    sink.finish(&report)?;
    Ok(report)
}

/// A pool of worker threads multiplexing a [`JobQueue`].
///
/// Each worker claims jobs off the queue and runs them to completion; a job
/// with a `threads` budget executes inside its own bounded rayon pool, so
/// several parallel chains can share the machine without oversubscribing it
/// (`workers × threads` ≈ hardware parallelism is a sensible manifest).
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// A pool with `workers` threads (`0` = hardware parallelism).
    pub fn new(workers: usize) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            workers
        };
        Self { workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Drain `queue` with the [`default_registry`], returning one
    /// [`JobOutcome`] per job in submission order.  Individual job failures
    /// are captured, not propagated.
    pub fn run(&self, queue: JobQueue) -> Vec<JobOutcome> {
        self.run_with(default_registry(), queue)
    }

    /// Like [`WorkerPool::run`], resolving every job's chain against
    /// `registry` (use this to batch chains of your own).
    pub fn run_with(&self, registry: &ChainRegistry, queue: JobQueue) -> Vec<JobOutcome> {
        let total = queue.len();
        let mut slots: Vec<Option<JobOutcome>> = Vec::with_capacity(total);
        slots.resize_with(total, || None);
        let results = Mutex::new(slots);
        let workers = self.workers.min(total).max(1);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    while let Some((index, job)) = queue.pop() {
                        let outcome = JobOutcome {
                            job: job.spec.name.clone(),
                            result: Self::run_one(registry, job),
                        };
                        results.lock().expect("results mutex poisoned")[index] = Some(outcome);
                    }
                });
            }
        });

        results
            .into_inner()
            .expect("results mutex poisoned")
            .into_iter()
            .map(|slot| slot.expect("every queued job must produce an outcome"))
            .collect()
    }

    /// Run one claimed job, honouring its thread budget.
    fn run_one(registry: &ChainRegistry, mut job: QueuedJob) -> Result<JobReport, EngineError> {
        run_claimed(registry, &mut job, &JobControl::new())
    }
}

/// Run a claimed job under `control`, honouring its per-job thread budget
/// (shared by [`WorkerPool`] and [`ServicePool`](crate::ServicePool)).
pub(crate) fn run_claimed(
    registry: &ChainRegistry,
    job: &mut QueuedJob,
    control: &JobControl,
) -> Result<JobReport, EngineError> {
    let QueuedJob { spec, sink, resume, checkpoints, trace } = job;
    let trace = *trace;
    match spec.threads {
        Some(threads) => {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .map_err(|e| EngineError::Graph(format!("cannot build rayon pool: {e}")))?;
            // install() moves to a pool thread: the trace context must be
            // installed there, not on the claiming worker.
            pool.install(|| {
                gesmc_obs::trace::with_context_opt(trace, || {
                    run_job_hooked(
                        registry,
                        spec,
                        sink.as_mut(),
                        resume.as_ref(),
                        control,
                        checkpoints.as_deref_mut(),
                    )
                })
            })
        }
        None => gesmc_obs::trace::with_context_opt(trace, || {
            run_job_hooked(
                registry,
                spec,
                sink.as_mut(),
                resume.as_ref(),
                control,
                checkpoints.as_deref_mut(),
            )
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::GraphSource;
    use crate::sink::{MemorySink, NullSink};
    use gesmc_core::ChainSpec;
    use gesmc_graph::gen::gnp;
    use gesmc_graph::EdgeListGraph;
    use gesmc_randx::rng_from_seed;

    fn test_graph(seed: u64) -> EdgeListGraph {
        gnp(&mut rng_from_seed(seed), 70, 0.1)
    }

    fn spec_for(name: &str, algo: &str, graph: EdgeListGraph) -> JobSpec {
        JobSpec::new(name, GraphSource::InMemory(graph), ChainSpec::new(algo))
            .supersteps(8)
            .thinning(2)
            .seed(3)
    }

    #[test]
    fn thinned_samples_are_streamed_and_degree_preserving() {
        let graph = test_graph(1);
        let degrees = graph.degrees();
        let spec = spec_for("thin", "seq-global-es", graph);
        let mut sink = MemorySink::new();
        let store = sink.store();
        let report = run_job(&spec, &mut sink, None).unwrap();
        assert_eq!(report.samples, 4);
        assert_eq!(report.resumed_from, 0);
        assert!(report.legal > 0);
        let samples = store.lock().unwrap();
        assert_eq!(samples.len(), 4);
        // Supersteps 2, 4, 6, 8; every sample keeps the degree sequence and
        // consecutive samples differ (the chain is actually moving).
        assert_eq!(samples.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![2, 4, 6, 8]);
        for (_, sample) in samples.iter() {
            assert_eq!(sample.degrees(), degrees);
            assert!(sample.validate().is_ok());
        }
        assert_ne!(samples[0].1.canonical_edges(), samples[3].1.canonical_edges());
    }

    #[test]
    fn thinning_zero_emits_only_the_final_graph() {
        let spec = spec_for("final", "seq-es", test_graph(2)).thinning(0);
        let mut sink = MemorySink::new();
        let store = sink.store();
        let report = run_job(&spec, &mut sink, None).unwrap();
        assert_eq!(report.samples, 1);
        assert_eq!(store.lock().unwrap()[0].0, 8);
    }

    #[test]
    fn periodic_checkpoints_are_written_and_resumable() {
        let dir = std::env::temp_dir().join("gesmc-pool-ckpt-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let graph = test_graph(3);
        let spec =
            spec_for("ck", "par-global-es", graph.clone()).supersteps(10).checkpoint(4, &dir);
        let report = run_job(&spec, &mut NullSink::default(), None).unwrap();
        // Steps 4 and 8 checkpoint; step 10 is final and does not.
        assert_eq!(report.checkpoints, 2);

        let checkpoint = Checkpoint::read_from_file(dir.join("ck.ckpt")).unwrap();
        assert_eq!(checkpoint.snapshot.supersteps_done, 8);

        // Resume from the on-disk checkpoint and compare with the
        // uninterrupted run's final graph.
        let mut resumed_sink = MemorySink::new();
        let store = resumed_sink.store();
        let resumed = run_job(&spec, &mut resumed_sink, Some(&checkpoint)).unwrap();
        assert_eq!(resumed.resumed_from, 8);
        assert_eq!(resumed.samples, checkpoint.samples_emitted + 1);

        let mut uninterrupted_sink = MemorySink::new();
        let full_store = uninterrupted_sink.store();
        run_job(&spec.clone().checkpoint(0, &dir), &mut uninterrupted_sink, None).unwrap();

        let resumed_final = store.lock().unwrap().last().unwrap().1.clone();
        let full_final = full_store.lock().unwrap().last().unwrap().1.clone();
        assert_eq!(resumed_final.canonical_edges(), full_final.canonical_edges());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pool_runs_more_jobs_than_workers_in_submission_order() {
        let mut queue = JobQueue::new();
        let sinks: Vec<_> = (0..5)
            .map(|i| {
                let sink = MemorySink::new();
                let store = sink.store();
                let spec = spec_for(&format!("job{i}"), "seq-es", test_graph(i)).seed(i);
                queue.push(QueuedJob::new(spec, Box::new(sink)));
                store
            })
            .collect();

        let outcomes = WorkerPool::new(2).run(queue);
        assert_eq!(outcomes.len(), 5);
        for (i, outcome) in outcomes.iter().enumerate() {
            assert_eq!(outcome.job, format!("job{i}"), "submission order must be preserved");
            let report = outcome.result.as_ref().unwrap();
            assert_eq!(report.samples, 4);
            assert_eq!(sinks[i].lock().unwrap().len(), 4);
        }
    }

    #[test]
    fn job_failures_do_not_poison_the_batch() {
        let mut queue = JobQueue::new();
        let bad_spec = JobSpec::new(
            "bad",
            GraphSource::File("/nonexistent/missing.txt".into()),
            ChainSpec::new("seq-es"),
        );
        queue.push(QueuedJob::new(bad_spec, Box::new(NullSink::default())));
        queue.push(QueuedJob::new(
            spec_for("good", "seq-es", test_graph(9)),
            Box::new(NullSink::default()),
        ));
        let outcomes = WorkerPool::new(2).run(queue);
        assert!(outcomes[0].result.is_err());
        assert!(outcomes[1].result.is_ok());
    }

    #[test]
    fn per_job_thread_budget_is_applied() {
        // The sink's emit runs inside the job's rayon scope, so it observes
        // the bounded pool the WorkerPool installed for the job.
        let observed = std::sync::Arc::new(Mutex::new(Vec::new()));
        let observed_in_sink = std::sync::Arc::clone(&observed);
        let sink =
            crate::sink::CallbackSink::new(move |_ctx: &SampleContext<'_>, _g: &EdgeListGraph| {
                observed_in_sink.lock().unwrap().push(rayon::current_num_threads());
                Ok(())
            });
        let spec = spec_for("budget", "par-global-es", test_graph(4)).threads(2).thinning(0);
        let mut queue = JobQueue::new();
        queue.push(QueuedJob::new(spec, Box::new(sink)));
        let outcomes = WorkerPool::new(1).run(queue);
        assert!(outcomes[0].result.is_ok());
        assert_eq!(*observed.lock().unwrap(), vec![2]);
    }

    #[test]
    fn resume_hands_the_checkpointed_spec_back_to_the_factory() {
        // A chain whose factory REQUIRES a chain-specific parameter: if the
        // resume path dropped the spec's params, rebuilding from the
        // checkpoint would fail here.
        use gesmc_core::{
            ChainError, ChainInfo, ChainRegistry, ChainSpec, ParamInfo, ParamKind, SeqES,
            SwitchingConfig,
        };
        fn picky_factory(
            graph: EdgeListGraph,
            config: SwitchingConfig,
            spec: &ChainSpec,
        ) -> Result<Box<dyn gesmc_core::EdgeSwitching + Send>, ChainError> {
            spec.param("depth").ok_or_else(|| ChainError::BadParam {
                chain: spec.name.clone(),
                param: "depth".to_string(),
                message: "required parameter missing".to_string(),
            })?;
            Ok(Box::new(SeqES::new(graph, config)))
        }
        let mut registry = ChainRegistry::new();
        registry.register(ChainInfo {
            name: "picky-es",
            chain_name: "SeqES",
            aliases: &[],
            summary: "test chain with a required parameter",
            exact: true,
            parallel: false,
            snapshot: true,
            params: &[ParamInfo {
                name: "depth",
                kind: ParamKind::Int,
                default: "-",
                doc: "required",
            }],
            factory: picky_factory,
        });

        let dir = std::env::temp_dir().join("gesmc-pool-picky-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec = JobSpec::new(
            "picky",
            GraphSource::InMemory(test_graph(6)),
            ChainSpec::parse("picky-es?depth=2").unwrap(),
        )
        .supersteps(6)
        .checkpoint(3, &dir);
        run_job_with(&registry, &spec, &mut NullSink::default(), None).unwrap();

        let checkpoint = Checkpoint::read_from_file(dir.join("picky.ckpt")).unwrap();
        assert_eq!(checkpoint.chain_spec().to_string(), "picky-es?depth=2");
        let report =
            run_job_with(&registry, &spec, &mut NullSink::default(), Some(&checkpoint)).unwrap();
        assert_eq!(report.resumed_from, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_jobs_stop_between_supersteps_and_keep_prior_samples() {
        use std::sync::Arc;
        let control = Arc::new(JobControl::new());
        // Cancel from inside the sink after the second sample: the driver
        // observes the flag before the next superstep.
        let control_in_sink = Arc::clone(&control);
        let seen = Arc::new(Mutex::new(0u64));
        let seen_in_sink = Arc::clone(&seen);
        let mut sink =
            crate::sink::CallbackSink::new(move |ctx: &SampleContext<'_>, _g: &EdgeListGraph| {
                *seen_in_sink.lock().unwrap() += 1;
                if ctx.sample_index == 1 {
                    control_in_sink.request_cancel();
                }
                Ok(())
            });
        let spec = spec_for("cancel", "seq-es", test_graph(7)).supersteps(100).thinning(2);
        let err =
            run_job_controlled(default_registry(), &spec, &mut sink, None, &control).unwrap_err();
        match err {
            EngineError::Cancelled { job, superstep } => {
                assert_eq!(job, "cancel");
                // Sample 1 lands after superstep 4; the cancel is observed
                // before superstep 5 runs.
                assert_eq!(superstep, 4);
            }
            other => panic!("expected Cancelled, got {other}"),
        }
        assert_eq!(*seen.lock().unwrap(), 2, "samples before the cancel are kept");
        let progress = control.progress();
        assert_eq!(progress.superstep, 4);
        assert_eq!(progress.total, 100);
    }

    #[test]
    fn report_summary_is_informative() {
        let spec = spec_for("sum", "seq-global-es", test_graph(5));
        let report = run_job(&spec, &mut NullSink::default(), None).unwrap();
        let line = report.summary();
        assert!(line.contains("sum"));
        assert!(line.contains("SeqGlobalES"));
        assert!(line.contains("4 samples"));
    }
}
