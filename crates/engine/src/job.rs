//! Job specifications: what to randomize, with which chain, and how.
//!
//! The chain of a job is an open [`ChainSpec`] resolved against a
//! [`ChainRegistry`](gesmc_core::ChainRegistry) at run time (the engine's
//! default is [`default_registry`](crate::default_registry), which knows the
//! five `gesmc-core` chains *and* the `gesmc-baselines` chains) — there is no
//! closed algorithm enum anywhere in the engine, so registering a new chain
//! makes it batchable, checkpointable and resumable without touching this
//! crate.

use crate::error::EngineError;
use gesmc_core::{
    spec::{PARAM_LOOP_PROBABILITY, PARAM_PREFETCH},
    ChainSpec, ParamValue, SwitchingConfig,
};
use gesmc_datasets::{netrep_like::family_graph, syn_gnp_graph, syn_pld_graph, GraphFamily};
use gesmc_graph::io::read_edge_list_file;
use gesmc_graph::EdgeListGraph;
use std::path::PathBuf;

/// The synthetic graph families [`GraphSource::Generated`] dispatches on —
/// the single source of truth for everything that validates a family name
/// upstream (manifests, the HTTP service).
pub const GRAPH_FAMILIES: &[&str] = &["gnp", "pld", "road", "mesh", "dense"];

/// Where a job's input graph comes from.
#[derive(Debug, Clone)]
pub enum GraphSource {
    /// A plain-text edge-list file (`u v` per line).
    File(PathBuf),
    /// An already-loaded graph (library use, tests, resume).
    InMemory(EdgeListGraph),
    /// A synthetic graph generated on the fly by `gesmc-datasets`.
    Generated {
        /// Family name: `gnp`, `pld`, `road`, `mesh`, or `dense`.
        family: String,
        /// Number of nodes (`0` picks the family default for `edges`).
        nodes: usize,
        /// Target number of edges.
        edges: usize,
        /// Power-law exponent (only used by `pld`).
        gamma: f64,
        /// Generator seed.
        seed: u64,
    },
}

impl GraphSource {
    /// Materialise the input graph.
    pub fn load(&self) -> Result<EdgeListGraph, EngineError> {
        match self {
            GraphSource::File(path) => read_edge_list_file(path)
                .map_err(|e| EngineError::Graph(format!("{}: {e}", path.display()))),
            GraphSource::InMemory(graph) => Ok(graph.clone()),
            GraphSource::Generated { family, nodes, edges, gamma, seed } => {
                let graph = match family.as_str() {
                    "gnp" => {
                        let n = if *nodes == 0 { edges / 8 } else { *nodes };
                        syn_gnp_graph(*seed, n, *edges)
                    }
                    "pld" => {
                        let n = if *nodes == 0 { edges / 3 } else { *nodes };
                        syn_pld_graph(*seed, n, *gamma)
                    }
                    "road" => family_graph(*seed, GraphFamily::RoadLike, *edges).graph,
                    "mesh" => family_graph(*seed, GraphFamily::Mesh, *edges).graph,
                    "dense" => family_graph(*seed, GraphFamily::Dense, *edges).graph,
                    other => {
                        return Err(EngineError::Graph(format!(
                            "unknown graph family {other:?} (expected {})",
                            GRAPH_FAMILIES.join(", ")
                        )))
                    }
                };
                Ok(graph)
            }
        }
    }

    /// Short human-readable description for reports and logs.
    pub fn describe(&self) -> String {
        match self {
            GraphSource::File(path) => path.display().to_string(),
            GraphSource::InMemory(graph) => {
                format!("in-memory (n = {}, m = {})", graph.num_nodes(), graph.num_edges())
            }
            GraphSource::Generated { family, edges, .. } => {
                format!("generated {family} (m ≈ {edges})")
            }
        }
    }
}

/// The full specification of one randomization job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Job name; also the prefix of emitted sample and checkpoint files.
    pub name: String,
    /// Input graph.
    pub source: GraphSource,
    /// Which chain randomises it, with its parameters (e.g.
    /// `par-global-es?pl=0.001&prefetch=off`).
    pub algorithm: ChainSpec,
    /// Total number of supersteps to run.
    pub supersteps: u64,
    /// Sample thinning interval `k` (Sec. 6.1): every `k`-th superstep's
    /// graph is streamed to the sink as an independent sample.  `0` emits
    /// only the final graph, once.
    pub thinning: u64,
    /// Seed of the chain's pseudo-random stream.
    pub seed: u64,
    /// Rayon thread budget for this job (`None` = the ambient pool).
    pub threads: Option<usize>,
    /// Write a checkpoint every this many supersteps (`None` = never).
    pub checkpoint_every: Option<u64>,
    /// Directory checkpoints are written to (`{name}.ckpt`).
    pub checkpoint_dir: Option<PathBuf>,
}

impl JobSpec {
    /// A job with the workspace defaults: 20 supersteps, final-state-only
    /// sampling, seed 1, ambient thread pool, no checkpoints.  Chain
    /// parameters not set on `algorithm` keep the [`SwitchingConfig`]
    /// defaults (`P_L = 0.01`, prefetching enabled).
    pub fn new(name: impl Into<String>, source: GraphSource, algorithm: ChainSpec) -> Self {
        Self {
            name: name.into(),
            source,
            algorithm,
            supersteps: 20,
            thinning: 0,
            seed: 1,
            threads: None,
            checkpoint_every: None,
            checkpoint_dir: None,
        }
    }

    /// Builder-style override of the superstep count.
    pub fn supersteps(mut self, count: u64) -> Self {
        self.supersteps = count;
        self
    }

    /// Builder-style override of the thinning interval.
    pub fn thinning(mut self, interval: u64) -> Self {
        self.thinning = interval;
        self
    }

    /// Builder-style override of the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style override of the per-job thread budget.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Builder-style override of `P_L` (sets the chain's `pl` parameter; the
    /// value is validated when the chain is built, not here).
    pub fn loop_probability(mut self, p: f64) -> Self {
        self.algorithm.params.insert(PARAM_LOOP_PROBABILITY.to_string(), ParamValue::Float(p));
        self
    }

    /// Builder-style override of the prefetch flag (sets the chain's
    /// `prefetch` parameter).
    pub fn prefetch(mut self, enabled: bool) -> Self {
        self.algorithm.params.insert(PARAM_PREFETCH.to_string(), ParamValue::Bool(enabled));
        self
    }

    /// Builder-style request for periodic checkpoints into `dir`.
    pub fn checkpoint(mut self, every: u64, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_every = Some(every);
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// The [`SwitchingConfig`] this job hands to its chain: the seed plus the
    /// chain spec's common parameters (`pl`, `prefetch`).
    pub fn config(&self) -> Result<SwitchingConfig, EngineError> {
        Ok(self.algorithm.switching_config(self.seed)?)
    }

    /// Number of samples a full uninterrupted run emits (`thinning == 0`
    /// emits the final graph exactly once).
    pub fn expected_samples(&self) -> u64 {
        self.supersteps.checked_div(self.thinning).unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_registry;

    #[test]
    fn generated_sources_load() {
        for family in ["gnp", "pld", "road", "mesh", "dense"] {
            let source = GraphSource::Generated {
                family: family.to_string(),
                nodes: 0,
                edges: 600,
                gamma: 2.5,
                seed: 1,
            };
            let graph = source.load().unwrap_or_else(|e| panic!("{family}: {e}"));
            assert!(graph.num_edges() > 0, "{family} generated an empty graph");
            assert!(graph.validate().is_ok());
        }
        let bad = GraphSource::Generated {
            family: "nope".into(),
            nodes: 0,
            edges: 10,
            gamma: 2.5,
            seed: 1,
        };
        assert!(bad.load().is_err());
    }

    #[test]
    fn missing_file_is_a_graph_error_with_the_path() {
        let source = GraphSource::File(PathBuf::from("/nonexistent/gesmc-test.txt"));
        match source.load() {
            Err(EngineError::Graph(msg)) => assert!(msg.contains("gesmc-test.txt")),
            other => panic!("expected Graph error, got {other:?}"),
        }
    }

    #[test]
    fn expected_samples() {
        let g = GraphSource::Generated {
            family: "gnp".into(),
            nodes: 0,
            edges: 100,
            gamma: 2.5,
            seed: 1,
        };
        let spec = JobSpec::new("a", g, ChainSpec::new("seq-es")).supersteps(10).thinning(3);
        assert_eq!(spec.expected_samples(), 3);
        assert_eq!(spec.clone().thinning(0).expected_samples(), 1);
    }

    #[test]
    fn config_builders_flow_into_the_chain_spec() {
        let g = GraphSource::Generated {
            family: "gnp".into(),
            nodes: 0,
            edges: 100,
            gamma: 2.5,
            seed: 1,
        };
        let spec = JobSpec::new("a", g, ChainSpec::new("seq-global-es"))
            .seed(7)
            .loop_probability(0.25)
            .prefetch(false);
        assert_eq!(spec.algorithm.to_string(), "seq-global-es?pl=0.25&prefetch=false");
        let config = spec.config().unwrap();
        assert_eq!(config.seed, 7);
        assert!((config.loop_probability - 0.25).abs() < 1e-12);
        assert!(!config.prefetch);
        // An out-of-range builder value surfaces as an error at config time.
        let bad = spec.loop_probability(1.5);
        assert!(bad.config().is_err());
        assert!(default_registry().validate(&bad.algorithm).is_err());
    }
}
