//! Job specifications: what to randomize, with which chain, and how.

use crate::error::EngineError;
use gesmc_core::{
    EdgeSwitching, NaiveParES, ParES, ParGlobalES, SeqES, SeqGlobalES, SwitchingConfig,
};
use gesmc_datasets::{netrep_like::family_graph, syn_gnp_graph, syn_pld_graph, GraphFamily};
use gesmc_graph::io::read_edge_list_file;
use gesmc_graph::EdgeListGraph;
use std::path::PathBuf;

/// The checkpointable switching chains a job can run.
///
/// This is the `gesmc-core` family; the baselines of `gesmc-baselines` are
/// excluded because they do not implement snapshot/restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Sequential ES-MC ([`SeqES`]).
    SeqES,
    /// Sequential G-ES-MC ([`SeqGlobalES`]).
    SeqGlobalES,
    /// Exact parallel ES-MC, Algorithm 2 ([`ParES`]).
    ParES,
    /// Exact parallel G-ES-MC, Algorithm 3 ([`ParGlobalES`]).
    ParGlobalES,
    /// Inexact lock-per-edge baseline, Sec. 5.1 ([`NaiveParES`]).
    NaiveParES,
}

impl Algorithm {
    /// Every supported algorithm, in a stable order.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::SeqES,
        Algorithm::SeqGlobalES,
        Algorithm::ParES,
        Algorithm::ParGlobalES,
        Algorithm::NaiveParES,
    ];

    /// Parse the CLI / manifest spelling (`"par-global-es"`, ...).
    pub fn parse(name: &str) -> Result<Self, EngineError> {
        match name {
            "seq-es" => Ok(Algorithm::SeqES),
            "seq-global-es" => Ok(Algorithm::SeqGlobalES),
            "par-es" => Ok(Algorithm::ParES),
            "par-global-es" => Ok(Algorithm::ParGlobalES),
            "naive-par-es" => Ok(Algorithm::NaiveParES),
            other => Err(EngineError::UnknownAlgorithm(other.to_string())),
        }
    }

    /// The CLI / manifest spelling.
    pub fn cli_name(&self) -> &'static str {
        match self {
            Algorithm::SeqES => "seq-es",
            Algorithm::SeqGlobalES => "seq-global-es",
            Algorithm::ParES => "par-es",
            Algorithm::ParGlobalES => "par-global-es",
            Algorithm::NaiveParES => "naive-par-es",
        }
    }

    /// The [`EdgeSwitching::name`] of the chain (used to match checkpoints).
    pub fn chain_name(&self) -> &'static str {
        match self {
            Algorithm::SeqES => "SeqES",
            Algorithm::SeqGlobalES => "SeqGlobalES",
            Algorithm::ParES => "ParES",
            Algorithm::ParGlobalES => "ParGlobalES",
            Algorithm::NaiveParES => "NaiveParES",
        }
    }

    /// Inverse of [`Algorithm::chain_name`].
    pub fn from_chain_name(name: &str) -> Result<Self, EngineError> {
        Self::ALL
            .into_iter()
            .find(|a| a.chain_name() == name)
            .ok_or_else(|| EngineError::UnknownAlgorithm(name.to_string()))
    }

    /// Construct the chain randomising `graph`.
    pub fn build(
        &self,
        graph: EdgeListGraph,
        config: SwitchingConfig,
    ) -> Box<dyn EdgeSwitching + Send> {
        match self {
            Algorithm::SeqES => Box::new(SeqES::new(graph, config)),
            Algorithm::SeqGlobalES => Box::new(SeqGlobalES::new(graph, config)),
            Algorithm::ParES => Box::new(ParES::new(graph, config)),
            Algorithm::ParGlobalES => Box::new(ParGlobalES::new(graph, config)),
            Algorithm::NaiveParES => Box::new(NaiveParES::new(graph, config)),
        }
    }
}

/// Where a job's input graph comes from.
#[derive(Debug, Clone)]
pub enum GraphSource {
    /// A plain-text edge-list file (`u v` per line).
    File(PathBuf),
    /// An already-loaded graph (library use, tests, resume).
    InMemory(EdgeListGraph),
    /// A synthetic graph generated on the fly by `gesmc-datasets`.
    Generated {
        /// Family name: `gnp`, `pld`, `road`, `mesh`, or `dense`.
        family: String,
        /// Number of nodes (`0` picks the family default for `edges`).
        nodes: usize,
        /// Target number of edges.
        edges: usize,
        /// Power-law exponent (only used by `pld`).
        gamma: f64,
        /// Generator seed.
        seed: u64,
    },
}

impl GraphSource {
    /// Materialise the input graph.
    pub fn load(&self) -> Result<EdgeListGraph, EngineError> {
        match self {
            GraphSource::File(path) => read_edge_list_file(path)
                .map_err(|e| EngineError::Graph(format!("{}: {e}", path.display()))),
            GraphSource::InMemory(graph) => Ok(graph.clone()),
            GraphSource::Generated { family, nodes, edges, gamma, seed } => {
                let graph = match family.as_str() {
                    "gnp" => {
                        let n = if *nodes == 0 { edges / 8 } else { *nodes };
                        syn_gnp_graph(*seed, n, *edges)
                    }
                    "pld" => {
                        let n = if *nodes == 0 { edges / 3 } else { *nodes };
                        syn_pld_graph(*seed, n, *gamma)
                    }
                    "road" => family_graph(*seed, GraphFamily::RoadLike, *edges).graph,
                    "mesh" => family_graph(*seed, GraphFamily::Mesh, *edges).graph,
                    "dense" => family_graph(*seed, GraphFamily::Dense, *edges).graph,
                    other => {
                        return Err(EngineError::Graph(format!(
                            "unknown graph family {other:?} (expected gnp, pld, road, mesh, dense)"
                        )))
                    }
                };
                Ok(graph)
            }
        }
    }

    /// Short human-readable description for reports and logs.
    pub fn describe(&self) -> String {
        match self {
            GraphSource::File(path) => path.display().to_string(),
            GraphSource::InMemory(graph) => {
                format!("in-memory (n = {}, m = {})", graph.num_nodes(), graph.num_edges())
            }
            GraphSource::Generated { family, edges, .. } => {
                format!("generated {family} (m ≈ {edges})")
            }
        }
    }
}

/// The full specification of one randomization job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Job name; also the prefix of emitted sample and checkpoint files.
    pub name: String,
    /// Input graph.
    pub source: GraphSource,
    /// Which chain randomises it.
    pub algorithm: Algorithm,
    /// Total number of supersteps to run.
    pub supersteps: u64,
    /// Sample thinning interval `k` (Sec. 6.1): every `k`-th superstep's
    /// graph is streamed to the sink as an independent sample.  `0` emits
    /// only the final graph, once.
    pub thinning: u64,
    /// Seed of the chain's pseudo-random stream.
    pub seed: u64,
    /// Rayon thread budget for this job (`None` = the ambient pool).
    pub threads: Option<usize>,
    /// Per-switch rejection probability `P_L` of the G-ES-MC chains.
    pub loop_probability: f64,
    /// Write a checkpoint every this many supersteps (`None` = never).
    pub checkpoint_every: Option<u64>,
    /// Directory checkpoints are written to (`{name}.ckpt`).
    pub checkpoint_dir: Option<PathBuf>,
}

impl JobSpec {
    /// A job with the workspace defaults: 20 supersteps, final-state-only
    /// sampling, seed 1, ambient thread pool, `P_L = 0.01`, no checkpoints.
    pub fn new(name: impl Into<String>, source: GraphSource, algorithm: Algorithm) -> Self {
        Self {
            name: name.into(),
            source,
            algorithm,
            supersteps: 20,
            thinning: 0,
            seed: 1,
            threads: None,
            loop_probability: 0.01,
            checkpoint_every: None,
            checkpoint_dir: None,
        }
    }

    /// Builder-style override of the superstep count.
    pub fn supersteps(mut self, count: u64) -> Self {
        self.supersteps = count;
        self
    }

    /// Builder-style override of the thinning interval.
    pub fn thinning(mut self, interval: u64) -> Self {
        self.thinning = interval;
        self
    }

    /// Builder-style override of the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style override of the per-job thread budget.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Builder-style override of `P_L`.
    pub fn loop_probability(mut self, p: f64) -> Self {
        self.loop_probability = p;
        self
    }

    /// Builder-style request for periodic checkpoints into `dir`.
    pub fn checkpoint(mut self, every: u64, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_every = Some(every);
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// The [`SwitchingConfig`] this job hands to its chain.
    pub fn config(&self) -> SwitchingConfig {
        SwitchingConfig::with_seed(self.seed).loop_probability(self.loop_probability)
    }

    /// Number of samples a full uninterrupted run emits (`thinning == 0`
    /// emits the final graph exactly once).
    pub fn expected_samples(&self) -> u64 {
        self.supersteps.checked_div(self.thinning).unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_names_roundtrip() {
        for algo in Algorithm::ALL {
            assert_eq!(Algorithm::parse(algo.cli_name()).unwrap(), algo);
            assert_eq!(Algorithm::from_chain_name(algo.chain_name()).unwrap(), algo);
        }
        assert!(matches!(Algorithm::parse("curveball"), Err(EngineError::UnknownAlgorithm(_))));
    }

    #[test]
    fn built_chains_report_their_names() {
        let graph = gesmc_datasets::syn_gnp_graph(1, 50, 150);
        for algo in Algorithm::ALL {
            let chain = algo.build(graph.clone(), SwitchingConfig::with_seed(1));
            assert_eq!(chain.name(), algo.chain_name());
        }
    }

    #[test]
    fn generated_sources_load() {
        for family in ["gnp", "pld", "road", "mesh", "dense"] {
            let source = GraphSource::Generated {
                family: family.to_string(),
                nodes: 0,
                edges: 600,
                gamma: 2.5,
                seed: 1,
            };
            let graph = source.load().unwrap_or_else(|e| panic!("{family}: {e}"));
            assert!(graph.num_edges() > 0, "{family} generated an empty graph");
            assert!(graph.validate().is_ok());
        }
        let bad = GraphSource::Generated {
            family: "nope".into(),
            nodes: 0,
            edges: 10,
            gamma: 2.5,
            seed: 1,
        };
        assert!(bad.load().is_err());
    }

    #[test]
    fn missing_file_is_a_graph_error_with_the_path() {
        let source = GraphSource::File(PathBuf::from("/nonexistent/gesmc-test.txt"));
        match source.load() {
            Err(EngineError::Graph(msg)) => assert!(msg.contains("gesmc-test.txt")),
            other => panic!("expected Graph error, got {other:?}"),
        }
    }

    #[test]
    fn expected_samples() {
        let g = GraphSource::Generated {
            family: "gnp".into(),
            nodes: 0,
            edges: 100,
            gamma: 2.5,
            seed: 1,
        };
        let spec = JobSpec::new("a", g, Algorithm::SeqES).supersteps(10).thinning(3);
        assert_eq!(spec.expected_samples(), 3);
        assert_eq!(spec.clone().thinning(0).expected_samples(), 1);
    }
}
