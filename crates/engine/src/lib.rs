//! Batched randomization job engine with checkpoint/resume and streaming
//! sample sinks.
//!
//! The chains of `gesmc-core` randomize one graph at a time.  The workload
//! the paper evaluates them for — null-model analysis over thinned chain
//! samples (Sec. 6.1) — needs more machinery around them:
//!
//! * **many jobs at once**: a [`JobQueue`] of [`JobSpec`]s multiplexed over a
//!   [`WorkerPool`], each job confined to a bounded rayon pool so concurrent
//!   parallel chains do not oversubscribe the machine;
//! * **streaming samples**: every `k`-th superstep the current graph is
//!   handed to a [`SampleSink`] as an independent thinned sample — to an
//!   edge-list file, an in-memory store, or a user callback — instead of
//!   keeping only the final state;
//! * **checkpoint/resume**: a binary [`Checkpoint`] captures the edge array,
//!   the exact PRNG stream state and the superstep counter, so interrupted
//!   chains resume *bit-identically* to an uninterrupted run instead of
//!   losing hours of switching;
//! * **service mode**: a long-running [`ServicePool`] accepts jobs one at a
//!   time behind a bounded admission queue, returns non-blocking
//!   [`JobHandle`]s with progress/cancellation ([`JobControl`]), and shuts
//!   down gracefully (drain in-flight, reject new) — the execution layer of
//!   the `gesmc-serve` HTTP service.
//!
//! Algorithms are selected by open, registry-resolved [`ChainSpec`]s — the
//! engine has no closed algorithm enum.  [`default_registry`] knows the five
//! `gesmc-core` chains *and* the `gesmc-baselines` chains (Global Curveball,
//! the adjacency-list ES baselines); library users with their own chains pass
//! a custom [`ChainRegistry`] to [`run_job_with`] / [`WorkerPool::run_with`].
//!
//! The high-level entry point is [`run_batch`] over a JSON [`Manifest`]
//! (`gesmc batch manifest.json` on the command line); the pieces compose
//! individually for library use:
//!
//! ```
//! use gesmc_engine::{ChainSpec, GraphSource, JobSpec, MemorySink, run_job};
//! use gesmc_graph::gen::gnp;
//! use gesmc_randx::rng_from_seed;
//!
//! let graph = gnp(&mut rng_from_seed(1), 100, 0.05);
//! let chain = ChainSpec::parse("par-global-es?pl=0.01").unwrap();
//! let spec = JobSpec::new("demo", GraphSource::InMemory(graph), chain)
//!     .supersteps(10)
//!     .thinning(2)
//!     .seed(7);
//! let mut sink = MemorySink::new();
//! let report = run_job(&spec, &mut sink, None).unwrap();
//! assert_eq!(report.samples, 5);
//! assert_eq!(sink.store().lock().unwrap().len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod control;
pub mod error;
pub mod external;
pub mod job;
pub mod manifest;
pub mod pool;
pub mod queue;
pub mod service;
pub mod sink;

pub use checkpoint::{Checkpoint, CheckpointReader, CheckpointSink, CheckpointWriter};
pub use control::{JobControl, JobProgress};
pub use error::EngineError;
pub use external::{resume_external_job, run_external_job, ExternalJob, ExternalOutput};
pub use gesmc_core::{ChainError, ChainInfo, ChainRegistry, ChainSpec, ParamValue};
pub use job::{GraphSource, JobSpec, GRAPH_FAMILIES};
pub use manifest::Manifest;
pub use pool::{
    run_job, run_job_controlled, run_job_hooked, run_job_with, JobOutcome, JobReport, WorkerPool,
};
pub use queue::{JobQueue, QueuedJob};
pub use service::{JobHandle, JobState, ServicePool, SubmitError};
pub use sink::{CallbackSink, EdgeListFileSink, MemorySink, NullSink, SampleContext, SampleSink};

use std::sync::OnceLock;

/// The engine's default chain registry: the five `gesmc-core` chains, the
/// `gesmc-baselines` chains (`global-curveball`, `adjacency-es`,
/// `sorted-adjacency-es`), and the out-of-core `seq-es-ext` chain from
/// `gesmc-exmem` (with its store-aware factory, so `--mmap` runs resolve
/// through the same registry).
///
/// Everything that resolves a chain by name without an explicit registry —
/// [`run_job`], [`WorkerPool::run`], [`Manifest::parse`] — uses this set.
/// To run chains of your own, build a [`ChainRegistry`], register them, and
/// use [`run_job_with`] / [`WorkerPool::run_with`].
pub fn default_registry() -> &'static ChainRegistry {
    static REGISTRY: OnceLock<ChainRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut registry = ChainRegistry::with_core_chains();
        gesmc_baselines::register_baselines(&mut registry);
        gesmc_exmem::register(&mut registry);
        registry
    })
}

/// Run every job of `manifest` over its worker pool, streaming thinned
/// samples into per-job edge-list files under `manifest.output_dir`.
///
/// Jobs that fail individually (unreadable input, violated invariants) do not
/// abort the batch; their error is recorded in the corresponding
/// [`JobOutcome`].  Outcomes are returned in manifest order.
pub fn run_batch(manifest: &Manifest) -> Result<Vec<JobOutcome>, EngineError> {
    std::fs::create_dir_all(&manifest.output_dir)?;
    if let Some(dir) = &manifest.checkpoint_dir {
        std::fs::create_dir_all(dir)?;
    }
    let mut queue = JobQueue::new();
    for spec in &manifest.jobs {
        let sink = EdgeListFileSink::new(&manifest.output_dir, &spec.name)?;
        queue.push(QueuedJob::new(spec.clone(), Box::new(sink)));
    }
    Ok(WorkerPool::new(manifest.workers).run(queue))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesmc_graph::gen::gnp;
    use gesmc_randx::rng_from_seed;

    #[test]
    fn default_registry_knows_core_chains_and_baselines() {
        let registry = default_registry();
        assert!(registry.len() >= 7, "expected core chains + baselines, got {}", registry.len());
        for name in [
            "seq-es",
            "seq-global-es",
            "par-es",
            "par-global-es",
            "naive-par-es",
            "global-curveball",
            "adjacency-es",
            "sorted-adjacency-es",
            "seq-es-ext",
        ] {
            assert!(registry.get(name).is_some(), "{name} missing from the default registry");
        }
    }

    #[test]
    fn run_batch_writes_sample_files_for_every_job() {
        let dir = std::env::temp_dir().join("gesmc-engine-batch-test");
        let _ = std::fs::remove_dir_all(&dir);
        let graph = gnp(&mut rng_from_seed(3), 80, 0.08);
        let manifest = Manifest {
            workers: 2,
            output_dir: dir.clone(),
            checkpoint_dir: None,
            jobs: (0..3)
                .map(|i| {
                    JobSpec::new(
                        format!("job{i}"),
                        GraphSource::InMemory(graph.clone()),
                        ChainSpec::new("seq-global-es"),
                    )
                    .supersteps(6)
                    .thinning(3)
                    .seed(i)
                })
                .collect(),
        };
        let outcomes = run_batch(&manifest).unwrap();
        assert_eq!(outcomes.len(), 3);
        for outcome in &outcomes {
            let report = outcome.result.as_ref().expect("job must succeed");
            assert_eq!(report.samples, 2);
        }
        let files: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert_eq!(files.len(), 6, "3 jobs x 2 thinned samples");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
