//! The binary checkpoint format.
//!
//! A checkpoint wraps a [`ChainSnapshot`] (edge array in slot order, raw PRNG
//! stream state, superstep counter, chain configuration) together with the
//! job-level progress needed to continue the *job* — total superstep target,
//! thinning interval, and how many samples were already emitted — so that
//! `resume` re-creates both the chain and the job bookkeeping exactly.
//!
//! ## Layout (version 1, all integers little-endian)
//!
//! ```text
//! magic           8  b"GESMCKP1"
//! version         4  u32 = 1
//! flags           4  u32 (bit 0: prefetch)
//! job name        8 + len   u64 length + UTF-8 bytes
//! algorithm       8 + len   u64 length + UTF-8 bytes (chain name, "SeqES" …)
//! seed            8  u64
//! loop_prob       8  f64 bits
//! supersteps_done 8  u64
//! total           8  u64
//! thinning        8  u64
//! samples_emitted 8  u64
//! rng state      32  4 × u64 (Pcg64 raw words; all-zero = none)
//! aux seed state  8  u64 (SeedSequence raw state; 0 = none)
//! num_nodes       8  u64
//! num_edges       8  u64
//! edges       m × 8  (u32 u, u32 v) per edge, slot order
//! chain spec  8 + len   u64 length + UTF-8 canonical ChainSpec string
//!                       (OPTIONAL trailing field: absent in files written
//!                       before the registry redesign, which therefore keep
//!                       loading; carries chain-specific parameters so
//!                       factories see them again on resume)
//! checksum        8  u64 FNV-1a over all preceding bytes
//! ```

use crate::error::EngineError;
use gesmc_core::{ChainSnapshot, ChainSpec, EdgeSwitching, SnapshotError};
use gesmc_graph::Edge;
use gesmc_randx::RngState;
use std::path::Path;

const MAGIC: &[u8; 8] = b"GESMCKP1";
const VERSION: u32 = 1;
const FLAG_PREFETCH: u32 = 1;

/// A consumer of the periodic checkpoints a running job captures at
/// superstep boundaries.
///
/// [`JobSpec::checkpoint_every`](crate::JobSpec::checkpoint_every) sets the
/// cadence; the driver ([`run_job_hooked`](crate::run_job_hooked)) calls
/// `store` with each capture in addition to (or instead of) writing a
/// `checkpoint_dir` file, so services can route checkpoints through their own
/// storage — a journaled data directory, an object store, a test double.
/// Returning an error fails the job; sinks that prefer to degrade (keep the
/// job running when durable storage hiccups) should absorb their own I/O
/// failures and return `Ok`.
pub trait CheckpointSink: Send {
    /// Persist one captured checkpoint.
    fn store(&mut self, checkpoint: &Checkpoint) -> Result<(), EngineError>;
}

/// A resumable capture of a randomization job.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Name of the checkpointed job.
    pub job_name: String,
    /// The chain state.
    pub snapshot: ChainSnapshot,
    /// The job's full [`ChainSpec`], so chain-specific parameters reach the
    /// factory again on resume.  `None` for checkpoints written before the
    /// registry redesign (their chains take no parameters beyond the
    /// `pl`/`prefetch` pair already carried by the snapshot).
    pub algorithm_spec: Option<ChainSpec>,
    /// The job's total superstep target.
    pub total_supersteps: u64,
    /// The job's thinning interval.
    pub thinning: u64,
    /// Samples already emitted before the checkpoint.
    pub samples_emitted: u64,
}

/// FNV-1a 64-bit hash, the format's integrity checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = FNV_OFFSET;
    fnv1a_update(&mut hash, bytes);
    hash
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold `bytes` into a running FNV-1a state — the incremental form used by
/// the streaming writer/reader, byte-for-byte equivalent to [`fnv1a`] over
/// the concatenation.
fn fnv1a_update(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Byte-buffer reader with bounds-checked primitives.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], EngineError> {
        if self.pos + n > self.bytes.len() {
            return Err(EngineError::Checkpoint(format!(
                "truncated checkpoint: wanted {n} bytes at offset {}, only {} available",
                self.pos,
                self.bytes.len() - self.pos
            )));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, EngineError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("length checked")))
    }

    fn u64(&mut self) -> Result<u64, EngineError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("length checked")))
    }

    fn string(&mut self) -> Result<String, EngineError> {
        let len = self.u64()? as usize;
        if len > self.bytes.len() {
            return Err(EngineError::Checkpoint(format!("implausible string length {len}")));
        }
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| EngineError::Checkpoint("non-UTF-8 string field".to_string()))
    }
}

impl Checkpoint {
    /// Capture a running chain together with its job progress.
    ///
    /// Fails with [`SnapshotError::Unsupported`] (wrapped in
    /// [`EngineError::Snapshot`]) for chains that do not support snapshots.
    pub fn capture(
        job_name: &str,
        chain: &dyn EdgeSwitching,
        algorithm: &ChainSpec,
        total_supersteps: u64,
        thinning: u64,
        samples_emitted: u64,
    ) -> Result<Self, EngineError> {
        let snapshot = chain
            .snapshot()
            .ok_or(EngineError::Snapshot(SnapshotError::Unsupported(chain.name())))?;
        Ok(Self {
            job_name: job_name.to_string(),
            snapshot,
            algorithm_spec: Some(algorithm.clone()),
            total_supersteps,
            thinning,
            samples_emitted,
        })
    }

    /// The chain name recorded in the checkpoint header (e.g. `SeqES`,
    /// `GlobalCurveball`) — resolvable by any
    /// [`ChainRegistry`](gesmc_core::ChainRegistry) that registered the
    /// chain, including [`default_registry`](crate::default_registry).
    pub fn chain_name(&self) -> &str {
        &self.snapshot.algorithm
    }

    /// The [`ChainSpec`] to rebuild the chain from on resume: the stored
    /// spec when the file carries one, otherwise (legacy files) a bare spec
    /// naming the chain via the header's chain name, which every registry
    /// spelling resolves.
    pub fn chain_spec(&self) -> ChainSpec {
        self.algorithm_spec.clone().unwrap_or_else(|| ChainSpec::new(self.chain_name()))
    }

    /// Everything before the edge payload, with `num_edges` as the declared
    /// edge count.  Shared by [`to_bytes`](Self::to_bytes) and the streaming
    /// [`CheckpointWriter`] so the two paths are byte-identical by
    /// construction.
    fn encode_prefix(&self, num_edges: u64) -> Vec<u8> {
        let snap = &self.snapshot;
        let mut out = Vec::with_capacity(128);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        let flags = if snap.prefetch { FLAG_PREFETCH } else { 0 };
        out.extend_from_slice(&flags.to_le_bytes());
        for s in [&self.job_name, &snap.algorithm] {
            out.extend_from_slice(&(s.len() as u64).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        out.extend_from_slice(&snap.seed.to_le_bytes());
        out.extend_from_slice(&snap.loop_probability.to_bits().to_le_bytes());
        out.extend_from_slice(&snap.supersteps_done.to_le_bytes());
        out.extend_from_slice(&self.total_supersteps.to_le_bytes());
        out.extend_from_slice(&self.thinning.to_le_bytes());
        out.extend_from_slice(&self.samples_emitted.to_le_bytes());
        for word in snap.rng.to_words() {
            out.extend_from_slice(&word.to_le_bytes());
        }
        out.extend_from_slice(&snap.aux_seed_state.to_le_bytes());
        out.extend_from_slice(&(snap.num_nodes as u64).to_le_bytes());
        out.extend_from_slice(&num_edges.to_le_bytes());
        out
    }

    /// The optional trailing chain-spec field (empty when absent, so legacy
    /// round-trips stay byte-identical).  Shared with [`CheckpointWriter`].
    fn encode_spec_tail(&self) -> Vec<u8> {
        match &self.algorithm_spec {
            None => Vec::new(),
            Some(spec) => {
                let text = spec.to_string();
                let mut out = Vec::with_capacity(8 + text.len());
                out.extend_from_slice(&(text.len() as u64).to_le_bytes());
                out.extend_from_slice(text.as_bytes());
                out
            }
        }
    }

    /// Serialise to the binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let snap = &self.snapshot;
        let mut out = self.encode_prefix(snap.edges.len() as u64);
        out.reserve(snap.edges.len() * 8 + 24);
        for edge in &snap.edges {
            out.extend_from_slice(&edge.u().to_le_bytes());
            out.extend_from_slice(&edge.v().to_le_bytes());
        }
        out.extend_from_slice(&self.encode_spec_tail());
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parse the binary format, verifying magic, version and checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, EngineError> {
        if bytes.len() < MAGIC.len() + 8 {
            return Err(EngineError::Checkpoint("file too short to be a checkpoint".to_string()));
        }
        let (payload, checksum_bytes) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(checksum_bytes.try_into().expect("length checked"));
        let computed = fnv1a(payload);
        if stored != computed {
            return Err(EngineError::Checkpoint(format!(
                "checksum mismatch (stored {stored:#018x}, computed {computed:#018x}): \
                 the file is corrupt or truncated"
            )));
        }

        let mut cursor = Cursor { bytes: payload, pos: 0 };
        if cursor.take(MAGIC.len())? != MAGIC {
            return Err(EngineError::Checkpoint("bad magic: not a gesmc checkpoint".to_string()));
        }
        let version = cursor.u32()?;
        if version != VERSION {
            return Err(EngineError::Checkpoint(format!(
                "unsupported checkpoint version {version} (this build reads version {VERSION})"
            )));
        }
        let flags = cursor.u32()?;
        let job_name = cursor.string()?;
        // The chain name is resolved against a registry at *build* time, not
        // here: a checkpoint of a chain this build does not know still parses
        // (and resuming it reports the unknown name with the known list).
        let algorithm = cursor.string()?;
        let seed = cursor.u64()?;
        let loop_probability = f64::from_bits(cursor.u64()?);
        if !(0.0..1.0).contains(&loop_probability) {
            return Err(EngineError::Checkpoint(format!(
                "loop probability {loop_probability} outside [0, 1)"
            )));
        }
        let supersteps_done = cursor.u64()?;
        let total_supersteps = cursor.u64()?;
        let thinning = cursor.u64()?;
        let samples_emitted = cursor.u64()?;
        let mut words = [0u64; 4];
        for word in &mut words {
            *word = cursor.u64()?;
        }
        let aux_seed_state = cursor.u64()?;
        let num_nodes = cursor.u64()? as usize;
        let num_edges = cursor.u64()? as usize;
        // The length field is untrusted (FNV-1a is not tamper-proof); cap the
        // allocation by what the payload can actually hold so an implausible
        // count fails via the bounds-checked reads instead of an OOM/abort.
        let remaining = payload.len().saturating_sub(cursor.pos);
        let mut edges = Vec::with_capacity(num_edges.min(remaining / 8));
        for _ in 0..num_edges {
            let u = u32::from_le_bytes(cursor.take(4)?.try_into().expect("length checked"));
            let v = u32::from_le_bytes(cursor.take(4)?.try_into().expect("length checked"));
            edges.push(Edge::new(u, v));
        }
        // Files from before the registry redesign end right after the edge
        // list; newer files append the canonical chain spec.
        let algorithm_spec = if cursor.pos == payload.len() {
            None
        } else {
            let text = cursor.string()?;
            Some(ChainSpec::parse(&text).map_err(|e| {
                EngineError::Checkpoint(format!("malformed chain spec {text:?}: {e}"))
            })?)
        };
        if cursor.pos != payload.len() {
            return Err(EngineError::Checkpoint(format!(
                "{} trailing bytes after edge list",
                payload.len() - cursor.pos
            )));
        }

        let snapshot = ChainSnapshot {
            algorithm,
            num_nodes,
            edges,
            rng: RngState::from_words(words),
            aux_seed_state,
            supersteps_done,
            seed,
            loop_probability,
            prefetch: flags & FLAG_PREFETCH != 0,
        };
        snapshot.validate()?;
        Ok(Self { job_name, snapshot, algorithm_spec, total_supersteps, thinning, samples_emitted })
    }

    /// Write the checkpoint to a file (atomically via a sibling temp file, so
    /// an interruption mid-write never clobbers the previous checkpoint).
    ///
    /// The temp file is fsynced before the rename and the parent directory
    /// after it (best-effort), so a checkpoint that this call acknowledged
    /// survives a power cut, not just a process kill.
    pub fn write_to_file(&self, path: impl AsRef<Path>) -> Result<(), EngineError> {
        let path = path.as_ref();
        let tmp = path.with_extension("ckpt.tmp");
        {
            let mut file = std::fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut file, &self.to_bytes())?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }

    /// Read and parse a checkpoint file.
    pub fn read_from_file(path: impl AsRef<Path>) -> Result<Self, EngineError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| EngineError::Checkpoint(format!("cannot read {}: {e}", path.display())))?;
        Self::from_bytes(&bytes)
    }
}

/// Streams a checkpoint to disk in bounded memory, producing exactly the
/// bytes [`Checkpoint::to_bytes`] would — without ever materialising the
/// edge array.  This is how out-of-core runs checkpoint graphs larger than
/// their memory budget.
///
/// Usage: [`create`](Self::create) with the metadata (`snapshot.edges` is
/// ignored; pass the true count as `num_edges`), [`push_edge`](Self::push_edge)
/// each edge in slot order, then [`finish`](Self::finish).  The file is
/// written to a sibling temp path and renamed into place only after an fsync,
/// matching [`Checkpoint::write_to_file`]'s crash-safety; dropping the writer
/// without finishing removes the temp file.
#[derive(Debug)]
pub struct CheckpointWriter {
    writer: std::io::BufWriter<std::fs::File>,
    hash: u64,
    tmp: std::path::PathBuf,
    path: std::path::PathBuf,
    spec_tail: Vec<u8>,
    declared_edges: u64,
    written_edges: u64,
    finished: bool,
}

impl CheckpointWriter {
    /// Start writing a checkpoint for `meta` declaring `num_edges` edges.
    pub fn create(
        path: impl AsRef<Path>,
        meta: &Checkpoint,
        num_edges: u64,
    ) -> Result<Self, EngineError> {
        let path = path.as_ref().to_path_buf();
        let tmp = path.with_extension("ckpt.tmp");
        let prefix = meta.encode_prefix(num_edges);
        let file = std::fs::File::create(&tmp)?;
        let mut writer = std::io::BufWriter::new(file);
        std::io::Write::write_all(&mut writer, &prefix)?;
        Ok(Self {
            writer,
            hash: fnv1a(&prefix),
            tmp,
            path,
            spec_tail: meta.encode_spec_tail(),
            declared_edges: num_edges,
            written_edges: 0,
            finished: false,
        })
    }

    /// Append the next edge (slot order).
    pub fn push_edge(&mut self, edge: Edge) -> Result<(), EngineError> {
        if self.written_edges == self.declared_edges {
            return Err(EngineError::Checkpoint(format!(
                "checkpoint writer overflow: {} edges declared",
                self.declared_edges
            )));
        }
        let mut buf = [0u8; 8];
        buf[..4].copy_from_slice(&edge.u().to_le_bytes());
        buf[4..].copy_from_slice(&edge.v().to_le_bytes());
        fnv1a_update(&mut self.hash, &buf);
        std::io::Write::write_all(&mut self.writer, &buf)?;
        self.written_edges += 1;
        Ok(())
    }

    /// Write the spec tail and checksum, fsync, and rename into place.
    pub fn finish(mut self) -> Result<(), EngineError> {
        if self.written_edges != self.declared_edges {
            return Err(EngineError::Checkpoint(format!(
                "checkpoint writer finished after {} of {} declared edges",
                self.written_edges, self.declared_edges
            )));
        }
        let tail = std::mem::take(&mut self.spec_tail);
        fnv1a_update(&mut self.hash, &tail);
        std::io::Write::write_all(&mut self.writer, &tail)?;
        std::io::Write::write_all(&mut self.writer, &self.hash.to_le_bytes())?;
        std::io::Write::flush(&mut self.writer)?;
        self.writer.get_ref().sync_all()?;
        std::fs::rename(&self.tmp, &self.path)?;
        self.finished = true;
        if let Some(parent) = self.path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }
}

impl Drop for CheckpointWriter {
    fn drop(&mut self) {
        if !self.finished {
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

/// Streams a checkpoint *from* disk in bounded memory: metadata first, then
/// one edge at a time, then the integrity verdict.
///
/// Unlike [`Checkpoint::from_bytes`] — which verifies the FNV-1a checksum
/// before parsing anything — a streaming reader necessarily hands out edges
/// *before* the checksum at the end of the file can be checked.  Callers must
/// treat everything streamed as tentative until [`finish`](Self::finish)
/// returns `Ok`, and discard any scratch state built from the edges if it
/// does not (the out-of-core resume path deletes its scratch store).
#[derive(Debug)]
pub struct CheckpointReader {
    reader: std::io::BufReader<std::fs::File>,
    hash: u64,
    payload_len: u64,
    pos: u64,
    meta: Checkpoint,
    num_edges: u64,
    edges_read: u64,
}

impl CheckpointReader {
    /// Open a checkpoint file and parse its header fields.
    ///
    /// The returned reader's [`meta`](Self::meta) has an **empty**
    /// `snapshot.edges` and no `algorithm_spec` yet; stream the edges with
    /// [`next_edge`](Self::next_edge) and obtain the completed metadata from
    /// [`finish`](Self::finish).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, EngineError> {
        let path = path.as_ref();
        let file = std::fs::File::open(path)
            .map_err(|e| EngineError::Checkpoint(format!("cannot read {}: {e}", path.display())))?;
        let file_len = file.metadata()?.len();
        if file_len < (MAGIC.len() + 8) as u64 {
            return Err(EngineError::Checkpoint("file too short to be a checkpoint".to_string()));
        }
        let mut this = Self {
            reader: std::io::BufReader::new(file),
            hash: FNV_OFFSET,
            payload_len: file_len - 8,
            pos: 0,
            meta: Checkpoint {
                job_name: String::new(),
                snapshot: ChainSnapshot {
                    algorithm: String::new(),
                    num_nodes: 0,
                    edges: Vec::new(),
                    rng: RngState::default(),
                    aux_seed_state: 0,
                    supersteps_done: 0,
                    seed: 0,
                    loop_probability: 0.0,
                    prefetch: false,
                },
                algorithm_spec: None,
                total_supersteps: 0,
                thinning: 0,
                samples_emitted: 0,
            },
            num_edges: 0,
            edges_read: 0,
        };

        let mut magic = [0u8; 8];
        this.take_into(&mut magic)?;
        if &magic != MAGIC {
            return Err(EngineError::Checkpoint("bad magic: not a gesmc checkpoint".to_string()));
        }
        let version = this.u32()?;
        if version != VERSION {
            return Err(EngineError::Checkpoint(format!(
                "unsupported checkpoint version {version} (this build reads version {VERSION})"
            )));
        }
        let flags = this.u32()?;
        this.meta.snapshot.prefetch = flags & FLAG_PREFETCH != 0;
        this.meta.job_name = this.string()?;
        this.meta.snapshot.algorithm = this.string()?;
        this.meta.snapshot.seed = this.u64()?;
        let loop_probability = f64::from_bits(this.u64()?);
        if !(0.0..1.0).contains(&loop_probability) {
            return Err(EngineError::Checkpoint(format!(
                "loop probability {loop_probability} outside [0, 1)"
            )));
        }
        this.meta.snapshot.loop_probability = loop_probability;
        this.meta.snapshot.supersteps_done = this.u64()?;
        this.meta.total_supersteps = this.u64()?;
        this.meta.thinning = this.u64()?;
        this.meta.samples_emitted = this.u64()?;
        let mut words = [0u64; 4];
        for word in &mut words {
            *word = this.u64()?;
        }
        this.meta.snapshot.rng = RngState::from_words(words);
        this.meta.snapshot.aux_seed_state = this.u64()?;
        this.meta.snapshot.num_nodes = this.u64()? as usize;
        this.num_edges = this.u64()?;
        let fits = this
            .num_edges
            .checked_mul(8)
            .and_then(|b| this.pos.checked_add(b))
            .is_some_and(|end| end <= this.payload_len);
        if !fits {
            return Err(EngineError::Checkpoint(format!(
                "truncated checkpoint: header claims {} edges but only {} payload bytes follow",
                this.num_edges,
                this.payload_len - this.pos
            )));
        }
        Ok(this)
    }

    /// The header metadata (edge list empty, chain spec not yet read).
    pub fn meta(&self) -> &Checkpoint {
        &self.meta
    }

    /// Number of edges declared by the header.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Read the next edge in slot order.
    pub fn next_edge(&mut self) -> Result<Edge, EngineError> {
        if self.edges_read == self.num_edges {
            return Err(EngineError::Checkpoint(format!(
                "checkpoint reader overrun: all {} edges already read",
                self.num_edges
            )));
        }
        let mut buf = [0u8; 8];
        self.take_into(&mut buf)?;
        self.edges_read += 1;
        let u = u32::from_le_bytes(buf[..4].try_into().expect("length checked"));
        let v = u32::from_le_bytes(buf[4..].try_into().expect("length checked"));
        Ok(Edge::new(u, v))
    }

    /// Read the optional chain-spec tail, verify the checksum, and return
    /// the completed metadata (still with an empty edge list).
    pub fn finish(mut self) -> Result<Checkpoint, EngineError> {
        if self.edges_read != self.num_edges {
            return Err(EngineError::Checkpoint(format!(
                "checkpoint reader finished after {} of {} declared edges",
                self.edges_read, self.num_edges
            )));
        }
        // Files from before the registry redesign end right after the edge
        // list; newer files append the canonical chain spec.
        if self.pos < self.payload_len {
            let text = self.string()?;
            self.meta.algorithm_spec = Some(ChainSpec::parse(&text).map_err(|e| {
                EngineError::Checkpoint(format!("malformed chain spec {text:?}: {e}"))
            })?);
        }
        if self.pos != self.payload_len {
            return Err(EngineError::Checkpoint(format!(
                "{} trailing bytes after edge list",
                self.payload_len - self.pos
            )));
        }
        let mut checksum = [0u8; 8];
        std::io::Read::read_exact(&mut self.reader, &mut checksum)
            .map_err(|e| EngineError::Checkpoint(format!("cannot read checksum: {e}")))?;
        let stored = u64::from_le_bytes(checksum);
        if stored != self.hash {
            return Err(EngineError::Checkpoint(format!(
                "checksum mismatch (stored {stored:#018x}, computed {:#018x}): \
                 the file is corrupt or truncated",
                self.hash
            )));
        }
        Ok(self.meta)
    }

    /// Read exactly `buf.len()` payload bytes, folding them into the
    /// running checksum.
    fn take_into(&mut self, buf: &mut [u8]) -> Result<(), EngineError> {
        let n = buf.len() as u64;
        if self.pos + n > self.payload_len {
            return Err(EngineError::Checkpoint(format!(
                "truncated checkpoint: wanted {n} bytes at offset {}, only {} available",
                self.pos,
                self.payload_len - self.pos
            )));
        }
        std::io::Read::read_exact(&mut self.reader, buf).map_err(|e| {
            EngineError::Checkpoint(format!("read failed at offset {}: {e}", self.pos))
        })?;
        fnv1a_update(&mut self.hash, buf);
        self.pos += n;
        Ok(())
    }

    fn u32(&mut self) -> Result<u32, EngineError> {
        let mut buf = [0u8; 4];
        self.take_into(&mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }

    fn u64(&mut self) -> Result<u64, EngineError> {
        let mut buf = [0u8; 8];
        self.take_into(&mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    fn string(&mut self) -> Result<String, EngineError> {
        let len = self.u64()?;
        if len > self.payload_len {
            return Err(EngineError::Checkpoint(format!("implausible string length {len}")));
        }
        let mut buf = vec![0u8; len as usize];
        self.take_into(&mut buf)?;
        String::from_utf8(buf)
            .map_err(|_| EngineError::Checkpoint("non-UTF-8 string field".to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_registry;
    use crate::job::GraphSource;
    use gesmc_core::ChainSpec;
    use gesmc_graph::gen::gnp;
    use gesmc_randx::rng_from_seed;

    fn captured_checkpoint(name: &str) -> Checkpoint {
        let graph = gnp(&mut rng_from_seed(1), 60, 0.1);
        let spec = ChainSpec::new(name);
        let mut chain = default_registry().build(&spec, graph, 9).unwrap();
        chain.run_supersteps(4);
        Checkpoint::capture("demo", chain.as_ref(), &spec, 12, 3, 1).unwrap()
    }

    #[test]
    fn bytes_roundtrip_for_every_registered_chain() {
        // Core chains and baselines alike: every registered chain is
        // snapshot-capable and round-trips through the binary format.
        for info in default_registry().infos() {
            let ckpt = captured_checkpoint(info.name);
            let parsed = Checkpoint::from_bytes(&ckpt.to_bytes())
                .unwrap_or_else(|e| panic!("{}: {e}", info.name));
            assert_eq!(parsed, ckpt, "{} roundtrip", info.name);
            assert_eq!(parsed.chain_name(), info.chain_name);
            assert_eq!(default_registry().resolve(parsed.chain_name()).unwrap().name, info.name);
        }
    }

    #[test]
    fn file_roundtrip() {
        let path = std::env::temp_dir().join("gesmc-ckpt-test.ckpt");
        let ckpt = captured_checkpoint("seq-global-es");
        ckpt.write_to_file(&path).unwrap();
        let read = Checkpoint::read_from_file(&path).unwrap();
        assert_eq!(read, ckpt);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corruption_is_detected() {
        let ckpt = captured_checkpoint("seq-es");
        let bytes = ckpt.to_bytes();

        // Flip one bit anywhere in the payload.
        let mut corrupt = bytes.clone();
        corrupt[bytes.len() / 2] ^= 0x10;
        assert!(matches!(Checkpoint::from_bytes(&corrupt), Err(EngineError::Checkpoint(_))));

        // Truncate.
        assert!(Checkpoint::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        assert!(Checkpoint::from_bytes(&[]).is_err());

        // Wrong magic (checksum recomputed to isolate the magic check).
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        let len = wrong_magic.len();
        let sum = fnv1a(&wrong_magic[..len - 8]);
        wrong_magic[len - 8..].copy_from_slice(&sum.to_le_bytes());
        match Checkpoint::from_bytes(&wrong_magic) {
            Err(EngineError::Checkpoint(msg)) => assert!(msg.contains("magic")),
            other => panic!("expected bad-magic error, got {other:?}"),
        }
    }

    #[test]
    fn capture_rejects_unsupported_chains() {
        // A chain whose snapshot() returns the default None.
        struct NoSnapshot;
        impl EdgeSwitching for NoSnapshot {
            fn name(&self) -> &'static str {
                "NoSnapshot"
            }
            fn num_edges(&self) -> usize {
                0
            }
            fn graph(&self) -> gesmc_graph::EdgeListGraph {
                gesmc_graph::EdgeListGraph::new(0, vec![]).unwrap()
            }
            fn superstep(&mut self) -> gesmc_core::SuperstepStats {
                gesmc_core::SuperstepStats::default()
            }
        }
        assert!(matches!(
            Checkpoint::capture("x", &NoSnapshot, &ChainSpec::new("no-snapshot"), 1, 1, 0),
            Err(EngineError::Snapshot(SnapshotError::Unsupported("NoSnapshot")))
        ));
    }

    #[test]
    fn chain_params_roundtrip_and_legacy_files_still_parse() {
        let spec = ChainSpec::parse("par-global-es?pl=0.125").unwrap();
        let graph = gnp(&mut rng_from_seed(2), 40, 0.1);
        let mut chain = default_registry().build(&spec, graph, 5).unwrap();
        chain.run_supersteps(2);
        let ckpt = Checkpoint::capture("params", chain.as_ref(), &spec, 8, 0, 0).unwrap();

        // The spec (with its parameters) survives the binary format and is
        // what resume rebuilds from.
        let parsed = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(parsed.algorithm_spec, Some(spec.clone()));
        assert_eq!(parsed.chain_spec(), spec);

        // A pre-redesign file — no trailing chain-spec field — still parses;
        // resume falls back to the header's chain name.
        let mut legacy = ckpt.clone();
        legacy.algorithm_spec = None;
        let parsed = Checkpoint::from_bytes(&legacy.to_bytes()).unwrap();
        assert_eq!(parsed.algorithm_spec, None);
        assert_eq!(parsed.chain_spec(), ChainSpec::new("ParGlobalES"));
        assert_eq!(
            default_registry().resolve(&parsed.chain_spec().name).unwrap().name,
            "par-global-es"
        );
    }

    #[test]
    fn unknown_chain_names_parse_but_fail_to_resolve() {
        // A checkpoint written by a build with an extra chain still parses;
        // the name only fails at resolution time, with the known list.
        let mut ckpt = captured_checkpoint("seq-es");
        ckpt.snapshot.algorithm = "FutureChain".to_string();
        let parsed = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(parsed.chain_name(), "FutureChain");
        assert!(default_registry().resolve(parsed.chain_name()).is_err());
    }

    #[test]
    fn streamed_writer_matches_to_bytes_byte_for_byte() {
        let dir = std::env::temp_dir().join("gesmc-ckpt-stream-writer");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["seq-es", "seq-es-ext", "par-global-es"] {
            let ckpt = captured_checkpoint(name);
            let path = dir.join(format!("{name}.ckpt"));

            // Stream from a metadata-only copy (edges empty) plus the edge
            // iterator — the shape the out-of-core runner uses.
            let mut meta = ckpt.clone();
            meta.snapshot.edges = Vec::new();
            let mut writer =
                CheckpointWriter::create(&path, &meta, ckpt.snapshot.edges.len() as u64).unwrap();
            for &edge in &ckpt.snapshot.edges {
                writer.push_edge(edge).unwrap();
            }
            writer.finish().unwrap();

            assert_eq!(std::fs::read(&path).unwrap(), ckpt.to_bytes(), "{name}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streamed_writer_enforces_the_declared_edge_count() {
        let dir = std::env::temp_dir().join("gesmc-ckpt-stream-count");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = captured_checkpoint("seq-es");
        let edge = ckpt.snapshot.edges[0];

        let path = dir.join("short.ckpt");
        let writer = CheckpointWriter::create(&path, &ckpt, 2).unwrap();
        assert!(writer.finish().is_err(), "finish before all edges must fail");
        assert!(!path.exists(), "unfinished writer must not publish a file");

        let mut writer = CheckpointWriter::create(&path, &ckpt, 1).unwrap();
        writer.push_edge(edge).unwrap();
        assert!(writer.push_edge(edge).is_err(), "overflowing the declared count must fail");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_reader_roundtrips_and_verifies_the_checksum() {
        let dir = std::env::temp_dir().join("gesmc-ckpt-stream-reader");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = captured_checkpoint("seq-es-ext");
        let path = dir.join("job.ckpt");
        ckpt.write_to_file(&path).unwrap();

        let mut reader = CheckpointReader::open(&path).unwrap();
        assert_eq!(reader.meta().job_name, ckpt.job_name);
        assert_eq!(reader.meta().snapshot.algorithm, "SeqESExt");
        assert_eq!(reader.meta().snapshot.rng, ckpt.snapshot.rng);
        assert_eq!(reader.num_edges(), ckpt.snapshot.edges.len() as u64);
        let mut edges = Vec::new();
        for _ in 0..reader.num_edges() {
            edges.push(reader.next_edge().unwrap());
        }
        let mut meta = reader.finish().unwrap();
        assert_eq!(edges, ckpt.snapshot.edges);
        meta.snapshot.edges = edges;
        assert_eq!(meta, ckpt, "streamed read reassembles the exact checkpoint");

        // A flipped payload bit parses field-by-field but fails at finish().
        let mut corrupt = ckpt.to_bytes();
        let flip = corrupt.len() - 20; // inside the edge payload / spec tail
        corrupt[flip] ^= 0x01;
        std::fs::write(&path, &corrupt).unwrap();
        let mut reader = CheckpointReader::open(&path).unwrap();
        for _ in 0..reader.num_edges() {
            let _ = reader.next_edge();
        }
        assert!(reader.finish().is_err(), "corruption must surface at finish()");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_spec_fields_survive() {
        let ckpt = captured_checkpoint("par-global-es");
        let parsed = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(parsed.job_name, "demo");
        assert_eq!(parsed.total_supersteps, 12);
        assert_eq!(parsed.thinning, 3);
        assert_eq!(parsed.samples_emitted, 1);
        assert_eq!(parsed.snapshot.supersteps_done, 4);
        // The snapshot graph is usable as a resume source.
        let source = GraphSource::InMemory(parsed.snapshot.graph().unwrap());
        assert!(source.load().is_ok());
    }
}
