//! Reference baselines the paper compares against.
//!
//! The runtime table (Fig. 4) pits the paper's hash-set based implementations
//! against two pre-existing adjacency-list based codes, NetworKit and
//! Gengraph.  Neither can be vendored here, so this crate re-implements the
//! relevant data-structure designs in Rust:
//!
//! * [`AdjacencyListES`] — ES-MC on an unsorted adjacency list whose edge
//!   existence check scans the smaller neighbourhood (the NetworKit-style
//!   design the paper describes in Sec. 5.2);
//! * [`SortedAdjacencyES`] — ES-MC on sorted adjacency vectors with binary
//!   search for existence and ordered insertion/removal (the Gengraph /
//!   Viger–Latapy-style design);
//! * [`GlobalCurveball`] — the Global Curveball chain (related work
//!   \[42\]/\[46\]),
//!   which trades whole neighbourhoods between random node pairs; included as
//!   the alternative randomisation scheme the paper discusses.
//!
//! All baselines implement the common
//! [`EdgeSwitching`](gesmc_core::EdgeSwitching) interface, so the
//! benchmark harness can time them side by side with `SeqES`, `SeqGlobalES`,
//! `NaiveParES` and `ParGlobalES`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjacency_es;
pub mod curveball;
pub mod registry;

pub use adjacency_es::{AdjacencyListES, SortedAdjacencyES};
pub use curveball::GlobalCurveball;
pub use registry::register_baselines;
