//! Adjacency-list based sequential ES-MC baselines.
//!
//! These deliberately reproduce the data-structure trade-off of the existing
//! implementations the paper benchmarks against (Fig. 4): the chain logic is
//! identical to `SeqES`, but edge existence queries and rewirings go through
//! adjacency structures instead of a hash set, which costs `O(deg)` (unsorted
//! scan) or `O(log deg)` plus `O(deg)` shifting (sorted vectors) per
//! operation.  On graphs with high-degree nodes this is the dominating cost,
//! which is exactly the effect the runtime table demonstrates.

use gesmc_core::{
    switch_targets, ChainSnapshot, EdgeSwitching, SnapshotError, SuperstepStats, SwitchRequest,
    SwitchingConfig,
};
use gesmc_graph::{Edge, EdgeListGraph, Node};
use gesmc_randx::bounded::UniformIndex;
use gesmc_randx::{rng_from_seed, Rng, RngState};
use rand::Rng as _;
use std::time::Instant;

/// Shared implementation detail: the two baselines differ only in how the
/// neighbourhood vectors are maintained (unsorted vs sorted).
struct AdjacencyChain {
    num_nodes: usize,
    edges: Vec<Edge>,
    neighbors: Vec<Vec<Node>>,
    sorted: bool,
    rng: Rng,
    supersteps_done: u64,
    config: SwitchingConfig,
}

impl AdjacencyChain {
    fn new(graph: EdgeListGraph, config: SwitchingConfig, sorted: bool) -> Self {
        let num_nodes = graph.num_nodes();
        let edges = graph.into_edges();
        Self {
            num_nodes,
            neighbors: Self::adjacency(num_nodes, &edges, sorted),
            edges,
            sorted,
            rng: rng_from_seed(config.seed),
            supersteps_done: 0,
            config,
        }
    }

    fn adjacency(num_nodes: usize, edges: &[Edge], sorted: bool) -> Vec<Vec<Node>> {
        let mut neighbors: Vec<Vec<Node>> = vec![Vec::new(); num_nodes];
        for e in edges {
            neighbors[e.u() as usize].push(e.v());
            neighbors[e.v() as usize].push(e.u());
        }
        if sorted {
            for list in &mut neighbors {
                list.sort_unstable();
            }
        }
        neighbors
    }

    fn has_edge(&self, u: Node, v: Node) -> bool {
        let (a, b) = if self.neighbors[u as usize].len() <= self.neighbors[v as usize].len() {
            (u, v)
        } else {
            (v, u)
        };
        let list = &self.neighbors[a as usize];
        if self.sorted {
            list.binary_search(&b).is_ok()
        } else {
            list.contains(&b)
        }
    }

    fn remove_half_edge(&mut self, from: Node, to: Node) {
        let list = &mut self.neighbors[from as usize];
        if self.sorted {
            if let Ok(pos) = list.binary_search(&to) {
                list.remove(pos);
            }
        } else if let Some(pos) = list.iter().position(|&x| x == to) {
            list.swap_remove(pos);
        }
    }

    fn insert_half_edge(&mut self, from: Node, to: Node) {
        let list = &mut self.neighbors[from as usize];
        if self.sorted {
            let pos = list.partition_point(|&x| x < to);
            list.insert(pos, to);
        } else {
            list.push(to);
        }
    }

    fn apply(&mut self, request: SwitchRequest) -> bool {
        let e1 = self.edges[request.i];
        let e2 = self.edges[request.j];
        let (e3, e4) = switch_targets(e1, e2, request.g);
        if e3.is_loop() || e4.is_loop() {
            return false;
        }
        if self.has_edge(e3.u(), e3.v()) || self.has_edge(e4.u(), e4.v()) {
            return false;
        }
        for e in [e1, e2] {
            self.remove_half_edge(e.u(), e.v());
            self.remove_half_edge(e.v(), e.u());
        }
        for e in [e3, e4] {
            self.insert_half_edge(e.u(), e.v());
            self.insert_half_edge(e.v(), e.u());
        }
        self.edges[request.i] = e3;
        self.edges[request.j] = e4;
        true
    }

    fn run_switches(&mut self, count: usize) -> usize {
        let m = self.edges.len();
        if m < 2 {
            return 0;
        }
        let sampler = UniformIndex::new(m as u64);
        let mut applied = 0usize;
        for _ in 0..count {
            let (i, j) = sampler.sample_distinct_pair(&mut self.rng);
            let g: bool = self.rng.gen();
            applied += self.apply(SwitchRequest::new(i as usize, j as usize, g)) as usize;
        }
        applied
    }

    fn superstep(&mut self) -> SuperstepStats {
        let start = Instant::now();
        let requested = self.edges.len() / 2;
        let legal = self.run_switches(requested);
        self.supersteps_done += 1;
        SuperstepStats {
            requested,
            legal,
            illegal: requested - legal,
            rounds: 1,
            round_durations: vec![start.elapsed()],
            duration: start.elapsed(),
        }
    }

    fn graph(&self) -> EdgeListGraph {
        EdgeListGraph::from_edges_unchecked(self.num_nodes, self.edges.clone())
    }

    /// The trajectory depends on the edge array (switch requests index into
    /// it) and the PRNG stream; the adjacency vectors are an index over the
    /// edge array whose *internal order* never influences a decision
    /// (membership scans and binary searches only), so restoring rebuilds
    /// them from the captured edges.
    fn snapshot(&self, algorithm: &'static str) -> ChainSnapshot {
        ChainSnapshot {
            algorithm: algorithm.to_string(),
            num_nodes: self.num_nodes,
            edges: self.edges.clone(),
            rng: RngState::capture(&self.rng),
            aux_seed_state: 0,
            supersteps_done: self.supersteps_done,
            seed: self.config.seed,
            loop_probability: self.config.loop_probability,
            prefetch: self.config.prefetch,
        }
    }

    fn restore(
        &mut self,
        algorithm: &'static str,
        snapshot: &ChainSnapshot,
    ) -> Result<(), SnapshotError> {
        snapshot.check_algorithm(algorithm)?;
        snapshot.validate()?;
        self.num_nodes = snapshot.num_nodes;
        self.edges = snapshot.edges.clone();
        self.neighbors = Self::adjacency(self.num_nodes, &self.edges, self.sorted);
        self.rng = snapshot.rng.restore();
        self.supersteps_done = snapshot.supersteps_done;
        self.config = snapshot.config();
        Ok(())
    }
}

/// NetworKit-style ES-MC baseline: unsorted adjacency lists with linear-scan
/// existence queries.
pub struct AdjacencyListES {
    inner: AdjacencyChain,
}

impl AdjacencyListES {
    /// Create a baseline chain randomising `graph`.
    pub fn new(graph: EdgeListGraph, config: SwitchingConfig) -> Self {
        Self { inner: AdjacencyChain::new(graph, config, false) }
    }

    /// Apply one explicit switch request (testing hook).
    pub fn apply(&mut self, request: SwitchRequest) -> bool {
        self.inner.apply(request)
    }
}

impl EdgeSwitching for AdjacencyListES {
    fn name(&self) -> &'static str {
        "AdjacencyListES"
    }
    fn num_edges(&self) -> usize {
        self.inner.edges.len()
    }
    fn graph(&self) -> EdgeListGraph {
        self.inner.graph()
    }
    fn superstep(&mut self) -> SuperstepStats {
        self.inner.superstep()
    }
    fn snapshot(&self) -> Option<ChainSnapshot> {
        Some(self.inner.snapshot(self.name()))
    }
    fn restore(&mut self, snapshot: &ChainSnapshot) -> Result<(), SnapshotError> {
        self.inner.restore("AdjacencyListES", snapshot)
    }
}

/// Gengraph-style ES-MC baseline: sorted adjacency vectors with binary-search
/// existence queries and ordered insertion/removal.
pub struct SortedAdjacencyES {
    inner: AdjacencyChain,
}

impl SortedAdjacencyES {
    /// Create a baseline chain randomising `graph`.
    pub fn new(graph: EdgeListGraph, config: SwitchingConfig) -> Self {
        Self { inner: AdjacencyChain::new(graph, config, true) }
    }
}

impl EdgeSwitching for SortedAdjacencyES {
    fn name(&self) -> &'static str {
        "SortedAdjacencyES"
    }
    fn num_edges(&self) -> usize {
        self.inner.edges.len()
    }
    fn graph(&self) -> EdgeListGraph {
        self.inner.graph()
    }
    fn superstep(&mut self) -> SuperstepStats {
        self.inner.superstep()
    }
    fn snapshot(&self) -> Option<ChainSnapshot> {
        Some(self.inner.snapshot(self.name()))
    }
    fn restore(&mut self, snapshot: &ChainSnapshot) -> Result<(), SnapshotError> {
        self.inner.restore("SortedAdjacencyES", snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesmc_core::SeqES;
    use gesmc_graph::gen::gnp;

    fn test_graph(seed: u64) -> EdgeListGraph {
        let mut rng = rng_from_seed(seed);
        gnp(&mut rng, 100, 0.08)
    }

    #[test]
    fn both_baselines_preserve_degrees_and_simplicity() {
        for sorted in [false, true] {
            let graph = test_graph(1);
            let degrees = graph.degrees();
            let mut chain: Box<dyn EdgeSwitching> = if sorted {
                Box::new(SortedAdjacencyES::new(graph, SwitchingConfig::with_seed(2)))
            } else {
                Box::new(AdjacencyListES::new(graph, SwitchingConfig::with_seed(2)))
            };
            chain.run_supersteps(5);
            let result = chain.graph();
            assert_eq!(result.degrees(), degrees, "sorted = {sorted}");
            assert!(result.validate().is_ok());
        }
    }

    #[test]
    fn matches_hash_set_implementation_on_identical_requests() {
        // The adjacency-list baseline and SeqES implement the same Markov
        // chain; with identical explicit requests they must produce identical
        // graphs.
        let graph = test_graph(3);
        let m = graph.num_edges();
        let mut reference = SeqES::new(graph.clone(), SwitchingConfig::with_seed(0));
        let mut baseline = AdjacencyListES::new(graph, SwitchingConfig::with_seed(0));
        let mut rng = rng_from_seed(44);
        for _ in 0..5 * m {
            let i = rand::Rng::gen_range(&mut rng, 0..m);
            let mut j = rand::Rng::gen_range(&mut rng, 0..m);
            while j == i {
                j = rand::Rng::gen_range(&mut rng, 0..m);
            }
            let g: bool = rand::Rng::gen(&mut rng);
            let request = SwitchRequest::new(i, j, g);
            assert_eq!(reference.apply(request), baseline.apply(request));
        }
        assert_eq!(reference.graph().canonical_edges(), baseline.graph().canonical_edges());
    }

    #[test]
    fn randomises_the_graph() {
        let graph = test_graph(5);
        let before = graph.canonical_edges();
        let mut chain = SortedAdjacencyES::new(graph, SwitchingConfig::with_seed(6));
        let stats = chain.run_supersteps(3);
        assert!(stats.total_legal() > 0);
        assert_ne!(chain.graph().canonical_edges(), before);
    }

    #[test]
    fn tiny_graphs_do_not_panic() {
        let graph = EdgeListGraph::new(2, vec![Edge::new(0, 1)]).unwrap();
        let mut chain = AdjacencyListES::new(graph, SwitchingConfig::with_seed(7));
        assert_eq!(chain.superstep().legal, 0);
    }

    #[test]
    fn resume_is_bit_identical_for_both_variants() {
        fn check(make: impl Fn(EdgeListGraph) -> Box<dyn EdgeSwitching>) {
            let graph = test_graph(11);
            let mut uninterrupted = make(graph.clone());
            uninterrupted.run_supersteps(7);

            let mut interrupted = make(graph);
            interrupted.run_supersteps(3);
            let snap = interrupted.snapshot().unwrap();
            assert_eq!(snap.supersteps_done, 3);

            let mut resumed = make(test_graph(99));
            resumed.restore(&snap).unwrap();
            resumed.run_supersteps(4);
            assert_eq!(resumed.graph().canonical_edges(), uninterrupted.graph().canonical_edges());
        }
        check(|g| Box::new(AdjacencyListES::new(g, SwitchingConfig::with_seed(13))));
        check(|g| Box::new(SortedAdjacencyES::new(g, SwitchingConfig::with_seed(13))));
    }

    #[test]
    fn restore_rejects_the_sibling_variant() {
        // The two variants answer to distinct algorithm names; a snapshot of
        // one must not restore into the other.
        let sorted = SortedAdjacencyES::new(test_graph(1), SwitchingConfig::with_seed(1));
        let snap = sorted.snapshot().unwrap();
        let mut unsorted = AdjacencyListES::new(test_graph(1), SwitchingConfig::with_seed(1));
        assert!(matches!(
            unsorted.restore(&snap),
            Err(gesmc_core::SnapshotError::AlgorithmMismatch { .. })
        ));
    }
}
