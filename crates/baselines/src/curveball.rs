//! Global Curveball trades (related work of the paper, refs. \[42\]/\[46\]).
//!
//! One *global trade* partitions the nodes into random pairs; for each pair
//! `(a, b)` the neighbours exclusive to `a` and exclusive to `b` (excluding
//! `a`/`b` themselves) are pooled and redistributed uniformly at random while
//! keeping each node's degree.  Global Curveball preserves degrees and
//! simplicity just like edge switching but mixes entire neighbourhoods per
//! step; the paper discusses it as the main alternative randomisation scheme
//! (its mixing time relative to ES-MC on undirected graphs is an open
//! question, which is why it is included here as a baseline rather than a
//! contribution).

use gesmc_core::{ChainSnapshot, EdgeSwitching, SnapshotError, SuperstepStats, SwitchingConfig};
use gesmc_graph::{Edge, EdgeListGraph, Node};
use gesmc_randx::permutation::{random_permutation, shuffle_in_place};
use gesmc_randx::{rng_from_seed, Rng, RngState};
use std::collections::HashSet;
use std::time::Instant;

/// Sequential Global Curveball chain.
pub struct GlobalCurveball {
    num_nodes: usize,
    /// Sorted adjacency sets (HashSet per node keeps trade updates simple).
    neighbors: Vec<HashSet<Node>>,
    rng: Rng,
    supersteps_done: u64,
    config: SwitchingConfig,
}

impl GlobalCurveball {
    /// Create a chain randomising `graph`.
    pub fn new(graph: EdgeListGraph, config: SwitchingConfig) -> Self {
        let num_nodes = graph.num_nodes();
        Self {
            num_nodes,
            neighbors: Self::adjacency(num_nodes, graph.edges()),
            rng: rng_from_seed(config.seed),
            supersteps_done: 0,
            config,
        }
    }

    fn adjacency(num_nodes: usize, edges: &[Edge]) -> Vec<HashSet<Node>> {
        let mut neighbors: Vec<HashSet<Node>> = vec![HashSet::new(); num_nodes];
        for e in edges {
            neighbors[e.u() as usize].insert(e.v());
            neighbors[e.v() as usize].insert(e.u());
        }
        neighbors
    }

    /// Perform a single trade between nodes `a` and `b`.
    fn trade(&mut self, a: Node, b: Node) {
        if a == b {
            return;
        }
        let a_idx = a as usize;
        let b_idx = b as usize;
        let adjacent = self.neighbors[a_idx].contains(&b);

        // Disjoint neighbours (excluding each other).  The hash-set iteration
        // order is instance-specific, so sort both lists to keep the chain
        // reproducible for a fixed seed.
        let mut only_a: Vec<Node> = self.neighbors[a_idx]
            .iter()
            .copied()
            .filter(|&x| x != b && !self.neighbors[b_idx].contains(&x))
            .collect();
        let mut only_b: Vec<Node> = self.neighbors[b_idx]
            .iter()
            .copied()
            .filter(|&x| x != a && !self.neighbors[a_idx].contains(&x))
            .collect();
        only_a.sort_unstable();
        only_b.sort_unstable();
        if only_a.is_empty() && only_b.is_empty() {
            return;
        }

        // Pool and redistribute, keeping the per-node counts.
        let keep_a = only_a.len();
        let mut pool: Vec<Node> = only_a.iter().chain(only_b.iter()).copied().collect();
        shuffle_in_place(&mut self.rng, &mut pool);
        let (new_a, new_b) = pool.split_at(keep_a);

        // Remove the old exclusive neighbours.
        for &x in &only_a {
            self.neighbors[a_idx].remove(&x);
            self.neighbors[x as usize].remove(&a);
        }
        for &x in &only_b {
            self.neighbors[b_idx].remove(&x);
            self.neighbors[x as usize].remove(&b);
        }
        // Insert the redistributed ones.
        for &x in new_a {
            self.neighbors[a_idx].insert(x);
            self.neighbors[x as usize].insert(a);
        }
        for &x in new_b {
            self.neighbors[b_idx].insert(x);
            self.neighbors[x as usize].insert(b);
        }
        debug_assert_eq!(adjacent, self.neighbors[a_idx].contains(&b));
    }

    /// Perform one global trade: a random perfect matching of the nodes, one
    /// trade per pair.
    pub fn global_trade(&mut self) {
        let n = self.num_nodes;
        if n < 2 {
            return;
        }
        let perm = random_permutation(&mut self.rng, n);
        for pair in perm.chunks_exact(2) {
            self.trade(pair[0] as Node, pair[1] as Node);
        }
    }

    /// Total number of edges (recomputed from the adjacency sets).
    fn edge_count(&self) -> usize {
        self.neighbors.iter().map(|s| s.len()).sum::<usize>() / 2
    }
}

impl EdgeSwitching for GlobalCurveball {
    fn name(&self) -> &'static str {
        "GlobalCurveball"
    }

    fn num_edges(&self) -> usize {
        self.edge_count()
    }

    fn graph(&self) -> EdgeListGraph {
        let mut edges = Vec::with_capacity(self.edge_count());
        for (u, nbrs) in self.neighbors.iter().enumerate() {
            let u = u as Node;
            for &v in nbrs {
                if u < v {
                    edges.push(Edge::new(u, v));
                }
            }
        }
        EdgeListGraph::from_edges_unchecked(self.num_nodes, edges)
    }

    fn superstep(&mut self) -> SuperstepStats {
        let start = Instant::now();
        let requested = self.num_nodes / 2;
        self.global_trade();
        self.supersteps_done += 1;
        SuperstepStats {
            requested,
            legal: requested,
            illegal: 0,
            rounds: 1,
            round_durations: vec![start.elapsed()],
            duration: start.elapsed(),
        }
    }

    /// The chain's trajectory is a function of the adjacency *sets* and the
    /// PRNG stream alone (each trade sorts the exclusive-neighbour lists
    /// before shuffling), so the snapshot stores the canonical edge set — the
    /// instance-specific hash-set iteration order need not be captured.
    fn snapshot(&self) -> Option<ChainSnapshot> {
        let mut edges = Vec::with_capacity(self.edge_count());
        for (u, nbrs) in self.neighbors.iter().enumerate() {
            let u = u as Node;
            let mut out: Vec<Node> = nbrs.iter().copied().filter(|&v| u < v).collect();
            out.sort_unstable();
            edges.extend(out.into_iter().map(|v| Edge::new(u, v)));
        }
        Some(ChainSnapshot {
            algorithm: self.name().to_string(),
            num_nodes: self.num_nodes,
            edges,
            rng: RngState::capture(&self.rng),
            aux_seed_state: 0,
            supersteps_done: self.supersteps_done,
            seed: self.config.seed,
            loop_probability: self.config.loop_probability,
            prefetch: self.config.prefetch,
        })
    }

    fn restore(&mut self, snapshot: &ChainSnapshot) -> Result<(), SnapshotError> {
        snapshot.check_algorithm(self.name())?;
        snapshot.validate()?;
        self.num_nodes = snapshot.num_nodes;
        self.neighbors = Self::adjacency(snapshot.num_nodes, &snapshot.edges);
        self.rng = snapshot.rng.restore();
        self.supersteps_done = snapshot.supersteps_done;
        self.config = snapshot.config();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesmc_graph::gen::gnp;

    fn test_graph(seed: u64) -> EdgeListGraph {
        let mut rng = rng_from_seed(seed);
        gnp(&mut rng, 120, 0.07)
    }

    #[test]
    fn preserves_degrees_and_simplicity() {
        let graph = test_graph(1);
        let degrees = graph.degrees();
        let mut chain = GlobalCurveball::new(graph, SwitchingConfig::with_seed(2));
        chain.run_supersteps(10);
        let result = chain.graph();
        assert_eq!(result.degrees(), degrees);
        assert!(result.validate().is_ok());
    }

    #[test]
    fn randomises_the_graph() {
        let graph = test_graph(3);
        let before = graph.canonical_edges();
        let mut chain = GlobalCurveball::new(graph, SwitchingConfig::with_seed(4));
        chain.run_supersteps(5);
        assert_ne!(chain.graph().canonical_edges(), before);
    }

    #[test]
    fn single_trade_preserves_adjacency_between_partners() {
        // Star centre trades with a leaf: the edge between them must survive.
        let graph = EdgeListGraph::new(
            5,
            vec![Edge::new(0, 1), Edge::new(0, 2), Edge::new(0, 3), Edge::new(0, 4)],
        )
        .unwrap();
        let degrees = graph.degrees();
        let mut chain = GlobalCurveball::new(graph, SwitchingConfig::with_seed(5));
        chain.trade(0, 1);
        let result = chain.graph();
        assert_eq!(result.degrees(), degrees);
        assert!(result.has_edge_slow(0, 1));
    }

    #[test]
    fn tiny_graphs_do_not_panic() {
        let graph = EdgeListGraph::new(1, vec![]).unwrap();
        let mut chain = GlobalCurveball::new(graph, SwitchingConfig::with_seed(6));
        chain.superstep();
        assert_eq!(chain.graph().num_edges(), 0);
    }

    #[test]
    fn resume_is_bit_identical() {
        let graph = test_graph(8);
        let mut uninterrupted = GlobalCurveball::new(graph.clone(), SwitchingConfig::with_seed(9));
        uninterrupted.run_supersteps(7);

        let mut interrupted = GlobalCurveball::new(graph, SwitchingConfig::with_seed(9));
        interrupted.run_supersteps(3);
        let snap = interrupted.snapshot().unwrap();
        assert_eq!(snap.supersteps_done, 3);

        // Restore into a chain built from an unrelated placeholder graph, as
        // the engine's resume path does.
        let mut resumed = GlobalCurveball::new(test_graph(99), SwitchingConfig::with_seed(1));
        resumed.restore(&snap).unwrap();
        resumed.run_supersteps(4);
        assert_eq!(resumed.graph().canonical_edges(), uninterrupted.graph().canonical_edges());
    }

    #[test]
    fn snapshot_is_deterministic_and_restore_rejects_foreign_algorithms() {
        let chain = GlobalCurveball::new(test_graph(2), SwitchingConfig::with_seed(3));
        // The hash-set iteration order must not leak into the snapshot bytes.
        assert_eq!(chain.snapshot(), chain.snapshot());

        let mut other = GlobalCurveball::new(test_graph(2), SwitchingConfig::with_seed(3));
        let mut foreign = chain.snapshot().unwrap();
        foreign.algorithm = "SeqES".to_string();
        assert!(matches!(
            other.restore(&foreign),
            Err(gesmc_core::SnapshotError::AlgorithmMismatch { .. })
        ));
    }
}
