//! Registry hook: make the baselines reachable by name everywhere.
//!
//! [`register_baselines`] adds this crate's three chains to a
//! [`ChainRegistry`], so the engine, study runner and CLI can select them
//! exactly like the core chains (`gesmc_engine::default_registry()` calls
//! this on top of [`ChainRegistry::with_core_chains`]).

use crate::{AdjacencyListES, GlobalCurveball, SortedAdjacencyES};
use gesmc_core::registry::{ChainInfo, ChainRegistry, COMMON_PARAMS};

/// Register `global-curveball` (alias `curveball`), `adjacency-es`, and
/// `sorted-adjacency-es` into `registry`.
///
/// # Panics
///
/// If any of those names is already registered (see
/// [`ChainRegistry::register`]).
pub fn register_baselines(registry: &mut ChainRegistry) {
    registry.register(ChainInfo {
        name: "global-curveball",
        chain_name: "GlobalCurveball",
        aliases: &["curveball"],
        summary: "sequential Global Curveball: whole-neighbourhood trades over a random perfect \
                  matching (related work [42]/[46])",
        exact: true,
        parallel: false,
        snapshot: true,
        params: COMMON_PARAMS,
        factory: |graph, config, _| Ok(Box::new(GlobalCurveball::new(graph, config))),
    });
    registry.register(ChainInfo {
        name: "adjacency-es",
        chain_name: "AdjacencyListES",
        aliases: &[],
        summary: "NetworKit-style ES-MC on unsorted adjacency lists with linear-scan existence \
                  queries (Fig. 4 baseline)",
        exact: true,
        parallel: false,
        snapshot: true,
        params: COMMON_PARAMS,
        factory: |graph, config, _| Ok(Box::new(AdjacencyListES::new(graph, config))),
    });
    registry.register(ChainInfo {
        name: "sorted-adjacency-es",
        chain_name: "SortedAdjacencyES",
        aliases: &[],
        summary: "Gengraph-style ES-MC on sorted adjacency vectors with binary-search existence \
                  queries (Fig. 4 baseline)",
        exact: true,
        parallel: false,
        snapshot: true,
        params: COMMON_PARAMS,
        factory: |graph, config, _| Ok(Box::new(SortedAdjacencyES::new(graph, config))),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesmc_core::ChainSpec;
    use gesmc_graph::gen::gnp;
    use gesmc_randx::rng_from_seed;

    #[test]
    fn baselines_register_build_and_preserve_degrees() {
        let mut registry = ChainRegistry::with_core_chains();
        register_baselines(&mut registry);
        assert_eq!(registry.len(), 8);
        for name in ["global-curveball", "adjacency-es", "sorted-adjacency-es"] {
            let info = registry.resolve(name).unwrap();
            let graph = gnp(&mut rng_from_seed(1), 80, 0.08);
            let degrees = graph.degrees();
            let mut chain = registry.build(&ChainSpec::new(name), graph, 2).unwrap();
            assert_eq!(chain.name(), info.chain_name);
            chain.superstep();
            assert_eq!(chain.graph().degrees(), degrees, "{name}");
            assert!(chain.snapshot().is_some(), "{name} must be checkpointable");
        }
        assert_eq!(registry.resolve("curveball").unwrap().name, "global-curveball");
    }
}
