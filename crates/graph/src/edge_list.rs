//! The indexed edge-list graph representation used by all switching chains.
//!
//! Edge switching needs exactly two views of the graph (Sec. 5.2/5.3 of the
//! paper): an indexed array of edges `E[1..m]` (to select switch sources
//! uniformly at random) and a set of packed edge identifiers (to answer
//! existence queries and to apply insertions/deletions in expected constant
//! time).  [`EdgeListGraph`] stores the former and can hand out or rebuild the
//! latter; keeping the two synchronised is the responsibility of the chain
//! implementations, which is exercised heavily by the test suites.

use crate::degree::DegreeSequence;
use crate::edge::{Edge, Node, PackedEdge};
use std::collections::HashSet;

/// Error conditions when constructing a simple graph from raw edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references a node `>= n`.
    NodeOutOfRange {
        /// The offending edge.
        edge: Edge,
        /// The number of nodes of the graph.
        nodes: usize,
    },
    /// The edge list contains a self-loop.
    SelfLoop(Edge),
    /// The edge list contains a duplicate edge.
    MultiEdge(Edge),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { edge, nodes } => {
                write!(f, "edge {edge} references a node outside [0, {nodes})")
            }
            GraphError::SelfLoop(e) => write!(f, "self-loop at node {}", e.u()),
            GraphError::MultiEdge(e) => write!(f, "duplicate edge {e}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A simple undirected graph stored as an indexed edge list.
///
/// Invariants (checked by [`EdgeListGraph::new`] and preserved by every
/// switching algorithm in the workspace):
///
/// * all endpoints are `< num_nodes`,
/// * no edge is a self-loop,
/// * no edge appears twice (in either orientation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeListGraph {
    num_nodes: usize,
    edges: Vec<Edge>,
}

impl EdgeListGraph {
    /// Build a graph after validating simplicity.
    pub fn new(num_nodes: usize, edges: Vec<Edge>) -> Result<Self, GraphError> {
        let mut seen: HashSet<PackedEdge> = HashSet::with_capacity(edges.len() * 2);
        for &e in &edges {
            if e.v() as usize >= num_nodes {
                return Err(GraphError::NodeOutOfRange { edge: e, nodes: num_nodes });
            }
            if e.is_loop() {
                return Err(GraphError::SelfLoop(e));
            }
            if !seen.insert(e.pack()) {
                return Err(GraphError::MultiEdge(e));
            }
        }
        Ok(Self { num_nodes, edges })
    }

    /// Build a graph without validating invariants.
    ///
    /// Intended for generators that construct provably simple edge sets and
    /// for the switching algorithms, which preserve simplicity by
    /// construction.  Debug builds still verify the invariants.
    pub fn from_edges_unchecked(num_nodes: usize, edges: Vec<Edge>) -> Self {
        let g = Self { num_nodes, edges };
        debug_assert!(g.validate().is_ok(), "from_edges_unchecked received a non-simple graph");
        g
    }

    /// Build a graph from raw `(u, v)` pairs, dropping loops and duplicates.
    ///
    /// This mirrors the clean-up the paper applies to the NetRep graphs:
    /// directed edges become undirected, self-loops and multi-edges are
    /// removed.
    pub fn from_pairs_dedup(
        num_nodes: usize,
        pairs: impl IntoIterator<Item = (Node, Node)>,
    ) -> Self {
        let mut seen: HashSet<PackedEdge> = HashSet::new();
        let mut edges = Vec::new();
        for (a, b) in pairs {
            if a == b || a as usize >= num_nodes || b as usize >= num_nodes {
                continue;
            }
            let e = Edge::new(a, b);
            if seen.insert(e.pack()) {
                edges.push(e);
            }
        }
        Self { num_nodes, edges }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Graph density `m / C(n, 2)`.
    pub fn density(&self) -> f64 {
        if self.num_nodes < 2 {
            return 0.0;
        }
        let possible = self.num_nodes as f64 * (self.num_nodes as f64 - 1.0) / 2.0;
        self.edges.len() as f64 / possible
    }

    /// The `i`-th edge (`E[i]` in the paper's notation, zero-based here).
    #[inline]
    pub fn edge(&self, i: usize) -> Edge {
        self.edges[i]
    }

    /// All edges as a slice.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Mutable access to the edge array; used by switching algorithms to
    /// rewire edges in place.  Callers are responsible for preserving the
    /// simplicity invariant.
    #[inline]
    pub fn edges_mut(&mut self) -> &mut [Edge] {
        &mut self.edges
    }

    /// Consume the graph and return its edge vector.
    pub fn into_edges(self) -> Vec<Edge> {
        self.edges
    }

    /// Compute the degree of every node.
    pub fn degrees(&self) -> DegreeSequence {
        let mut deg = vec![0u32; self.num_nodes];
        for e in &self.edges {
            deg[e.u() as usize] += 1;
            deg[e.v() as usize] += 1;
        }
        DegreeSequence::new(deg)
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> u32 {
        self.degrees().max_degree()
    }

    /// Average degree `2m / n`.
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            2.0 * self.edges.len() as f64 / self.num_nodes as f64
        }
    }

    /// Packed identifiers of all edges (useful to initialise hash sets).
    pub fn packed_edges(&self) -> Vec<PackedEdge> {
        self.edges.iter().map(|e| e.pack()).collect()
    }

    /// A `HashSet` of packed edges (convenience for tests and baselines).
    pub fn edge_set(&self) -> HashSet<PackedEdge> {
        self.edges.iter().map(|e| e.pack()).collect()
    }

    /// Whether the graph contains edge `{u, v}` (linear scan; use the hash
    /// sets from `gesmc-concurrent` for performant queries).
    pub fn has_edge_slow(&self, u: Node, v: Node) -> bool {
        let e = Edge::new(u, v);
        self.edges.contains(&e)
    }

    /// Verify the simplicity invariants; returns the first violation found.
    pub fn validate(&self) -> Result<(), GraphError> {
        let mut seen: HashSet<PackedEdge> = HashSet::with_capacity(self.edges.len() * 2);
        for &e in &self.edges {
            if e.v() as usize >= self.num_nodes {
                return Err(GraphError::NodeOutOfRange { edge: e, nodes: self.num_nodes });
            }
            if e.is_loop() {
                return Err(GraphError::SelfLoop(e));
            }
            if !seen.insert(e.pack()) {
                return Err(GraphError::MultiEdge(e));
            }
        }
        Ok(())
    }

    /// Whether two graphs have identical degree sequences (the invariant every
    /// switching chain must preserve).
    pub fn same_degrees(&self, other: &EdgeListGraph) -> bool {
        self.num_nodes == other.num_nodes && self.degrees() == other.degrees()
    }

    /// Canonical sorted list of packed edges; two graphs are equal as
    /// unlabelled edge sets iff their canonical forms agree.
    pub fn canonical_edges(&self) -> Vec<PackedEdge> {
        let mut p = self.packed_edges();
        p.sort_unstable();
        p
    }

    /// A 64-bit content fingerprint: FNV-1a over the node count and the
    /// canonical (sorted, packed) edge set.
    ///
    /// Two graphs fingerprint equal iff they are the same labelled graph,
    /// regardless of edge-slot order — the property cache keys and
    /// deduplication need.  (The `gesmc-serve` warm cache keys *generated*
    /// graphs by their canonical generator spec instead, so the generator
    /// never has to run just to compute a key; this method is the
    /// fingerprint to use when the graph itself is in hand.)  Stable across
    /// runs and builds; not cryptographic.
    pub fn fingerprint(&self) -> u64 {
        let mut hasher = gesmc_randx::Fnv1a64::new();
        hasher.write_u64(self.num_nodes as u64);
        for packed in self.canonical_edges() {
            hasher.write_u64(packed);
        }
        hasher.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> EdgeListGraph {
        EdgeListGraph::new(4, vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = path_graph();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge(1), Edge::new(1, 2));
        assert_eq!(g.degrees().degrees(), &[1, 2, 2, 1]);
        assert_eq!(g.max_degree(), 2);
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
        assert!((g.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn new_rejects_loops_multi_edges_and_out_of_range() {
        assert_eq!(
            EdgeListGraph::new(3, vec![Edge::new(1, 1)]),
            Err(GraphError::SelfLoop(Edge::new(1, 1)))
        );
        assert_eq!(
            EdgeListGraph::new(3, vec![Edge::new(0, 1), Edge::new(1, 0)]),
            Err(GraphError::MultiEdge(Edge::new(0, 1)))
        );
        assert!(matches!(
            EdgeListGraph::new(3, vec![Edge::new(0, 3)]),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn from_pairs_dedup_cleans_input() {
        let g = EdgeListGraph::from_pairs_dedup(
            4,
            vec![(0, 1), (1, 0), (2, 2), (1, 2), (3, 7), (1, 2)],
        );
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge_slow(0, 1));
        assert!(g.has_edge_slow(1, 2));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn canonical_edges_are_label_order_independent() {
        let g1 = EdgeListGraph::new(3, vec![Edge::new(0, 1), Edge::new(1, 2)]).unwrap();
        let g2 = EdgeListGraph::new(3, vec![Edge::new(2, 1), Edge::new(1, 0)]).unwrap();
        assert_eq!(g1.canonical_edges(), g2.canonical_edges());
    }

    #[test]
    fn same_degrees_detects_mismatch() {
        let g1 = path_graph();
        let g2 =
            EdgeListGraph::new(4, vec![Edge::new(0, 1), Edge::new(2, 3), Edge::new(0, 2)]).unwrap();
        assert!(!g1.same_degrees(&g2));
        assert!(g1.same_degrees(&g1.clone()));
    }

    #[test]
    fn fingerprint_is_order_independent_and_content_sensitive() {
        let g1 = EdgeListGraph::new(3, vec![Edge::new(0, 1), Edge::new(1, 2)]).unwrap();
        let g2 = EdgeListGraph::new(3, vec![Edge::new(2, 1), Edge::new(1, 0)]).unwrap();
        assert_eq!(g1.fingerprint(), g2.fingerprint(), "slot order must not matter");

        let different_edge = EdgeListGraph::new(3, vec![Edge::new(0, 1), Edge::new(0, 2)]).unwrap();
        assert_ne!(g1.fingerprint(), different_edge.fingerprint());
        // Same edge set over more nodes (isolated node added) is a different
        // labelled graph.
        let more_nodes = EdgeListGraph::new(4, vec![Edge::new(0, 1), Edge::new(1, 2)]).unwrap();
        assert_ne!(g1.fingerprint(), more_nodes.fingerprint());
        // Stable across clones/runs.
        assert_eq!(g1.fingerprint(), g1.clone().fingerprint());
    }

    #[test]
    fn empty_graph() {
        let g = EdgeListGraph::new(0, vec![]).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.density(), 0.0);
        assert_eq!(g.average_degree(), 0.0);
    }
}
