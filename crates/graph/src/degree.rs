//! Degree sequences, graphicality, and degree-derived statistics.
//!
//! A degree sequence `d = (d_1, …, d_n)` is *graphical* if some simple graph
//! realises it.  The Erdős–Gallai theorem characterises graphical sequences,
//! and the Havel–Hakimi algorithm (in
//! [`crate::gen::havel_hakimi`](mod@crate::gen::havel_hakimi))
//! constructs a realisation.  The analysis of `ParGlobalES` (Theorems 2 and 3
//! of the paper) depends on the maximum degree `Δ` and on the collision
//! statistic `P2 = Σ_{u<v} (d_u d_v / m(m−1))²`; both are exposed here.

use crate::edge::Node;

/// A prescribed degree sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegreeSequence {
    degrees: Vec<u32>,
}

impl DegreeSequence {
    /// Wrap a vector of degrees.
    pub fn new(degrees: Vec<u32>) -> Self {
        Self { degrees }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.degrees.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.degrees.is_empty()
    }

    /// Access the raw degrees.
    pub fn degrees(&self) -> &[u32] {
        &self.degrees
    }

    /// Degree of node `v`.
    pub fn degree(&self, v: Node) -> u32 {
        self.degrees[v as usize]
    }

    /// Sum of all degrees (twice the number of edges of any realisation).
    pub fn degree_sum(&self) -> u64 {
        self.degrees.iter().map(|&d| d as u64).sum()
    }

    /// Number of edges `m = (Σ d_i) / 2` of any realisation.
    ///
    /// Returns `None` if the degree sum is odd (no realisation exists).
    pub fn num_edges(&self) -> Option<u64> {
        let s = self.degree_sum();
        if s % 2 == 0 {
            Some(s / 2)
        } else {
            None
        }
    }

    /// Maximum degree `Δ`.
    pub fn max_degree(&self) -> u32 {
        self.degrees.iter().copied().max().unwrap_or(0)
    }

    /// Minimum degree.
    pub fn min_degree(&self) -> u32 {
        self.degrees.iter().copied().min().unwrap_or(0)
    }

    /// Average degree `2m / n`.
    pub fn average_degree(&self) -> f64 {
        if self.degrees.is_empty() {
            0.0
        } else {
            self.degree_sum() as f64 / self.degrees.len() as f64
        }
    }

    /// Erdős–Gallai test: is this sequence realisable by a simple graph?
    ///
    /// The sequence is graphical iff the degree sum is even and for every
    /// `k ∈ [n]` (with degrees sorted non-increasingly)
    /// `Σ_{i≤k} d_i ≤ k(k−1) + Σ_{i>k} min(d_i, k)`.
    ///
    /// Runs in `O(n log n)` (dominated by sorting).
    pub fn is_graphical(&self) -> bool {
        let n = self.degrees.len();
        if n == 0 {
            return true;
        }
        // A simple graph on n nodes has maximum degree n - 1.
        if self.degrees.iter().any(|&d| d as usize > n - 1) {
            return false;
        }
        let sum = self.degree_sum();
        if sum % 2 != 0 {
            return false;
        }

        let mut sorted: Vec<u64> = self.degrees.iter().map(|&d| d as u64).collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));

        // Prefix sums of the sorted degrees.
        let mut prefix = vec![0u64; n + 1];
        for i in 0..n {
            prefix[i + 1] = prefix[i] + sorted[i];
        }

        // For the right-hand side we need, for each k, Σ_{i>k} min(d_i, k).
        // Since the sequence is sorted non-increasingly we can locate the
        // first index where d_i <= k by binary search.
        for k in 1..=n {
            let lhs = prefix[k];
            let kk = k as u64;
            // Find the first index >= k where sorted[i] <= k.
            let tail = &sorted[k..];
            // Elements > k contribute k each; elements <= k contribute themselves.
            let split = tail.partition_point(|&d| d > kk);
            let big = split as u64 * kk;
            let small = prefix[n] - prefix[k + split]; // sum of tail[split..]
            let rhs = kk * (kk - 1) + big + small;
            if lhs > rhs {
                return false;
            }
        }
        true
    }

    /// The `P2` collision statistic of Theorem 3:
    /// `P2 = Σ_{e={u,v}, u≠v} (d_u d_v / (m (m−1)))²`.
    ///
    /// The expected number of rounds of a global switch is `O(P2 · m)`.
    /// Computed in `O(D²)` over the *distinct* degree values `D`, which is
    /// fast even for large graphs because real degree sequences have few
    /// distinct values relative to `n`.
    pub fn p2_statistic(&self) -> f64 {
        let m = match self.num_edges() {
            Some(m) if m >= 2 => m as f64,
            _ => return 0.0,
        };
        let denom = m * (m - 1.0);

        // Group nodes by degree value.
        let mut counts: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for &d in &self.degrees {
            *counts.entry(d).or_insert(0) += 1;
        }
        let groups: Vec<(f64, f64)> =
            counts.into_iter().map(|(d, c)| (d as f64, c as f64)).collect();

        let mut p2 = 0.0;
        for (i, &(di, ci)) in groups.iter().enumerate() {
            for &(dj, cj) in groups.iter().skip(i) {
                let (d_i, d_j) = (di, dj);
                let term = (d_i * d_j / denom).powi(2);
                let pairs =
                    if (d_i - d_j).abs() < f64::EPSILON { ci * (ci - 1.0) / 2.0 } else { ci * cj };
                p2 += term * pairs;
            }
        }
        p2
    }

    /// Sorted copy (non-increasing), useful for comparisons irrespective of
    /// node labelling.
    pub fn sorted_desc(&self) -> Vec<u32> {
        let mut s = self.degrees.clone();
        s.sort_unstable_by(|a, b| b.cmp(a));
        s
    }
}

impl From<Vec<u32>> for DegreeSequence {
    fn from(v: Vec<u32>) -> Self {
        Self::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let d = DegreeSequence::new(vec![3, 2, 2, 1]);
        assert_eq!(d.len(), 4);
        assert_eq!(d.degree_sum(), 8);
        assert_eq!(d.num_edges(), Some(4));
        assert_eq!(d.max_degree(), 3);
        assert_eq!(d.min_degree(), 1);
        assert!((d.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn odd_sum_is_not_graphical() {
        let d = DegreeSequence::new(vec![3, 2, 2]);
        assert_eq!(d.num_edges(), None);
        assert!(!d.is_graphical());
    }

    #[test]
    fn classic_graphical_examples() {
        // Triangle.
        assert!(DegreeSequence::new(vec![2, 2, 2]).is_graphical());
        // Star K_{1,3}.
        assert!(DegreeSequence::new(vec![3, 1, 1, 1]).is_graphical());
        // Path of length 3.
        assert!(DegreeSequence::new(vec![1, 2, 2, 1]).is_graphical());
        // Complete graph K_5.
        assert!(DegreeSequence::new(vec![4; 5]).is_graphical());
        // Empty graph.
        assert!(DegreeSequence::new(vec![0; 7]).is_graphical());
        assert!(DegreeSequence::new(vec![]).is_graphical());
    }

    #[test]
    fn classic_non_graphical_examples() {
        // A degree larger than n-1 is impossible.
        assert!(!DegreeSequence::new(vec![4, 1, 1, 1]).is_graphical());
        // (3,3,1,1): sum even but Erdős–Gallai fails at k = 2.
        assert!(!DegreeSequence::new(vec![3, 3, 1, 1]).is_graphical());
        // Single node with a positive degree.
        assert!(!DegreeSequence::new(vec![2]).is_graphical());
    }

    #[test]
    fn p2_statistic_regular_graph() {
        // d-regular graph on n nodes: P2 = C(n,2) * (d^2 / (m(m-1)))^2.
        let n = 10u64;
        let d = 4u64;
        let m = n * d / 2;
        let seq = DegreeSequence::new(vec![d as u32; n as usize]);
        let expected =
            (n * (n - 1) / 2) as f64 * ((d * d) as f64 / (m as f64 * (m as f64 - 1.0))).powi(2);
        let got = seq.p2_statistic();
        assert!((got - expected).abs() < 1e-12, "{got} vs {expected}");
    }

    #[test]
    fn p2_statistic_small_cases() {
        assert_eq!(DegreeSequence::new(vec![]).p2_statistic(), 0.0);
        assert_eq!(DegreeSequence::new(vec![1, 1]).p2_statistic(), 0.0); // m < 2
    }

    #[test]
    fn sorted_desc_sorts() {
        let d = DegreeSequence::new(vec![1, 5, 3]);
        assert_eq!(d.sorted_desc(), vec![5, 3, 1]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Brute-force Erdős–Gallai via the textbook inequality with an O(n^2) loop.
    fn erdos_gallai_naive(degrees: &[u32]) -> bool {
        let n = degrees.len();
        if degrees.iter().map(|&d| d as u64).sum::<u64>() % 2 != 0 {
            return false;
        }
        if degrees.iter().any(|&d| d as usize >= n && d > 0) {
            return false;
        }
        let mut d: Vec<u64> = degrees.iter().map(|&x| x as u64).collect();
        d.sort_unstable_by(|a, b| b.cmp(a));
        for k in 1..=n {
            let lhs: u64 = d[..k].iter().sum();
            let rhs: u64 =
                (k as u64) * (k as u64 - 1) + d[k..].iter().map(|&x| x.min(k as u64)).sum::<u64>();
            if lhs > rhs {
                return false;
            }
        }
        true
    }

    proptest! {
        #[test]
        fn erdos_gallai_matches_naive(degrees in proptest::collection::vec(0u32..12, 0..24)) {
            let fast = DegreeSequence::new(degrees.clone()).is_graphical();
            let slow = erdos_gallai_naive(&degrees);
            prop_assert_eq!(fast, slow);
        }
    }
}
