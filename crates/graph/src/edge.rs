//! Undirected edges and their packed integer encoding.
//!
//! Following Sec. 5.2 of the paper, every possible simple undirected edge
//! `{u, v}` with `u < v` is identified by a unique 64-bit integer whose upper
//! 32 bits hold the smaller endpoint and whose lower 32 bits hold the larger
//! endpoint.  Hash sets and dependency tables operate exclusively on these
//! packed identifiers.
//!
//! The concurrent edge set additionally reserves the top 8 bits of a bucket
//! for lock/owner information, which restricts nodes to 28 bits each when the
//! locking representation is in use (exactly the `n ≤ 2^28` restriction the
//! paper describes).  [`Edge::pack56`] provides that narrower encoding.

use std::fmt;

/// Node identifier.  The paper stores nodes as 32-bit integers; so do we.
pub type Node = u32;

/// A packed undirected edge: `(min << 32) | max`.
pub type PackedEdge = u64;

/// Maximum node id representable in the 56-bit (lockable) encoding.
pub const MAX_NODE_56: Node = (1 << 28) - 1;

/// An undirected edge in canonical orientation (`u <= v` is *not* required at
/// construction, but the canonical accessor always reports the smaller node
/// first).
///
/// Self-loops (`u == v`) are representable — the Markov chains must be able to
/// talk about them in order to *reject* them — but [`Edge::is_loop`] flags
/// them and no simple graph ever stores one.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    u: Node,
    v: Node,
}

impl Edge {
    /// Create an edge from two endpoints; stores the canonical orientation.
    #[inline]
    pub fn new(a: Node, b: Node) -> Self {
        if a <= b {
            Self { u: a, v: b }
        } else {
            Self { u: b, v: a }
        }
    }

    /// The smaller endpoint.
    #[inline]
    pub fn u(&self) -> Node {
        self.u
    }

    /// The larger endpoint.
    #[inline]
    pub fn v(&self) -> Node {
        self.v
    }

    /// Both endpoints as a `(min, max)` tuple.
    #[inline]
    pub fn endpoints(&self) -> (Node, Node) {
        (self.u, self.v)
    }

    /// Whether this edge is a self-loop.
    #[inline]
    pub fn is_loop(&self) -> bool {
        self.u == self.v
    }

    /// Whether `x` is an endpoint of this edge.
    #[inline]
    pub fn is_incident(&self, x: Node) -> bool {
        self.u == x || self.v == x
    }

    /// The endpoint different from `x`, if `x` is an endpoint.
    #[inline]
    pub fn other(&self, x: Node) -> Option<Node> {
        if x == self.u {
            Some(self.v)
        } else if x == self.v {
            Some(self.u)
        } else {
            None
        }
    }

    /// Pack into the canonical 64-bit identifier `(min << 32) | max`.
    #[inline]
    pub fn pack(&self) -> PackedEdge {
        ((self.u as u64) << 32) | self.v as u64
    }

    /// Unpack a 64-bit identifier produced by [`Edge::pack`].
    #[inline]
    pub fn unpack(packed: PackedEdge) -> Self {
        Self { u: (packed >> 32) as Node, v: (packed & 0xFFFF_FFFF) as Node }
    }

    /// Pack into the 56-bit identifier used by the lockable concurrent set:
    /// `(min << 28) | max`, requiring both nodes to fit in 28 bits.
    ///
    /// # Panics
    /// Panics (in debug builds) if an endpoint exceeds [`MAX_NODE_56`].
    #[inline]
    pub fn pack56(&self) -> u64 {
        debug_assert!(self.v <= MAX_NODE_56, "node id exceeds 28-bit range for lockable encoding");
        ((self.u as u64) << 28) | self.v as u64
    }

    /// Unpack a 56-bit identifier produced by [`Edge::pack56`].
    #[inline]
    pub fn unpack56(packed: u64) -> Self {
        Self { u: ((packed >> 28) & 0x0FFF_FFFF) as Node, v: (packed & 0x0FFF_FFFF) as Node }
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}, {}}}", self.u, self.v)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.u, self.v)
    }
}

impl From<(Node, Node)> for Edge {
    fn from((a, b): (Node, Node)) -> Self {
        Edge::new(a, b)
    }
}

/// A *directed representation* of an edge, used while computing the target
/// edges of a switch (the `τ` function of Def. 1 distinguishes the two
/// orientations of each source edge).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DirectedEdge {
    /// Tail of the arc.
    pub tail: Node,
    /// Head of the arc.
    pub head: Node,
}

impl DirectedEdge {
    /// Construct a directed edge.
    #[inline]
    pub fn new(tail: Node, head: Node) -> Self {
        Self { tail, head }
    }

    /// Canonical orientation of an undirected edge: smaller node first.
    #[inline]
    pub fn canonical(e: Edge) -> Self {
        Self { tail: e.u(), head: e.v() }
    }

    /// Forget the orientation.
    #[inline]
    pub fn undirected(&self) -> Edge {
        Edge::new(self.tail, self.head)
    }

    /// Reverse the orientation.
    #[inline]
    pub fn reversed(&self) -> Self {
        Self { tail: self.head, head: self.tail }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_orientation() {
        let e = Edge::new(7, 3);
        assert_eq!(e.u(), 3);
        assert_eq!(e.v(), 7);
        assert_eq!(e, Edge::new(3, 7));
    }

    #[test]
    fn pack_roundtrip() {
        for (a, b) in [(0, 0), (0, 1), (5, 3), (u32::MAX, 0), (123456, 654321)] {
            let e = Edge::new(a, b);
            assert_eq!(Edge::unpack(e.pack()), e);
        }
    }

    #[test]
    fn pack_is_injective_and_ordered() {
        let e1 = Edge::new(1, 2);
        let e2 = Edge::new(1, 3);
        let e3 = Edge::new(2, 3);
        assert!(e1.pack() < e2.pack());
        assert!(e2.pack() < e3.pack());
    }

    #[test]
    fn pack56_roundtrip() {
        for (a, b) in [(0, 0), (0, 1), (5, 3), (MAX_NODE_56, 0), (1 << 20, 1 << 27)] {
            let e = Edge::new(a, b);
            assert_eq!(Edge::unpack56(e.pack56()), e);
            assert!(e.pack56() < (1 << 56));
        }
    }

    #[test]
    fn loop_detection() {
        assert!(Edge::new(4, 4).is_loop());
        assert!(!Edge::new(4, 5).is_loop());
    }

    #[test]
    fn incidence_and_other() {
        let e = Edge::new(2, 9);
        assert!(e.is_incident(2) && e.is_incident(9));
        assert!(!e.is_incident(3));
        assert_eq!(e.other(2), Some(9));
        assert_eq!(e.other(9), Some(2));
        assert_eq!(e.other(1), None);
    }

    #[test]
    fn directed_edge_roundtrip() {
        let d = DirectedEdge::new(9, 2);
        assert_eq!(d.undirected(), Edge::new(2, 9));
        assert_eq!(d.reversed(), DirectedEdge::new(2, 9));
        assert_eq!(DirectedEdge::canonical(Edge::new(9, 2)), DirectedEdge::new(2, 9));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn pack_unpack_roundtrip(a in any::<u32>(), b in any::<u32>()) {
            let e = Edge::new(a, b);
            prop_assert_eq!(Edge::unpack(e.pack()), e);
        }

        #[test]
        fn pack56_roundtrip_small(a in 0u32..(1 << 28), b in 0u32..(1 << 28)) {
            let e = Edge::new(a, b);
            prop_assert_eq!(Edge::unpack56(e.pack56()), e);
        }

        #[test]
        fn pack_order_independent(a in any::<u32>(), b in any::<u32>()) {
            prop_assert_eq!(Edge::new(a, b).pack(), Edge::new(b, a).pack());
        }
    }
}
