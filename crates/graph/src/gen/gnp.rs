//! Erdős–Rényi / Gilbert `G(n, p)` generator.
//!
//! Each of the `C(n, 2)` possible edges is present independently with
//! probability `p`.  For the sparse regime we use the standard geometric
//! skipping technique (Batagelj–Brandes), which runs in `O(n + m)` expected
//! time instead of `O(n²)`, so the *SynGnp* dataset with `m` up to `2^26`
//! edges can be produced quickly.

use crate::edge::{Edge, Node};
use crate::edge_list::EdgeListGraph;
use rand::Rng as _;
use rand::RngCore;

/// Sample a `G(n, p)` graph.
///
/// # Panics
/// Panics if `p` is not in `[0, 1]`.
pub fn gnp<R: RngCore + ?Sized>(rng: &mut R, n: usize, p: f64) -> EdgeListGraph {
    let mut edges = if p < 1.0 {
        Vec::with_capacity((p * (n as f64) * (n as f64 - 1.0) / 2.0) as usize + 16)
    } else {
        Vec::with_capacity(if n < 2 { 0 } else { n * (n - 1) / 2 })
    };
    gnp_stream(rng, n, p, |e| edges.push(e));
    EdgeListGraph::from_edges_unchecked(n, edges)
}

/// Sample a `G(n, p)` graph, emitting each edge to `emit` as it is drawn
/// instead of materializing the edge vector.
///
/// The enumeration order and the random draws are exactly those of [`gnp`]:
/// for the same RNG state, `gnp_stream` emits the slot sequence that `gnp`
/// collects, so the out-of-core generator path (`gesmc generate` writing
/// `GESMCEL1` through a [`BinaryEdgeListWriter`](crate::io::BinaryEdgeListWriter))
/// produces byte-identical graphs to the in-memory one.  Emitted edges are
/// simple by construction (no loops, no duplicates).
///
/// # Panics
/// Panics if `p` is not in `[0, 1]`.
pub fn gnp_stream<R: RngCore + ?Sized>(rng: &mut R, n: usize, p: f64, mut emit: impl FnMut(Edge)) {
    assert!((0.0..=1.0).contains(&p) && p.is_finite(), "p must be in [0, 1]");
    if n < 2 || p == 0.0 {
        return;
    }
    if p >= 1.0 {
        for u in 0..n as Node {
            for v in (u + 1)..n as Node {
                emit(Edge::new(u, v));
            }
        }
        return;
    }

    // Geometric skipping over the implicit enumeration of all C(n,2) pairs.
    let log1p = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    let n_i = n as i64;
    while v < n_i {
        let r: f64 = rng.gen::<f64>();
        // Skip a geometrically distributed number of candidate pairs.
        let skip = ((1.0 - r).ln() / log1p).floor() as i64;
        w += 1 + skip;
        while w >= v && v < n_i {
            w -= v;
            v += 1;
        }
        if v < n_i {
            emit(Edge::new(w as Node, v as Node));
        }
    }
}

/// Sample a `G(n, p)` graph where `p` is chosen so the *expected* number of
/// edges is `m_expected`.  Used by the Fig. 7 benchmark, which sweeps the
/// average degree at a fixed edge budget.
pub fn gnp_with_expected_edges<R: RngCore + ?Sized>(
    rng: &mut R,
    n: usize,
    m_expected: usize,
) -> EdgeListGraph {
    if n < 2 {
        return EdgeListGraph::from_edges_unchecked(n, Vec::new());
    }
    let possible = n as f64 * (n as f64 - 1.0) / 2.0;
    let p = (m_expected as f64 / possible).min(1.0);
    gnp(rng, n, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesmc_randx::rng_from_seed;

    #[test]
    fn trivial_cases() {
        let mut rng = rng_from_seed(0);
        assert_eq!(gnp(&mut rng, 0, 0.5).num_edges(), 0);
        assert_eq!(gnp(&mut rng, 1, 0.5).num_edges(), 0);
        assert_eq!(gnp(&mut rng, 10, 0.0).num_edges(), 0);
        let complete = gnp(&mut rng, 6, 1.0);
        assert_eq!(complete.num_edges(), 15);
    }

    #[test]
    fn output_is_simple() {
        let mut rng = rng_from_seed(1);
        for &(n, p) in &[(50usize, 0.1f64), (100, 0.5), (200, 0.02), (10, 0.9)] {
            let g = gnp(&mut rng, n, p);
            assert!(g.validate().is_ok(), "n={n} p={p}");
            assert_eq!(g.num_nodes(), n);
        }
    }

    #[test]
    fn edge_count_matches_expectation() {
        // E[m] = p * C(n,2); with n = 400, p = 0.1: mean 7980, sd ≈ 84.7.
        let mut rng = rng_from_seed(2);
        let n = 400;
        let p = 0.1;
        let reps = 20;
        let total: usize = (0..reps).map(|_| gnp(&mut rng, n, p).num_edges()).sum();
        let mean = total as f64 / reps as f64;
        let expected = p * (n * (n - 1) / 2) as f64;
        assert!((mean - expected).abs() < 0.05 * expected, "mean {mean} vs expected {expected}");
    }

    #[test]
    fn expected_edges_helper_hits_target() {
        let mut rng = rng_from_seed(3);
        let g = gnp_with_expected_edges(&mut rng, 1000, 5000);
        let m = g.num_edges() as f64;
        assert!(m > 4000.0 && m < 6000.0, "m = {m}");
    }

    #[test]
    fn stream_and_collect_variants_are_identical() {
        for seed in 0..4u64 {
            let collected = gnp(&mut rng_from_seed(seed), 300, 0.03);
            let mut streamed = Vec::new();
            gnp_stream(&mut rng_from_seed(seed), 300, 0.03, |e| streamed.push(e));
            assert_eq!(collected.edges(), &streamed[..], "seed {seed}");
        }
        // Dense and trivial paths too.
        let collected = gnp(&mut rng_from_seed(9), 8, 1.0);
        let mut streamed = Vec::new();
        gnp_stream(&mut rng_from_seed(9), 8, 1.0, |e| streamed.push(e));
        assert_eq!(collected.edges(), &streamed[..]);
        gnp_stream(&mut rng_from_seed(9), 1, 0.5, |_| panic!("no edges on trivial graphs"));
    }

    #[test]
    fn dense_p_close_to_one() {
        let mut rng = rng_from_seed(4);
        let g = gnp(&mut rng, 40, 0.97);
        assert!(g.validate().is_ok());
        assert!(g.num_edges() as f64 > 0.9 * 780.0);
    }
}
