//! Random graph generators and degree-sequence realisation algorithms.
//!
//! These substrates replace the NetworKit functionality used by the paper's
//! evaluation pipeline (Sec. 6): `G(n,p)` graphs for *SynGnp*, power-law
//! degree sequences `Pld([1..Δ], γ)` materialised with Havel–Hakimi for
//! *SynPld*, plus the Chung–Lu and configuration models which are discussed
//! in the related-work section and are useful as alternative seeds/examples.

pub mod chung_lu;
pub mod configuration;
pub mod gnp;
pub mod havel_hakimi;
pub mod pld;

pub use chung_lu::chung_lu;
pub use configuration::{configuration_model_erased, configuration_model_multigraph};
pub use gnp::{gnp, gnp_stream, gnp_with_expected_edges};
pub use havel_hakimi::{havel_hakimi, HavelHakimiError};
pub use pld::{powerlaw_degree_sequence, PowerlawConfig};
