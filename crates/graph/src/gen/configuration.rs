//! Configuration model: random (multi)graphs with an exact degree sequence.
//!
//! The configuration model (reference \[14\] in the paper) pairs up degree
//! "stubs" uniformly at random.  The result realises the prescribed degrees
//! exactly but may contain self-loops and multi-edges.  We expose both the raw
//! multigraph pairing (as lists of node pairs) and the *erased* variant that
//! drops loops/duplicates — the latter is a convenient alternative seed graph
//! whose degrees are close to, but not exactly, the prescribed ones.

use crate::degree::DegreeSequence;
use crate::edge::Node;
use crate::edge_list::EdgeListGraph;
use gesmc_randx::permutation::shuffle_in_place;
use rand::RngCore;

/// Pair up stubs uniformly at random; returns the raw pairing which may
/// contain loops and parallel edges.
///
/// # Panics
/// Panics if the degree sum is odd.
pub fn configuration_model_multigraph<R: RngCore + ?Sized>(
    rng: &mut R,
    seq: &DegreeSequence,
) -> Vec<(Node, Node)> {
    assert!(seq.degree_sum() % 2 == 0, "degree sum must be even");
    let mut stubs: Vec<Node> = Vec::with_capacity(seq.degree_sum() as usize);
    for (v, &d) in seq.degrees().iter().enumerate() {
        stubs.extend(std::iter::repeat(v as Node).take(d as usize));
    }
    shuffle_in_place(rng, &mut stubs);
    stubs.chunks_exact(2).map(|c| (c[0], c[1])).collect()
}

/// The erased configuration model: pair stubs, then drop self-loops and
/// duplicate edges.  Degrees of the result are ≤ the prescribed degrees.
pub fn configuration_model_erased<R: RngCore + ?Sized>(
    rng: &mut R,
    seq: &DegreeSequence,
) -> EdgeListGraph {
    let pairs = configuration_model_multigraph(rng, seq);
    EdgeListGraph::from_pairs_dedup(seq.len(), pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesmc_randx::rng_from_seed;

    #[test]
    fn multigraph_preserves_stub_counts() {
        let mut rng = rng_from_seed(1);
        let seq = DegreeSequence::new(vec![3, 2, 2, 1, 2]);
        let pairs = configuration_model_multigraph(&mut rng, &seq);
        assert_eq!(pairs.len() as u64, seq.num_edges().unwrap());
        let mut counts = vec![0u32; seq.len()];
        for (a, b) in pairs {
            counts[a as usize] += 1;
            counts[b as usize] += 1;
        }
        assert_eq!(counts, seq.degrees());
    }

    #[test]
    #[should_panic]
    fn odd_sum_panics() {
        let mut rng = rng_from_seed(2);
        configuration_model_multigraph(&mut rng, &DegreeSequence::new(vec![1, 1, 1]));
    }

    #[test]
    fn erased_variant_is_simple_with_bounded_degrees() {
        let mut rng = rng_from_seed(3);
        let seq = DegreeSequence::new(vec![4, 3, 3, 2, 2, 2, 2, 2]);
        let g = configuration_model_erased(&mut rng, &seq);
        assert!(g.validate().is_ok());
        let deg = g.degrees();
        for v in 0..seq.len() {
            assert!(deg.degree(v as Node) <= seq.degree(v as Node));
        }
    }

    #[test]
    fn erased_large_sparse_sequence_close_to_exact() {
        // With low degrees relative to n, few collisions occur, so the erased
        // model retains almost all edges.
        let mut rng = rng_from_seed(4);
        let seq = DegreeSequence::new(vec![3; 3000]);
        let g = configuration_model_erased(&mut rng, &seq);
        let target = seq.num_edges().unwrap() as f64;
        assert!(g.num_edges() as f64 > 0.97 * target);
    }
}
