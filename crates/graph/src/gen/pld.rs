//! Integer power-law degree-sequence sampler `Pld([a..b], γ)`.
//!
//! The *SynPld* dataset (Sec. 6) draws node degrees from an integer power-law
//! distribution with exponent `−γ` restricted to `[a..b]`, i.e.
//! `P[X = k] ∝ k^{−γ}` for `a ≤ k ≤ b`, with the maximum degree set to
//! `Δ = n^{1/(γ−1)}`.  The sampled sequence is then repaired to have an even
//! sum (a single degree is decremented/incremented within bounds) and can be
//! rejected/resampled until it passes the Erdős–Gallai test.

use crate::degree::DegreeSequence;
use gesmc_randx::bounded::gen_index;
use rand::Rng as _;
use rand::RngCore;

/// Configuration of the power-law sequence sampler.
#[derive(Debug, Clone, Copy)]
pub struct PowerlawConfig {
    /// Number of nodes.
    pub n: usize,
    /// Power-law exponent `γ > 1`.
    pub gamma: f64,
    /// Minimum degree (inclusive).
    pub min_degree: u32,
    /// Maximum degree (inclusive).  Use [`PowerlawConfig::natural_cutoff`] to
    /// apply the paper's `Δ = n^{1/(γ−1)}` bound.
    pub max_degree: u32,
}

impl PowerlawConfig {
    /// Standard configuration used by the paper: `Pld([1..Δ], γ)` with
    /// `Δ = n^{1/(γ−1)}`.
    pub fn paper(n: usize, gamma: f64) -> Self {
        Self { n, gamma, min_degree: 1, max_degree: Self::natural_cutoff(n, gamma) }
    }

    /// The analytic maximum-degree bound `Δ = n^{1/(γ−1)}` (at least 1, at
    /// most `n − 1`).
    pub fn natural_cutoff(n: usize, gamma: f64) -> u32 {
        assert!(gamma > 1.0, "gamma must exceed 1");
        let cutoff = (n as f64).powf(1.0 / (gamma - 1.0));
        (cutoff.floor() as u32).clamp(1, n.saturating_sub(1).max(1) as u32)
    }
}

/// Tabulated discrete distribution over `[min_degree ..= max_degree]` with
/// weights `k^{−γ}`; sampling is by binary search over the CDF.
struct PowerlawTable {
    min_degree: u32,
    cdf: Vec<f64>,
}

impl PowerlawTable {
    fn new(cfg: &PowerlawConfig) -> Self {
        assert!(cfg.gamma >= 1.0, "gamma must be at least 1");
        assert!(cfg.min_degree >= 1, "minimum degree must be at least 1");
        assert!(cfg.max_degree >= cfg.min_degree, "empty degree range");
        let mut cdf = Vec::with_capacity((cfg.max_degree - cfg.min_degree + 1) as usize);
        let mut acc = 0.0f64;
        for k in cfg.min_degree..=cfg.max_degree {
            acc += (k as f64).powf(-cfg.gamma);
            cdf.push(acc);
        }
        Self { min_degree: cfg.min_degree, cdf }
    }

    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        let total = *self.cdf.last().expect("non-empty table");
        let x = rng.gen::<f64>() * total;
        let idx = self.cdf.partition_point(|&c| c < x);
        self.min_degree + idx.min(self.cdf.len() - 1) as u32
    }
}

/// Sample a graphical power-law degree sequence.
///
/// Degrees are drawn i.i.d. from `Pld([min..max], γ)`; the sum is then made
/// even by adjusting a random entry, and the whole sequence is resampled until
/// the Erdős–Gallai test passes (for the parameter ranges used in the paper
/// the first attempt virtually always succeeds).
pub fn powerlaw_degree_sequence<R: RngCore + ?Sized>(
    rng: &mut R,
    cfg: &PowerlawConfig,
) -> DegreeSequence {
    assert!(cfg.n > 0, "need at least one node");
    let max_degree = cfg.max_degree.min(cfg.n.saturating_sub(1).max(1) as u32);
    let cfg = PowerlawConfig { max_degree, ..*cfg };
    let table = PowerlawTable::new(&cfg);

    loop {
        let mut degrees: Vec<u32> = (0..cfg.n).map(|_| table.sample(rng)).collect();

        // Repair parity: adjust one random entry up or down within bounds.
        if degrees.iter().map(|&d| d as u64).sum::<u64>() % 2 == 1 {
            let i = gen_index(rng, degrees.len());
            if degrees[i] > cfg.min_degree {
                degrees[i] -= 1;
            } else if degrees[i] < cfg.max_degree {
                degrees[i] += 1;
            } else {
                // Degenerate single-value range; flip another entry.
                continue;
            }
        }

        let seq = DegreeSequence::new(degrees);
        if seq.is_graphical() {
            return seq;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesmc_randx::rng_from_seed;

    #[test]
    fn natural_cutoff_matches_formula() {
        assert_eq!(PowerlawConfig::natural_cutoff(1024, 3.0), 32);
        assert_eq!(PowerlawConfig::natural_cutoff(128, 2.0), 127);
        // γ = 2.01, n = 2^10 → n^{1/1.01} ≈ 961
        let c = PowerlawConfig::natural_cutoff(1024, 2.01);
        assert!(c > 900 && c < 1024, "{c}");
    }

    #[test]
    fn sampled_sequence_is_graphical_and_in_range() {
        let mut rng = rng_from_seed(10);
        for &(n, gamma) in &[(128usize, 2.01f64), (1024, 2.2), (512, 2.5), (256, 3.0)] {
            let cfg = PowerlawConfig::paper(n, gamma);
            let seq = powerlaw_degree_sequence(&mut rng, &cfg);
            assert_eq!(seq.len(), n);
            assert!(seq.is_graphical());
            assert!(seq.num_edges().is_some());
            assert!(seq.min_degree() >= 1);
            assert!(seq.max_degree() <= cfg.max_degree);
        }
    }

    #[test]
    fn smaller_gamma_gives_heavier_tail() {
        let mut rng = rng_from_seed(11);
        let n = 4096;
        let heavy = powerlaw_degree_sequence(&mut rng, &PowerlawConfig::paper(n, 2.01));
        let light = powerlaw_degree_sequence(&mut rng, &PowerlawConfig::paper(n, 2.9));
        assert!(
            heavy.max_degree() > light.max_degree(),
            "heavy tail {} should exceed light tail {}",
            heavy.max_degree(),
            light.max_degree()
        );
        assert!(heavy.average_degree() > light.average_degree());
    }

    #[test]
    fn degree_one_dominates_for_large_gamma() {
        let mut rng = rng_from_seed(12);
        let seq = powerlaw_degree_sequence(&mut rng, &PowerlawConfig::paper(2000, 3.0));
        let ones = seq.degrees().iter().filter(|&&d| d == 1).count();
        // For γ = 3, P[X = 1] = 1/ζ(3) ≈ 0.83.
        assert!(ones as f64 > 0.7 * seq.len() as f64, "{ones} of {}", seq.len());
    }

    #[test]
    fn respects_custom_bounds() {
        let mut rng = rng_from_seed(13);
        let cfg = PowerlawConfig { n: 500, gamma: 2.5, min_degree: 3, max_degree: 20 };
        let seq = powerlaw_degree_sequence(&mut rng, &cfg);
        assert!(seq.min_degree() >= 3);
        assert!(seq.max_degree() <= 20);
        assert!(seq.is_graphical());
    }
}
