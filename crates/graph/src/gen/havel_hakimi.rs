//! Havel–Hakimi realisation of a graphical degree sequence.
//!
//! The *SynPld* pipeline (Sec. 6) materialises a sampled degree sequence into
//! an initial simple graph with the deterministic Havel–Hakimi construction
//! and then randomises it with the switching chain.  The classic algorithm
//! repeatedly connects the node of highest residual degree to the next-highest
//! nodes; we implement it with a max-heap using lazy (stale-entry) deletion,
//! which runs in `O((n + m) log n)` and comfortably handles the multi-million
//! edge instances of the benchmark sweeps.

use crate::degree::DegreeSequence;
use crate::edge::{Edge, Node};
use crate::edge_list::EdgeListGraph;

/// Errors reported by [`havel_hakimi`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HavelHakimiError {
    /// The degree sum is odd, so no graph exists.
    OddDegreeSum,
    /// The sequence is not graphical (Erdős–Gallai violated); contains the
    /// node at which the construction got stuck.
    NotGraphical {
        /// Node whose residual degree could not be satisfied.
        node: Node,
    },
}

impl std::fmt::Display for HavelHakimiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HavelHakimiError::OddDegreeSum => write!(f, "degree sum is odd"),
            HavelHakimiError::NotGraphical { node } => {
                write!(f, "sequence is not graphical (stuck at node {node})")
            }
        }
    }
}

impl std::error::Error for HavelHakimiError {}

/// Construct a simple graph realising `seq` with the Havel–Hakimi algorithm.
///
/// Returns an error iff the sequence is not graphical.  Node `i` of the output
/// has degree exactly `seq.degrees()[i]`.
pub fn havel_hakimi(seq: &DegreeSequence) -> Result<EdgeListGraph, HavelHakimiError> {
    let n = seq.len();
    let degrees = seq.degrees();
    if seq.degree_sum() % 2 != 0 {
        return Err(HavelHakimiError::OddDegreeSum);
    }
    if n == 0 {
        return Ok(EdgeListGraph::from_edges_unchecked(0, Vec::new()));
    }
    if degrees.iter().any(|&d| d as usize > n - 1) {
        return Err(HavelHakimiError::NotGraphical { node: 0 });
    }

    // Max-heap of (residual degree, node) with lazy deletion: an entry is
    // stale iff its key no longer equals the node's current residual degree.
    // Keys strictly decrease per node, so freshness is unambiguous.  Ties are
    // broken towards the smaller node id for determinism.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut residual: Vec<u32> = degrees.to_vec();
    let mut edges: Vec<Edge> = Vec::with_capacity((seq.degree_sum() / 2) as usize);
    let mut heap: BinaryHeap<(u32, Reverse<Node>)> = (0..n as Node)
        .filter(|&v| residual[v as usize] > 0)
        .map(|v| (residual[v as usize], Reverse(v)))
        .collect();
    let mut scratch: Vec<Node> = Vec::new();

    // Pop the freshest maximum-residual node.
    let pop_fresh = |heap: &mut BinaryHeap<(u32, Reverse<Node>)>, residual: &[u32]| loop {
        match heap.pop() {
            None => return None,
            Some((key, Reverse(v))) => {
                if residual[v as usize] == key && key > 0 {
                    return Some(v);
                }
            }
        }
    };

    while let Some(v) = pop_fresh(&mut heap, &residual) {
        let need = residual[v as usize] as usize;
        residual[v as usize] = 0;

        // Collect the `need` nodes with the largest residual degrees.
        scratch.clear();
        while scratch.len() < need {
            match pop_fresh(&mut heap, &residual) {
                Some(u) => scratch.push(u),
                None => return Err(HavelHakimiError::NotGraphical { node: v }),
            }
        }
        for &u in &scratch {
            debug_assert!(residual[u as usize] > 0);
            edges.push(Edge::new(v, u));
            residual[u as usize] -= 1;
            if residual[u as usize] > 0 {
                heap.push((residual[u as usize], Reverse(u)));
            }
        }
    }

    let graph = EdgeListGraph::from_edges_unchecked(n, edges);
    debug_assert_eq!(graph.degrees().degrees(), degrees);
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realises_simple_sequences() {
        for degrees in [
            vec![2u32, 2, 2],    // triangle
            vec![1, 1],          // single edge
            vec![3, 1, 1, 1],    // star
            vec![2, 2, 2, 2],    // cycle
            vec![4, 4, 4, 4, 4], // K5
            vec![0, 0, 0],       // empty
            vec![3, 3, 2, 2, 2], // mixed
        ] {
            let seq = DegreeSequence::new(degrees.clone());
            let g = havel_hakimi(&seq).expect("graphical");
            assert!(g.validate().is_ok());
            assert_eq!(g.degrees().degrees(), &degrees[..]);
        }
    }

    #[test]
    fn rejects_odd_sum() {
        let seq = DegreeSequence::new(vec![2, 1]);
        assert_eq!(havel_hakimi(&seq), Err(HavelHakimiError::OddDegreeSum));
    }

    #[test]
    fn rejects_non_graphical() {
        let seq = DegreeSequence::new(vec![3, 3, 1, 1]);
        assert!(matches!(havel_hakimi(&seq), Err(HavelHakimiError::NotGraphical { .. })));
        let seq = DegreeSequence::new(vec![4, 1, 1, 1, 1, 0]);
        assert!(havel_hakimi(&seq).is_ok(), "this one is graphical");
        let seq = DegreeSequence::new(vec![5, 1, 1, 1]);
        assert!(matches!(havel_hakimi(&seq), Err(HavelHakimiError::NotGraphical { .. })));
    }

    #[test]
    fn empty_sequence() {
        let g = havel_hakimi(&DegreeSequence::new(vec![])).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn agrees_with_erdos_gallai_on_random_sequences() {
        use gesmc_randx::rng_from_seed;
        use rand::Rng as _;
        let mut rng = rng_from_seed(55);
        let mut graphical = 0;
        for _ in 0..300 {
            let n = rng.gen_range(1..20usize);
            let degrees: Vec<u32> = (0..n).map(|_| rng.gen_range(0..n as u32)).collect();
            let seq = DegreeSequence::new(degrees);
            let eg = seq.is_graphical();
            let hh = havel_hakimi(&seq).is_ok();
            assert_eq!(eg, hh, "disagreement on {:?}", seq.degrees());
            graphical += eg as u32;
        }
        assert!(graphical > 0, "test should see at least one graphical sequence");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn havel_hakimi_iff_erdos_gallai(degrees in proptest::collection::vec(0u32..10, 1..20)) {
            let seq = DegreeSequence::new(degrees);
            let eg = seq.is_graphical();
            match havel_hakimi(&seq) {
                Ok(g) => {
                    prop_assert!(eg);
                    prop_assert!(g.validate().is_ok());
                    let realized = g.degrees();
                    prop_assert_eq!(realized.degrees(), seq.degrees());
                }
                Err(_) => prop_assert!(!eg),
            }
        }
    }
}
