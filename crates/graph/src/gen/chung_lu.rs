//! Chung–Lu random graphs with given *expected* degrees.
//!
//! The Chung–Lu model (reference \[12\] in the paper) connects nodes `u, v`
//! independently with probability `min(1, w_u w_v / Σw)`.  It matches the
//! prescribed degrees only in expectation and therefore serves in the paper's
//! introduction as a contrast to exact-degree sampling; we include it both as
//! an example workload and as an alternative (non-exact) seed graph.

use crate::edge::{Edge, Node};
use crate::edge_list::EdgeListGraph;
use rand::Rng as _;
use rand::RngCore;

/// Sample a Chung–Lu graph for the given expected-degree weights.
///
/// Runs in `O(n + m)` expected time using the standard per-node geometric
/// skipping over candidate partners sorted by weight.
///
/// Degenerate weights — NaN, infinities, negatives — contribute nothing: a
/// node with such a weight is treated as weight `0.0` (isolated) instead of
/// panicking or poisoning the weight sum.
pub fn chung_lu<R: RngCore + ?Sized>(rng: &mut R, weights: &[f64]) -> EdgeListGraph {
    let n = weights.len();
    // Sanitize instead of asserting: a single NaN would poison `total` and
    // previously panicked the weight sort.
    let weights: Vec<f64> =
        weights.iter().map(|&w| if w.is_finite() && w > 0.0 { w } else { 0.0 }).collect();
    if n < 2 {
        return EdgeListGraph::from_edges_unchecked(n, Vec::new());
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return EdgeListGraph::from_edges_unchecked(n, Vec::new());
    }

    // Sort nodes by non-increasing weight; the skipping argument requires the
    // per-partner probabilities to be non-increasing along the scan.
    // `total_cmp` is a total order, so degenerate inputs can never panic it.
    let mut order: Vec<Node> = (0..n as Node).collect();
    order.sort_unstable_by(|&a, &b| {
        weights[b as usize].total_cmp(&weights[a as usize]).then(a.cmp(&b))
    });

    let mut edges = Vec::new();
    for i in 0..n {
        let u = order[i];
        let wu = weights[u as usize];
        if wu == 0.0 {
            break;
        }
        let mut j = i + 1;
        // Upper bound on the connection probability for the remaining scan.
        let mut p_bound = (wu * weights[order[j.min(n - 1)] as usize] / total).min(1.0);
        while j < n && p_bound > 0.0 {
            // Geometric skip with probability p_bound, then accept with the
            // exact probability ratio.
            if p_bound < 1.0 {
                let r: f64 = rng.gen::<f64>();
                let skip = ((1.0 - r).ln() / (1.0 - p_bound).ln()).floor();
                if !skip.is_finite() || skip >= (n - j) as f64 {
                    break;
                }
                j += skip as usize;
            }
            if j >= n {
                break;
            }
            let v = order[j];
            let p_exact = (wu * weights[v as usize] / total).min(1.0);
            if rng.gen::<f64>() < p_exact / p_bound {
                edges.push(Edge::new(u, v));
            }
            p_bound = p_exact;
            j += 1;
        }
    }
    EdgeListGraph::from_edges_unchecked(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesmc_randx::rng_from_seed;

    #[test]
    fn trivial_inputs() {
        let mut rng = rng_from_seed(0);
        assert_eq!(chung_lu(&mut rng, &[]).num_edges(), 0);
        assert_eq!(chung_lu(&mut rng, &[3.0]).num_edges(), 0);
        assert_eq!(chung_lu(&mut rng, &[0.0; 10]).num_edges(), 0);
    }

    #[test]
    fn degenerate_weights_are_isolated_not_panics() {
        let mut rng = rng_from_seed(7);
        // All-degenerate input: no finite positive mass, empty graph.
        let g = chung_lu(&mut rng, &[f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -3.0]);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_nodes(), 4);

        // Mixed input: the degenerate nodes stay isolated, the healthy ones
        // still form a valid simple graph.
        let mut weights = vec![6.0; 300];
        weights[0] = f64::NAN;
        weights[1] = -1.0;
        weights[2] = f64::INFINITY;
        let g = chung_lu(&mut rng, &weights);
        assert!(g.validate().is_ok());
        let deg = g.degrees();
        for node in 0..3 {
            assert_eq!(deg.degree(node), 0, "degenerate-weight node {node} must stay isolated");
        }
        assert!(g.num_edges() > 0, "healthy nodes must still connect");
    }

    #[test]
    fn output_is_simple() {
        let mut rng = rng_from_seed(1);
        let weights: Vec<f64> = (1..200).map(|i| (i % 17) as f64 + 1.0).collect();
        let g = chung_lu(&mut rng, &weights);
        assert!(g.validate().is_ok());
        assert_eq!(g.num_nodes(), weights.len());
    }

    #[test]
    fn expected_degrees_are_roughly_matched() {
        // Uniform weights w: expected degree of each node ≈ w (for w ≪ √Σw).
        let mut rng = rng_from_seed(2);
        let n = 2000usize;
        let w = 8.0f64;
        let weights = vec![w; n];
        let reps = 5;
        let mut total_deg = 0.0;
        for _ in 0..reps {
            let g = chung_lu(&mut rng, &weights);
            total_deg += g.average_degree();
        }
        let avg = total_deg / reps as f64;
        assert!((avg - w).abs() < 0.8, "average degree {avg} should be close to {w}");
    }

    #[test]
    fn heavier_nodes_get_more_edges() {
        let mut rng = rng_from_seed(3);
        let n = 1000usize;
        let mut weights = vec![2.0; n];
        weights[0] = 50.0;
        let g = chung_lu(&mut rng, &weights);
        let deg = g.degrees();
        assert!(deg.degree(0) as f64 > 20.0, "hub degree {}", deg.degree(0));
    }
}
