//! `EdgeStore` — the slot-addressed edge storage abstraction behind
//! out-of-core randomization.
//!
//! Switching chains fundamentally need three operations on the edge array:
//! read the edge at a slot, overwrite the edge at a slot, and stream the
//! whole array in slot order.  [`EdgeStore`] captures exactly that surface so
//! a chain can run identically over the in-memory [`EdgeListGraph`] and over
//! an external (disk-backed) store such as `gesmc_exmem::ExternalEdgeStore` —
//! the storage backend must never change the sample bytes, only the order and
//! locality of memory accesses.
//!
//! Reads take `&mut self` because external backends maintain a bounded chunk
//! cache that mutates on every access; the in-memory implementation simply
//! ignores the mutability.

use crate::edge::Edge;
use crate::edge_list::EdgeListGraph;

/// Cumulative I/O counters of an [`EdgeStore`] backend (zero for in-memory
/// stores).  Used to annotate trace spans with how much chunk traffic an
/// out-of-core phase caused.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreIoStats {
    /// Chunks read from the backing file into the cache.
    pub chunks_loaded: u64,
    /// Dirty chunks written back to the backing file.
    pub chunks_written: u64,
}

/// A mutable, slot-addressed array of edges plus the node count.
///
/// Implementations must preserve slot semantics exactly: `set_edge(i, e)`
/// followed by `edge(i)` returns `e`, slots are independent, and
/// [`EdgeStore::for_each_edge`] visits slots `0..num_edges` in ascending
/// order with the latest written values (including not-yet-flushed ones).
pub trait EdgeStore: Send {
    /// Number of nodes `n` of the graph.
    fn num_nodes(&self) -> usize;

    /// Number of edge slots `m` (fixed over the store's lifetime — edge
    /// switching rewires slots, it never adds or removes them).
    fn num_edges(&self) -> usize;

    /// The edge currently at `slot`.
    ///
    /// # Panics
    ///
    /// If `slot >= num_edges()`, or (external backends) on an unrecoverable
    /// I/O error against the backing scratch file.
    fn edge(&mut self, slot: usize) -> Edge;

    /// Overwrite the edge at `slot`.
    ///
    /// # Panics
    ///
    /// Like [`EdgeStore::edge`].
    fn set_edge(&mut self, slot: usize, edge: Edge);

    /// Visit every slot in ascending order with its current edge.
    fn for_each_edge(&mut self, visit: &mut dyn FnMut(usize, Edge));

    /// Write any buffered dirty state back to durable storage (no-op for
    /// in-memory stores).
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }

    /// Materialize the current contents as an in-memory [`EdgeListGraph`]
    /// (allocates the full edge array — avoid on out-of-core inputs).
    fn materialize(&mut self) -> EdgeListGraph {
        let mut edges = Vec::with_capacity(self.num_edges());
        self.for_each_edge(&mut |_, e| edges.push(e));
        EdgeListGraph::from_edges_unchecked(self.num_nodes(), edges)
    }

    /// Cumulative backend I/O counters (all-zero for in-memory stores).
    fn io_stats(&self) -> StoreIoStats {
        StoreIoStats::default()
    }
}

impl EdgeStore for EdgeListGraph {
    fn num_nodes(&self) -> usize {
        EdgeListGraph::num_nodes(self)
    }

    fn num_edges(&self) -> usize {
        EdgeListGraph::num_edges(self)
    }

    fn edge(&mut self, slot: usize) -> Edge {
        EdgeListGraph::edge(self, slot)
    }

    fn set_edge(&mut self, slot: usize, edge: Edge) {
        self.edges_mut()[slot] = edge;
    }

    fn for_each_edge(&mut self, visit: &mut dyn FnMut(usize, Edge)) {
        for (i, &e) in self.edges().iter().enumerate() {
            visit(i, e);
        }
    }

    fn materialize(&mut self) -> EdgeListGraph {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_graph_is_an_edge_store() {
        let mut g = EdgeListGraph::new(4, vec![Edge::new(0, 1), Edge::new(2, 3)]).unwrap();
        let store: &mut dyn EdgeStore = &mut g;
        assert_eq!(store.num_nodes(), 4);
        assert_eq!(store.num_edges(), 2);
        assert_eq!(store.edge(1), Edge::new(2, 3));
        store.set_edge(0, Edge::new(1, 3));
        assert_eq!(store.edge(0), Edge::new(1, 3));
        let mut seen = Vec::new();
        store.for_each_edge(&mut |i, e| seen.push((i, e)));
        assert_eq!(seen, vec![(0, Edge::new(1, 3)), (1, Edge::new(2, 3))]);
        store.flush().unwrap();
        let snap = store.materialize();
        assert_eq!(snap.edges(), &[Edge::new(1, 3), Edge::new(2, 3)]);
    }
}
