//! Adjacency-based graph views.
//!
//! The switching chains themselves operate on the edge list + hash set
//! combination, but two other parts of the reproduction need neighbourhood
//! access:
//!
//! * the *baseline* implementations (`gesmc-baselines`) deliberately use an
//!   adjacency list, mirroring the NetworKit/Gengraph designs the paper
//!   compares against (Sec. 5.2 discusses why this is slower), and
//! * the structural metrics (triangles, clustering, components) in
//!   [`crate::metrics`].
//!
//! [`AdjacencyList`] is mutable and supports edge rewiring; [`Csr`] is a
//! compact immutable view optimised for traversals.

use crate::edge::{Edge, Node};
use crate::edge_list::EdgeListGraph;

/// Mutable adjacency-list representation.
#[derive(Clone, Debug)]
pub struct AdjacencyList {
    neighbors: Vec<Vec<Node>>,
    num_edges: usize,
}

impl AdjacencyList {
    /// Build from an edge-list graph.
    pub fn from_graph(g: &EdgeListGraph) -> Self {
        let mut neighbors = vec![Vec::new(); g.num_nodes()];
        for e in g.edges() {
            neighbors[e.u() as usize].push(e.v());
            neighbors[e.v() as usize].push(e.u());
        }
        Self { neighbors, num_edges: g.num_edges() }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.neighbors.len()
    }

    /// Number of (undirected) edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Neighbourhood of `v`.
    pub fn neighbors(&self, v: Node) -> &[Node] {
        &self.neighbors[v as usize]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: Node) -> usize {
        self.neighbors[v as usize].len()
    }

    /// Whether the edge `{u, v}` exists (linear scan of the smaller
    /// neighbourhood — the operation the paper calls out as the weakness of
    /// adjacency lists).
    pub fn has_edge(&self, u: Node, v: Node) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbors[a as usize].contains(&b)
    }

    /// Insert the edge `{u, v}`.  Does not check for duplicates.
    pub fn insert_edge(&mut self, u: Node, v: Node) {
        self.neighbors[u as usize].push(v);
        self.neighbors[v as usize].push(u);
        self.num_edges += 1;
    }

    /// Remove the edge `{u, v}`.  Returns whether it was present.
    pub fn remove_edge(&mut self, u: Node, v: Node) -> bool {
        let removed_uv = Self::remove_from(&mut self.neighbors[u as usize], v);
        if !removed_uv {
            return false;
        }
        let removed_vu = Self::remove_from(&mut self.neighbors[v as usize], u);
        debug_assert!(removed_vu, "adjacency lists out of sync");
        self.num_edges -= 1;
        true
    }

    fn remove_from(list: &mut Vec<Node>, x: Node) -> bool {
        if let Some(pos) = list.iter().position(|&y| y == x) {
            list.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Convert back to an edge-list graph (each edge emitted once).
    pub fn to_graph(&self) -> EdgeListGraph {
        let mut edges = Vec::with_capacity(self.num_edges);
        for (u, nbrs) in self.neighbors.iter().enumerate() {
            let u = u as Node;
            for &v in nbrs {
                if u < v {
                    edges.push(Edge::new(u, v));
                }
            }
        }
        EdgeListGraph::from_edges_unchecked(self.neighbors.len(), edges)
    }
}

/// Immutable compressed sparse row (CSR) view; neighbourhoods are sorted so
/// membership queries are `O(log deg)` and triangle counting can merge-scan.
#[derive(Clone, Debug)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<Node>,
}

impl Csr {
    /// Build from an edge-list graph.
    pub fn from_graph(g: &EdgeListGraph) -> Self {
        let n = g.num_nodes();
        let mut deg = vec![0usize; n];
        for e in g.edges() {
            deg[e.u() as usize] += 1;
            deg[e.v() as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + deg[v];
        }
        let mut targets = vec![0 as Node; offsets[n]];
        let mut cursor = offsets.clone();
        for e in g.edges() {
            targets[cursor[e.u() as usize]] = e.v();
            cursor[e.u() as usize] += 1;
            targets[cursor[e.v() as usize]] = e.u();
            cursor[e.v() as usize] += 1;
        }
        // Sort each neighbourhood for binary search / merge operations.
        for v in 0..n {
            targets[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Self { offsets, targets }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Sorted neighbourhood of `v`.
    pub fn neighbors(&self, v: Node) -> &[Node] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: Node) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Whether the edge `{u, v}` exists (binary search).
    pub fn has_edge(&self, u: Node, v: Node) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> EdgeListGraph {
        // Square with one diagonal: 0-1, 1-2, 2-3, 3-0, 0-2
        EdgeListGraph::new(
            4,
            vec![
                Edge::new(0, 1),
                Edge::new(1, 2),
                Edge::new(2, 3),
                Edge::new(3, 0),
                Edge::new(0, 2),
            ],
        )
        .unwrap()
    }

    #[test]
    fn adjacency_list_roundtrip() {
        let g = sample_graph();
        let adj = AdjacencyList::from_graph(&g);
        assert_eq!(adj.num_nodes(), 4);
        assert_eq!(adj.num_edges(), 5);
        assert_eq!(adj.degree(0), 3);
        assert!(adj.has_edge(0, 2));
        assert!(!adj.has_edge(1, 3));
        let back = adj.to_graph();
        assert_eq!(back.canonical_edges(), g.canonical_edges());
    }

    #[test]
    fn adjacency_insert_remove() {
        let g = sample_graph();
        let mut adj = AdjacencyList::from_graph(&g);
        assert!(adj.remove_edge(0, 2));
        assert!(!adj.has_edge(0, 2));
        assert_eq!(adj.num_edges(), 4);
        assert!(!adj.remove_edge(0, 2));
        adj.insert_edge(1, 3);
        assert!(adj.has_edge(3, 1));
        assert_eq!(adj.num_edges(), 5);
        // Degrees are preserved by this switch-like rewiring.
        let before = g.degrees();
        let after = adj.to_graph().degrees();
        assert_eq!(before.degree_sum(), after.degree_sum());
    }

    #[test]
    fn csr_matches_adjacency() {
        let g = sample_graph();
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.num_nodes(), 4);
        assert_eq!(csr.num_edges(), 5);
        assert_eq!(csr.degree(0), 3);
        assert_eq!(csr.neighbors(0), &[1, 2, 3]);
        assert!(csr.has_edge(2, 0));
        assert!(!csr.has_edge(1, 3));
    }

    #[test]
    fn csr_empty_and_isolated_nodes() {
        let g = EdgeListGraph::new(3, vec![Edge::new(0, 1)]).unwrap();
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.degree(2), 0);
        assert_eq!(csr.neighbors(2), &[] as &[Node]);
    }
}
