//! Plain-text and binary edge-list I/O.
//!
//! The CLI and the benchmark harness exchange graphs as whitespace-separated
//! edge lists (`u v` per line, `#`-prefixed comments ignored), the de-facto
//! format of the network repository the paper draws its real-world graphs
//! from.  Reading applies the same clean-up the paper describes: directed
//! duplicates, self-loops and multi-edges are dropped.
//!
//! For machine-to-machine exchange — the `gesmc-serve` HTTP service under
//! `Accept: application/octet-stream`, bulk sample archives — there is also a
//! compact binary encoding ([`write_edge_list_binary`] /
//! [`read_edge_list_binary`]): a magic header plus fixed-width little-endian
//! words, 8 bytes per edge, no escaping and no parsing ambiguity.  The reader
//! validates the simple-graph invariants and caps its allocations by the
//! bytes actually present (like the engine's `GESMCKP1` checkpoint parser),
//! so a forged edge count cannot trigger an out-of-memory abort.

use crate::edge::{Edge, Node};
use crate::edge_list::EdgeListGraph;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors raised while parsing an edge list.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line could not be parsed as two node ids.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// A binary edge list is malformed (bad magic, truncated payload, or
    /// violated simple-graph invariants).
    Binary(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, content } => write!(f, "cannot parse line {line}: {content:?}"),
            IoError::Binary(msg) => write!(f, "binary edge list: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parse an edge list from a reader.
///
/// Node ids may be arbitrary `u32` values; the graph's node count is
/// `max id + 1`.  Self-loops and duplicate edges are silently dropped
/// (mirroring the paper's NetRep preprocessing).
pub fn read_edge_list<R: Read>(reader: R) -> Result<EdgeListGraph, IoError> {
    let reader = BufReader::new(reader);
    let mut pairs: Vec<(Node, Node)> = Vec::new();
    let mut max_node: Node = 0;
    let mut saw_any = false;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Option<Node> { tok.and_then(|t| t.parse().ok()) };
        match (parse(it.next()), parse(it.next())) {
            (Some(a), Some(b)) => {
                max_node = max_node.max(a).max(b);
                saw_any = true;
                pairs.push((a, b));
            }
            _ => {
                return Err(IoError::Parse { line: idx + 1, content: trimmed.to_string() });
            }
        }
    }
    let n = if saw_any { max_node as usize + 1 } else { 0 };
    Ok(EdgeListGraph::from_pairs_dedup(n, pairs))
}

/// Read an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<EdgeListGraph, IoError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file)
}

/// Write a graph as a plain edge list (`u v` per line).
pub fn write_edge_list<W: Write>(writer: W, graph: &EdgeListGraph) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# nodes {} edges {}", graph.num_nodes(), graph.num_edges())?;
    for e in graph.edges() {
        writeln!(w, "{} {}", e.u(), e.v())?;
    }
    w.flush()
}

/// Write a graph to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(path: P, graph: &EdgeListGraph) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(file, graph)
}

/// Magic header of the binary edge-list encoding (version 1).
pub const BINARY_MAGIC: &[u8; 8] = b"GESMCEL1";

/// Write a graph in the compact binary encoding.
///
/// Layout (all integers little-endian, no padding):
///
/// ```text
/// magic      8  b"GESMCEL1"
/// num_nodes  8  u64
/// num_edges  8  u64
/// edges    m×8  (u32 u, u32 v) per edge, slot order preserved
/// ```
///
/// The fixed-width layout makes the size exactly `24 + 8·m` bytes and keeps
/// encoding/decoding allocation-free per edge (no varints to branch on); a
/// graph round-trips through [`read_edge_list_binary`] with its edge *order*
/// intact, not just its edge set.
pub fn write_edge_list_binary<W: Write>(writer: W, graph: &EdgeListGraph) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&(graph.num_nodes() as u64).to_le_bytes())?;
    w.write_all(&(graph.num_edges() as u64).to_le_bytes())?;
    for e in graph.edges() {
        w.write_all(&e.u().to_le_bytes())?;
        w.write_all(&e.v().to_le_bytes())?;
    }
    w.flush()
}

/// Read a graph from the binary encoding of [`write_edge_list_binary`].
///
/// Fails with [`IoError::Binary`] on a bad magic, a truncated payload,
/// trailing garbage, or edges violating the simple-graph invariants
/// (self-loops, duplicates, endpoints `>= num_nodes`).  The edge vector is
/// grown in bounded chunks while bytes actually arrive, so a forged
/// `num_edges` field cannot make the reader allocate more than the input
/// backs (the same defence as the engine's `GESMCKP1` checkpoint parser).
pub fn read_edge_list_binary<R: Read>(reader: R) -> Result<EdgeListGraph, IoError> {
    let mut r = BufReader::new(reader);

    let mut header = [0u8; 24];
    r.read_exact(&mut header).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => {
            IoError::Binary("truncated header (need 24 bytes)".to_string())
        }
        _ => IoError::Io(e),
    })?;
    if &header[0..8] != BINARY_MAGIC {
        return Err(IoError::Binary(format!(
            "bad magic {:?} (expected {:?})",
            &header[0..8],
            BINARY_MAGIC
        )));
    }
    let num_nodes = u64::from_le_bytes(header[8..16].try_into().expect("length checked"));
    let num_edges = u64::from_le_bytes(header[16..24].try_into().expect("length checked"));
    if num_nodes > u64::from(u32::MAX) + 1 {
        return Err(IoError::Binary(format!("implausible node count {num_nodes}")));
    }

    // Cap the upfront reservation: each claimed edge must be backed by 8
    // payload bytes, which we only trust as they arrive.
    const CHUNK_EDGES: usize = 1 << 16;
    let mut edges: Vec<Edge> = Vec::with_capacity((num_edges as usize).min(CHUNK_EDGES));
    let mut buf = [0u8; 8];
    for i in 0..num_edges {
        r.read_exact(&mut buf).map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => IoError::Binary(format!(
                "truncated payload: header claims {num_edges} edges, data ends at edge {i}"
            )),
            _ => IoError::Io(e),
        })?;
        let u = Node::from_le_bytes(buf[0..4].try_into().expect("length checked"));
        let v = Node::from_le_bytes(buf[4..8].try_into().expect("length checked"));
        if u == v {
            return Err(IoError::Binary(format!("self-loop at node {u} (edge {i})")));
        }
        edges.push(Edge::new(u, v));
    }
    let mut trailing = [0u8; 1];
    match r.read(&mut trailing) {
        Ok(0) => {}
        Ok(_) => return Err(IoError::Binary("trailing bytes after the edge payload".to_string())),
        Err(e) => return Err(IoError::Io(e)),
    }

    EdgeListGraph::new(num_nodes as usize, edges)
        .map_err(|e| IoError::Binary(format!("invalid graph: {e}")))
}

/// Write a graph to a file in the binary encoding.
pub fn write_edge_list_binary_file<P: AsRef<Path>>(
    path: P,
    graph: &EdgeListGraph,
) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list_binary(file, graph)
}

/// Read a binary edge-list file.
pub fn read_edge_list_binary_file<P: AsRef<Path>>(path: P) -> Result<EdgeListGraph, IoError> {
    let file = std::fs::File::open(path)?;
    read_edge_list_binary(file)
}

/// Whether a file starts with the [`BINARY_MAGIC`] header (i.e. is a
/// `GESMCEL1` binary edge list rather than a plain-text one).
pub fn is_binary_edge_list_file<P: AsRef<Path>>(path: P) -> std::io::Result<bool> {
    let mut file = std::fs::File::open(path)?;
    let mut magic = [0u8; 8];
    match std::io::Read::read_exact(&mut file, &mut magic) {
        Ok(()) => Ok(&magic == BINARY_MAGIC),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(false),
        Err(e) => Err(e),
    }
}

/// Incremental writer of the binary `GESMCEL1` encoding.
///
/// Writes edges one at a time in bounded buffers, so a graph never has to be
/// materialized to be serialised — the out-of-core generators and the
/// external-memory engine stream through this.  The edge count of the header
/// is unknown upfront; [`BinaryEdgeListWriter::finish`] patches it in place
/// before the fsync, then atomically renames the sibling temp file over the
/// destination (the same `write(tmp)→fsync→rename` discipline as the engine's
/// checkpoint writer), so readers only ever observe complete files.
///
/// Dropping the writer without calling `finish` removes the temp file.
#[derive(Debug)]
pub struct BinaryEdgeListWriter {
    file: Option<std::fs::File>,
    buf: Vec<u8>,
    tmp: std::path::PathBuf,
    path: std::path::PathBuf,
    num_nodes: u64,
    written: u64,
}

impl BinaryEdgeListWriter {
    /// Buffered bytes before a write syscall (8192 edges).
    const BUF_BYTES: usize = 1 << 16;

    /// Start writing a binary edge list for a graph over `num_nodes` nodes.
    ///
    /// The header is written immediately with a zero edge count; the real
    /// count is patched by [`BinaryEdgeListWriter::finish`].
    pub fn create<P: AsRef<Path>>(path: P, num_nodes: u64) -> Result<Self, IoError> {
        let path = path.as_ref().to_path_buf();
        if num_nodes > u64::from(u32::MAX) + 1 {
            return Err(IoError::Binary(format!("implausible node count {num_nodes}")));
        }
        let file_name = path
            .file_name()
            .ok_or_else(|| IoError::Binary(format!("{} has no file name", path.display())))?;
        let mut tmp_name = file_name.to_os_string();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        let mut file = std::fs::File::create(&tmp)?;
        let mut header = Vec::with_capacity(24);
        header.extend_from_slice(BINARY_MAGIC);
        header.extend_from_slice(&num_nodes.to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes());
        file.write_all(&header)?;
        Ok(Self {
            file: Some(file),
            buf: Vec::with_capacity(Self::BUF_BYTES),
            tmp,
            path,
            num_nodes,
            written: 0,
        })
    }

    /// Number of edges pushed so far.
    pub fn edges_written(&self) -> u64 {
        self.written
    }

    /// Append one edge (validated against self-loops and the node range).
    pub fn push(&mut self, edge: Edge) -> Result<(), IoError> {
        if edge.is_loop() {
            return Err(IoError::Binary(format!(
                "self-loop at node {} (edge {})",
                edge.u(),
                self.written
            )));
        }
        if u64::from(edge.v()) >= self.num_nodes {
            return Err(IoError::Binary(format!(
                "edge {edge} references a node outside [0, {})",
                self.num_nodes
            )));
        }
        self.buf.extend_from_slice(&edge.u().to_le_bytes());
        self.buf.extend_from_slice(&edge.v().to_le_bytes());
        self.written += 1;
        if self.buf.len() >= Self::BUF_BYTES {
            self.flush_buf()?;
        }
        Ok(())
    }

    fn flush_buf(&mut self) -> Result<(), IoError> {
        if !self.buf.is_empty() {
            self.file.as_mut().expect("file present until finish").write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Flush, patch the header's edge count, fsync, and atomically rename
    /// into place.  Returns the number of edges written.
    pub fn finish(mut self) -> Result<u64, IoError> {
        use std::io::{Seek, SeekFrom};
        self.flush_buf()?;
        let mut file = self.file.take().expect("finish runs once");
        file.seek(SeekFrom::Start(16))?;
        file.write_all(&self.written.to_le_bytes())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&self.tmp, &self.path)?;
        if let Some(parent) = self.path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(self.written)
    }
}

impl Drop for BinaryEdgeListWriter {
    fn drop(&mut self) {
        if self.file.take().is_some() {
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;

    #[test]
    fn roundtrip() {
        let g =
            EdgeListGraph::new(5, vec![Edge::new(0, 1), Edge::new(1, 4), Edge::new(2, 3)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &g).unwrap();
        let parsed = read_edge_list(&buf[..]).unwrap();
        assert_eq!(parsed.canonical_edges(), g.canonical_edges());
        assert_eq!(parsed.num_nodes(), 5);
    }

    #[test]
    fn parses_comments_loops_and_duplicates() {
        let input = "# a comment\n% another\n0 1\n1 0\n2 2\n\n1 3\n";
        let g = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_nodes(), 4);
        assert!(g.has_edge_slow(0, 1));
        assert!(g.has_edge_slow(1, 3));
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let input = "0 1\nnot an edge\n";
        match read_edge_list(input.as_bytes()) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    fn binary_bytes(g: &EdgeListGraph) -> Vec<u8> {
        let mut buf = Vec::new();
        write_edge_list_binary(&mut buf, g).unwrap();
        buf
    }

    #[test]
    fn binary_roundtrip_preserves_edge_order_and_size() {
        let g =
            EdgeListGraph::new(6, vec![Edge::new(4, 1), Edge::new(0, 5), Edge::new(2, 3)]).unwrap();
        let buf = binary_bytes(&g);
        assert_eq!(buf.len(), 24 + 8 * 3, "fixed-width layout: 24 header + 8 per edge");
        assert_eq!(&buf[0..8], BINARY_MAGIC);
        let parsed = read_edge_list_binary(&buf[..]).unwrap();
        assert_eq!(parsed.num_nodes(), 6);
        // Slot order survives, not just the canonical set.
        assert_eq!(parsed.edges(), g.edges());
    }

    #[test]
    fn binary_empty_graph_roundtrips() {
        let g = EdgeListGraph::new(0, vec![]).unwrap();
        let parsed = read_edge_list_binary(&binary_bytes(&g)[..]).unwrap();
        assert_eq!(parsed.num_nodes(), 0);
        assert_eq!(parsed.num_edges(), 0);
    }

    #[test]
    fn binary_rejects_malformed_input() {
        let g = EdgeListGraph::new(3, vec![Edge::new(0, 1), Edge::new(1, 2)]).unwrap();
        let good = binary_bytes(&g);

        let expect_binary_err = |bytes: &[u8], needle: &str| match read_edge_list_binary(bytes) {
            Err(IoError::Binary(msg)) => {
                assert!(msg.contains(needle), "message {msg:?} lacks {needle:?}")
            }
            other => panic!("expected Binary error containing {needle:?}, got {other:?}"),
        };

        expect_binary_err(b"GESMCEL1", "truncated header");
        expect_binary_err(b"NOTMAGIC\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0", "bad magic");
        // Truncated payload: chop the last edge in half.
        expect_binary_err(&good[..good.len() - 4], "truncated payload");
        // Trailing garbage after the declared payload.
        let mut padded = good.clone();
        padded.push(0xFF);
        expect_binary_err(&padded, "trailing bytes");
        // A forged edge count far beyond the payload fails cleanly (and
        // cannot allocate more than the bytes present back).
        let mut forged = good.clone();
        forged[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        expect_binary_err(&forged, "truncated payload");
        // A self-loop in the payload.
        let mut looped = good.clone();
        looped[24..32].copy_from_slice(&[2, 0, 0, 0, 2, 0, 0, 0]);
        expect_binary_err(&looped, "self-loop");
        // An endpoint outside [0, n).
        let mut out_of_range = good;
        out_of_range[24..32].copy_from_slice(&[0, 0, 0, 0, 9, 0, 0, 0]);
        expect_binary_err(&out_of_range, "invalid graph");
    }

    #[test]
    fn streaming_writer_is_byte_identical_to_the_in_memory_encoder() {
        let g =
            EdgeListGraph::new(6, vec![Edge::new(4, 1), Edge::new(0, 5), Edge::new(2, 3)]).unwrap();
        let dir = std::env::temp_dir().join("gesmc-io-stream-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.el");

        let mut w = BinaryEdgeListWriter::create(&path, g.num_nodes() as u64).unwrap();
        for &e in g.edges() {
            w.push(e).unwrap();
        }
        assert_eq!(w.edges_written(), 3);
        assert_eq!(w.finish().unwrap(), 3);

        assert_eq!(std::fs::read(&path).unwrap(), binary_bytes(&g));
        assert!(is_binary_edge_list_file(&path).unwrap());
        let parsed = read_edge_list_binary_file(&path).unwrap();
        assert_eq!(parsed.edges(), g.edges());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_writer_validates_and_cleans_up_on_abort() {
        let dir = std::env::temp_dir().join("gesmc-io-stream-abort-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.el");

        let mut w = BinaryEdgeListWriter::create(&path, 4).unwrap();
        assert!(
            matches!(w.push(Edge::new(2, 2)), Err(IoError::Binary(m)) if m.contains("self-loop"))
        );
        assert!(
            matches!(w.push(Edge::new(0, 9)), Err(IoError::Binary(m)) if m.contains("outside"))
        );
        drop(w);
        // Neither the destination nor the temp file survives an abort.
        assert!(std::fs::read_dir(&dir).unwrap().next().is_none());
        assert!(is_binary_edge_list_file(dir.join("missing.el")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn magic_sniffing_distinguishes_text_files() {
        let dir = std::env::temp_dir().join("gesmc-io-sniff-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let text = dir.join("g.txt");
        std::fs::write(&text, "0 1\n").unwrap();
        assert!(!is_binary_edge_list_file(&text).unwrap());
        let short = dir.join("short.el");
        std::fs::write(&short, "abc").unwrap();
        assert!(!is_binary_edge_list_file(&short).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    mod binary_proptests {
        use super::*;
        use crate::gen::gnp;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn binary_roundtrip(seed in 0u64..64, n in 2usize..40, density in 1u32..30) {
                let mut rng = gesmc_randx::rng_from_seed(seed);
                let g = gnp(&mut rng, n, f64::from(density) / 100.0);
                let buf = {
                    let mut buf = Vec::new();
                    write_edge_list_binary(&mut buf, &g).unwrap();
                    buf
                };
                prop_assert_eq!(buf.len(), 24 + 8 * g.num_edges());
                let parsed = read_edge_list_binary(&buf[..]).unwrap();
                prop_assert_eq!(parsed.num_nodes(), g.num_nodes());
                prop_assert_eq!(parsed.edges(), g.edges());
                prop_assert_eq!(parsed.canonical_edges(), g.canonical_edges());
            }
        }
    }
}
