//! Plain-text edge-list I/O.
//!
//! The CLI and the benchmark harness exchange graphs as whitespace-separated
//! edge lists (`u v` per line, `#`-prefixed comments ignored), the de-facto
//! format of the network repository the paper draws its real-world graphs
//! from.  Reading applies the same clean-up the paper describes: directed
//! duplicates, self-loops and multi-edges are dropped.

use crate::edge::Node;
use crate::edge_list::EdgeListGraph;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors raised while parsing an edge list.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line could not be parsed as two node ids.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, content } => write!(f, "cannot parse line {line}: {content:?}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parse an edge list from a reader.
///
/// Node ids may be arbitrary `u32` values; the graph's node count is
/// `max id + 1`.  Self-loops and duplicate edges are silently dropped
/// (mirroring the paper's NetRep preprocessing).
pub fn read_edge_list<R: Read>(reader: R) -> Result<EdgeListGraph, IoError> {
    let reader = BufReader::new(reader);
    let mut pairs: Vec<(Node, Node)> = Vec::new();
    let mut max_node: Node = 0;
    let mut saw_any = false;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Option<Node> { tok.and_then(|t| t.parse().ok()) };
        match (parse(it.next()), parse(it.next())) {
            (Some(a), Some(b)) => {
                max_node = max_node.max(a).max(b);
                saw_any = true;
                pairs.push((a, b));
            }
            _ => {
                return Err(IoError::Parse { line: idx + 1, content: trimmed.to_string() });
            }
        }
    }
    let n = if saw_any { max_node as usize + 1 } else { 0 };
    Ok(EdgeListGraph::from_pairs_dedup(n, pairs))
}

/// Read an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<EdgeListGraph, IoError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file)
}

/// Write a graph as a plain edge list (`u v` per line).
pub fn write_edge_list<W: Write>(writer: W, graph: &EdgeListGraph) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# nodes {} edges {}", graph.num_nodes(), graph.num_edges())?;
    for e in graph.edges() {
        writeln!(w, "{} {}", e.u(), e.v())?;
    }
    w.flush()
}

/// Write a graph to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(path: P, graph: &EdgeListGraph) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(file, graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;

    #[test]
    fn roundtrip() {
        let g =
            EdgeListGraph::new(5, vec![Edge::new(0, 1), Edge::new(1, 4), Edge::new(2, 3)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &g).unwrap();
        let parsed = read_edge_list(&buf[..]).unwrap();
        assert_eq!(parsed.canonical_edges(), g.canonical_edges());
        assert_eq!(parsed.num_nodes(), 5);
    }

    #[test]
    fn parses_comments_loops_and_duplicates() {
        let input = "# a comment\n% another\n0 1\n1 0\n2 2\n\n1 3\n";
        let g = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_nodes(), 4);
        assert!(g.has_edge_slow(0, 1));
        assert!(g.has_edge_slow(1, 3));
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let input = "0 1\nnot an edge\n";
        match read_edge_list(input.as_bytes()) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
