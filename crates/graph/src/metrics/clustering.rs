//! Clustering coefficients (convergence proxies).

use crate::adjacency::Csr;
use crate::edge_list::EdgeListGraph;
use crate::metrics::triangles::{count_triangles, count_wedges};

/// Global clustering coefficient (transitivity): `3 · #triangles / #wedges`.
///
/// Returns 0 for graphs without wedges.
pub fn global_clustering_coefficient(g: &EdgeListGraph) -> f64 {
    let wedges = count_wedges(g);
    if wedges == 0 {
        return 0.0;
    }
    3.0 * count_triangles(g) as f64 / wedges as f64
}

/// Local clustering coefficient of every node: the fraction of pairs of
/// neighbours that are themselves connected (0 for degree < 2).
pub fn local_clustering_coefficients(g: &EdgeListGraph) -> Vec<f64> {
    let csr = Csr::from_graph(g);
    let n = csr.num_nodes();
    (0..n)
        .map(|u| {
            let u = u as u32;
            let nbrs = csr.neighbors(u);
            let d = nbrs.len();
            if d < 2 {
                return 0.0;
            }
            let mut closed = 0u64;
            for (i, &v) in nbrs.iter().enumerate() {
                for &w in &nbrs[i + 1..] {
                    if csr.has_edge(v, w) {
                        closed += 1;
                    }
                }
            }
            closed as f64 / (d * (d - 1) / 2) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;

    fn graph(n: usize, edges: &[(u32, u32)]) -> EdgeListGraph {
        EdgeListGraph::new(n, edges.iter().map(|&(a, b)| Edge::new(a, b)).collect()).unwrap()
    }

    #[test]
    fn triangle_is_fully_clustered() {
        let g = graph(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!((global_clustering_coefficient(&g) - 1.0).abs() < 1e-12);
        assert_eq!(local_clustering_coefficients(&g), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn path_has_zero_clustering() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(global_clustering_coefficient(&g), 0.0);
        assert!(local_clustering_coefficients(&g).iter().all(|&c| c == 0.0));
    }

    #[test]
    fn paw_graph_values() {
        // Triangle 0-1-2 plus pendant 3 attached to 0.
        let g = graph(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]);
        // Wedges: node0 has deg 3 -> 3 wedges, node1: 1, node2: 1, node3: 0 => 5.
        // Triangles: 1. Transitivity = 3/5.
        assert!((global_clustering_coefficient(&g) - 0.6).abs() < 1e-12);
        let local = local_clustering_coefficients(&g);
        assert!((local[0] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(local[3], 0.0);
    }
}
