//! Structural graph metrics.
//!
//! The mixing-time literature the paper builds on uses a handful of scalar
//! "proxies" (triangle count, global clustering coefficient, degree
//! assortativity, component structure) to monitor the convergence of switching
//! chains.  The paper's own evaluation favours the autocorrelation analysis
//! (implemented in `gesmc-analysis`), but the proxies remain useful for
//! examples and sanity checks, so they live here on top of the CSR view.

pub mod assortativity;
pub mod clustering;
pub mod components;
pub mod triangles;

pub use assortativity::degree_assortativity;
pub use clustering::{global_clustering_coefficient, local_clustering_coefficients};
pub use components::{connected_components, largest_component_size, num_connected_components};
pub use triangles::{count_triangles, count_wedges};
