//! Degree assortativity (Pearson correlation of endpoint degrees).

use crate::edge_list::EdgeListGraph;

/// Newman's degree assortativity coefficient.
///
/// Computed as the Pearson correlation of the degrees at the two ends of every
/// edge (each edge contributes both orientations).  Returns `None` for graphs
/// where the correlation is undefined (fewer than two edges or zero variance,
/// e.g. regular graphs).
pub fn degree_assortativity(g: &EdgeListGraph) -> Option<f64> {
    if g.num_edges() < 2 {
        return None;
    }
    let deg = g.degrees();
    let mut sum_x = 0.0f64;
    let mut sum_x2 = 0.0f64;
    let mut sum_xy = 0.0f64;
    let count = (2 * g.num_edges()) as f64;
    for e in g.edges() {
        let du = deg.degree(e.u()) as f64;
        let dv = deg.degree(e.v()) as f64;
        // Both orientations (u,v) and (v,u).
        sum_x += du + dv;
        sum_x2 += du * du + dv * dv;
        sum_xy += 2.0 * du * dv;
    }
    let mean = sum_x / count;
    let var = sum_x2 / count - mean * mean;
    if var <= 1e-12 {
        return None;
    }
    let cov = sum_xy / count - mean * mean;
    Some(cov / var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;

    fn graph(n: usize, edges: &[(u32, u32)]) -> EdgeListGraph {
        EdgeListGraph::new(n, edges.iter().map(|&(a, b)| Edge::new(a, b)).collect()).unwrap()
    }

    #[test]
    fn regular_graph_is_undefined() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(degree_assortativity(&g), None);
    }

    #[test]
    fn star_graph_is_maximally_disassortative() {
        let g = graph(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let r = degree_assortativity(&g).unwrap();
        assert!((r + 1.0).abs() < 1e-9, "star should give -1, got {r}");
    }

    #[test]
    fn path_graph_value() {
        // Path on 4 nodes: known assortativity -1/2.
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = degree_assortativity(&g).unwrap();
        assert!((r + 0.5).abs() < 1e-9, "expected -0.5, got {r}");
    }

    #[test]
    fn too_small_graphs() {
        assert_eq!(degree_assortativity(&graph(2, &[(0, 1)])), None);
        assert_eq!(degree_assortativity(&graph(2, &[])), None);
    }
}
