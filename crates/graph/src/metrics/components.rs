//! Connected components via breadth-first search.

use crate::adjacency::Csr;
use crate::edge_list::EdgeListGraph;
use std::collections::VecDeque;

/// Component label of every node (labels are consecutive integers starting at 0,
/// in order of discovery).
pub fn connected_components(g: &EdgeListGraph) -> Vec<u32> {
    let csr = Csr::from_graph(g);
    let n = csr.num_nodes();
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if label[start] != u32::MAX {
            continue;
        }
        label[start] = next;
        queue.push_back(start as u32);
        while let Some(v) = queue.pop_front() {
            for &w in csr.neighbors(v) {
                if label[w as usize] == u32::MAX {
                    label[w as usize] = next;
                    queue.push_back(w);
                }
            }
        }
        next += 1;
    }
    label
}

/// Number of connected components.
pub fn num_connected_components(g: &EdgeListGraph) -> usize {
    connected_components(g).iter().copied().max().map_or(0, |m| m as usize + 1)
}

/// Size of the largest connected component (0 for the empty graph).
pub fn largest_component_size(g: &EdgeListGraph) -> usize {
    let labels = connected_components(g);
    if labels.is_empty() {
        return 0;
    }
    let k = labels.iter().copied().max().unwrap() as usize + 1;
    let mut sizes = vec![0usize; k];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;

    fn graph(n: usize, edges: &[(u32, u32)]) -> EdgeListGraph {
        EdgeListGraph::new(n, edges.iter().map(|&(a, b)| Edge::new(a, b)).collect()).unwrap()
    }

    #[test]
    fn single_component() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(num_connected_components(&g), 1);
        assert_eq!(largest_component_size(&g), 4);
    }

    #[test]
    fn multiple_components_and_isolated_nodes() {
        let g = graph(6, &[(0, 1), (2, 3)]);
        assert_eq!(num_connected_components(&g), 4);
        assert_eq!(largest_component_size(&g), 2);
        let labels = connected_components(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[4], labels[5]);
    }

    #[test]
    fn empty_graph() {
        let g = graph(0, &[]);
        assert_eq!(num_connected_components(&g), 0);
        assert_eq!(largest_component_size(&g), 0);
    }
}
