//! Triangle and wedge counting.
//!
//! Used as a convergence proxy and by the motif-significance example (the
//! null-model use case motivating the paper's introduction).  The algorithm
//! is the standard node-ordered merge intersection over the CSR view, running
//! in `O(Σ_v deg(v)²)` worst case and much faster on sparse graphs.

use crate::adjacency::Csr;
use crate::edge_list::EdgeListGraph;
use rayon::prelude::*;

/// Count the triangles of a simple graph.
pub fn count_triangles(g: &EdgeListGraph) -> u64 {
    let csr = Csr::from_graph(g);
    let n = csr.num_nodes();
    (0..n)
        .into_par_iter()
        .map(|u| {
            let u = u as u32;
            let nu = csr.neighbors(u);
            let mut local = 0u64;
            for &v in nu.iter().filter(|&&v| v > u) {
                // Count common neighbours w with w > v to count each triangle once.
                let nv = csr.neighbors(v);
                local += sorted_intersection_above(nu, nv, v);
            }
            local
        })
        .sum()
}

/// Count the wedges (paths of length two) of a simple graph:
/// `Σ_v C(deg(v), 2)`.
pub fn count_wedges(g: &EdgeListGraph) -> u64 {
    g.degrees()
        .degrees()
        .iter()
        .map(|&d| {
            let d = d as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum()
}

/// Count the elements larger than `above` present in both sorted slices.
fn sorted_intersection_above(a: &[u32], b: &[u32], above: u32) -> u64 {
    let mut i = a.partition_point(|&x| x <= above);
    let mut j = b.partition_point(|&x| x <= above);
    let mut count = 0u64;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;

    fn graph(n: usize, edges: &[(u32, u32)]) -> EdgeListGraph {
        EdgeListGraph::new(n, edges.iter().map(|&(a, b)| Edge::new(a, b)).collect()).unwrap()
    }

    #[test]
    fn triangle_counts() {
        // Single triangle.
        assert_eq!(count_triangles(&graph(3, &[(0, 1), (1, 2), (2, 0)])), 1);
        // Square: no triangles.
        assert_eq!(count_triangles(&graph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])), 0);
        // K4 has 4 triangles.
        assert_eq!(
            count_triangles(&graph(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])),
            4
        );
        // Empty graph.
        assert_eq!(count_triangles(&graph(5, &[])), 0);
    }

    #[test]
    fn k5_has_ten_triangles() {
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        assert_eq!(count_triangles(&graph(5, &edges)), 10);
    }

    #[test]
    fn wedge_counts() {
        // Path 0-1-2: one wedge at node 1.
        assert_eq!(count_wedges(&graph(3, &[(0, 1), (1, 2)])), 1);
        // Star with 4 leaves: C(4,2) = 6 wedges.
        assert_eq!(count_wedges(&graph(5, &[(0, 1), (0, 2), (0, 3), (0, 4)])), 6);
    }
}
