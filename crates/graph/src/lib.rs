//! Graph substrate for the edge-switching workspace.
//!
//! The paper treats a graph as an *indexed edge list* `E[1..m]` of undirected
//! edges over nodes `v_1 … v_n`, backed by a hash set for existence queries.
//! This crate provides that representation ([`EdgeListGraph`]) together with
//! everything needed to *produce* the input graphs of the evaluation:
//!
//! * canonical undirected edges and their packed 64-bit encoding ([`edge`]),
//! * degree sequences, the Erdős–Gallai graphicality test and the
//!   Havel–Hakimi realisation algorithm ([`degree`],
//!   [`gen::havel_hakimi`](mod@gen::havel_hakimi)),
//! * random graph generators: `G(n,p)`, power-law degree sequences
//!   (`Pld([a..b], γ)`), Chung–Lu and the configuration model ([`gen`]),
//! * adjacency-based views (adjacency list and CSR) used by the baselines and
//!   metrics ([`adjacency`]),
//! * structural metrics used by the examples and the mixing-time analysis
//!   (triangles, clustering, assortativity, connected components)
//!   ([`metrics`]),
//! * plain-text and binary edge-list I/O, including a streaming `GESMCEL1`
//!   writer for graphs that never fit in RAM ([`io`]),
//! * the slot-addressed [`EdgeStore`] abstraction behind out-of-core
//!   randomization ([`store`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjacency;
pub mod degree;
pub mod edge;
pub mod edge_list;
pub mod gen;
pub mod io;
pub mod metrics;
pub mod store;

pub use adjacency::{AdjacencyList, Csr};
pub use degree::DegreeSequence;
pub use edge::{Edge, Node, PackedEdge};
pub use edge_list::{EdgeListGraph, GraphError};
pub use store::{EdgeStore, StoreIoStats};
