//! Serialization of PRNG stream state for checkpoint/resume.
//!
//! Long randomization chains (hours of switching on the paper's larger NetRep
//! graphs) must be able to snapshot their position in the pseudo-random
//! stream and later resume *bit-identically* to an uninterrupted run.  The
//! [`RngState`] captured here is the exact 256-bit raw state of the
//! workspace's [`Pcg64`](crate::Rng) generator — state and stream increment —
//! encoded as four little-endian `u64` words so it can be embedded in binary
//! checkpoint files without any serde machinery.

use crate::Rng;

/// The raw state of a [`Pcg64`](crate::Rng) generator, as four `u64` words.
///
/// Word order: `[state_lo, state_hi, increment_lo, increment_hi]`.  The
/// all-zero value is reserved as a "no generator" marker by checkpoint
/// formats; it never occurs as a live PCG state because the increment is
/// forced odd at construction.
///
/// ```
/// use gesmc_randx::{rng_from_seed, RngState};
/// use rand::RngCore;
///
/// let mut rng = rng_from_seed(7);
/// rng.next_u64();
/// let state = RngState::capture(&rng);
/// let mut resumed = state.restore();
/// assert_eq!(rng.next_u64(), resumed.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RngState {
    words: [u64; 4],
}

impl RngState {
    /// Capture the exact stream position of `rng`.
    pub fn capture(rng: &Rng) -> Self {
        let (state, increment) = rng.to_raw_parts();
        Self {
            words: [state as u64, (state >> 64) as u64, increment as u64, (increment >> 64) as u64],
        }
    }

    /// Rebuild a generator that continues exactly where the captured one
    /// stood: its next output equals the captured generator's next output.
    pub fn restore(&self) -> Rng {
        let state = (self.words[0] as u128) | ((self.words[1] as u128) << 64);
        let increment = (self.words[2] as u128) | ((self.words[3] as u128) << 64);
        Rng::from_raw_parts(state, increment)
    }

    /// The four little-endian words `[state_lo, state_hi, incr_lo, incr_hi]`.
    pub fn to_words(self) -> [u64; 4] {
        self.words
    }

    /// Rebuild from words previously produced by [`RngState::to_words`].
    pub fn from_words(words: [u64; 4]) -> Self {
        Self { words }
    }

    /// Whether this is the reserved all-zero "no generator" marker.
    pub fn is_empty(&self) -> bool {
        self.words == [0; 4]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;
    use rand::RngCore;

    #[test]
    fn words_roundtrip_is_lossless() {
        let mut rng = rng_from_seed(99);
        for _ in 0..7 {
            rng.next_u64();
        }
        let state = RngState::capture(&rng);
        let rebuilt = RngState::from_words(state.to_words());
        assert_eq!(state, rebuilt);
        assert!(!state.is_empty());
    }

    #[test]
    fn restored_generator_continues_the_stream() {
        let mut original = rng_from_seed(5);
        for _ in 0..100 {
            original.next_u64();
        }
        let mut resumed = RngState::capture(&original).restore();
        // The restored generator produces the identical future, not a replay
        // of the past: compare a long run of outputs.
        for i in 0..1000 {
            assert_eq!(original.next_u64(), resumed.next_u64(), "diverged at output {i}");
        }
    }

    #[test]
    fn capture_does_not_disturb_the_generator() {
        let mut a = rng_from_seed(11);
        let mut b = rng_from_seed(11);
        let _ = RngState::capture(&a);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn default_is_the_empty_marker() {
        assert!(RngState::default().is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::rng_from_seed;
    use proptest::prelude::*;
    use rand::RngCore;

    proptest! {
        #[test]
        fn roundtrip_at_any_stream_position(seed in any::<u64>(), advance in 0usize..512) {
            let mut rng = rng_from_seed(seed);
            for _ in 0..advance {
                rng.next_u64();
            }
            let mut resumed = RngState::capture(&rng).restore();
            for _ in 0..64 {
                prop_assert_eq!(rng.next_u64(), resumed.next_u64());
            }
        }
    }
}
