//! Unbiased bounded random integers (Lemire's method).
//!
//! Sampling an edge index `i ∈ [0, m)` is the innermost operation of the
//! ES-MC loop, so it must be both fast and free of modulo bias.  The paper
//! uses Lemire's multiply-shift technique (reference \[58\] in the paper); we
//! implement the same algorithm here on top of any [`rand::RngCore`].

use rand::RngCore;

/// Draw a uniform integer in `[0, bound)` using Lemire's rejection method.
///
/// `bound` must be non-zero.  The expected number of 64-bit words consumed is
/// `1 + O(bound / 2^64)`, i.e. essentially one.
///
/// # Panics
/// Panics if `bound == 0`.
#[inline]
pub fn gen_range_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "bound must be positive");
    // Fast path for powers of two: a mask is exact and unbiased.
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (bound as u128);
    let mut low = m as u64;
    if low < bound {
        // Rejection threshold: 2^64 mod bound.
        let threshold = bound.wrapping_neg() % bound;
        while low < threshold {
            x = rng.next_u64();
            m = (x as u128) * (bound as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Draw a uniform index in `[0, len)` as `usize`.
///
/// # Panics
/// Panics if `len == 0`.
#[inline]
pub fn gen_index<R: RngCore + ?Sized>(rng: &mut R, len: usize) -> usize {
    gen_range_u64(rng, len as u64) as usize
}

/// A reusable sampler for a fixed bound.
///
/// Precomputes the rejection threshold so the hot loop performs a single
/// multiplication and comparison per draw.  Used by the edge-sampling pipeline
/// where millions of indices with the same bound `m` are required.
#[derive(Debug, Clone, Copy)]
pub struct UniformIndex {
    bound: u64,
    threshold: u64,
    mask: Option<u64>,
}

impl UniformIndex {
    /// Create a sampler for `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn new(bound: u64) -> Self {
        assert!(bound > 0, "bound must be positive");
        if bound.is_power_of_two() {
            Self { bound, threshold: 0, mask: Some(bound - 1) }
        } else {
            Self { bound, threshold: bound.wrapping_neg() % bound, mask: None }
        }
    }

    /// The exclusive upper bound of this sampler.
    #[inline]
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// Draw a sample.
    #[inline]
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        if let Some(mask) = self.mask {
            return rng.next_u64() & mask;
        }
        loop {
            let x = rng.next_u64();
            let m = (x as u128) * (self.bound as u128);
            if (m as u64) >= self.threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Draw a sample as `usize`.
    #[inline]
    pub fn sample_index<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        self.sample(rng) as usize
    }

    /// Draw an ordered pair of *distinct* samples `(a, b)` with `a != b`.
    ///
    /// This is the primitive used by ES-MC to select two distinct edge
    /// indices.  Requires `bound >= 2`.
    #[inline]
    pub fn sample_distinct_pair<R: RngCore + ?Sized>(&self, rng: &mut R) -> (u64, u64) {
        debug_assert!(self.bound >= 2);
        let a = self.sample(rng);
        loop {
            let b = self.sample(rng);
            if b != a {
                return (a, b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    #[should_panic]
    fn zero_bound_panics() {
        let mut rng = rng_from_seed(0);
        gen_range_u64(&mut rng, 0);
    }

    #[test]
    fn respects_bound() {
        let mut rng = rng_from_seed(1);
        for bound in [1u64, 2, 3, 7, 10, 100, 1 << 20, u64::MAX] {
            for _ in 0..200 {
                assert!(gen_range_u64(&mut rng, bound) < bound);
            }
        }
    }

    #[test]
    fn uniform_index_matches_free_function_distribution() {
        // Both must stay within bound and produce all residues for tiny bounds.
        let mut rng = rng_from_seed(3);
        let sampler = UniformIndex::new(5);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[sampler.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        // Chi-square check over 16 cells with 160k samples; threshold is very
        // generous (the 99.9% quantile of chi2 with 15 dof is ~37.7).
        let mut rng = rng_from_seed(7);
        let bound = 16u64 + 1; // deliberately not a power of two? 17
        let sampler = UniformIndex::new(bound);
        let n = 170_000u64;
        let mut counts = vec![0u64; bound as usize];
        for _ in 0..n {
            counts[sampler.sample(&mut rng) as usize] += 1;
        }
        let expected = n as f64 / bound as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 60.0, "chi2 = {chi2}");
    }

    #[test]
    fn distinct_pair_never_equal() {
        let mut rng = rng_from_seed(11);
        let sampler = UniformIndex::new(2);
        for _ in 0..100 {
            let (a, b) = sampler.sample_distinct_pair(&mut rng);
            assert_ne!(a, b);
            assert!(a < 2 && b < 2);
        }
    }

    #[test]
    fn power_of_two_fast_path() {
        let mut rng = rng_from_seed(13);
        let sampler = UniformIndex::new(64);
        for _ in 0..1000 {
            assert!(sampler.sample(&mut rng) < 64);
        }
    }
}
