//! Small sampling helpers: reservoir sampling and sampling without
//! replacement.
//!
//! These are not on the critical path of the Markov chains themselves but are
//! used by the analysis crate (choosing which edges to track in the
//! autocorrelation study) and by the dataset generators (selecting graph
//! subsets for the NetRep-like corpus).

use crate::bounded::gen_index;
use rand::RngCore;

/// Sample `k` items uniformly without replacement from `0..n` (Algorithm R).
///
/// Returns fewer than `k` items iff `n < k`.  The output is not sorted.
pub fn sample_indices_without_replacement<R: RngCore + ?Sized>(
    rng: &mut R,
    n: usize,
    k: usize,
) -> Vec<usize> {
    if k >= n {
        return (0..n).collect();
    }
    let mut reservoir: Vec<usize> = (0..k).collect();
    for i in k..n {
        let j = gen_index(rng, i + 1);
        if j < k {
            reservoir[j] = i;
        }
    }
    reservoir
}

/// Reservoir-sample `k` items from an iterator of unknown length.
pub fn reservoir_sample<T, I, R>(rng: &mut R, iter: I, k: usize) -> Vec<T>
where
    I: IntoIterator<Item = T>,
    R: RngCore + ?Sized,
{
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    for (i, item) in iter.into_iter().enumerate() {
        if i < k {
            reservoir.push(item);
        } else {
            let j = gen_index(rng, i + 1);
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;
    use std::collections::HashSet;

    #[test]
    fn without_replacement_has_no_duplicates() {
        let mut rng = rng_from_seed(3);
        for (n, k) in [(10, 3), (100, 50), (5, 5), (5, 10), (0, 3)] {
            let sample = sample_indices_without_replacement(&mut rng, n, k);
            let unique: HashSet<_> = sample.iter().collect();
            assert_eq!(unique.len(), sample.len());
            assert_eq!(sample.len(), k.min(n));
            assert!(sample.iter().all(|&x| x < n.max(1)));
        }
    }

    #[test]
    fn reservoir_matches_requested_size() {
        let mut rng = rng_from_seed(4);
        let sample = reservoir_sample(&mut rng, 0..1000, 10);
        assert_eq!(sample.len(), 10);
        let sample = reservoir_sample(&mut rng, 0..5, 10);
        assert_eq!(sample.len(), 5);
    }

    #[test]
    fn each_item_roughly_equally_likely() {
        // Inclusion probability of each of 10 items when sampling 5 is 1/2.
        let mut rng = rng_from_seed(9);
        let mut counts = vec![0u32; 10];
        let trials = 20_000;
        for _ in 0..trials {
            for idx in sample_indices_without_replacement(&mut rng, 10, 5) {
                counts[idx] += 1;
            }
        }
        for &c in &counts {
            let p = c as f64 / trials as f64;
            assert!((p - 0.5).abs() < 0.03, "inclusion probability {p}");
        }
    }
}
