//! Sequential and parallel uniform random permutations.
//!
//! A global switch (Def. 3 in the paper) is parameterised by a uniformly
//! random permutation `π` of the edge indices `[m]`.  For large `m` the
//! permutation must be generated in parallel; we follow the bucket-scatter
//! approach of Sanders (reference \[59\] in the paper): every element is
//! assigned to one of `B` buckets uniformly at random, buckets are
//! materialised independently, locally shuffled with Fisher–Yates, and then
//! concatenated.  Conditioned on the (multinomially distributed) bucket
//! sizes, every interleaving is equally likely, so the concatenation is a
//! uniformly random permutation.

use crate::bounded::gen_index;
use crate::seeds::SeedSequence;
use rand::RngCore;
use rayon::prelude::*;

/// Shuffle `data` in place with the Fisher–Yates algorithm.
///
/// Uses the unbiased bounded sampler from [`crate::bounded`]; this is the
/// sequential reference implementation against which the parallel variant is
/// tested.
pub fn shuffle_in_place<T, R: RngCore + ?Sized>(rng: &mut R, data: &mut [T]) {
    let n = data.len();
    if n < 2 {
        return;
    }
    for i in (1..n).rev() {
        let j = gen_index(rng, i + 1);
        data.swap(i, j);
    }
}

/// Generate a uniformly random permutation of `[0, n)` sequentially.
pub fn random_permutation<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> Vec<u64> {
    let mut perm: Vec<u64> = (0..n as u64).collect();
    shuffle_in_place(rng, &mut perm);
    perm
}

/// Number of scatter buckets used by [`parallel_permutation`] for `n` elements
/// on `threads` worker threads.
fn bucket_count(n: usize, threads: usize) -> usize {
    if n < 1 << 14 || threads <= 1 {
        1
    } else {
        // A few buckets per thread keeps the multinomial imbalance low while
        // giving the scheduler room to balance work.
        (4 * threads).next_power_of_two().min(n / 1024).max(1)
    }
}

/// Generate a uniformly random permutation of `[0, n)` in parallel.
///
/// The permutation is a deterministic function of `seed` (and `n`): bucket
/// assignment uses a per-element hash stream and each bucket is shuffled with
/// a seed derived from its index, so results do not depend on the number of
/// threads or the scheduling order.
pub fn parallel_permutation(seed: u64, n: usize) -> Vec<u64> {
    let threads = rayon::current_num_threads();
    let buckets = bucket_count(n, threads);
    let seq = SeedSequence::new(seed);

    if buckets == 1 {
        let mut rng = seq.child_rng(0);
        return random_permutation(&mut rng, n);
    }

    // Phase 1: assign each element to a bucket. The assignment RNG is indexed
    // by chunk so the result is independent of thread scheduling.
    let chunk = 1 << 16;
    let assignments: Vec<u32> = (0..n)
        .into_par_iter()
        .chunks(chunk)
        .enumerate()
        .flat_map_iter(|(c, items)| {
            let mut rng = seq.child_rng(0x5EED_0000 + c as u64);
            let buckets = buckets as u64;
            items.into_iter().map(move |_| crate::bounded::gen_range_u64(&mut rng, buckets) as u32)
        })
        .collect();

    // Phase 2: counting sort by bucket (sequential counting, parallel scatter
    // via per-bucket collection).
    let mut counts = vec![0usize; buckets];
    for &b in &assignments {
        counts[b as usize] += 1;
    }
    let mut offsets = vec![0usize; buckets + 1];
    for b in 0..buckets {
        offsets[b + 1] = offsets[b] + counts[b];
    }

    // Scatter the element ids into their buckets.
    let mut scattered: Vec<u64> = vec![0; n];
    {
        let mut cursors = offsets[..buckets].to_vec();
        for (i, &b) in assignments.iter().enumerate() {
            let pos = cursors[b as usize];
            scattered[pos] = i as u64;
            cursors[b as usize] += 1;
        }
    }

    // Phase 3: shuffle every bucket independently, in parallel.
    let mut result = scattered;
    {
        // Split the vector into per-bucket slices.
        let mut slices: Vec<&mut [u64]> = Vec::with_capacity(buckets);
        let mut rest: &mut [u64] = &mut result;
        for &count in counts.iter() {
            let (head, tail) = rest.split_at_mut(count);
            slices.push(head);
            rest = tail;
        }
        slices.into_par_iter().enumerate().for_each(|(b, slice)| {
            let mut rng = seq.child_rng(0xB0CC_0000 + b as u64);
            shuffle_in_place(&mut rng, slice);
        });
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    fn is_permutation(perm: &[u64]) -> bool {
        let n = perm.len();
        let mut seen = vec![false; n];
        for &p in perm {
            if p as usize >= n || seen[p as usize] {
                return false;
            }
            seen[p as usize] = true;
        }
        true
    }

    #[test]
    fn sequential_permutation_is_valid() {
        let mut rng = rng_from_seed(5);
        for n in [0usize, 1, 2, 3, 17, 1000] {
            let p = random_permutation(&mut rng, n);
            assert_eq!(p.len(), n);
            assert!(is_permutation(&p));
        }
    }

    #[test]
    fn parallel_permutation_is_valid_small_and_large() {
        for n in [0usize, 1, 10, 1 << 10, (1 << 15) + 123] {
            let p = parallel_permutation(77, n);
            assert_eq!(p.len(), n);
            assert!(is_permutation(&p), "not a permutation for n = {n}");
        }
    }

    #[test]
    fn parallel_permutation_is_deterministic_in_seed() {
        let a = parallel_permutation(123, 1 << 15);
        let b = parallel_permutation(123, 1 << 15);
        assert_eq!(a, b);
        let c = parallel_permutation(124, 1 << 15);
        assert_ne!(a, c);
    }

    #[test]
    fn sequential_shuffle_uniform_on_three_elements() {
        // All 6 permutations of [0,1,2] should appear with roughly equal
        // frequency.
        let mut rng = rng_from_seed(42);
        let mut counts = std::collections::HashMap::new();
        let trials = 60_000;
        for _ in 0..trials {
            let mut v = vec![0u64, 1, 2];
            shuffle_in_place(&mut rng, &mut v);
            *counts.entry(v).or_insert(0u64) += 1;
        }
        assert_eq!(counts.len(), 6);
        let expected = trials as f64 / 6.0;
        for (_, &c) in counts.iter() {
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.05, "relative deviation {rel}");
        }
    }

    #[test]
    fn parallel_permutation_first_position_uniform() {
        // For a uniform permutation the value at position 0 is uniform over
        // [0, n). Use a small n and many seeds; chi-square style tolerance.
        let n = 8usize;
        let trials = 4000;
        let mut counts = vec![0u64; n];
        for seed in 0..trials {
            let p = parallel_permutation(seed as u64, n);
            counts[p[0] as usize] += 1;
        }
        let expected = trials as f64 / n as f64;
        for &c in &counts {
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.25, "relative deviation {rel}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn parallel_permutation_always_valid(seed in any::<u64>(), n in 0usize..5000) {
            let p = parallel_permutation(seed, n);
            prop_assert_eq!(p.len(), n);
            let mut sorted = p.clone();
            sorted.sort_unstable();
            for (i, v) in sorted.into_iter().enumerate() {
                prop_assert_eq!(i as u64, v);
            }
        }

        #[test]
        fn shuffle_preserves_multiset(seed in any::<u64>(), mut data in proptest::collection::vec(any::<u32>(), 0..200)) {
            let mut rng = crate::rng_from_seed(seed);
            let mut original = data.clone();
            shuffle_in_place(&mut rng, &mut data);
            original.sort_unstable();
            data.sort_unstable();
            prop_assert_eq!(original, data);
        }
    }
}
