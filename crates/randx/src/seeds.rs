//! Seed derivation for reproducible (parallel) experiments.
//!
//! Every algorithm in this workspace takes a single `u64` seed.  Parallel
//! algorithms must derive many statistically independent sub-seeds from it —
//! one per thread, per superstep, or per task — without the derived streams
//! overlapping.  We use the splitmix64 finalizer, whose output function is a
//! bijection on 64-bit integers with excellent avalanche behaviour, as the
//! standard tool for this purpose (it is also the recommended seeding
//! procedure for xoshiro/PCG family generators).

/// One splitmix64 step: advances `state` by the golden-gamma constant and
/// returns the scrambled output.
///
/// The output function is bijective, so distinct inputs never collide.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Scramble a single value without carrying state (stateless hash).
///
/// Useful to mix a (seed, index) pair into a fresh sub-seed:
/// `mix64(seed ^ mix64(index))`.
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut state = x;
    splitmix64(&mut state)
}

/// An incremental FNV-1a 64-bit hasher — the workspace's standard
/// content-fingerprint function (graph fingerprints, cache keys, checkpoint
/// checksums all speak it).  Not cryptographic; stable across runs and
/// builds.
///
/// ```
/// use gesmc_randx::seeds::{fnv1a_64, Fnv1a64};
/// let mut h = Fnv1a64::new();
/// h.write(b"ab");
/// h.write(b"c");
/// assert_eq!(h.finish(), fnv1a_64(b"abc"));
/// ```
#[derive(Debug, Clone)]
pub struct Fnv1a64 {
    state: u64,
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a64 {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self { state: 0xcbf2_9ce4_8422_2325 }
    }

    /// Absorb bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Absorb one `u64` as its little-endian bytes.
    pub fn write_u64(&mut self, word: u64) {
        self.write(&word.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a 64-bit hash of a byte string.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hasher = Fnv1a64::new();
    hasher.write(bytes);
    hasher.finish()
}

/// A small deterministic stream of 64-bit seeds derived from a root seed.
///
/// ```
/// use gesmc_randx::SeedSequence;
/// let mut seq = SeedSequence::new(7);
/// let a = seq.next_u64();
/// let b = seq.next_u64();
/// assert_ne!(a, b);
/// // Reconstructing the sequence yields the same values.
/// let mut seq2 = SeedSequence::new(7);
/// assert_eq!(seq2.next_u64(), a);
/// ```
#[derive(Debug, Clone)]
pub struct SeedSequence {
    state: u64,
}

impl SeedSequence {
    /// Create a sequence rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        // Pre-scramble so that small consecutive user seeds (0, 1, 2, ...)
        // do not produce correlated first outputs.
        Self { state: mix64(seed ^ 0xA076_1D64_78BD_642F) }
    }

    /// Next 64-bit seed in the sequence.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Derive the `i`-th child seed without consuming the sequence.
    ///
    /// Children are indexed deterministically: `child(i)` always returns the
    /// same value for the same root seed, independent of how many values have
    /// been drawn from the sequence itself.  This is the primitive used to
    /// hand seeds to rayon tasks whose execution order is not deterministic.
    pub fn child(&self, i: u64) -> u64 {
        mix64(self.state ^ mix64(i.wrapping_add(0x9E37_79B9_7F4A_7C15)))
    }

    /// Derive a child [`crate::Rng`] for task index `i`.
    pub fn child_rng(&self, i: u64) -> crate::Rng {
        crate::rng_from_seed(self.child(i))
    }

    /// The raw internal state, for checkpointing.
    ///
    /// Restoring with [`SeedSequence::from_raw_state`] yields a sequence whose
    /// future draws and child derivations are identical to this one's.
    pub fn raw_state(&self) -> u64 {
        self.state
    }

    /// Rebuild a sequence from a state captured by [`SeedSequence::raw_state`].
    ///
    /// Unlike [`SeedSequence::new`] this applies no pre-scrambling.
    pub fn from_raw_state(state: u64) -> Self {
        Self { state }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn splitmix_reference_values() {
        // Reference values for seed 0 from the public-domain splitmix64 code.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220A8397B1DCDAF);
        assert_eq!(splitmix64(&mut s), 0x6E789E6AA1B965F4);
        assert_eq!(splitmix64(&mut s), 0x06C45D188009454F);
    }

    #[test]
    fn fnv1a_reference_values_and_incrementality() {
        // Reference values from the FNV specification.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a64::new();
        h.write_u64(0x0807_0605_0403_0201);
        assert_eq!(h.finish(), fnv1a_64(&[1, 2, 3, 4, 5, 6, 7, 8]));
    }

    #[test]
    fn mix64_is_injective_on_sample() {
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn children_are_distinct_and_stable() {
        let seq = SeedSequence::new(99);
        let children: Vec<u64> = (0..1000).map(|i| seq.child(i)).collect();
        let unique: HashSet<_> = children.iter().collect();
        assert_eq!(unique.len(), children.len());
        // Stable across clones and draws.
        let mut seq2 = SeedSequence::new(99);
        let c5 = seq2.child(5);
        seq2.next_u64();
        assert_ne!(seq2.child(5), c5, "child derivation tracks the current state");
        assert_eq!(SeedSequence::new(99).child(5), c5);
    }

    #[test]
    fn sequences_with_adjacent_seeds_are_uncorrelated() {
        let mut a = SeedSequence::new(0);
        let mut b = SeedSequence::new(1);
        let equal = (0..256).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(equal, 0);
    }
}
