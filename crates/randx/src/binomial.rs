//! Binomial sampling for the number of executed switches per global switch.
//!
//! Def. 3 of the paper draws `ℓ ~ Binom(⌊m/2⌋, 1 − P_L)` where `P_L` is a
//! small per-switch rejection probability that guarantees aperiodicity of the
//! Markov chain.  Since `⌊m/2⌋` can be hundreds of millions, the sampler must
//! be sub-linear in the number of trials; we delegate to `rand_distr`'s BTPE
//! based implementation and add an exact inversion sampler for tiny trial
//! counts (used in tests as an oracle).

use rand::Rng as _;
use rand::RngCore;
use rand_distr::{Binomial, Distribution};

/// Sample from `Binom(n, p)`.
///
/// # Panics
/// Panics if `p` is not in `[0, 1]` or is not finite.
pub fn sample_binomial<R: RngCore + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    assert!(p.is_finite() && (0.0..=1.0).contains(&p), "p must be in [0,1]");
    if n == 0 || p == 0.0 {
        return 0;
    }
    if (p - 1.0).abs() < f64::EPSILON {
        return n;
    }
    let dist = Binomial::new(n, p).expect("validated parameters");
    dist.sample(rng)
}

/// Exact inversion sampler (O(n) worst case); reference oracle for tests and
/// tiny `n`.
pub fn sample_binomial_naive<R: RngCore + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    assert!(p.is_finite() && (0.0..=1.0).contains(&p), "p must be in [0,1]");
    let mut successes = 0u64;
    for _ in 0..n {
        if rng.gen::<f64>() < p {
            successes += 1;
        }
    }
    successes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn edge_cases() {
        let mut rng = rng_from_seed(0);
        assert_eq!(sample_binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(sample_binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(sample_binomial(&mut rng, 100, 1.0), 100);
    }

    #[test]
    #[should_panic]
    fn invalid_probability_panics() {
        let mut rng = rng_from_seed(0);
        sample_binomial(&mut rng, 10, 1.5);
    }

    #[test]
    fn mean_and_variance_are_plausible() {
        let mut rng = rng_from_seed(17);
        let n = 10_000u64;
        let p = 0.99; // the paper's setting: P_L small, success probability 1 - P_L
        let reps = 2000;
        let samples: Vec<u64> = (0..reps).map(|_| sample_binomial(&mut rng, n, p)).collect();
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / reps as f64;
        let expected_mean = n as f64 * p;
        assert!(
            (mean - expected_mean).abs() < 5.0 * (n as f64 * p * (1.0 - p)).sqrt(),
            "mean {mean} too far from {expected_mean}"
        );
        let var = samples
            .iter()
            .map(|&x| {
                let d = x as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / reps as f64;
        let expected_var = n as f64 * p * (1.0 - p);
        assert!(
            var > 0.5 * expected_var && var < 2.0 * expected_var,
            "variance {var} vs {expected_var}"
        );
    }

    #[test]
    fn fast_and_naive_agree_in_distribution() {
        // Compare empirical means of the two samplers for a small n.
        let mut rng = rng_from_seed(5);
        let (n, p, reps) = (50u64, 0.3, 20_000);
        let fast: f64 =
            (0..reps).map(|_| sample_binomial(&mut rng, n, p) as f64).sum::<f64>() / reps as f64;
        let naive: f64 =
            (0..reps).map(|_| sample_binomial_naive(&mut rng, n, p) as f64).sum::<f64>()
                / reps as f64;
        assert!((fast - naive).abs() < 0.3, "fast {fast} vs naive {naive}");
    }

    #[test]
    fn samples_never_exceed_trials() {
        let mut rng = rng_from_seed(6);
        for _ in 0..1000 {
            assert!(sample_binomial(&mut rng, 37, 0.7) <= 37);
        }
    }
}
