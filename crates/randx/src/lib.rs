//! Randomness utilities for edge switching Markov chains.
//!
//! The paper's implementation (Sec. 5.3) relies on three random primitives:
//!
//! 1. *Unbiased bounded integers* — translating raw 64-bit random words into
//!    uniform integers in `[0, s)` without modulo bias, following Lemire's
//!    multiply-shift rejection method ([`bounded`]).
//! 2. *Random permutations* — a global switch is defined by a uniformly random
//!    permutation of the edge indices `[m]`.  We provide both a sequential
//!    Fisher–Yates shuffle and a scalable parallel permutation based on a
//!    bucket-scatter phase followed by independent local shuffles, in the
//!    spirit of Sanders' distributed permutation algorithm ([`permutation`]).
//! 3. *Binomial sampling* — the number of executed switches per global switch
//!    is drawn from `Binom(⌊m/2⌋, 1 − P_L)` ([`binomial`]).
//!
//! In addition, [`seeds`] derives independent, reproducible sub-streams from a
//!  single user-provided seed (splitmix64), so that parallel algorithms remain
//! reproducible irrespective of thread scheduling.
//!
//! The default generator used across the workspace is [`rand_pcg::Pcg64`],
//! standing in for the MT19937-64 generator used by the paper's C++ code; both
//! are high-quality 64-bit PRNGs and the chains only require unbiased uniform
//! indices and bits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binomial;
pub mod bounded;
pub mod permutation;
pub mod reservoir;
pub mod seeds;
pub mod state;

pub use binomial::sample_binomial;
pub use bounded::{gen_index, gen_range_u64, UniformIndex};
pub use permutation::{parallel_permutation, random_permutation, shuffle_in_place};
pub use seeds::{fnv1a_64, mix64, splitmix64, Fnv1a64, SeedSequence};
pub use state::RngState;

/// The pseudo-random generator used throughout the workspace.
///
/// `Pcg64` offers 128-bit state, 64-bit output, and jump-free independent
/// streams via distinct stream constants, which we exploit when deriving
/// per-thread generators.
pub type Rng = rand_pcg::Pcg64;

/// Construct the workspace-default PRNG from a 64-bit seed.
///
/// Two different seeds yield generators that are, for all practical purposes,
/// independent: the seed is first diffused through [`splitmix64`] into the
/// 128-bit PCG state and a distinct odd stream constant.
pub fn rng_from_seed(seed: u64) -> Rng {
    let mut seq = SeedSequence::new(seed);
    let state = ((seq.next_u64() as u128) << 64) | seq.next_u64() as u128;
    let stream = ((seq.next_u64() as u128) << 64) | seq.next_u64() as u128;
    rand_pcg::Pcg64::new(state, stream | 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn rng_from_seed_is_deterministic() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_from_different_seeds_differ() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should diverge");
    }
}
