//! Criterion benchmark: the out-of-core cost model.
//!
//! Two questions, one group each:
//!
//! * `exmem_superstep` — what does a `seq-es-ext` superstep cost over the
//!   heap store vs a budget-bound [`ExternalEdgeStore`] (64 KiB = one
//!   pinned chunk, and 4 MiB = everything cached), with plain `SeqES` as
//!   the reference?  All four produce bit-identical samples
//!   (`tests/exmem_equivalence.rs`), so the deltas here are pure storage
//!   cost.
//! * `mapped_first_touch` — how long does `MappedEdgeList::open` plus one
//!   full validating stream over a cold map take, against reading the same
//!   file onto the heap?  This is the latency a rehydrated serve cache
//!   entry or a `--mmap` job pays before its first switch.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use gesmc_core::{EdgeSwitching, SeqES, SwitchingConfig};
use gesmc_datasets::{netrep_like::family_graph, GraphFamily};
use gesmc_exmem::{ExternalEdgeStore, MappedEdgeList, SeqESExt};
use gesmc_graph::io::{read_edge_list_binary_file, write_edge_list_binary_file};
use gesmc_graph::EdgeListGraph;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static SCRATCH_SEQ: AtomicUsize = AtomicUsize::new(0);

fn work_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gesmc-bench-exmem-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench work dir");
    dir
}

fn external_chain(input: &PathBuf, budget: usize, seed: u64) -> SeqESExt {
    let scratch =
        input.with_extension(format!("scratch{}", SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed)));
    let store = ExternalEdgeStore::create(input, &scratch, budget).expect("external store");
    SeqESExt::new(Box::new(store), SwitchingConfig::with_seed(seed))
}

fn bench_superstep(c: &mut Criterion, graph: &EdgeListGraph, input: &PathBuf) {
    let cfg = SwitchingConfig::with_seed(1);
    let m = graph.num_edges();

    let mut group = c.benchmark_group("exmem_superstep");
    group.throughput(Throughput::Elements((m / 2) as u64));
    group.sample_size(10);

    group.bench_with_input(BenchmarkId::new("SeqES-heap", m), graph, |b, g| {
        b.iter_batched(
            || SeqES::new(g.clone(), cfg),
            |mut chain| {
                chain.superstep();
                chain
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_with_input(BenchmarkId::new("SeqESExt-heap", m), graph, |b, g| {
        b.iter_batched(
            || SeqESExt::from_graph(g.clone(), cfg),
            |mut chain| {
                chain.superstep();
                chain
            },
            criterion::BatchSize::LargeInput,
        );
    });
    for (label, budget) in [("SeqESExt-ext-64KiB", 64 << 10), ("SeqESExt-ext-4MiB", 4 << 20)] {
        group.bench_with_input(BenchmarkId::new(label, m), input, |b, path| {
            b.iter_batched(
                || external_chain(path, budget, 1),
                |mut chain| {
                    chain.superstep();
                    chain
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_first_touch(c: &mut Criterion, input: &PathBuf, m: usize) {
    let mut group = c.benchmark_group("mapped_first_touch");
    group.throughput(Throughput::Elements(m as u64));
    group.sample_size(10);

    // Map + one full validating stream; the map is created inside the timed
    // closure, so every iteration pays the mmap setup and page faults.
    group.bench_with_input(BenchmarkId::new("mmap-stream", m), input, |b, path| {
        b.iter(|| {
            let view = MappedEdgeList::open(path).expect("open");
            let mut count = 0usize;
            view.for_each_edge(&mut |_, _| count += 1).expect("stream");
            count
        });
    });
    group.bench_with_input(BenchmarkId::new("heap-read", m), input, |b, path| {
        b.iter(|| read_edge_list_binary_file(path).expect("read").num_edges());
    });
    group.finish();
}

fn bench_exmem(c: &mut Criterion) {
    let corpus = family_graph(1, GraphFamily::Mesh, 20_000);
    let graph = corpus.graph;
    let dir = work_dir();
    let input = dir.join("mesh.el");
    write_edge_list_binary_file(&input, &graph).expect("write input");

    bench_superstep(c, &graph, &input);
    bench_first_touch(c, &input, graph.num_edges());

    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_exmem);

fn main() {
    benches();
    criterion::write_json_report();
    gesmc_bench::dump_obs_histograms();
}
