//! Criterion benchmark: requests/sec of the `gesmc-serve` HTTP service.
//!
//! Boots a real server on an ephemeral port and measures the two regimes
//! that matter for the serving layer:
//!
//! * **hot cache** — repeated requests for one `(graph, chain, supersteps)`
//!   key; after the first miss every request is an O(1) cache hit, so this
//!   measures the HTTP codec + cache lookup path;
//! * **cold cache** — every request uses a fresh graph seed, so each one
//!   flows through the bounded admission queue and runs a chain on the
//!   engine pool.
//! * **cold-boot rehydration** — a durable server (`data_dir` set) is
//!   restarted on a populated data dir and the first request for a spilled
//!   key is timed: boot replay + lazy disk rehydration instead of a chain
//!   run.
//!
//! Honours the harness' `--scale {smoke,small,paper}` knob (default
//! `smoke`, so `cargo bench` stays fast offline).

use criterion::{criterion_group, BatchSize, BenchmarkId, Criterion, Throughput};
use gesmc_bench::Scale;
use gesmc_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|pair| pair[0] == "--scale")
        .and_then(|pair| Scale::parse(&pair[1]))
        .unwrap_or(Scale::Smoke)
}

/// One blocking request; panics on a non-200 so regressions fail loudly.
fn request(addr: SocketAddr, path: &str) -> usize {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").expect("write");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read");
    assert!(response.starts_with(b"HTTP/1.1 200"), "non-200 response during bench");
    response.len()
}

fn bench_serve(c: &mut Criterion) {
    let scale = scale_from_args();
    let (edges, supersteps) = scale.pick((500usize, 5u64), (5_000, 10), (50_000, 20));

    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        engine_workers: 2,
        max_pending: 0, // unbounded: the bench must never shed
        ..ServeConfig::default()
    };
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();

    let hot_path =
        format!("/v1/sample?graph=pld:m={edges},seed=1&algo=seq-global-es&supersteps={supersteps}");
    // Prime the hot key once, outside the measurement.
    request(addr, &hot_path);

    let mut group = c.benchmark_group("serve_requests");
    group.throughput(Throughput::Elements(1));
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("hot_cache", edges), &edges, |b, _| {
        b.iter(|| request(addr, &hot_path));
    });
    let mut cold_seed = 1_000_000u64;
    group.bench_with_input(BenchmarkId::new("cold_cache", edges), &edges, |b, _| {
        b.iter(|| {
            cold_seed += 1;
            let path = format!(
                "/v1/sample?graph=pld:m={edges},seed={cold_seed}&algo=seq-global-es&supersteps={supersteps}"
            );
            request(addr, &path)
        });
    });
    group.finish();
    server.shutdown();
}

/// Time a durable node coming back warm: boot on a populated data dir and
/// fetch a spilled one-shot key (replayed journal + lazy disk rehydration,
/// no chain run).
fn bench_cold_boot_rehydration(c: &mut Criterion) {
    let scale = scale_from_args();
    let (edges, supersteps) = scale.pick((500usize, 5u64), (5_000, 10), (50_000, 20));

    let data_dir =
        std::env::temp_dir().join(format!("gesmc-bench-rehydrate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let durable_config = || ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        engine_workers: 2,
        max_pending: 0,
        data_dir: Some(data_dir.clone()),
        ..ServeConfig::default()
    };
    let path =
        format!("/v1/sample?graph=pld:m={edges},seed=2&algo=seq-global-es&supersteps={supersteps}");

    // Populate the data dir once: compute the key so it spills to disk.
    {
        let server = Server::bind(durable_config()).expect("bind seed server");
        request(server.local_addr(), &path);
        server.shutdown();
    }

    let mut group = c.benchmark_group("serve_cold_boot");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("rehydrate_first_hit", edges), &edges, |b, _| {
        b.iter_batched(
            || Server::bind(durable_config()).expect("bind rebooted server"),
            |server| {
                // Timed: first request after a restart (served from the
                // spilled cache entry, no chain run) plus the teardown.
                request(server.local_addr(), &path);
                server.shutdown();
            },
            BatchSize::PerIteration,
        );
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&data_dir);
}

criterion_group!(benches, bench_serve, bench_cold_boot_rehydration);

fn main() {
    benches();
    criterion::write_json_report();
    // The serve benchmarks drive the full request pipeline, so the sidecar
    // (`<report stem>.hist.json`) captures request-phase, cache-probe, and
    // persistence latency distributions for the checked-in baseline.
    gesmc_bench::dump_obs_histograms();
}
