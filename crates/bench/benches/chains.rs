//! Criterion benchmark: one superstep of every chain implementation on the
//! same mesh-like graph (the head-to-head comparison underlying Fig. 4).

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use gesmc_baselines::{AdjacencyListES, GlobalCurveball, SortedAdjacencyES};
use gesmc_core::{
    EdgeSwitching, NaiveParES, ParES, ParGlobalES, SeqES, SeqGlobalES, SwitchingConfig,
};
use gesmc_datasets::{netrep_like::family_graph, GraphFamily};
use gesmc_graph::EdgeListGraph;

fn bench_one<C, F>(
    group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    name: &str,
    graph: &EdgeListGraph,
    make: F,
) where
    C: EdgeSwitching,
    F: Fn(EdgeListGraph) -> C,
{
    group.bench_with_input(BenchmarkId::new(name, graph.num_edges()), graph, |b, g| {
        b.iter_batched(
            || make(g.clone()),
            |mut chain| {
                chain.superstep();
                chain
            },
            criterion::BatchSize::LargeInput,
        );
    });
}

fn bench_chains(c: &mut Criterion) {
    let corpus = family_graph(1, GraphFamily::Mesh, 20_000);
    let graph = corpus.graph;
    let cfg = SwitchingConfig::with_seed(1);

    let mut group = c.benchmark_group("one_superstep");
    group.throughput(Throughput::Elements((graph.num_edges() / 2) as u64));
    group.sample_size(10);

    bench_one(&mut group, "SeqES", &graph, |g| SeqES::new(g, cfg));
    bench_one(&mut group, "SeqGlobalES", &graph, |g| SeqGlobalES::new(g, cfg));
    bench_one(&mut group, "ParES", &graph, |g| ParES::new(g, cfg));
    bench_one(&mut group, "ParGlobalES", &graph, |g| ParGlobalES::new(g, cfg));
    bench_one(&mut group, "NaiveParES", &graph, |g| NaiveParES::new(g, cfg));
    bench_one(&mut group, "AdjacencyListES", &graph, |g| AdjacencyListES::new(g, cfg));
    bench_one(&mut group, "SortedAdjacencyES", &graph, |g| SortedAdjacencyES::new(g, cfg));
    bench_one(&mut group, "GlobalCurveball", &graph, |g| GlobalCurveball::new(g, cfg));
    group.finish();
}

criterion_group!(benches, bench_chains);

fn main() {
    benches();
    criterion::write_json_report();
    // The timed loop above calls `superstep()` directly, below the engine's
    // instrumentation, so it records no histograms (that hot path carries
    // zero observability overhead by construction).  Run one short job
    // through the instrumented engine path afterwards so the sidecar still
    // carries a superstep-duration distribution; this does not perturb the
    // timings, which are already written.
    let corpus = family_graph(2, GraphFamily::Mesh, 2_000);
    let spec = gesmc_engine::JobSpec::new(
        "bench-sidecar",
        gesmc_engine::GraphSource::InMemory(corpus.graph),
        gesmc_core::ChainSpec::new("seq-es"),
    )
    .supersteps(8);
    let mut sink = gesmc_engine::NullSink::default();
    gesmc_engine::run_job(&spec, &mut sink, None).expect("sidecar job");
    // Latency-histogram sidecar (`<report stem>.hist.json`) for trajectory
    // entries that pair throughput with per-phase distributions.
    gesmc_bench::dump_obs_histograms();
}
