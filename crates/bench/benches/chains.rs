//! Criterion benchmark: one superstep of every chain implementation on the
//! same mesh-like graph (the head-to-head comparison underlying Fig. 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gesmc_baselines::{AdjacencyListES, GlobalCurveball, SortedAdjacencyES};
use gesmc_core::{
    EdgeSwitching, NaiveParES, ParES, ParGlobalES, SeqES, SeqGlobalES, SwitchingConfig,
};
use gesmc_datasets::{netrep_like::family_graph, GraphFamily};
use gesmc_graph::EdgeListGraph;

fn bench_one<C, F>(
    group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    name: &str,
    graph: &EdgeListGraph,
    make: F,
) where
    C: EdgeSwitching,
    F: Fn(EdgeListGraph) -> C,
{
    group.bench_with_input(BenchmarkId::new(name, graph.num_edges()), graph, |b, g| {
        b.iter_batched(
            || make(g.clone()),
            |mut chain| {
                chain.superstep();
                chain
            },
            criterion::BatchSize::LargeInput,
        );
    });
}

fn bench_chains(c: &mut Criterion) {
    let corpus = family_graph(1, GraphFamily::Mesh, 20_000);
    let graph = corpus.graph;
    let cfg = SwitchingConfig::with_seed(1);

    let mut group = c.benchmark_group("one_superstep");
    group.throughput(Throughput::Elements((graph.num_edges() / 2) as u64));
    group.sample_size(10);

    bench_one(&mut group, "SeqES", &graph, |g| SeqES::new(g, cfg));
    bench_one(&mut group, "SeqGlobalES", &graph, |g| SeqGlobalES::new(g, cfg));
    bench_one(&mut group, "ParES", &graph, |g| ParES::new(g, cfg));
    bench_one(&mut group, "ParGlobalES", &graph, |g| ParGlobalES::new(g, cfg));
    bench_one(&mut group, "NaiveParES", &graph, |g| NaiveParES::new(g, cfg));
    bench_one(&mut group, "AdjacencyListES", &graph, |g| AdjacencyListES::new(g, cfg));
    bench_one(&mut group, "SortedAdjacencyES", &graph, |g| SortedAdjacencyES::new(g, cfg));
    bench_one(&mut group, "GlobalCurveball", &graph, |g| GlobalCurveball::new(g, cfg));
    group.finish();
}

criterion_group!(benches, bench_chains);
criterion_main!(benches);
