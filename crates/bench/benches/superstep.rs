//! Criterion micro-benchmark: throughput of `ParallelSuperstep` (Algorithm 1)
//! on one global switch, across dataset families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gesmc_core::seq_global::SeqGlobalES;
use gesmc_core::superstep::run_superstep_on_graph;
use gesmc_datasets::{netrep_like::family_graph, GraphFamily};
use gesmc_randx::permutation::random_permutation;
use gesmc_randx::rng_from_seed;

fn bench_superstep(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_superstep");
    group.sample_size(10);
    for family in [GraphFamily::Mesh, GraphFamily::PowerLaw, GraphFamily::RoadLike] {
        let corpus = family_graph(1, family, 20_000);
        let graph = corpus.graph;
        let m = graph.num_edges();
        let mut rng = rng_from_seed(7);
        let perm = random_permutation(&mut rng, m);
        let switches = SeqGlobalES::switches_from_permutation(&perm, m / 2);

        group.throughput(Throughput::Elements(switches.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("global_switch", family.label()),
            &graph,
            |b, g| {
                b.iter(|| run_superstep_on_graph(g, &switches));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_superstep);
criterion_main!(benches);
