//! Criterion micro-benchmark: sequential vs. parallel random permutation
//! (the per-global-switch setup cost of G-ES-MC).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gesmc_randx::permutation::{parallel_permutation, random_permutation};
use gesmc_randx::rng_from_seed;

fn bench_permutations(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_permutation");
    group.sample_size(20);
    for size in [1usize << 14, 1 << 18] {
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(BenchmarkId::new("sequential", size), &size, |b, &n| {
            let mut rng = rng_from_seed(3);
            b.iter(|| random_permutation(&mut rng, n));
        });
        group.bench_with_input(BenchmarkId::new("parallel", size), &size, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                parallel_permutation(seed, n)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_permutations);
criterion_main!(benches);
