//! Criterion ablation benchmarks for the design choices DESIGN.md calls out:
//! software prefetching in the sequential chain, and the cost of exactness
//! (ParGlobalES vs. the inexact NaiveParES).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gesmc_core::{EdgeSwitching, NaiveParES, ParGlobalES, SeqES, SwitchingConfig};
use gesmc_datasets::{netrep_like::family_graph, GraphFamily};

fn bench_prefetch_ablation(c: &mut Criterion) {
    let graph = family_graph(2, GraphFamily::Mesh, 30_000).graph;
    let mut group = c.benchmark_group("prefetch_ablation");
    group.throughput(Throughput::Elements((graph.num_edges() / 2) as u64));
    group.sample_size(10);
    for prefetch in [false, true] {
        let cfg = SwitchingConfig::with_seed(3).prefetch(prefetch);
        group.bench_with_input(BenchmarkId::new("SeqES_superstep", prefetch), &graph, |b, g| {
            b.iter_batched(
                || SeqES::new(g.clone(), cfg),
                |mut chain| {
                    chain.superstep();
                    chain
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_exactness_cost(c: &mut Criterion) {
    let graph = family_graph(3, GraphFamily::PowerLaw, 30_000).graph;
    let mut group = c.benchmark_group("exactness_cost");
    group.throughput(Throughput::Elements((graph.num_edges() / 2) as u64));
    group.sample_size(10);
    let cfg = SwitchingConfig::with_seed(4);
    group.bench_with_input(BenchmarkId::new("ParGlobalES", "exact"), &graph, |b, g| {
        b.iter_batched(
            || ParGlobalES::new(g.clone(), cfg),
            |mut chain| {
                chain.superstep();
                chain
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_with_input(BenchmarkId::new("NaiveParES", "inexact"), &graph, |b, g| {
        b.iter_batched(
            || NaiveParES::new(g.clone(), cfg),
            |mut chain| {
                chain.superstep();
                chain
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_prefetch_ablation, bench_exactness_cost);
criterion_main!(benches);
