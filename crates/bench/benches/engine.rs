//! Criterion benchmark: throughput of the batched job engine.
//!
//! Measures jobs/sec of a multi-job batch over varying worker counts and
//! samples/sec of a thinning-heavy job mix, on the SynPld corpus.  Honours
//! the harness' `--scale {smoke,small,paper}` knob (default `smoke`, so that
//! `cargo bench` stays fast offline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gesmc_bench::Scale;
use gesmc_datasets::syn_pld_graph;
use gesmc_engine::{ChainSpec, GraphSource, JobQueue, JobSpec, NullSink, QueuedJob, WorkerPool};
use gesmc_graph::EdgeListGraph;

fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|pair| pair[0] == "--scale")
        .and_then(|pair| Scale::parse(&pair[1]))
        .unwrap_or(Scale::Smoke)
}

fn build_queue(graph: &EdgeListGraph, jobs: usize, supersteps: u64, thinning: u64) -> JobQueue {
    let mut queue = JobQueue::new();
    for i in 0..jobs {
        let spec = JobSpec::new(
            format!("bench{i}"),
            GraphSource::InMemory(graph.clone()),
            ChainSpec::new("par-global-es"),
        )
        .supersteps(supersteps)
        .thinning(thinning)
        .seed(i as u64)
        .threads(2);
        queue.push(QueuedJob::new(spec, Box::new(NullSink::default())));
    }
    queue
}

fn bench_engine(c: &mut Criterion) {
    let scale = scale_from_args();
    let (jobs, nodes, supersteps) =
        scale.pick((6usize, 700usize, 6u64), (12, 7_000, 10), (24, 70_000, 20));
    let graph = syn_pld_graph(1, nodes, 2.5);

    // Jobs/sec: a batch of final-state-only jobs, over varying worker counts.
    let mut group = c.benchmark_group("engine_jobs");
    group.throughput(Throughput::Elements(jobs as u64));
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("jobs_per_sec", workers),
            &workers,
            |b, &workers| {
                b.iter_batched(
                    || build_queue(&graph, jobs, supersteps, 0),
                    |queue| WorkerPool::new(workers).run(queue),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();

    // Samples/sec: every superstep emits a thinned sample (thinning = 1),
    // so throughput counts sink deliveries.
    let mut group = c.benchmark_group("engine_samples");
    group.throughput(Throughput::Elements(jobs as u64 * supersteps));
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("samples_per_sec", jobs), &jobs, |b, &jobs| {
        b.iter_batched(
            || build_queue(&graph, jobs, supersteps, 1),
            |queue| WorkerPool::new(0).run(queue),
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
