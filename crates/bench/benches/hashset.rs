//! Criterion micro-benchmark: the sequential and concurrent edge hash sets
//! under the insert / query / erase mix produced by edge switching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gesmc_concurrent::{ConcurrentEdgeSet, SeqEdgeSet};
use gesmc_graph::Edge;
use gesmc_randx::{bounded::gen_range_u64, rng_from_seed};

const OPS: u64 = 50_000;

fn mixed_workload_seq(n_nodes: u64) {
    let mut rng = rng_from_seed(1);
    let mut set = SeqEdgeSet::with_capacity(OPS as usize);
    for _ in 0..OPS {
        let u = gen_range_u64(&mut rng, n_nodes) as u32;
        let v = gen_range_u64(&mut rng, n_nodes) as u32;
        if u == v {
            continue;
        }
        let e = Edge::new(u, v).pack();
        match gen_range_u64(&mut rng, 3) {
            0 => {
                set.insert(e);
            }
            1 => {
                set.erase(e);
            }
            _ => {
                std::hint::black_box(set.contains(e));
            }
        }
    }
}

fn mixed_workload_concurrent(n_nodes: u64) {
    let mut rng = rng_from_seed(1);
    let set = ConcurrentEdgeSet::with_capacity(OPS as usize);
    for _ in 0..OPS {
        let u = gen_range_u64(&mut rng, n_nodes) as u32;
        let v = gen_range_u64(&mut rng, n_nodes) as u32;
        if u == v {
            continue;
        }
        let e = Edge::new(u, v);
        match gen_range_u64(&mut rng, 3) {
            0 => {
                set.insert(e);
            }
            1 => {
                set.erase(e);
            }
            _ => {
                std::hint::black_box(set.contains(e));
            }
        }
    }
}

fn bench_hashsets(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge_hash_sets");
    group.sample_size(20);
    group.throughput(Throughput::Elements(OPS));
    for n_nodes in [1_000u64, 100_000] {
        group.bench_with_input(BenchmarkId::new("seq", n_nodes), &n_nodes, |b, &n| {
            b.iter(|| mixed_workload_seq(n));
        });
        group.bench_with_input(
            BenchmarkId::new("concurrent_single_thread", n_nodes),
            &n_nodes,
            |b, &n| {
                b.iter(|| mixed_workload_concurrent(n));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hashsets);
criterion_main!(benches);
