//! Criterion benchmark: throughput of the study pipeline.
//!
//! Measures cells/sec of a full `run_study` sweep (spec → worker pool →
//! streaming metrics sink → report files) and supersteps/sec of the
//! [`MetricsSink`] alone, isolating the per-superstep analysis cost
//! (presence tracking + transition-count accumulation) from the chains.
//! Honours the harness' `--scale {smoke,small,paper}` knob (default `smoke`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gesmc_bench::Scale;
use gesmc_datasets::syn_pld_graph;
use gesmc_engine::{run_job, ChainSpec, GraphSource, JobSpec};
use gesmc_study::{run_study, MetricsSink, StudyOptions, StudySpec};

fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|pair| pair[0] == "--scale")
        .and_then(|pair| Scale::parse(&pair[1]))
        .unwrap_or(Scale::Smoke)
}

fn study_spec(edges: usize, supersteps: u64) -> StudySpec {
    StudySpec::parse(&format!(
        r#"{{
            "name": "bench_study",
            "chains": ["seq-es", "seq-global-es", "par-global-es"],
            "graphs": [
                {{ "family": "pld", "edges": {edges}, "gamma": 2.5 }},
                {{ "family": "gnp", "edges": {edges} }}
            ],
            "thinnings": [1, 2, 4, 8],
            "supersteps": {supersteps},
            "seed": 1,
            "workers": 2
        }}"#
    ))
    .expect("bench spec must parse")
}

fn bench_study(c: &mut Criterion) {
    let scale = scale_from_args();
    let (edges, supersteps) = scale.pick((300usize, 8u64), (3_000, 16), (30_000, 32));
    let spec = study_spec(edges, supersteps);
    let cells = (spec.chains.len() * spec.graphs.len()) as u64;
    let out_dir = std::env::temp_dir().join("gesmc-bench-study");

    // Cells/sec of the full pipeline, report files included.
    let mut group = c.benchmark_group("study_pipeline");
    group.throughput(Throughput::Elements(cells));
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("cells_per_sec", cells), &spec, |b, spec| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&out_dir);
            let opts = StudyOptions { output_dir: Some(out_dir.clone()), ..Default::default() };
            run_study(spec, &opts).expect("study must succeed")
        });
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&out_dir);

    // Supersteps/sec through the MetricsSink alone (one chain, thinning 1):
    // the marginal cost of measuring instead of discarding samples.
    let graph = syn_pld_graph(1, edges / 3, 2.5);
    let mut group = c.benchmark_group("study_metrics_sink");
    group.throughput(Throughput::Elements(supersteps));
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("supersteps_per_sec", graph.num_edges()),
        &graph,
        |b, graph| {
            b.iter(|| {
                let mut sink = MetricsSink::new(graph, &[1, 2, 4, 8], 0);
                let job = JobSpec::new(
                    "sink-bench",
                    GraphSource::InMemory(graph.clone()),
                    ChainSpec::new("seq-global-es"),
                )
                .supersteps(supersteps)
                .thinning(1)
                .seed(2);
                run_job(&job, &mut sink, None).expect("job must succeed")
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_study);
criterion_main!(benches);
