//! Shared infrastructure of the benchmark harness.
//!
//! Every figure/table of the paper's evaluation has a dedicated binary in
//! `src/bin/` (see DESIGN.md §5 for the index).  They share:
//!
//! * [`Scale`] — the `--scale {smoke,small,paper}` knob trading fidelity for
//!   runtime.  `smoke` finishes in seconds on a laptop, `small` in minutes,
//!   `paper` approaches the parameter ranges of the publication (hours).
//! * [`BenchWriter`] — CSV + JSON result emission into `results/`.
//! * [`time_supersteps`] — the common timing loop (initialise data structures
//!   and perform `k` supersteps, as in Sec. 6.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gesmc_core::{ChainStats, EdgeSwitching};
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Workload scale of a benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds: tiny instances, useful to validate the pipeline.
    Smoke,
    /// Minutes: the default; shapes are already meaningful.
    Small,
    /// Hours: parameter ranges close to the paper's.
    Paper,
}

impl Scale {
    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Pick one of three values depending on the scale.
    pub fn pick<T>(self, smoke: T, small: T, paper: T) -> T {
        match self {
            Scale::Smoke => smoke,
            Scale::Small => small,
            Scale::Paper => paper,
        }
    }
}

/// Parse the common CLI arguments of the figure binaries.
///
/// Supported flags: `--scale {smoke,small,paper}` (default `small`),
/// `--seed <u64>` (default 1), `--threads <usize>` (default: all cores).
pub struct BenchArgs {
    /// Requested scale.
    pub scale: Scale,
    /// Root seed.
    pub seed: u64,
}

impl BenchArgs {
    /// Parse `std::env::args`, initialising the global rayon pool if
    /// `--threads` is given.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut scale = Scale::Small;
        let mut seed = 1u64;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| Scale::parse(s)) {
                        scale = v;
                    }
                    i += 2;
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        seed = v;
                    }
                    i += 2;
                }
                "--threads" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        let _ = rayon::ThreadPoolBuilder::new().num_threads(v).build_global();
                    }
                    i += 2;
                }
                _ => i += 1,
            }
        }
        Self { scale, seed }
    }
}

/// One emitted result row (generic key/value payload serialised to JSON, plus
/// a flat CSV line).
#[derive(Debug)]
pub struct Row {
    /// Column names (CSV header).
    pub columns: Vec<String>,
    /// Values, one per column.
    pub values: Vec<String>,
}

/// Collects rows and writes them to `results/<name>.csv` and `.json`.
pub struct BenchWriter {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl BenchWriter {
    /// Create a writer for experiment `name` with the given CSV header.
    pub fn new(name: &str, header: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header length).
    pub fn row(&mut self, values: &[String]) {
        assert_eq!(values.len(), self.header.len(), "row/header length mismatch");
        self.rows.push(values.to_vec());
        // Also echo to stdout so running a figure binary is self-contained.
        println!("{}", values.join(","));
    }

    /// Write the collected rows to `results/`.
    pub fn finish(&self) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("results");
        fs::create_dir_all(&dir)?;
        let csv_path = dir.join(format!("{}.csv", self.name));
        let mut csv = fs::File::create(&csv_path)?;
        writeln!(csv, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(csv, "{}", row.join(","))?;
        }
        let json_path = dir.join(format!("{}.json", self.name));
        let json_rows: Vec<serde_json::Value> = self
            .rows
            .iter()
            .map(|row| {
                let map: serde_json::Map<String, serde_json::Value> = self
                    .header
                    .iter()
                    .cloned()
                    .zip(row.iter().map(|v| serde_json::Value::String(v.clone())))
                    .collect();
                serde_json::Value::Object(map)
            })
            .collect();
        fs::write(&json_path, serde_json::to_string_pretty(&json_rows)?)?;
        Ok(csv_path)
    }

    /// Print the CSV header to stdout (call before the first row).
    pub fn print_header(&self) {
        println!("{}", self.header.join(","));
    }
}

/// Write a JSON snapshot of the observability registry (every latency
/// histogram and event counter the benchmarked code recorded) next to the
/// `GESMC_BENCH_JSON` report, as `<report stem>.hist.json`.
///
/// Benchmarks call this after `write_json_report` so a checked-in baseline
/// carries its per-phase latency distributions alongside the mean/min/max
/// rows.  A no-op (returning `None`) when `GESMC_BENCH_JSON` is unset or
/// empty, mirroring the report writer.
pub fn dump_obs_histograms() -> Option<PathBuf> {
    let report = std::env::var("GESMC_BENCH_JSON").ok().filter(|p| !p.is_empty())?;
    let report = PathBuf::from(report);
    let stem = report.file_stem()?.to_string_lossy().into_owned();
    let path = report.with_file_name(format!("{stem}.hist.json"));
    fs::write(&path, gesmc_obs::render_json()).ok()?;
    Some(path)
}

/// Time `supersteps` supersteps of `chain` (including data-structure
/// initialisation happening inside the chain constructor is the caller's
/// business, mirroring Sec. 6.2's methodology of measuring init + 20
/// supersteps together).
pub fn time_supersteps<C: EdgeSwitching>(
    chain: &mut C,
    supersteps: usize,
) -> (Duration, ChainStats) {
    let start = Instant::now();
    let stats = chain.run_supersteps(supersteps);
    (start.elapsed(), stats)
}

/// Format seconds with three decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_and_pick() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
        assert_eq!(Scale::Small.pick(1, 2, 3), 2);
    }

    #[test]
    fn writer_produces_csv_and_json() {
        let dir = std::env::temp_dir().join("gesmc-bench-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();

        let mut w = BenchWriter::new("unit_test_rows", &["a", "b"]);
        w.row(&["1".into(), "x".into()]);
        w.row(&["2".into(), "y".into()]);
        let path = w.finish().unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.starts_with("a,b\n1,x\n2,y"));
        let json = std::fs::read_to_string(path.with_extension("json")).unwrap();
        assert!(json.contains("\"a\": \"1\""));

        std::env::set_current_dir(old).unwrap();
    }

    #[test]
    fn timing_helper_runs_the_requested_supersteps() {
        use gesmc_core::{SeqGlobalES, SwitchingConfig};
        let graph = gesmc_datasets::syn_gnp_graph(1, 100, 400);
        let mut chain = SeqGlobalES::new(graph, SwitchingConfig::with_seed(1));
        let (elapsed, stats) = time_supersteps(&mut chain, 3);
        assert_eq!(stats.num_supersteps(), 3);
        assert!(elapsed.as_nanos() > 0);
    }
}
