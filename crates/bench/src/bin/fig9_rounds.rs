//! Figure 9: rounds per global switch of `ParGlobalES` and the fraction of
//! runtime spent outside the first round, over the NetRep-like corpus.
//!
//! ```text
//! cargo run --release -p gesmc-bench --bin fig9_rounds -- --scale small
//! ```

use gesmc_bench::{BenchArgs, BenchWriter};
use gesmc_core::{EdgeSwitching, ParGlobalES, SwitchingConfig};
use gesmc_datasets::netrep_corpus;

fn main() {
    let args = BenchArgs::parse();
    let global_switches = 20usize;
    let (min_edges, max_edges) =
        args.scale.pick((4_000, 16_000), (4_000, 128_000), (10_000, 8_000_000));

    let mut writer = BenchWriter::new(
        "fig9_rounds",
        &[
            "graph",
            "family",
            "edges",
            "mean_rounds",
            "max_rounds",
            "fraction_time_after_first_round",
            "threads",
        ],
    );
    writer.print_header();

    let threads = rayon::current_num_threads();
    for corpus_graph in netrep_corpus(args.seed, min_edges, max_edges) {
        let graph = corpus_graph.graph.clone();
        let mut chain = ParGlobalES::new(graph.clone(), SwitchingConfig::with_seed(args.seed));
        let stats = chain.run_supersteps(global_switches);
        writer.row(&[
            corpus_graph.name.clone(),
            corpus_graph.family.label().into(),
            graph.num_edges().to_string(),
            format!("{:.2}", stats.mean_rounds()),
            stats.max_rounds().to_string(),
            format!("{:.4}", stats.mean_fraction_after_first_round()),
            threads.to_string(),
        ]);
    }
    let path = writer.finish().expect("write results");
    eprintln!("wrote {}", path.display());
}
