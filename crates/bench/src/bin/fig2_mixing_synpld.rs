//! Figure 2: fraction of non-independent edges vs. thinning value on SynPld.
//!
//! For each (n, γ) configuration the harness runs ES-MC and G-ES-MC for a
//! fixed number of supersteps, tracks the presence of every initial edge and
//! reports the fraction of edges whose thinned time series is still deemed
//! autocorrelated (BIC/G² criterion), per thinning value.
//!
//! ```text
//! cargo run --release -p gesmc-bench --bin fig2_mixing_synpld -- --scale small
//! ```

use gesmc_analysis::mixing_profile;
use gesmc_bench::{BenchArgs, BenchWriter};
use gesmc_core::{SeqES, SeqGlobalES, SwitchingConfig};
use gesmc_datasets::syn_pld_graph;

fn main() {
    let args = BenchArgs::parse();
    let node_counts: Vec<usize> =
        args.scale.pick(vec![1 << 7], vec![1 << 7, 1 << 10], vec![1 << 7, 1 << 10, 1 << 13]);
    let gammas: Vec<f64> =
        args.scale.pick(vec![2.01, 2.5], vec![2.01, 2.1, 2.2, 2.5], vec![2.01, 2.1, 2.2, 2.5]);
    let repetitions = args.scale.pick(2, 5, 40);
    let supersteps = args.scale.pick(32, 64, 128);
    let thinnings: Vec<usize> =
        (0..).map(|i| 1usize << i).take_while(|&k| k <= supersteps).collect();

    let mut writer = BenchWriter::new(
        "fig2_mixing_synpld",
        &["n", "gamma", "algorithm", "thinning", "mean_non_independent", "repetitions"],
    );
    writer.print_header();

    for &n in &node_counts {
        for &gamma in &gammas {
            // Accumulate the mean fraction over repetitions per thinning value.
            let mut acc: Vec<(f64, f64)> = vec![(0.0, 0.0); thinnings.len()]; // (es, ges)
            for rep in 0..repetitions {
                let seed = args.seed + 1000 * rep as u64;
                let graph = syn_pld_graph(seed ^ n as u64, n, gamma);

                let mut es = SeqES::new(graph.clone(), SwitchingConfig::with_seed(seed));
                let es_profile = mixing_profile(&mut es, &graph, supersteps, &thinnings);

                let mut ges = SeqGlobalES::new(graph.clone(), SwitchingConfig::with_seed(seed));
                let ges_profile = mixing_profile(&mut ges, &graph, supersteps, &thinnings);

                for (i, slot) in acc.iter_mut().enumerate() {
                    slot.0 += es_profile.points[i].1;
                    slot.1 += ges_profile.points[i].1;
                }
            }
            for (i, &k) in thinnings.iter().enumerate() {
                let es_mean = acc[i].0 / repetitions as f64;
                let ges_mean = acc[i].1 / repetitions as f64;
                writer.row(&[
                    n.to_string(),
                    format!("{gamma}"),
                    "ES-MC".into(),
                    k.to_string(),
                    format!("{es_mean:.5}"),
                    repetitions.to_string(),
                ]);
                writer.row(&[
                    n.to_string(),
                    format!("{gamma}"),
                    "G-ES-MC".into(),
                    k.to_string(),
                    format!("{ges_mean:.5}"),
                    repetitions.to_string(),
                ]);
            }
        }
    }
    let path = writer.finish().expect("write results");
    eprintln!("wrote {}", path.display());
}
