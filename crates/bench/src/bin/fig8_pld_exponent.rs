//! Figure 8: runtime per edge of `ParGlobalES` on power-law graphs as a
//! function of the degree exponent γ.
//!
//! The paper's observation (matching Theorem 3): the runtime per edge
//! increases slightly as γ approaches 2 because heavily skewed degree
//! sequences create more target dependencies and synchronisation.
//!
//! ```text
//! cargo run --release -p gesmc-bench --bin fig8_pld_exponent -- --scale small
//! ```

use gesmc_bench::{time_supersteps, BenchArgs, BenchWriter};
use gesmc_core::{ParGlobalES, SwitchingConfig};
use gesmc_datasets::syn_pld_graph;

fn main() {
    let args = BenchArgs::parse();
    let supersteps = args.scale.pick(3, 10, 20);
    let node_counts: Vec<usize> =
        args.scale.pick(vec![1 << 13], vec![1 << 15, 1 << 17], vec![1 << 20, 1 << 22, 1 << 24]);
    let gammas: Vec<f64> = vec![2.01, 2.2, 2.4, 2.6, 2.8, 3.0];

    let mut writer = BenchWriter::new(
        "fig8_pld_exponent",
        &[
            "nodes",
            "gamma",
            "edges",
            "max_degree",
            "threads",
            "seconds",
            "seconds_per_edge",
            "mean_rounds",
        ],
    );
    writer.print_header();

    let threads = rayon::current_num_threads();
    for &n in &node_counts {
        for &gamma in &gammas {
            let graph = syn_pld_graph(args.seed ^ n as u64, n, gamma);
            let m = graph.num_edges();
            if m < 2 {
                continue;
            }
            let cfg = SwitchingConfig::with_seed(args.seed);
            let (t, stats) = time_supersteps(&mut ParGlobalES::new(graph.clone(), cfg), supersteps);
            writer.row(&[
                n.to_string(),
                format!("{gamma}"),
                m.to_string(),
                graph.max_degree().to_string(),
                threads.to_string(),
                format!("{:.3}", t.as_secs_f64()),
                format!("{:.3e}", t.as_secs_f64() / m as f64),
                format!("{:.2}", stats.mean_rounds()),
            ]);
        }
    }
    let path = writer.finish().expect("write results");
    eprintln!("wrote {}", path.display());
}
