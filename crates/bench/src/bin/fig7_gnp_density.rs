//! Figure 7: runtime of `ParGlobalES` on `G(n, p)` graphs as a function of
//! the average degree, for several edge budgets.
//!
//! The paper's observation (a consequence of Theorem 2): for nearly-regular
//! graphs the edge probability has no significant effect on the runtime, even
//! when the average degree approaches `n − 1`.
//!
//! ```text
//! cargo run --release -p gesmc-bench --bin fig7_gnp_density -- --scale small
//! ```

use gesmc_bench::{secs, time_supersteps, BenchArgs, BenchWriter};
use gesmc_core::{ParGlobalES, SwitchingConfig};
use gesmc_datasets::{syn_gnp_graph, syn_gnp_sweep};

fn main() {
    let args = BenchArgs::parse();
    let supersteps = args.scale.pick(3, 10, 20);
    let edge_budgets: Vec<usize> = args.scale.pick(
        vec![1 << 14],
        vec![1 << 16, 1 << 18],
        vec![1 << 18, 1 << 20, 1 << 22, 1 << 24, 1 << 26],
    );
    let avg_degrees: Vec<f64> = args.scale.pick(
        vec![8.0, 64.0, 512.0],
        vec![8.0, 32.0, 128.0, 512.0, 2048.0],
        vec![8.0, 32.0, 128.0, 512.0, 2048.0, 8192.0],
    );

    let mut writer = BenchWriter::new(
        "fig7_gnp_density",
        &["edges_target", "edges_actual", "nodes", "avg_degree", "threads", "seconds"],
    );
    writer.print_header();

    let threads = rayon::current_num_threads();
    for instance in syn_gnp_sweep(&edge_budgets, &avg_degrees) {
        let graph = syn_gnp_graph(args.seed, instance.n, instance.m);
        if graph.num_edges() < 2 {
            continue;
        }
        let cfg = SwitchingConfig::with_seed(args.seed);
        let (t, _) = time_supersteps(&mut ParGlobalES::new(graph.clone(), cfg), supersteps);
        writer.row(&[
            instance.m.to_string(),
            graph.num_edges().to_string(),
            instance.n.to_string(),
            format!("{:.1}", graph.average_degree()),
            threads.to_string(),
            secs(t),
        ]);
    }
    let path = writer.finish().expect("write results");
    eprintln!("wrote {}", path.display());
}
