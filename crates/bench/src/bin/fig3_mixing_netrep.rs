//! Figure 3: first superstep (thinning value) at which the mean fraction of
//! non-independent edges drops below 1e-2 / 1e-3, over the NetRep-like corpus.
//!
//! ```text
//! cargo run --release -p gesmc-bench --bin fig3_mixing_netrep -- --scale small
//! ```

use gesmc_analysis::mixing_profile;
use gesmc_bench::{BenchArgs, BenchWriter};
use gesmc_core::{SeqES, SeqGlobalES, SwitchingConfig};
use gesmc_datasets::netrep_corpus;

fn main() {
    let args = BenchArgs::parse();
    let (min_edges, max_edges) = args.scale.pick((1_000, 4_000), (1_000, 32_000), (1_000, 800_000));
    let supersteps = args.scale.pick(16, 32, 64);
    let thinnings: Vec<usize> = (1..=supersteps).collect();
    let thresholds = [1e-2f64, 1e-3];

    let mut writer = BenchWriter::new(
        "fig3_mixing_netrep",
        &["graph", "family", "edges", "density", "algorithm", "threshold", "first_superstep"],
    );
    writer.print_header();

    for corpus_graph in netrep_corpus(args.seed, min_edges, max_edges) {
        let graph = &corpus_graph.graph;
        let density = graph.density();

        let mut es = SeqES::new(graph.clone(), SwitchingConfig::with_seed(args.seed));
        let es_profile = mixing_profile(&mut es, graph, supersteps, &thinnings);
        let mut ges = SeqGlobalES::new(graph.clone(), SwitchingConfig::with_seed(args.seed));
        let ges_profile = mixing_profile(&mut ges, graph, supersteps, &thinnings);

        for (name, profile) in [("ES-MC", &es_profile), ("G-ES-MC", &ges_profile)] {
            for &tau in &thresholds {
                let first = profile
                    .first_thinning_below(tau)
                    .map(|k| k.to_string())
                    .unwrap_or_else(|| "unreached".into());
                writer.row(&[
                    corpus_graph.name.clone(),
                    corpus_graph.family.label().into(),
                    graph.num_edges().to_string(),
                    format!("{density:.6}"),
                    name.into(),
                    format!("{tau}"),
                    first,
                ]);
            }
        }
    }
    let path = writer.finish().expect("write results");
    eprintln!("wrote {}", path.display());
}
