//! Figure 6: strong scaling (self speed-up) of `ParGlobalES` for
//! `1 ≤ P ≤ max` threads on a sample of corpus graphs.
//!
//! ```text
//! cargo run --release -p gesmc-bench --bin fig6_strong_scaling -- --scale small
//! ```

use gesmc_bench::{secs, time_supersteps, BenchArgs, BenchWriter};
use gesmc_core::{ParGlobalES, SwitchingConfig};
use gesmc_datasets::netrep_sample;
use std::time::Duration;

fn in_pool<F: FnOnce() -> Duration + Send>(threads: usize, f: F) -> Duration {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool").install(f)
}

fn main() {
    let args = BenchArgs::parse();
    let supersteps = args.scale.pick(5, 10, 20);
    let size = args.scale.pick(20_000, 100_000, 1_000_000);
    let max_threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let thread_counts: Vec<usize> = {
        let mut v = vec![1usize];
        let mut p = 2;
        while p < max_threads {
            v.push(p);
            p *= 2;
        }
        if max_threads > 1 {
            v.push(max_threads);
        }
        v
    };

    let mut writer = BenchWriter::new(
        "fig6_strong_scaling",
        &["graph", "edges", "threads", "seconds", "self_speedup"],
    );
    writer.print_header();

    for corpus_graph in netrep_sample(args.seed, size) {
        let graph = corpus_graph.graph.clone();
        let cfg = SwitchingConfig::with_seed(args.seed);
        let mut baseline: Option<f64> = None;
        for &threads in &thread_counts {
            let t = in_pool(threads, || {
                time_supersteps(&mut ParGlobalES::new(graph.clone(), cfg), supersteps).0
            });
            let secs_t = t.as_secs_f64();
            let base = *baseline.get_or_insert(secs_t);
            writer.row(&[
                corpus_graph.name.clone(),
                graph.num_edges().to_string(),
                threads.to_string(),
                secs(t),
                format!("{:.2}", base / secs_t.max(1e-9)),
            ]);
        }
    }
    let path = writer.finish().expect("write results");
    eprintln!("wrote {}", path.display());
}
