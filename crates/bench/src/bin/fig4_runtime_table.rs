//! Figure 4 (table): absolute runtimes of all implementations on a sample of
//! graphs, for one processing unit and for all available cores.
//!
//! Columns mirror the paper's table: the adjacency-list baselines stand in
//! for NetworKit and Gengraph, followed by `SeqES`, `SeqGlobalES`,
//! `NaiveParES` and `ParGlobalES` on `P = 1` and on `P = max` threads.  Each
//! measurement initialises the data structures and performs 20 supersteps
//! (10 switches per edge), exactly as described in Sec. 6.2.
//!
//! ```text
//! cargo run --release -p gesmc-bench --bin fig4_runtime_table -- --scale small
//! ```

use gesmc_baselines::{AdjacencyListES, SortedAdjacencyES};
use gesmc_bench::{secs, time_supersteps, BenchArgs, BenchWriter};
use gesmc_core::{NaiveParES, ParGlobalES, SeqES, SeqGlobalES, SwitchingConfig};
use gesmc_datasets::netrep_sample;
use gesmc_graph::EdgeListGraph;
use std::time::Duration;

fn run_in_pool<F: FnOnce() -> (Duration, gesmc_core::ChainStats) + Send>(
    threads: usize,
    f: F,
) -> Duration {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool");
    pool.install(f).0
}

fn main() {
    let args = BenchArgs::parse();
    let supersteps = 20usize;
    let sizes: Vec<usize> = args.scale.pick(
        vec![2_000, 8_000],
        vec![8_000, 32_000, 128_000],
        vec![32_000, 256_000, 2_000_000],
    );
    let max_threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let seed = args.seed;

    let mut writer = BenchWriter::new(
        "fig4_runtime_table",
        &[
            "graph",
            "n",
            "m",
            "max_degree",
            "adjacency_es_p1",
            "sorted_adjacency_es_p1",
            "seq_es_p1",
            "seq_global_es_p1",
            "naive_par_es_p1",
            "par_global_es_p1",
            "naive_par_es_pmax",
            "par_global_es_pmax",
            "threads_max",
        ],
    );
    writer.print_header();

    for size in sizes {
        for corpus_graph in netrep_sample(seed, size) {
            let graph: EdgeListGraph = corpus_graph.graph.clone();
            let cfg = SwitchingConfig::with_seed(seed);

            let t_adj = run_in_pool(1, || {
                time_supersteps(&mut AdjacencyListES::new(graph.clone(), cfg), supersteps)
            });
            let t_sorted = run_in_pool(1, || {
                time_supersteps(&mut SortedAdjacencyES::new(graph.clone(), cfg), supersteps)
            });
            let t_seq_es =
                run_in_pool(1, || time_supersteps(&mut SeqES::new(graph.clone(), cfg), supersteps));
            let t_seq_ges = run_in_pool(1, || {
                time_supersteps(&mut SeqGlobalES::new(graph.clone(), cfg), supersteps)
            });
            let t_naive_1 = run_in_pool(1, || {
                time_supersteps(&mut NaiveParES::new(graph.clone(), cfg), supersteps)
            });
            let t_par_1 = run_in_pool(1, || {
                time_supersteps(&mut ParGlobalES::new(graph.clone(), cfg), supersteps)
            });
            let t_naive_max = run_in_pool(max_threads, || {
                time_supersteps(&mut NaiveParES::new(graph.clone(), cfg), supersteps)
            });
            let t_par_max = run_in_pool(max_threads, || {
                time_supersteps(&mut ParGlobalES::new(graph.clone(), cfg), supersteps)
            });

            writer.row(&[
                corpus_graph.name.clone(),
                graph.num_nodes().to_string(),
                graph.num_edges().to_string(),
                graph.max_degree().to_string(),
                secs(t_adj),
                secs(t_sorted),
                secs(t_seq_es),
                secs(t_seq_ges),
                secs(t_naive_1),
                secs(t_par_1),
                secs(t_naive_max),
                secs(t_par_max),
                max_threads.to_string(),
            ]);
        }
    }
    let path = writer.finish().expect("write results");
    eprintln!("wrote {}", path.display());
}
