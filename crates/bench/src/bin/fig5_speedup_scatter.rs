//! Figure 5: runtimes of `SeqES`, `SeqGlobalES` (P = 1) and `ParGlobalES`
//! (P = max) over the corpus, and the speed-up of the parallel algorithm over
//! its sequential counterpart — with and without software prefetching (the
//! paper's left/right columns).
//!
//! ```text
//! cargo run --release -p gesmc-bench --bin fig5_speedup_scatter -- --scale small
//! ```

use gesmc_bench::{secs, time_supersteps, BenchArgs, BenchWriter};
use gesmc_core::{ParGlobalES, SeqES, SeqGlobalES, SwitchingConfig};
use gesmc_datasets::netrep_corpus;
use std::time::Duration;

fn in_pool<F: FnOnce() -> Duration + Send>(threads: usize, f: F) -> Duration {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool").install(f)
}

fn main() {
    let args = BenchArgs::parse();
    let supersteps = 20usize;
    let (min_edges, max_edges) =
        args.scale.pick((10_000, 40_000), (10_000, 160_000), (10_000, 4_000_000));
    let max_threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);

    let mut writer = BenchWriter::new(
        "fig5_speedup_scatter",
        &[
            "graph",
            "edges",
            "prefetch",
            "seq_es_s",
            "seq_global_es_s",
            "par_global_es_s",
            "speedup",
        ],
    );
    writer.print_header();

    for corpus_graph in netrep_corpus(args.seed, min_edges, max_edges) {
        let graph = corpus_graph.graph.clone();
        for prefetch in [false, true] {
            let cfg = SwitchingConfig::with_seed(args.seed).prefetch(prefetch);
            let t_seq_es =
                in_pool(1, || time_supersteps(&mut SeqES::new(graph.clone(), cfg), supersteps).0);
            let t_seq_ges = in_pool(1, || {
                time_supersteps(&mut SeqGlobalES::new(graph.clone(), cfg), supersteps).0
            });
            let t_par = in_pool(max_threads, || {
                time_supersteps(&mut ParGlobalES::new(graph.clone(), cfg), supersteps).0
            });
            let speedup = t_seq_ges.as_secs_f64() / t_par.as_secs_f64().max(1e-9);
            writer.row(&[
                corpus_graph.name.clone(),
                graph.num_edges().to_string(),
                prefetch.to_string(),
                secs(t_seq_es),
                secs(t_seq_ges),
                secs(t_par),
                format!("{speedup:.2}"),
            ]);
        }
    }
    let path = writer.finish().expect("write results");
    eprintln!("wrote {}", path.display());
}
