//! Property tests for the consistent-hash ring: load uniformity, ownership
//! totality, and the minimal-disruption remap invariant, over random node
//! sets and 10k keys per case.

use gesmc_cluster::{HashRing, DEFAULT_VNODES};
use gesmc_randx::mix64;
use proptest::prelude::*;

const KEYS: u64 = 10_000;

/// Unique node addresses for one generated cluster.
fn node_names(n: usize, label: u64) -> Vec<String> {
    (0..n).map(|i| format!("node-{label:08x}-{i}:8080")).collect()
}

/// The 10k-key workload for one case, salted so cases differ.
fn keys(salt: u64) -> impl Iterator<Item = u64> {
    (0..KEYS).map(move |i| mix64(i ^ salt))
}

fn owner_counts(ring: &HashRing, salt: u64) -> Vec<u64> {
    let mut counts = vec![0u64; ring.len()];
    for key in keys(salt) {
        counts[ring.owner_index(key)] += 1;
    }
    counts
}

proptest! {
    /// With enough virtual nodes every physical node's share of 10k keys
    /// lands within ±20% of uniform, for any cluster size in 2..=16.  The
    /// smoothness of consistent hashing scales as 1/√vnodes, so the bound
    /// is asserted at 1024 vnodes; the 64-vnode default trades some
    /// smoothness for an 16× smaller ring (see the companion bound below).
    #[test]
    fn load_is_within_20_percent_of_uniform(
        n in 2usize..=16,
        label in any::<u64>(),
        salt in any::<u64>(),
    ) {
        let ring = HashRing::with_vnodes(node_names(n, label), 1024).unwrap();
        let expected = KEYS as f64 / n as f64;
        for (index, &count) in owner_counts(&ring, salt).iter().enumerate() {
            let deviation = (count as f64 - expected) / expected;
            prop_assert!(
                deviation.abs() <= 0.20,
                "node {index}/{n} owns {count} keys, {:+.1}% from uniform {expected:.0}",
                deviation * 100.0
            );
        }
    }

    /// The default 64-vnode ring is coarser but still bounded: no node owns
    /// more than twice or less than a quarter of its uniform share.
    #[test]
    fn default_ring_load_stays_bounded(
        n in 2usize..=16,
        label in any::<u64>(),
        salt in any::<u64>(),
    ) {
        let ring = HashRing::new(node_names(n, label)).unwrap();
        prop_assert_eq!(ring.vnodes_per_node(), DEFAULT_VNODES);
        let expected = KEYS as f64 / n as f64;
        for (index, &count) in owner_counts(&ring, salt).iter().enumerate() {
            let share = count as f64 / expected;
            prop_assert!(
                (0.25..=2.0).contains(&share),
                "node {index}/{n} owns {count} keys, {share:.2}× uniform"
            );
        }
    }

    /// Ownership is total and consistent: every key resolves to exactly one
    /// node, that node heads the preference order, and the preference order
    /// is a permutation of the cluster.
    #[test]
    fn every_key_has_exactly_one_owner(
        n in 2usize..=16,
        label in any::<u64>(),
        salt in any::<u64>(),
    ) {
        let ring = HashRing::new(node_names(n, label)).unwrap();
        for key in keys(salt).take(500) {
            let owner = ring.owner(key);
            prop_assert!(ring.nodes().iter().any(|node| node == owner));
            prop_assert_eq!(owner, ring.owner(key), "ownership must be deterministic");
            let preference = ring.preference(key);
            prop_assert_eq!(preference[0], owner);
            prop_assert_eq!(preference.len(), n);
            let mut sorted: Vec<&str> = preference.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), n, "preference order must be a permutation");
        }
    }

    /// Minimal disruption: removing one node remaps exactly the keys that
    /// node owned — every other key keeps its owner, and the moved keys are
    /// precisely the removed node's share.
    #[test]
    fn removing_a_node_remaps_only_its_keys(
        n in 3usize..=16,
        label in any::<u64>(),
        salt in any::<u64>(),
        removed_pick in any::<u64>(),
    ) {
        let nodes = node_names(n, label);
        let removed = &nodes[(removed_pick % n as u64) as usize];
        let full = HashRing::new(nodes.clone()).unwrap();
        let reduced =
            HashRing::new(nodes.iter().filter(|node| *node != removed).cloned()).unwrap();
        let mut owned_by_removed = 0u64;
        let mut moved = 0u64;
        for key in keys(salt) {
            let before = full.owner(key);
            let after = reduced.owner(key);
            if before == removed {
                owned_by_removed += 1;
                prop_assert_ne!(after, removed);
            } else {
                prop_assert_eq!(
                    before, after,
                    "key {key:#x} moved although its owner survived"
                );
            }
            if before != after {
                moved += 1;
            }
        }
        prop_assert_eq!(moved, owned_by_removed);
    }
}
