//! Re-probe timing of [`HealthTracker`] against a fake clock.
//!
//! `HealthTracker` takes `now_ms` explicitly on every call, so the full
//! ejection → probe → recovery cycle is pinned here without a single
//! sleep: a [`FakeClock`] advances milliseconds deterministically and the
//! assertions check the exact tick each transition happens on.

use gesmc_cluster::{HealthPolicy, HealthTracker, PeerStatus};

/// A deterministic millisecond clock the tests advance by hand.
struct FakeClock {
    now_ms: u64,
}

impl FakeClock {
    fn new() -> Self {
        Self { now_ms: 0 }
    }

    fn now(&self) -> u64 {
        self.now_ms
    }

    fn advance(&mut self, ms: u64) -> u64 {
        self.now_ms += ms;
        self.now_ms
    }
}

#[test]
fn three_strikes_eject_under_the_default_policy() {
    let policy = HealthPolicy::default();
    assert_eq!(policy.eject_after, 3, "the documented default is 3 strikes");
    let mut clock = FakeClock::new();
    let mut tracker = HealthTracker::new(policy);

    // Two failures leave the peer healthy and routable.
    for _ in 0..2 {
        assert!(!tracker.record_failure("peer", clock.advance(10)));
        assert_eq!(tracker.status("peer", clock.now()), PeerStatus::Healthy);
        assert!(tracker.is_available("peer", clock.now()));
    }
    // The third consecutive failure ejects.
    assert!(tracker.record_failure("peer", clock.advance(10)));
    assert!(!tracker.is_available("peer", clock.now()));
    assert_eq!(tracker.status("peer", clock.now()), PeerStatus::Ejected { for_ms: 0 });

    // The ejection age follows the fake clock exactly.
    let ejected_at = clock.now();
    clock.advance(137);
    assert_eq!(
        tracker.status("peer", clock.now()),
        PeerStatus::Ejected { for_ms: clock.now() - ejected_at }
    );
}

#[test]
fn a_success_between_failures_resets_the_strike_count() {
    let mut clock = FakeClock::new();
    let mut tracker = HealthTracker::new(HealthPolicy::default());
    assert!(!tracker.record_failure("peer", clock.advance(1)));
    assert!(!tracker.record_failure("peer", clock.advance(1)));
    tracker.record_success("peer");
    // The streak restarted: two more failures still don't eject.
    assert!(!tracker.record_failure("peer", clock.advance(1)));
    assert!(!tracker.record_failure("peer", clock.advance(1)));
    assert_eq!(tracker.status("peer", clock.now()), PeerStatus::Healthy);
    assert!(tracker.record_failure("peer", clock.advance(1)), "third of the new streak ejects");
}

#[test]
fn the_probe_window_opens_on_the_exact_tick_and_has_one_slot() {
    let policy = HealthPolicy::default();
    let mut clock = FakeClock::new();
    let mut tracker = HealthTracker::new(policy);
    for _ in 0..policy.eject_after {
        tracker.record_failure("peer", clock.now());
    }

    // One tick before the window opens: every caller is refused.
    clock.advance(policy.probe_after_ms - 1);
    assert!(!tracker.is_available("peer", clock.now()));

    // On the opening tick, the FIRST caller claims the single probe slot;
    // concurrent callers keep being refused so a recovering peer is never
    // stampeded.
    clock.advance(1);
    assert!(tracker.is_available("peer", clock.now()));
    for _ in 0..5 {
        assert!(!tracker.is_available("peer", clock.now()));
    }
    // Time passing does not mint another slot while the probe is in flight.
    clock.advance(10 * policy.probe_after_ms);
    assert!(!tracker.is_available("peer", clock.now()));
}

#[test]
fn a_failed_probe_restarts_the_window_a_successful_one_recovers() {
    let policy = HealthPolicy::default();
    let mut clock = FakeClock::new();
    let mut tracker = HealthTracker::new(policy);
    for _ in 0..policy.eject_after {
        tracker.record_failure("peer", clock.now());
    }

    // First probe fails: the ejection timer restarts from the failure.
    clock.advance(policy.probe_after_ms);
    assert!(tracker.is_available("peer", clock.now()));
    assert!(tracker.record_failure("peer", clock.now()), "a failed probe re-ejects");
    let reejected_at = clock.now();
    clock.advance(policy.probe_after_ms - 1);
    assert!(!tracker.is_available("peer", clock.now()), "window measures from the failed probe");
    assert_eq!(
        tracker.status("peer", clock.now()),
        PeerStatus::Ejected { for_ms: clock.now() - reejected_at }
    );

    // Second probe succeeds: the peer returns to Healthy with a clean
    // strike count.
    clock.advance(1);
    assert!(tracker.is_available("peer", clock.now()));
    tracker.record_success("peer");
    assert_eq!(tracker.status("peer", clock.now()), PeerStatus::Healthy);
    assert!(tracker.is_available("peer", clock.now()));
    // Fully recovered: the next failure is strike one, not a re-ejection.
    assert!(!tracker.record_failure("peer", clock.advance(5)));
    assert_eq!(tracker.status("peer", clock.now()), PeerStatus::Healthy);
}

#[test]
fn peers_track_independent_clocks_and_snapshots_sort() {
    let policy = HealthPolicy::default();
    let mut clock = FakeClock::new();
    let mut tracker = HealthTracker::new(policy);
    for _ in 0..policy.eject_after {
        tracker.record_failure("b-peer", clock.now());
    }
    clock.advance(policy.probe_after_ms / 2);
    for _ in 0..policy.eject_after {
        tracker.record_failure("a-peer", clock.now());
    }
    tracker.record_success("c-peer");

    // b-peer's window opens first; a-peer's half a window later.
    clock.advance(policy.probe_after_ms / 2);
    assert!(tracker.is_available("b-peer", clock.now()));
    assert!(!tracker.is_available("a-peer", clock.now()));
    clock.advance(policy.probe_after_ms / 2);
    assert!(tracker.is_available("a-peer", clock.now()));

    let snapshot = tracker.snapshot(clock.now());
    let names: Vec<&str> = snapshot.iter().map(|(name, _)| name.as_str()).collect();
    assert_eq!(names, ["a-peer", "b-peer", "c-peer"], "snapshot sorts by peer name");
    assert_eq!(snapshot[2].1, PeerStatus::Healthy);
}
