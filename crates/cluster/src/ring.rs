//! The consistent-hash ring mapping cluster keys to owning nodes.
//!
//! Every physical node contributes [`DEFAULT_VNODES`] virtual points, each
//! placed at `mix64(fnv1a_64("{node}#{index}"))` on the 64-bit ring.  A key is
//! owned by the node of the first virtual point at or clockwise after the
//! key's hash (wrapping at `u64::MAX`).  Virtual nodes smooth the
//! distribution (±20% of uniform is property-tested) and give the
//! **minimal-disruption** guarantee: removing a node only remaps the keys
//! that node owned; every other key keeps its owner.
//!
//! The ring is immutable after construction — membership in this PR is a
//! static `--peers` list, so reconfiguration is a process restart.  Both the
//! server (forwarding) and the client (routing) build the ring from the same
//! node list, so they always agree on ownership.

use gesmc_randx::{fnv1a_64, mix64};

/// Virtual points each physical node contributes to the ring.
pub const DEFAULT_VNODES: usize = 64;

/// Why a ring could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RingError {
    /// The node list was empty.
    NoNodes,
    /// The same node address appeared twice.
    DuplicateNode(String),
    /// Zero virtual nodes were requested.
    NoVnodes,
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingError::NoNodes => write!(f, "a hash ring needs at least one node"),
            RingError::DuplicateNode(node) => {
                write!(f, "node {node:?} appears more than once in the ring")
            }
            RingError::NoVnodes => write!(f, "a hash ring needs at least one virtual node"),
        }
    }
}

impl std::error::Error for RingError {}

/// An immutable consistent-hash ring over a set of node addresses.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Physical nodes, sorted for construction-order independence.
    nodes: Vec<String>,
    /// `(point hash, node index)` sorted by hash (ties broken by node index
    /// so equal inputs always build the identical ring).
    points: Vec<(u64, u32)>,
}

impl HashRing {
    /// A ring with [`DEFAULT_VNODES`] virtual points per node.
    pub fn new<I, S>(nodes: I) -> Result<Self, RingError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::with_vnodes(nodes, DEFAULT_VNODES)
    }

    /// A ring with `vnodes` virtual points per node.  The node list is
    /// sorted and deduplication is an error: the caller's membership list is
    /// configuration, and a silent dedup would hide a config typo.
    pub fn with_vnodes<I, S>(nodes: I, vnodes: usize) -> Result<Self, RingError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        if vnodes == 0 {
            return Err(RingError::NoVnodes);
        }
        let mut nodes: Vec<String> = nodes.into_iter().map(Into::into).collect();
        if nodes.is_empty() {
            return Err(RingError::NoNodes);
        }
        nodes.sort_unstable();
        if let Some(dup) = nodes.windows(2).find(|w| w[0] == w[1]) {
            return Err(RingError::DuplicateNode(dup[0].clone()));
        }
        let mut points = Vec::with_capacity(nodes.len() * vnodes);
        for (index, node) in nodes.iter().enumerate() {
            for vnode in 0..vnodes {
                // FNV-1a alone clusters badly here — sibling labels differ
                // in a handful of bytes, and its weak avalanche leaves the
                // points correlated (±35% load skew at 1024 vnodes).  The
                // splitmix64 finalizer restores full-width diffusion.
                let point = mix64(fnv1a_64(format!("{node}#{vnode}").as_bytes()));
                points.push((point, index as u32));
            }
        }
        // Sort by (hash, node index): hash collisions across nodes are
        // astronomically unlikely but must still resolve deterministically.
        points.sort_unstable();
        Ok(Self { nodes, points })
    }

    /// The physical nodes, sorted.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Number of physical nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no nodes (never true for a constructed ring).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Virtual points per physical node.
    pub fn vnodes_per_node(&self) -> usize {
        self.points.len() / self.nodes.len()
    }

    /// The owning node of `key_hash`: the node of the first virtual point at
    /// or clockwise after the hash, wrapping past `u64::MAX` to the first
    /// point.
    pub fn owner(&self, key_hash: u64) -> &str {
        &self.nodes[self.owner_index(key_hash)]
    }

    /// Index (into [`nodes`](Self::nodes)) of the owning node of `key_hash`.
    pub fn owner_index(&self, key_hash: u64) -> usize {
        let at = self.points.partition_point(|&(point, _)| point < key_hash);
        let (_, node) = self.points[at % self.points.len()];
        node as usize
    }

    /// The distinct nodes to try for `key_hash`, in ring order: the owner
    /// first, then each successor.  This is the failover order — a client
    /// that cannot reach the owner walks the successors, and every caller
    /// derives the same order.
    pub fn preference(&self, key_hash: u64) -> Vec<&str> {
        let start = self.points.partition_point(|&(point, _)| point < key_hash);
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut seen = vec![false; self.nodes.len()];
        for offset in 0..self.points.len() {
            let (_, node) = self.points[(start + offset) % self.points.len()];
            let node = node as usize;
            if !seen[node] {
                seen[node] = true;
                order.push(self.nodes[node].as_str());
                if order.len() == self.nodes.len() {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_is_order_independent_and_rejects_bad_input() {
        let a = HashRing::new(["b:1", "a:1", "c:1"]).unwrap();
        let b = HashRing::new(["c:1", "a:1", "b:1"]).unwrap();
        assert_eq!(a.nodes(), b.nodes());
        for key in [0u64, 1, u64::MAX, 0xdead_beef] {
            assert_eq!(a.owner(key), b.owner(key));
        }
        assert_eq!(a.vnodes_per_node(), DEFAULT_VNODES);
        assert!(matches!(HashRing::new(Vec::<String>::new()), Err(RingError::NoNodes)));
        assert!(matches!(
            HashRing::new(["a:1", "a:1"]),
            Err(RingError::DuplicateNode(node)) if node == "a:1"
        ));
        assert!(matches!(HashRing::with_vnodes(["a:1"], 0), Err(RingError::NoVnodes)));
    }

    #[test]
    fn single_node_owns_everything() {
        let ring = HashRing::new(["only:1"]).unwrap();
        for key in [0u64, 42, u64::MAX / 2, u64::MAX] {
            assert_eq!(ring.owner(key), "only:1");
        }
    }

    #[test]
    fn preference_order_starts_at_the_owner_and_covers_all_nodes() {
        let ring = HashRing::new(["a:1", "b:1", "c:1"]).unwrap();
        for key in 0..200u64 {
            let hash = gesmc_randx::mix64(key);
            let order = ring.preference(hash);
            assert_eq!(order.len(), 3);
            assert_eq!(order[0], ring.owner(hash));
            let mut sorted: Vec<&str> = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec!["a:1", "b:1", "c:1"]);
        }
    }

    #[test]
    fn wraparound_owner_is_the_first_point() {
        let ring = HashRing::new(["a:1", "b:1"]).unwrap();
        // u64::MAX is beyond (or at) the last virtual point with near
        // certainty; the owner must be the node of the smallest point.
        let first_node = ring.points.first().map(|&(_, n)| n as usize).unwrap();
        assert_eq!(ring.owner(u64::MAX), ring.nodes()[first_node]);
    }
}
