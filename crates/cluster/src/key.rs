//! The cluster key: what the ring shards, and the canonical generator-spec
//! grammar both sides of the wire fingerprint.
//!
//! The warm sample cache is keyed by `(graph fingerprint, canonical chain
//! slug, supersteps)`; the cluster shards exactly that key space, so a
//! node's cache holds precisely the keys the ring assigns it.  [`SampleKey`]
//! carries the triple and [`SampleKey::ring_hash`] maps it onto the ring via
//! the workspace's shared FNV-1a — any two processes (a serve node deciding
//! whether to forward, a client picking an endpoint) compute the same owner.
//!
//! [`canonical_graph_spec`] is the single implementation of the compact
//! generator grammar `family[:key=value,…]` used by `GET /v1/sample?graph=…`.
//! Canonicalisation (defaults filled in, keys sorted) is what makes the
//! fingerprint stable across equivalent spellings; the server and the client
//! SDK both call this function, so they can never canonicalise differently.

use gesmc_randx::{fnv1a_64, Fnv1a64};

/// The `(graph fingerprint, chain slug, supersteps)` triple identifying one
/// cacheable sample — the unit of cluster sharding.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SampleKey {
    /// FNV-1a fingerprint of the canonical graph spec (or of the graph
    /// bytes, for inline graphs).
    pub fingerprint: u64,
    /// Canonical chain slug (`ChainSpec::slug`).
    pub chain_slug: String,
    /// Superstep count the sample is taken after.
    pub supersteps: u64,
}

impl SampleKey {
    /// Assemble a key from its components.
    pub fn new(fingerprint: u64, chain_slug: impl Into<String>, supersteps: u64) -> Self {
        Self { fingerprint, chain_slug: chain_slug.into(), supersteps }
    }

    /// The key's position on the consistent-hash ring: FNV-1a over the
    /// fingerprint bytes, the slug, and the superstep bytes, in that order
    /// with `0xFF` separators (no valid UTF-8 slug contains `0xFF`, so
    /// distinct triples never collide by concatenation), diffused through
    /// the splitmix64 finalizer — related keys (same graph, consecutive
    /// superstep counts) must not land on adjacent ring positions.
    pub fn ring_hash(&self) -> u64 {
        let mut hasher = Fnv1a64::new();
        hasher.write(&self.fingerprint.to_le_bytes());
        hasher.write(&[0xFF]);
        hasher.write(self.chain_slug.as_bytes());
        hasher.write(&[0xFF]);
        hasher.write(&self.supersteps.to_le_bytes());
        gesmc_randx::mix64(hasher.finish())
    }
}

/// The parsed parameters of a canonical generator spec.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphParams {
    /// Generator family name (validated against the registry by the server,
    /// not here — the grammar is family-agnostic).
    pub family: String,
    /// Node count (`n`), `0` meaning the family default.
    pub nodes: usize,
    /// Edge count (`m`).
    pub edges: usize,
    /// Power-law exponent (`gamma`), used by the pld family.
    pub gamma: f64,
    /// Generator seed.
    pub seed: u64,
}

impl GraphParams {
    /// The canonical spelling: defaults filled in, keys in sorted order.
    /// Equal specs (under reordering and defaulting) canonicalise equally,
    /// which is what keys the fingerprint.
    pub fn canonical(&self) -> String {
        format!(
            "{}:gamma={},m={},n={},seed={}",
            self.family, self.gamma, self.edges, self.nodes, self.seed
        )
    }

    /// FNV-1a fingerprint of the canonical spelling.
    pub fn fingerprint(&self) -> u64 {
        fnv1a_64(self.canonical().as_bytes())
    }
}

/// Parse the compact generator grammar `family[:key=value,…]` with keys
/// `n` (nodes), `m` (edges), `gamma`, `seed` — e.g. `pld:m=2000,gamma=2.5`.
/// Family names are not validated here (the server checks membership against
/// its registry); the grammar and defaults are.
pub fn canonical_graph_spec(raw: &str) -> Result<GraphParams, String> {
    let (family, params_raw) = match raw.split_once(':') {
        Some((f, p)) => (f, p),
        None => (raw, ""),
    };
    if family.is_empty() {
        return Err("graph spec needs a family name (e.g. pld:m=2000)".to_string());
    }
    let mut nodes = 0usize;
    let mut edges = 1_000usize;
    let mut gamma = 2.5f64;
    let mut seed = 1u64;
    for part in params_raw.split(',').filter(|p| !p.is_empty()) {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("malformed graph parameter {part:?} (expected key=value)"))?;
        let bad = |what: &str| format!("graph parameter {key}={value:?} is not a valid {what}");
        match key {
            "n" => nodes = value.parse().map_err(|_| bad("node count"))?,
            "m" => edges = value.parse().map_err(|_| bad("edge count"))?,
            "gamma" => {
                gamma = value.parse().map_err(|_| bad("exponent"))?;
                // The pld generator requires gamma strictly above 1.
                if !(gamma > 1.0 && gamma <= 10.0) {
                    return Err(format!("gamma must lie in (1, 10], got {gamma}"));
                }
            }
            "seed" => seed = value.parse().map_err(|_| bad("seed"))?,
            other => {
                return Err(format!(
                    "unknown graph parameter {other:?} (expected n, m, gamma, or seed)"
                ))
            }
        }
    }
    if edges == 0 {
        return Err("graph parameter m must be positive".to_string());
    }
    Ok(GraphParams { family: family.to_string(), nodes, edges, gamma, seed })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalisation_is_order_and_default_insensitive() {
        let a = canonical_graph_spec("gnp:m=100,seed=2").unwrap();
        let b = canonical_graph_spec("gnp:seed=2,m=100").unwrap();
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(
            canonical_graph_spec("gnp").unwrap().canonical(),
            "gnp:gamma=2.5,m=1000,n=0,seed=1"
        );
        let c = canonical_graph_spec("gnp:m=100,seed=3").unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn grammar_errors_are_reported() {
        for (raw, needle) in [
            ("", "family name"),
            ("gnp:m", "malformed graph parameter"),
            ("gnp:m=zebra", "not a valid edge count"),
            ("gnp:weird=1", "unknown graph parameter"),
            ("gnp:m=0", "must be positive"),
            ("pld:gamma=0.5", "gamma must lie"),
        ] {
            let err = canonical_graph_spec(raw).unwrap_err();
            assert!(err.contains(needle), "{raw}: {err:?} lacks {needle:?}");
        }
    }

    #[test]
    fn ring_hash_separates_key_components() {
        let base = SampleKey::new(7, "seq-es", 10);
        assert_eq!(base.ring_hash(), base.clone().ring_hash());
        assert_ne!(base.ring_hash(), SampleKey::new(8, "seq-es", 10).ring_hash());
        assert_ne!(base.ring_hash(), SampleKey::new(7, "par-es", 10).ring_hash());
        assert_ne!(base.ring_hash(), SampleKey::new(7, "seq-es", 11).ring_hash());
    }
}
