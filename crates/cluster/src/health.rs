//! Per-peer health: consecutive-failure ejection with timed probe
//! re-admission.
//!
//! Both the forwarding server and the client SDK track each peer with the
//! same tiny state machine.  A peer starts **healthy**; after
//! [`HealthPolicy::eject_after`] consecutive failures it is **ejected** and
//! skipped by routing.  After [`HealthPolicy::probe_after_ms`] milliseconds
//! in ejection, exactly one request is allowed through as a **probe**: if it
//! succeeds the peer is re-admitted, if it fails the ejection timer restarts.
//!
//! Every method takes `now_ms` explicitly rather than reading a clock, so
//! the transition table is pinned by unit tests without a single sleep.

use std::collections::HashMap;

/// Ejection and re-admission thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive failures before a peer is ejected.
    pub eject_after: u32,
    /// Milliseconds an ejected peer sits out before one probe is allowed.
    pub probe_after_ms: u64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self { eject_after: 3, probe_after_ms: 2_000 }
    }
}

/// A peer's externally visible health state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerStatus {
    /// Taking traffic normally.
    Healthy,
    /// Ejected; routing skips it until the probe window opens.
    Ejected {
        /// Milliseconds the peer has been in ejection (relative to the
        /// `now_ms` passed to [`HealthTracker::status`]).
        for_ms: u64,
    },
}

#[derive(Debug, Clone, Copy)]
enum State {
    Healthy { consecutive_failures: u32 },
    Ejected { since_ms: u64, probing: bool },
}

/// Health state for a fixed set of peers.
///
/// Unknown peers are implicitly healthy with zero failures; state is created
/// lazily on the first recorded outcome.
#[derive(Debug)]
pub struct HealthTracker {
    policy: HealthPolicy,
    peers: HashMap<String, State>,
}

impl HealthTracker {
    /// A tracker with the given thresholds.
    pub fn new(policy: HealthPolicy) -> Self {
        Self { policy, peers: HashMap::new() }
    }

    /// The policy this tracker applies.
    pub fn policy(&self) -> HealthPolicy {
        self.policy
    }

    /// Whether routing may send `peer` a request at `now_ms`.  Returns true
    /// for healthy peers, and **once** per open probe window for ejected
    /// peers — the probe slot is claimed by this call, so concurrent callers
    /// don't stampede a recovering peer.
    pub fn is_available(&mut self, peer: &str, now_ms: u64) -> bool {
        let policy = self.policy;
        match self.peers.get_mut(peer) {
            None | Some(State::Healthy { .. }) => true,
            Some(state @ State::Ejected { .. }) => {
                let State::Ejected { since_ms, probing } = *state else { unreachable!() };
                if probing || now_ms.saturating_sub(since_ms) < policy.probe_after_ms {
                    false
                } else {
                    *state = State::Ejected { since_ms, probing: true };
                    true
                }
            }
        }
    }

    /// Record a successful request to `peer`: resets the failure count and
    /// re-admits the peer if it was ejected.
    pub fn record_success(&mut self, peer: &str) {
        self.peers.insert(peer.to_string(), State::Healthy { consecutive_failures: 0 });
    }

    /// Record a failed request to `peer` at `now_ms`.  Returns true when
    /// this failure ejects the peer (either crossing the consecutive-failure
    /// threshold or failing a probe, which restarts the ejection timer).
    pub fn record_failure(&mut self, peer: &str, now_ms: u64) -> bool {
        let state = self
            .peers
            .entry(peer.to_string())
            .or_insert(State::Healthy { consecutive_failures: 0 });
        match *state {
            State::Healthy { consecutive_failures } => {
                let failures = consecutive_failures + 1;
                if failures >= self.policy.eject_after {
                    *state = State::Ejected { since_ms: now_ms, probing: false };
                    true
                } else {
                    *state = State::Healthy { consecutive_failures: failures };
                    false
                }
            }
            State::Ejected { .. } => {
                // A failed probe (or a straggler in-flight failure): restart
                // the ejection window from now.
                *state = State::Ejected { since_ms: now_ms, probing: false };
                true
            }
        }
    }

    /// The peer's status at `now_ms`, without claiming a probe slot.
    pub fn status(&self, peer: &str, now_ms: u64) -> PeerStatus {
        match self.peers.get(peer) {
            None | Some(State::Healthy { .. }) => PeerStatus::Healthy,
            Some(State::Ejected { since_ms, .. }) => {
                PeerStatus::Ejected { for_ms: now_ms.saturating_sub(*since_ms) }
            }
        }
    }

    /// `(peer, status)` for every peer with recorded state, sorted by name.
    pub fn snapshot(&self, now_ms: u64) -> Vec<(String, PeerStatus)> {
        let mut all: Vec<(String, PeerStatus)> =
            self.peers.keys().map(|p| (p.clone(), self.status(p, now_ms))).collect();
        all.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> HealthTracker {
        HealthTracker::new(HealthPolicy { eject_after: 3, probe_after_ms: 1_000 })
    }

    #[test]
    fn ejects_after_consecutive_failures_only() {
        let mut t = tracker();
        assert!(!t.record_failure("p", 0));
        assert!(!t.record_failure("p", 1));
        t.record_success("p"); // resets the streak
        assert!(!t.record_failure("p", 2));
        assert!(!t.record_failure("p", 3));
        assert!(t.record_failure("p", 4));
        assert_eq!(t.status("p", 10), PeerStatus::Ejected { for_ms: 6 });
        assert!(!t.is_available("p", 10));
    }

    #[test]
    fn probe_window_admits_exactly_one_caller() {
        let mut t = tracker();
        for i in 0..3 {
            t.record_failure("p", i);
        }
        assert!(!t.is_available("p", 500)); // window not open yet
        assert!(t.is_available("p", 1_002)); // first caller claims the probe
        assert!(!t.is_available("p", 1_003)); // second caller is still blocked
        t.record_success("p");
        assert_eq!(t.status("p", 1_004), PeerStatus::Healthy);
        assert!(t.is_available("p", 1_004));
    }

    #[test]
    fn failed_probe_restarts_the_ejection_timer() {
        let mut t = tracker();
        for i in 0..3 {
            t.record_failure("p", i);
        }
        assert!(t.is_available("p", 1_500));
        assert!(t.record_failure("p", 1_500)); // probe failed
        assert!(!t.is_available("p", 2_000)); // timer restarted at 1500
        assert!(t.is_available("p", 2_500)); // 1000ms after the failed probe
    }

    #[test]
    fn unknown_peers_are_healthy() {
        let mut t = tracker();
        assert!(t.is_available("never-seen", 0));
        assert_eq!(t.status("never-seen", 0), PeerStatus::Healthy);
        assert!(t.snapshot(0).is_empty());
    }
}
