//! `gesmc-cluster` — consistent-hash sharding for the sampling service.
//!
//! A single `gesmc serve` process is bounded by one machine.  This crate
//! holds the pieces that turn N serve processes into one sharded cluster,
//! shared by the server side (`gesmc-serve` forwarding) and the client side
//! (`gesmc-client` routing) so both always agree on who owns a key:
//!
//! * [`ring`] — the consistent-hash ring: FNV-1a over virtual nodes
//!   (64 per physical node by default), so adding or removing one node
//!   remaps only that node's share of the key space;
//! * [`key`] — the cluster key: the same `(graph fingerprint, chain slug,
//!   supersteps)` triple that keys the warm sample cache, hashed with the
//!   workspace's shared FNV-1a, plus the canonical generator-spec grammar
//!   both sides fingerprint;
//! * [`health`] — per-peer health: consecutive-failure ejection and timed
//!   probe re-admission, clock-injected so transitions are unit-testable
//!   without sleeping;
//! * [`wire`] — a minimal HTTP/1.1 client codec (request writer + response
//!   reader) over `std::net`, the peer-to-peer and SDK transport.
//!
//! The load-bearing invariant making all of this safe: sample seeds are
//! derived from the cache key, so **any** node computes bit-identical bytes
//! for a key.  Forwarding to the owner is purely a cache-locality
//! optimisation — when the owner is down, handling the key locally is
//! exactly as correct.
//!
//! ```
//! use gesmc_cluster::{HashRing, SampleKey};
//!
//! let ring = HashRing::new(["10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080"]).unwrap();
//! let key = SampleKey::new(0xfeed_beef, "par-global-es", 20);
//! let owner = ring.owner(key.ring_hash());
//! assert!(ring.nodes().iter().any(|n| n == owner));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod health;
pub mod key;
pub mod ring;
pub mod wire;

pub use health::{HealthPolicy, HealthTracker, PeerStatus};
pub use key::{canonical_graph_spec, GraphParams, SampleKey};
pub use ring::{HashRing, RingError, DEFAULT_VNODES};
pub use wire::{request, request_with_timeouts, WireError, WireResponse};
