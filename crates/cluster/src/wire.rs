//! A minimal HTTP/1.1 client codec over `std::net`.
//!
//! The serve stack speaks hand-rolled HTTP/1.1 (`Connection: close`, no
//! chunked encoding) and this is the matching client half, used for
//! peer-to-peer forwarding inside the cluster and as the transport under the
//! typed SDK.  One function, one connection, one request: no pools, no
//! keep-alive, no async runtime — exactly the simplicity budget of the
//! server side.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Upper bound on response header bytes before the request is abandoned.
const MAX_HEADER_BYTES: usize = 64 * 1024;
/// Upper bound on response body bytes (64 MiB, far above any sample blob).
const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// Why a wire request failed.
#[derive(Debug)]
pub enum WireError {
    /// Connecting to the peer failed (refused, unreachable, timed out).
    Connect(std::io::Error),
    /// Reading or writing on an established connection failed.
    Io(std::io::Error),
    /// The peer sent bytes that do not parse as an HTTP/1.1 response.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Connect(e) => write!(f, "connect failed: {e}"),
            WireError::Io(e) => write!(f, "i/o failed: {e}"),
            WireError::Malformed(what) => write!(f, "malformed response: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A fully buffered HTTP response.
#[derive(Debug, Clone)]
pub struct WireResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs in wire order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl WireResponse {
    /// The first value of `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// Whether the status is a success (2xx).
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// [`request_with_timeouts`] with 2s connect and 30s read/write timeouts —
/// generous enough for a cold sample generation on the far side.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> Result<WireResponse, WireError> {
    request_with_timeouts(
        addr,
        method,
        path,
        headers,
        body,
        Duration::from_secs(2),
        Duration::from_secs(30),
    )
}

/// Send one HTTP/1.1 request to `addr` and read the full response.
///
/// `path` must include any query string.  `Host`, `Content-Length`, and
/// `Connection: close` are added automatically; `headers` supplies extras
/// (`Accept`, the forwarding loop guard, …).  The body is read to
/// `Content-Length` when the peer declares one, otherwise to EOF — matching
/// the serve stack's `Connection: close` framing.
pub fn request_with_timeouts(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    connect_timeout: Duration,
    io_timeout: Duration,
) -> Result<WireResponse, WireError> {
    let sock_addr =
        addr.to_socket_addrs().map_err(WireError::Connect)?.next().ok_or_else(|| {
            WireError::Connect(std::io::Error::other("address resolved to nothing"))
        })?;
    let stream =
        TcpStream::connect_timeout(&sock_addr, connect_timeout).map_err(WireError::Connect)?;
    stream.set_read_timeout(Some(io_timeout)).map_err(WireError::Io)?;
    stream.set_write_timeout(Some(io_timeout)).map_err(WireError::Io)?;
    stream.set_nodelay(true).ok();

    let mut head = String::with_capacity(256);
    head.push_str(&format!("{method} {path} HTTP/1.1\r\n"));
    head.push_str(&format!("Host: {addr}\r\n"));
    head.push_str("Connection: close\r\n");
    head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");

    let mut stream = stream;
    stream.write_all(head.as_bytes()).map_err(WireError::Io)?;
    if !body.is_empty() {
        stream.write_all(body).map_err(WireError::Io)?;
    }
    stream.flush().map_err(WireError::Io)?;

    read_response(BufReader::new(stream))
}

fn read_response<R: BufRead>(mut reader: R) -> Result<WireResponse, WireError> {
    let status_line = read_line(&mut reader)?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(WireError::Malformed(format!("bad status line {status_line:?}")));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| WireError::Malformed(format!("bad status line {status_line:?}")))?;

    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(WireError::Malformed("response headers exceed 64 KiB".to_string()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| WireError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| WireError::Malformed(format!("bad content-length {v:?}")))
        })
        .transpose()?;

    let body = match content_length {
        Some(len) if len > MAX_BODY_BYTES => {
            return Err(WireError::Malformed(format!("declared body of {len} bytes is too large")))
        }
        Some(len) => {
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body).map_err(WireError::Io)?;
            body
        }
        None => {
            let mut body = Vec::new();
            reader
                .by_ref()
                .take(MAX_BODY_BYTES as u64 + 1)
                .read_to_end(&mut body)
                .map_err(WireError::Io)?;
            if body.len() > MAX_BODY_BYTES {
                return Err(WireError::Malformed("unframed body exceeds 64 MiB".to_string()));
            }
            body
        }
    };

    Ok(WireResponse { status, headers, body })
}

fn read_line<R: BufRead>(reader: &mut R) -> Result<String, WireError> {
    let mut line = String::new();
    let n = reader
        .by_ref()
        .take(MAX_HEADER_BYTES as u64)
        .read_line(&mut line)
        .map_err(WireError::Io)?;
    if n == 0 {
        return Err(WireError::Malformed("connection closed mid-response".to_string()));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_framed_response() {
        let raw =
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}";
        let resp = read_response(Cursor::new(&raw[..])).unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.is_success());
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.header("Content-Type"), Some("application/json"));
        assert_eq!(resp.body, b"{}");
    }

    #[test]
    fn reads_unframed_body_to_eof() {
        let raw = b"HTTP/1.1 503 Unavailable\r\nRetry-After: 7\r\n\r\nbusy";
        let resp = read_response(Cursor::new(&raw[..])).unwrap();
        assert_eq!(resp.status, 503);
        assert!(!resp.is_success());
        assert_eq!(resp.header("retry-after"), Some("7"));
        assert_eq!(resp.body, b"busy");
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            read_response(Cursor::new(&b"SMTP nope\r\n\r\n"[..])),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            read_response(Cursor::new(&b"HTTP/1.1 abc\r\n\r\n"[..])),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(read_response(Cursor::new(&b""[..])), Err(WireError::Malformed(_))));
    }

    #[test]
    fn refuses_to_connect_to_a_dead_port() {
        // Bind then drop a listener so the port is known-dead.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let err = request_with_timeouts(
            &addr,
            "GET",
            "/healthz",
            &[],
            b"",
            Duration::from_millis(200),
            Duration::from_millis(200),
        )
        .unwrap_err();
        assert!(matches!(err, WireError::Connect(_)), "{err}");
    }
}
