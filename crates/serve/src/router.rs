//! Request routing and the endpoint handlers.
//!
//! Handlers are pure functions from `(state, request)` to [`Response`]; all
//! blocking (waiting on engine jobs) happens on the HTTP worker thread that
//! called in, and every chain execution goes through the engine pool's
//! bounded admission queue — a handler never runs a chain inline.

use crate::cache::{derive_sample_seed, CacheKey, CachedSample};
use crate::cluster::FORWARDED_HEADER;
use crate::http::{Method, Request, Response};
use crate::jobstore::JobRecord;
use crate::persist::{
    make_job_sink, spawn_reaper, FinishedMeta, JobCheckpointSink, JobMeta, PersistedGraph,
    Persistence,
};
use crate::server::{ColdError, Lease, LeaseGuard, ServerState};
use gesmc_core::{ChainRegistry, ChainSpec};
use gesmc_engine::{
    GraphSource, JobSpec, JobState, MemorySink, QueuedJob, SubmitError, GRAPH_FAMILIES,
};
use gesmc_graph::io::{write_edge_list, write_edge_list_binary};
use gesmc_graph::EdgeListGraph;
use gesmc_randx::fnv1a_64;
use serde_json::{Map, Value};
use std::sync::Arc;

/// Encode a sample graph in both response formats.
fn encode_sample(graph: &EdgeListGraph, seed: u64) -> CachedSample {
    let mut text = Vec::new();
    write_edge_list(&mut text, graph).expect("writing to a Vec cannot fail");
    let mut binary = Vec::new();
    write_edge_list_binary(&mut binary, graph).expect("writing to a Vec cannot fail");
    CachedSample { text: Arc::new(text), binary: Arc::new(binary), seed }
}

fn json_object(entries: Vec<(&str, Value)>) -> Value {
    let mut map = Map::new();
    for (key, value) in entries {
        map.insert(key.to_string(), value);
    }
    Value::Object(map)
}

/// Dispatch a parsed request.  `request_id` is the correlation id the
/// worker minted for this request; handlers that log pass it along.
/// `span` is the request's root trace span — handlers hang child spans
/// (cache probe, forward hop, compute wait) off it.
pub(crate) fn route(
    state: &Arc<ServerState>,
    request: &Request,
    request_id: &str,
    span: &mut gesmc_obs::Span<'static>,
) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method, segments.as_slice()) {
        (Method::Get, ["healthz"]) => Response::text(200, "ok\n"),
        (Method::Get, ["metrics"]) => Response::text(
            200,
            state.metrics.render(
                &state.pool,
                &state.cache,
                state.jobs.len(),
                state.persist.as_deref().map(Persistence::metrics),
                state.cluster.as_ref().map(|c| c.metrics()).as_ref(),
            ),
        )
        .with_content_type("text/plain; version=0.0.4; charset=utf-8"),
        (Method::Get, ["v1", "algorithms"]) => algorithms(state.registry),
        (Method::Get, ["v1", "cluster"]) => cluster_status(state),
        (Method::Get, ["v1", "sample"]) => sample(state, request, request_id, span),
        (Method::Post, ["v1", "jobs"]) => submit_job(state, request, request_id),
        (Method::Get, ["v1", "jobs"]) => list_jobs(state),
        (Method::Get, ["v1", "jobs", id]) => job_status(state, id),
        (Method::Delete, ["v1", "jobs", id]) => cancel_job(state, id),
        (Method::Get, ["v1", "jobs", id, "samples", k]) => job_sample(state, request, id, k),
        (Method::Get, ["v1", "debug", "stats"]) => debug_stats(state),
        (Method::Get, ["v1", "debug", "traces"]) => debug_traces(request),
        (Method::Get, ["v1", "debug", "trace", id]) => debug_trace(id),
        (Method::Post, ["v1", "shutdown"]) => shutdown(state),
        (_, path) => {
            let known = matches!(
                path,
                ["healthz"]
                    | ["metrics"]
                    | ["v1", "algorithms"]
                    | ["v1", "cluster"]
                    | ["v1", "sample"]
                    | ["v1", "jobs"]
                    | ["v1", "jobs", _]
                    | ["v1", "jobs", _, "samples", _]
                    | ["v1", "debug", "stats"]
                    | ["v1", "debug", "traces"]
                    | ["v1", "debug", "trace", _]
                    | ["v1", "shutdown"]
            );
            if known {
                Response::error(405, "method not allowed for this path")
            } else {
                Response::error(404, &format!("no route for {:?}", request.path))
            }
        }
    }
}

/// `GET /v1/algorithms` — the registry, as JSON.
fn algorithms(registry: &ChainRegistry) -> Response {
    let chains: Vec<Value> = registry
        .infos()
        .map(|info| {
            let params: Vec<Value> = info
                .params
                .iter()
                .map(|p| {
                    json_object(vec![
                        ("name", Value::String(p.name.to_string())),
                        ("kind", Value::String(p.kind.name().to_string())),
                        ("default", Value::String(p.default.to_string())),
                        ("doc", Value::String(p.doc.to_string())),
                    ])
                })
                .collect();
            json_object(vec![
                ("name", Value::String(info.name.to_string())),
                ("chain", Value::String(info.chain_name.to_string())),
                (
                    "aliases",
                    Value::Array(
                        info.aliases.iter().map(|a| Value::String(a.to_string())).collect(),
                    ),
                ),
                ("summary", Value::String(info.summary.to_string())),
                ("exact", Value::Bool(info.exact)),
                ("parallel", Value::Bool(info.parallel)),
                ("snapshot", Value::Bool(info.snapshot)),
                ("params", Value::Array(params)),
            ])
        })
        .collect();
    Response::json(200, &Value::Array(chains))
}

/// A parsed `graph=` generator spec: the source plus its canonical spelling
/// (which keys the cache fingerprint).
#[derive(Debug)]
struct GraphSpec {
    source: GraphSource,
    canonical: String,
    nodes: usize,
    edges: usize,
}

/// Parse the compact generator grammar `family[:key=value,…]` with keys
/// `n` (nodes), `m` (edges), `gamma`, `seed` — e.g. `pld:m=2000,gamma=2.5`.
/// The grammar and canonical form live in [`gesmc_cluster::canonical_graph_spec`]
/// (the client SDK routes by the same fingerprint); the server additionally
/// validates the family against its generator registry.
fn parse_graph_spec(raw: &str) -> Result<GraphSpec, String> {
    let params = gesmc_cluster::canonical_graph_spec(raw)?;
    if !GRAPH_FAMILIES.contains(&params.family.as_str()) {
        return Err(format!(
            "unknown graph family {:?} (expected {})",
            params.family,
            GRAPH_FAMILIES.join(", ")
        ));
    }
    let canonical = params.canonical();
    let source = GraphSource::Generated {
        family: params.family,
        nodes: params.nodes,
        edges: params.edges,
        gamma: params.gamma,
        seed: params.seed,
    };
    Ok(GraphSpec { source, canonical, nodes: params.nodes, edges: params.edges })
}

fn parse_u64_param(request: &Request, name: &str, default: u64) -> Result<u64, Response> {
    match request.query_param(name) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| {
            Response::error(400, &format!("query parameter {name}={raw:?} is not an integer"))
        }),
    }
}

/// Serve a cached (or just-computed) sample in the requested encoding,
/// sharing the cached bytes instead of copying them (hits stay O(1)).
fn sample_response(request: &Request, sample: &CachedSample, cache_status: &str) -> Response {
    let response = if request.wants_binary() {
        Response::shared(200, "application/octet-stream", Arc::clone(&sample.binary))
    } else {
        Response::shared(200, "text/plain; charset=utf-8", Arc::clone(&sample.text))
    };
    response
        .with_header("X-Gesmc-Cache", cache_status)
        .with_header("X-Gesmc-Seed", sample.seed.to_string())
}

/// Run the sampling job for `key` on the engine pool, publish the result
/// into the warm cache, and return it.
fn generate_into_cache(
    state: &ServerState,
    key: &CacheKey,
    source: GraphSource,
    chain: &ChainSpec,
    supersteps: u64,
    trace: Option<gesmc_obs::SpanContext>,
) -> Result<CachedSample, ColdError> {
    let seed = derive_sample_seed(key);
    let spec = JobSpec::new(
        format!("sample-{:016x}-{}-{}", key.fingerprint, key.chain_slug, supersteps),
        source,
        chain.clone(),
    )
    .supersteps(supersteps)
    .thinning(0)
    .seed(seed);
    let sink = MemorySink::new();
    let store = sink.store();
    // The "compute" span covers queueing plus the engine run; the queued job
    // carries its context, so the engine's supersteps/checkpoint spans nest
    // beneath it in the joined tree.
    let mut compute_span =
        trace.map(|ctx| gesmc_obs::trace::tracer().span_from_context(ctx, "compute"));
    if let Some(span) = &mut compute_span {
        span.annotate("chain", key.chain_slug.clone());
        span.annotate("supersteps", supersteps.to_string());
    }
    let job_trace = compute_span.as_ref().map(gesmc_obs::Span::context);
    let queued = QueuedJob::new(spec, Box::new(sink)).with_trace(job_trace);
    let handle = state.pool.submit(queued).map_err(|e| {
        if let Some(span) = &mut compute_span {
            span.set_error();
        }
        match e {
            SubmitError::Saturated { .. } => ColdError::Saturated,
            SubmitError::ShuttingDown => ColdError::ShuttingDown,
        }
    })?;
    let waited = gesmc_obs::span!(state.phases.compute, { handle.wait() });
    if let Some(span) = &mut compute_span {
        if !matches!(waited, JobState::Done(_)) {
            span.set_error();
        }
    }
    drop(compute_span);
    match waited {
        JobState::Done(_) => {
            let samples = store.lock().expect("sample store mutex poisoned");
            let (_, graph) = samples
                .last()
                .ok_or_else(|| ColdError::Failed("job emitted no sample".to_string()))?;
            let sample = encode_sample(graph, seed);
            state.cache.insert(key.clone(), sample.clone());
            if let Some(persist) = &state.persist {
                // Write-through spill: the key survives both LRU eviction
                // and process restarts.  Failures degrade to in-memory-only.
                persist.spill_cache(key, &sample);
            }
            Ok(sample)
        }
        JobState::Failed(msg) => Err(ColdError::Failed(msg)),
        JobState::Cancelled(_) => Err(ColdError::ShuttingDown),
        JobState::Queued | JobState::Running => {
            unreachable!("wait() only returns terminal states")
        }
    }
}

/// `GET /v1/sample?graph=…&algo=…[&supersteps=…][&warm=true]` — the
/// synchronous one-shot endpoint and warm-cache hot path.
fn sample(
    state: &Arc<ServerState>,
    request: &Request,
    request_id: &str,
    span: &mut gesmc_obs::Span<'static>,
) -> Response {
    // Reject unknown query parameters instead of silently dropping them: an
    // unencoded `&` inside an `algo=name?k=v&k=v` spec would otherwise split
    // into a never-read pair and serve a wrong-config sample with no
    // diagnostic.
    if let Some((key, _)) = request
        .query
        .iter()
        .find(|(key, _)| !matches!(key.as_str(), "graph" | "algo" | "supersteps" | "warm"))
    {
        return Response::error(
            400,
            &format!(
                "unknown query parameter {key:?} (accepted: graph, algo, supersteps, warm; \
                 percent-encode `&` inside an algo spec as %26)"
            ),
        );
    }
    let Some(graph_raw) = request.query_param("graph") else {
        return Response::error(400, "missing query parameter \"graph\" (e.g. graph=pld:m=2000)");
    };
    let spec = match parse_graph_spec(graph_raw) {
        Ok(spec) => spec,
        Err(msg) => return Response::error(400, &msg),
    };
    if spec.edges > state.config.max_sync_edges {
        return Response::error(
            413,
            &format!(
                "m = {} exceeds the synchronous limit of {} edges; submit via POST /v1/jobs",
                spec.edges, state.config.max_sync_edges
            ),
        );
    }
    if spec.nodes > 2 * state.config.max_sync_edges {
        return Response::error(
            413,
            &format!(
                "n = {} exceeds the synchronous limit of {} nodes",
                spec.nodes,
                2 * state.config.max_sync_edges
            ),
        );
    }
    let algo_raw = request.query_param("algo").unwrap_or("par-global-es");
    let chain = match ChainSpec::parse(algo_raw) {
        Ok(chain) => chain,
        Err(e) => return Response::error(400, &format!("bad algo spec: {e}")),
    };
    if let Err(e) = state.registry.validate(&chain) {
        return Response::error(400, &format!("bad algo spec: {e}"));
    }
    let supersteps = match parse_u64_param(request, "supersteps", 20) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if supersteps == 0 || supersteps > state.config.max_supersteps {
        return Response::error(
            400,
            &format!("supersteps must lie in [1, {}]", state.config.max_supersteps),
        );
    }
    let warm = request.query_param("warm").is_some_and(|v| v == "true" || v == "1" || v.is_empty());

    let key = CacheKey {
        fingerprint: fnv1a_64(spec.canonical.as_bytes()),
        chain_slug: chain.slug(),
        supersteps,
    };
    // Cluster hook: keys another node owns are forwarded to it (one hop at
    // most — a request that already carries the forwarded marker is always
    // handled locally, whatever this node thinks about ownership).  A
    // `None` from `forward` means the owner is unreachable; seeds derive
    // from the key, so computing locally yields the identical bytes.
    if let Some(cluster) = &state.cluster {
        if request.header(FORWARDED_HEADER).is_some() {
            cluster.note_received_forward();
            span.annotate("forwarded_from_peer", "true");
        } else {
            let owner = cluster.owner_of(&key);
            if owner != cluster.advertise() {
                // The hop carries the child span's context, so the owner's
                // request span joins this trace as a grandchild.
                let mut fwd = span.child("forward");
                fwd.annotate("owner", owner.to_string());
                let header = fwd.context().to_header();
                let relayed = cluster.forward(owner, request, request_id, Some(&header));
                if relayed.is_none() {
                    // Failed hop: mark the span so tail sampling keeps the
                    // trace even when the local fallback answers quickly.
                    fwd.annotate("fallback", "local");
                    fwd.set_error();
                }
                drop(fwd);
                if let Some(response) = relayed {
                    return response;
                }
            }
        }
    }
    let cached = {
        let mut probe = span.child("cache_probe");
        let found = state.cache.get(&key).or_else(|| {
            // LRU miss: a restarted (or evicted) node may still hold this
            // key spilled on disk — rehydrate lazily and serve it as a hit.
            state.persist.as_ref().and_then(|persist| {
                let cached = persist.load_cached(&key);
                if let Some(cached) = &cached {
                    state.cache.insert(key.clone(), cached.clone());
                }
                cached
            })
        });
        probe.annotate("result", if found.is_some() { "hit" } else { "miss" });
        found
    };
    if let Some(cached) = cached {
        if warm {
            return Response::json(
                200,
                &json_object(vec![("status", Value::String("warm".to_string()))]),
            );
        }
        return sample_response(request, &cached, "hit");
    }

    if warm {
        // Pre-warm: compute in the background on the engine pool; the
        // requester does not wait.
        if let Lease::Leader(slot) = state.lease_inflight(&key) {
            let state = Arc::clone(state);
            let key_for_job = key.clone();
            std::thread::spawn(move || {
                let guard = LeaseGuard::new(&state, &key_for_job, slot);
                // Background warms outlive their request's root span, so
                // they run untraced (None) rather than orphaning children.
                let outcome = generate_into_cache(
                    &state,
                    &key_for_job,
                    spec.source,
                    &chain,
                    supersteps,
                    None,
                );
                guard.release(outcome);
            });
        }
        return Response::json(
            202,
            &json_object(vec![("status", Value::String("warming".to_string()))]),
        );
    }

    match state.lease_inflight(&key) {
        Lease::Leader(slot) => {
            // The guard publishes a failure to any followers if the compute
            // path unwinds before `release`.
            let guard = LeaseGuard::new(state, &key, slot);
            let outcome = generate_into_cache(
                state,
                &key,
                spec.source,
                &chain,
                supersteps,
                Some(span.context()),
            );
            guard.release(outcome.clone());
            match outcome {
                Ok(sample) => sample_response(request, &sample, "miss"),
                Err(e) => e.into_response(),
            }
        }
        Lease::Follower(slot) => {
            let mut wait_span = span.child("coalesced_wait");
            let outcome = slot.wait();
            if outcome.is_err() {
                wait_span.set_error();
            }
            drop(wait_span);
            match outcome {
                Ok(sample) => sample_response(request, &sample, "coalesced"),
                Err(e) => e.into_response(),
            }
        }
    }
}

/// Parse the graph of a job body: inline `"edges": [[u, v], …]` (with
/// optional `"nodes"`) or a `"generate"` object.  Node counts are bounded
/// (2 × [`max_graph_edges`](crate::ServeConfig::max_graph_edges)) so a
/// single request cannot make generators or degree checks allocate
/// unboundedly.
fn parse_job_graph(state: &ServerState, body: &Value) -> Result<GraphSource, Response> {
    match (body.get("edges"), body.get("generate")) {
        (Some(_), Some(_)) => {
            Err(Response::error(400, "\"edges\" and \"generate\" are mutually exclusive"))
        }
        (Some(edges_value), None) => {
            let entries = edges_value.as_array().ok_or_else(|| {
                Response::error(400, "\"edges\" must be an array of [u, v] pairs")
            })?;
            let mut pairs = Vec::with_capacity(entries.len());
            let mut max_node = 0u64;
            for (i, entry) in entries.iter().enumerate() {
                let pair = entry.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                    Response::error(400, &format!("edge #{i} must be a [u, v] pair"))
                })?;
                let node = |v: &Value, which: &str| {
                    v.as_u64().filter(|&n| n <= u64::from(u32::MAX)).ok_or_else(|| {
                        Response::error(
                            400,
                            &format!("edge #{i}: {which} must be an integer node id < 2^32"),
                        )
                    })
                };
                let u = node(&pair[0], "u")?;
                let v = node(&pair[1], "v")?;
                max_node = max_node.max(u).max(v);
                pairs.push((u as u32, v as u32));
            }
            let nodes = match body.get("nodes") {
                None => {
                    if pairs.is_empty() {
                        0
                    } else {
                        max_node as usize + 1
                    }
                }
                Some(v) => {
                    let n = v.as_u64().ok_or_else(|| {
                        Response::error(400, "\"nodes\" must be a non-negative integer")
                    })? as usize;
                    if !pairs.is_empty() && n <= max_node as usize {
                        return Err(Response::error(
                            400,
                            &format!("\"nodes\" = {n} but an edge references node {max_node}"),
                        ));
                    }
                    n
                }
            };
            let max_nodes = 2 * state.config.max_graph_edges;
            if nodes > max_nodes {
                return Err(Response::error(
                    400,
                    &format!("{nodes} nodes exceed the service limit of {max_nodes}"),
                ));
            }
            // Self-loops and duplicates are dropped, mirroring the text
            // reader's NetRep-style clean-up.
            Ok(GraphSource::InMemory(EdgeListGraph::from_pairs_dedup(nodes, pairs)))
        }
        (None, Some(generate)) => {
            let family = generate
                .get("family")
                .and_then(|v| v.as_str())
                .ok_or_else(|| Response::error(400, "\"generate\" needs a \"family\" string"))?;
            let edges =
                generate.get("edges").and_then(|v| v.as_u64()).ok_or_else(|| {
                    Response::error(400, "\"generate\" needs an integer \"edges\"")
                })? as usize;
            if edges == 0 || edges > state.config.max_graph_edges {
                return Err(Response::error(
                    400,
                    &format!("\"edges\" must lie in [1, {}]", state.config.max_graph_edges),
                ));
            }
            let nodes = generate.get("nodes").and_then(|v| v.as_u64()).unwrap_or(0) as usize;
            let max_nodes = 2 * state.config.max_graph_edges;
            if nodes > max_nodes {
                return Err(Response::error(
                    400,
                    &format!("\"nodes\" = {nodes} exceeds the service limit of {max_nodes}"),
                ));
            }
            let gamma = generate.get("gamma").and_then(|v| v.as_f64()).unwrap_or(2.5);
            // The pld generator requires gamma strictly above 1; reject at
            // parse time rather than panicking an engine worker.
            if !(gamma > 1.0 && gamma <= 10.0) {
                return Err(Response::error(
                    400,
                    &format!("\"gamma\" must lie in (1, 10], got {gamma}"),
                ));
            }
            let seed = generate.get("seed").and_then(|v| v.as_u64()).unwrap_or(1);
            // Validate the family eagerly for a parse-time error.
            if !GRAPH_FAMILIES.contains(&family) {
                return Err(Response::error(
                    400,
                    &format!(
                        "unknown graph family {family:?} (expected {})",
                        GRAPH_FAMILIES.join(", ")
                    ),
                ));
            }
            Ok(GraphSource::Generated { family: family.to_string(), nodes, edges, gamma, seed })
        }
        (None, None) => Err(Response::error(
            400,
            "job needs either \"edges\" (inline edge list) or \"generate\" (generator spec)",
        )),
    }
}

/// `GET /v1/debug/stats` — one JSON document combining every resident
/// job's status with a full snapshot of the observability registry
/// (counters and latency histograms, same data `/metrics` exposes in
/// Prometheus text format).
fn debug_stats(state: &ServerState) -> Response {
    let jobs: Vec<Value> = state.jobs.records().iter().map(|r| r.status_json()).collect();
    let metrics =
        serde_json::from_str(&gesmc_obs::render_json()).expect("obs registry JSON must parse");
    Response::json(200, &json_object(vec![("jobs", Value::Array(jobs)), ("metrics", metrics)]))
}

/// `GET /v1/debug/traces?min_ms=N` — summaries of the traces this node's
/// tail sampler kept, newest first, filtered to roots at least `min_ms`
/// long.
fn debug_traces(request: &Request) -> Response {
    let min_ms = match parse_u64_param(request, "min_ms", 0) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    Response::text(200, gesmc_obs::trace::tracer().traces_json(min_ms))
        .with_content_type("application/json")
}

/// `GET /v1/debug/trace/{id}` — every span this node holds for one trace.
/// A cluster viewer fetches this from each node and joins the fragments on
/// span ids (`gesmc trace` does exactly that).
fn debug_trace(id_raw: &str) -> Response {
    let Some(id) = gesmc_obs::TraceId::parse(id_raw) else {
        return Response::error(400, &format!("trace id {id_raw:?} is not 32 hex digits"));
    };
    match gesmc_obs::trace::tracer().trace_json(id) {
        Some(json) => Response::text(200, &json).with_content_type("application/json"),
        None => Response::error(404, &format!("no kept trace {id_raw}")),
    }
}

/// `POST /v1/jobs` — submit an asynchronous randomization job.
fn submit_job(state: &Arc<ServerState>, request: &Request, request_id: &str) -> Response {
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Response::error(400, "body must be UTF-8 JSON");
    };
    let body = match serde_json::from_str(text) {
        Ok(value) => value,
        Err(e) => return Response::error(400, &format!("invalid JSON body: {e}")),
    };
    if body.as_object().is_none() {
        return Response::error(400, "body must be a JSON object");
    }

    let source = match parse_job_graph(state, &body) {
        Ok(parsed) => parsed,
        Err(resp) => return resp,
    };
    let chain = match (body.get("algorithm"), body.get("algo")) {
        (Some(_), Some(_)) => {
            return Response::error(400, "\"algorithm\" and \"algo\" are the same key; give one")
        }
        (Some(v), None) | (None, Some(v)) => match ChainSpec::from_json(v) {
            Ok(chain) => chain,
            Err(e) => return Response::error(400, &format!("bad algorithm: {e}")),
        },
        (None, None) => ChainSpec::new("par-global-es"),
    };
    if let Err(e) = state.registry.validate(&chain) {
        return Response::error(400, &format!("bad algorithm: {e}"));
    }

    let field_u64 = |name: &str, default: u64| -> Result<u64, Response> {
        match body.get(name) {
            None => Ok(default),
            Some(v) => v.as_u64().ok_or_else(|| {
                Response::error(400, &format!("{name:?} must be a non-negative integer"))
            }),
        }
    };
    let supersteps = match field_u64("supersteps", 20) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if supersteps == 0 || supersteps > state.config.max_supersteps {
        return Response::error(
            400,
            &format!("supersteps must lie in [1, {}]", state.config.max_supersteps),
        );
    }
    let thinning = match field_u64("thinning", 0) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let seed = match field_u64("seed", 1) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let expected_samples = supersteps.checked_div(thinning).unwrap_or(1);
    if expected_samples > state.config.max_job_samples {
        return Response::error(
            400,
            &format!(
                "{expected_samples} samples (supersteps/thinning) exceed the per-job limit of {}",
                state.config.max_job_samples
            ),
        );
    }
    // The edge and sample-count limits compose multiplicatively: bound the
    // estimated bytes this job would retain (both encodings, ~24 B/edge per
    // sample) so a large graph with dense thinning cannot exhaust memory.
    let edge_estimate = match &source {
        GraphSource::InMemory(graph) => graph.num_edges() as u64,
        GraphSource::Generated { edges, .. } => *edges as u64,
        GraphSource::File(_) => 0, // not constructible through this API
    };
    const RETAINED_BYTES_PER_EDGE: u64 = 24;
    let retained_estimate =
        expected_samples.saturating_mul(edge_estimate).saturating_mul(RETAINED_BYTES_PER_EDGE);
    if retained_estimate > state.config.max_retained_sample_bytes {
        return Response::error(
            400,
            &format!(
                "job would retain ≈{retained_estimate} bytes of samples \
                 ({expected_samples} samples × {edge_estimate} edges), over the {}-byte \
                 budget; raise \"thinning\" or shrink the graph",
                state.config.max_retained_sample_bytes
            ),
        );
    }

    let id = state.jobs.allocate_id();
    let name = body
        .get("name")
        .and_then(|v| v.as_str())
        .map(str::to_string)
        .unwrap_or_else(|| format!("job{id}"));

    // Durability gate: persist the input and journal the submission BEFORE
    // acknowledging anything.  If any durable step fails, refuse with 503 —
    // an acknowledged job is never lost.
    if let Some(persist) = &state.persist {
        let graph_meta = match &source {
            GraphSource::Generated { family, nodes, edges, gamma, seed } => {
                PersistedGraph::Generated {
                    family: family.clone(),
                    nodes: *nodes,
                    edges: *edges,
                    gamma: *gamma,
                    seed: *seed,
                }
            }
            GraphSource::InMemory(graph) => {
                if persist.write_job_input(id, graph).is_err() {
                    return Response::error(
                        503,
                        "persistence unavailable: could not store the job input; retry later",
                    )
                    .with_header("Retry-After", "1");
                }
                PersistedGraph::File
            }
            GraphSource::File(_) => PersistedGraph::File, // not constructible through this API
        };
        let meta = JobMeta {
            id,
            name: name.clone(),
            chain: chain.to_string(),
            supersteps,
            thinning,
            seed,
            graph: graph_meta,
        };
        if persist.journal_submitted(&meta).is_err() {
            return Response::error(
                503,
                "persistence unavailable: could not journal the submission; retry later",
            )
            .with_header("Retry-After", "1");
        }
    }

    let mut spec = JobSpec::new(name.clone(), source, chain.clone())
        .supersteps(supersteps)
        .thinning(thinning)
        .seed(seed);
    if state.persist.is_some() && state.config.checkpoint_every > 0 {
        spec.checkpoint_every = Some(state.config.checkpoint_every);
    }
    let samples: crate::jobstore::SharedSamples = Arc::new(std::sync::Mutex::new(Vec::new()));
    let sink = make_job_sink(state.persist.clone(), id, Arc::clone(&samples));

    let mut queued = QueuedJob::new(spec, sink);
    if let Some(persist) = &state.persist {
        queued = queued
            .with_checkpoint_sink(Box::new(JobCheckpointSink { persist: Arc::clone(persist), id }));
    }

    // The journal already holds a `submitted` entry; if admission fails now,
    // close it out as cancelled so a restart does not resurrect the job.
    let journal_cancelled = |superstep: u64| {
        if let Some(persist) = &state.persist {
            persist.journal_finished(
                id,
                &FinishedMeta {
                    status: "cancelled".to_string(),
                    samples: 0,
                    superstep,
                    error: None,
                },
            );
        }
    };

    let handle = match state.pool.submit(queued) {
        Ok(handle) => handle,
        Err(SubmitError::Saturated { pending }) => {
            journal_cancelled(0);
            return Response::error(
                429,
                &format!("admission queue is full ({pending} jobs pending); retry later"),
            )
            .with_header("Retry-After", "1");
        }
        Err(SubmitError::ShuttingDown) => {
            journal_cancelled(0);
            return Response::error(503, "server is shutting down");
        }
    };

    let handle_for_rollback = handle.clone();
    let record = JobRecord {
        id,
        name: name.clone(),
        chain: chain.to_string(),
        supersteps,
        thinning,
        seed,
        handle: handle.clone(),
        samples: Arc::clone(&samples),
    };
    match state.jobs.register(record) {
        Ok(record) => {
            spawn_reaper(state, id, handle, samples);
            gesmc_obs::info!(
                target: "gesmc_serve::jobs",
                id: request_id,
                "job {id} ({name:?}) accepted: chain={}, supersteps={supersteps}, thinning={thinning}",
                record.chain
            );
            Response::json(
                202,
                &json_object(vec![
                    ("id", Value::Number(id as f64)),
                    ("name", Value::String(name)),
                    ("status", Value::String(record.handle.state().label().to_string())),
                    ("url", Value::String(format!("/v1/jobs/{id}"))),
                ]),
            )
        }
        Err(e) => {
            // No room to track the job: cancel the untracked submission and
            // shed.
            handle_for_rollback.cancel();
            journal_cancelled(0);
            Response::error(429, &format!("{e}; retry once jobs finish"))
                .with_header("Retry-After", "5")
        }
    }
}

fn parse_id(raw: &str) -> Result<u64, Response> {
    raw.parse().map_err(|_| Response::error(400, &format!("job id {raw:?} is not an integer")))
}

/// `GET /v1/jobs` — every job record resident on this node, newest-ID
/// last.  Jobs are node-local (not sharded); a cluster client lists each
/// node and merges.
fn list_jobs(state: &ServerState) -> Response {
    let jobs: Vec<Value> = state.jobs.records().iter().map(|r| r.status_json()).collect();
    Response::json(200, &Value::Array(jobs))
}

/// `GET /v1/cluster` — ring membership, peer health, and forwarding
/// counters (`{"enabled": false}` on a standalone node).
fn cluster_status(state: &ServerState) -> Response {
    match &state.cluster {
        Some(cluster) => Response::json(200, &cluster.status_json()),
        None => Response::json(200, &json_object(vec![("enabled", Value::Bool(false))])),
    }
}

/// `GET /v1/jobs/{id}` — status document.
fn job_status(state: &ServerState, id_raw: &str) -> Response {
    let id = match parse_id(id_raw) {
        Ok(id) => id,
        Err(resp) => return resp,
    };
    match state.jobs.get(id) {
        Some(record) => Response::json(200, &record.status_json()),
        None => Response::error(404, &format!("no job {id}")),
    }
}

/// `DELETE /v1/jobs/{id}` — request cancellation.
fn cancel_job(state: &ServerState, id_raw: &str) -> Response {
    let id = match parse_id(id_raw) {
        Ok(id) => id,
        Err(resp) => return resp,
    };
    match state.jobs.get(id) {
        Some(record) => {
            record.handle.cancel();
            Response::json(
                202,
                &json_object(vec![
                    ("id", Value::Number(id as f64)),
                    ("status", Value::String("cancelling".to_string())),
                ]),
            )
        }
        None => Response::error(404, &format!("no job {id}")),
    }
}

/// `GET /v1/jobs/{id}/samples/{k}` — the `k`-th thinned sample.
fn job_sample(state: &ServerState, request: &Request, id_raw: &str, k_raw: &str) -> Response {
    let id = match parse_id(id_raw) {
        Ok(id) => id,
        Err(resp) => return resp,
    };
    let Ok(k) = k_raw.parse::<usize>() else {
        return Response::error(400, &format!("sample index {k_raw:?} is not an integer"));
    };
    let Some(record) = state.jobs.get(id) else {
        return Response::error(404, &format!("no job {id}"));
    };
    let sample = record.samples.lock().expect("samples mutex poisoned").get(k).cloned();
    match sample {
        Some(sample) => {
            let response = if request.wants_binary() {
                Response::shared(200, "application/octet-stream", Arc::clone(&sample.binary))
            } else {
                Response::shared(200, "text/plain; charset=utf-8", Arc::clone(&sample.text))
            };
            response.with_header("X-Gesmc-Superstep", sample.superstep.to_string())
        }
        None => {
            let available = record.samples.lock().expect("samples mutex poisoned").len();
            let state_label = record.handle.state().label();
            if record.handle.is_finished() {
                Response::error(
                    404,
                    &format!("job {id} ({state_label}) has {available} samples; index {k} is out of range"),
                )
            } else {
                Response::error(
                    404,
                    &format!(
                        "sample {k} of job {id} not yet available ({available} so far, job {state_label})"
                    ),
                )
            }
        }
    }
}

/// `POST /v1/shutdown` — graceful shutdown, when enabled.
fn shutdown(state: &ServerState) -> Response {
    if !state.config.allow_shutdown {
        return Response::error(
            403,
            "shutdown over HTTP is disabled (start with --allow-shutdown)",
        );
    }
    state.request_shutdown();
    Response::json(202, &json_object(vec![("status", Value::String("shutting-down".to_string()))]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_specs_parse_with_defaults_and_canonicalise() {
        let spec = parse_graph_spec("pld:m=2000,gamma=2.2,seed=9").unwrap();
        assert_eq!(spec.canonical, "pld:gamma=2.2,m=2000,n=0,seed=9");
        assert_eq!(spec.edges, 2000);
        assert!(matches!(
            spec.source,
            GraphSource::Generated { ref family, edges: 2000, seed: 9, .. } if family == "pld"
        ));
        // Defaults fill in; key order does not change the canonical form.
        let a = parse_graph_spec("gnp:m=100,seed=2").unwrap();
        let b = parse_graph_spec("gnp:seed=2,m=100").unwrap();
        assert_eq!(a.canonical, b.canonical);
        assert_eq!(parse_graph_spec("gnp").unwrap().canonical, "gnp:gamma=2.5,m=1000,n=0,seed=1");
    }

    #[test]
    fn graph_specs_reject_nonsense() {
        for (raw, needle) in [
            ("tree:m=10", "unknown graph family"),
            ("gnp:m", "malformed graph parameter"),
            ("gnp:m=zebra", "not a valid edge count"),
            ("gnp:weird=1", "unknown graph parameter"),
            ("gnp:m=0", "must be positive"),
            ("pld:gamma=0.5", "gamma must lie"),
        ] {
            let err = parse_graph_spec(raw).unwrap_err();
            assert!(err.contains(needle), "{raw}: {err:?} lacks {needle:?}");
        }
    }

    #[test]
    fn canonical_specs_fingerprint_stably() {
        let a = parse_graph_spec("gnp:m=100,seed=2").unwrap();
        let b = parse_graph_spec("gnp:seed=2,m=100").unwrap();
        assert_eq!(fnv1a_64(a.canonical.as_bytes()), fnv1a_64(b.canonical.as_bytes()));
        let c = parse_graph_spec("gnp:m=100,seed=3").unwrap();
        assert_ne!(fnv1a_64(a.canonical.as_bytes()), fnv1a_64(c.canonical.as_bytes()));
    }
}
