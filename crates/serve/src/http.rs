//! A minimal, strict HTTP/1.1 codec on `std` byte streams.
//!
//! The service only needs plain request/response exchanges (`Connection:
//! close` on every response, no keep-alive, no chunked bodies), so the codec
//! is hand-rolled rather than vendored: a bounds-checked request parser with
//! hard limits on every dimension an untrusted peer controls — request-line
//! length, header count and size, body size — and a response writer.
//! Anything outside the accepted subset is rejected with the matching 4xx
//! status, never a panic or an unbounded allocation.

use serde_json::Value;
use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Longest accepted request line (method + target + version), in bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Longest accepted single header line, in bytes.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Absolute deadline for reading one full request.  Per-read socket timeouts
/// alone would let a slow-drip peer (one byte per read-timeout) pin a worker
/// indefinitely; the deadline bounds the whole parse.
pub const MAX_REQUEST_DURATION: Duration = Duration::from_secs(30);

/// The request methods the service routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
    /// `DELETE`
    Delete,
}

impl Method {
    /// The wire spelling (for request log lines).
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Delete => "DELETE",
        }
    }

    fn parse(raw: &str) -> Option<Self> {
        match raw {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "DELETE" => Some(Method::Delete),
            _ => None,
        }
    }
}

/// A parsed request: method, decoded path, decoded query pairs, headers
/// (names lowercased), body.
#[derive(Debug)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Percent-decoded path, without the query string.
    pub path: String,
    /// Percent-decoded `key=value` query pairs, in order.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, in order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Whether the client asked for the binary edge-list encoding
    /// (`Accept: application/octet-stream`).
    pub fn wants_binary(&self) -> bool {
        self.header("accept").is_some_and(|a| a.contains("application/octet-stream"))
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure (peer went away, timeout); no response is owed.
    Io(std::io::Error),
    /// Malformed request → `400`.
    BadRequest(String),
    /// Unsupported method → `405`.
    MethodNotAllowed(String),
    /// Body or line limits exceeded → `413`.
    TooLarge(String),
}

impl HttpError {
    /// The response this error owes the peer (`None` for I/O failures,
    /// where the connection is simply dropped).
    pub fn into_response(self) -> Option<Response> {
        match self {
            HttpError::Io(_) => None,
            HttpError::BadRequest(msg) => Some(Response::error(400, &msg)),
            HttpError::MethodNotAllowed(msg) => Some(Response::error(405, &msg)),
            HttpError::TooLarge(msg) => Some(Response::error(413, &msg)),
        }
    }
}

/// Fail with 408-ish semantics once `deadline` passed (mapped to a dropped
/// connection: a peer this slow is not owed a response body).
fn check_deadline(deadline: Instant) -> Result<(), HttpError> {
    if Instant::now() >= deadline {
        return Err(HttpError::Io(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            "request exceeded the read deadline",
        )));
    }
    Ok(())
}

/// Read one `\r\n`- (or `\n`-) terminated line, rejecting lines over `cap`.
fn read_line<R: BufRead>(
    reader: &mut R,
    cap: usize,
    what: &str,
    deadline: Instant,
) -> Result<String, HttpError> {
    let mut buf = Vec::with_capacity(128);
    loop {
        check_deadline(deadline)?;
        let chunk = reader.fill_buf().map_err(HttpError::Io)?;
        if chunk.is_empty() {
            return Err(HttpError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-line",
            )));
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if buf.len() + pos > cap {
                    return Err(HttpError::TooLarge(format!("{what} exceeds {cap} bytes")));
                }
                buf.extend_from_slice(&chunk[..pos]);
                reader.consume(pos + 1);
                if buf.last() == Some(&b'\r') {
                    buf.pop();
                }
                return String::from_utf8(buf)
                    .map_err(|_| HttpError::BadRequest(format!("{what} is not UTF-8")));
            }
            None => {
                if buf.len() + chunk.len() > cap {
                    return Err(HttpError::TooLarge(format!("{what} exceeds {cap} bytes")));
                }
                let len = chunk.len();
                buf.extend_from_slice(chunk);
                reader.consume(len);
            }
        }
    }
}

/// Decode `%XX` escapes and `+` (as space) in a URL component.  Malformed
/// escapes are passed through verbatim rather than rejected.
pub fn percent_decode(raw: &str) -> String {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let hex = |b: u8| (b as char).to_digit(16);
                match (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                    (Some(hi), Some(lo)) => {
                        out.push((hi * 16 + lo) as u8);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Split and decode a raw query string into `key=value` pairs.
pub fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

/// Parse one request from `reader`, enforcing all limits; `max_body` caps
/// the accepted `Content-Length`, and the whole parse must finish within
/// [`MAX_REQUEST_DURATION`].
pub fn read_request<R: BufRead>(reader: &mut R, max_body: usize) -> Result<Request, HttpError> {
    let deadline = Instant::now() + MAX_REQUEST_DURATION;
    let request_line = read_line(reader, MAX_REQUEST_LINE, "request line", deadline)?;
    let mut parts = request_line.split(' ');
    let (method_raw, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if parts.next().is_none() => (m, t, v),
        _ => return Err(HttpError::BadRequest(format!("malformed request line {request_line:?}"))),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest(format!("unsupported protocol {version:?}")));
    }
    let method = Method::parse(method_raw)
        .ok_or_else(|| HttpError::MethodNotAllowed(format!("method {method_raw} not supported")))?;

    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let path = percent_decode(path_raw);
    let query = parse_query(query_raw);

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, MAX_HEADER_LINE, "header line", deadline)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge(format!("more than {MAX_HEADERS} headers")));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let find = |name: &str| headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str());
    if find("transfer-encoding").is_some_and(|v| !v.eq_ignore_ascii_case("identity")) {
        return Err(HttpError::BadRequest("chunked bodies are not supported".to_string()));
    }
    let body = match find("content-length") {
        None => Vec::new(),
        Some(raw) => {
            let len: usize = raw
                .parse()
                .map_err(|_| HttpError::BadRequest(format!("bad Content-Length {raw:?}")))?;
            if len > max_body {
                return Err(HttpError::TooLarge(format!(
                    "body of {len} bytes exceeds the {max_body}-byte limit"
                )));
            }
            let mut body = vec![0u8; len];
            let mut filled = 0;
            while filled < len {
                check_deadline(deadline)?;
                match std::io::Read::read(reader, &mut body[filled..]) {
                    Ok(0) => {
                        return Err(HttpError::Io(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "connection closed mid-body",
                        )))
                    }
                    Ok(n) => filled += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(HttpError::Io(e)),
                }
            }
            body
        }
    };

    Ok(Request { method, path, query, headers, body })
}

/// The standard reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        204 => "No Content",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A response body: owned bytes, or a shared reference into the sample
/// cache (so serving a cache hit never copies the payload).
#[derive(Debug)]
pub enum Body {
    /// Bytes owned by the response.
    Owned(Vec<u8>),
    /// Bytes shared with a cache entry.
    Shared(Arc<Vec<u8>>),
}

impl Body {
    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Body::Owned(bytes) => bytes,
            Body::Shared(bytes) => bytes,
        }
    }
}

/// An HTTP response under construction.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    headers: Vec<(String, String)>,
    body: Body,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            headers: vec![("Content-Type".to_string(), "text/plain; charset=utf-8".to_string())],
            body: Body::Owned(body.into().into_bytes()),
        }
    }

    /// An `application/json` response serialising `value`.
    pub fn json(status: u16, value: &Value) -> Self {
        let body = serde_json::to_string(value).unwrap_or_else(|_| "{}".to_string());
        Self {
            status,
            headers: vec![("Content-Type".to_string(), "application/json".to_string())],
            body: Body::Owned(body.into_bytes()),
        }
    }

    /// An `application/octet-stream` response.
    pub fn binary(status: u16, body: Vec<u8>) -> Self {
        Self {
            status,
            headers: vec![("Content-Type".to_string(), "application/octet-stream".to_string())],
            body: Body::Owned(body),
        }
    }

    /// A zero-copy response sharing `body` (e.g. a warm-cache entry).
    pub fn shared(status: u16, content_type: &str, body: Arc<Vec<u8>>) -> Self {
        Self {
            status,
            headers: vec![("Content-Type".to_string(), content_type.to_string())],
            body: Body::Shared(body),
        }
    }

    /// The response payload.
    pub fn body(&self) -> &[u8] {
        self.body.as_slice()
    }

    /// The uniform JSON error shape: `{"error": message}`.
    pub fn error(status: u16, message: &str) -> Self {
        let mut map = serde_json::Map::new();
        map.insert("error".to_string(), Value::String(message.to_string()));
        Self::json(status, &Value::Object(map))
    }

    /// Builder-style extra header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Replace the `Content-Type` set by the constructor (e.g. the
    /// Prometheus exposition type on `/metrics`).
    pub fn with_content_type(mut self, value: &str) -> Self {
        match self.headers.iter_mut().find(|(name, _)| name == "Content-Type") {
            Some(slot) => slot.1 = value.to_string(),
            None => self.headers.insert(0, ("Content-Type".to_string(), value.to_string())),
        }
        self
    }

    /// Serialise the response (status line, headers, `Content-Length`,
    /// `Connection: close`, body) onto `writer`.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> std::io::Result<()> {
        write!(writer, "HTTP/1.1 {} {}\r\n", self.status, reason(self.status))?;
        for (name, value) in &self.headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        let body = self.body.as_slice();
        write!(writer, "Content-Length: {}\r\n", body.len())?;
        write!(writer, "Connection: close\r\n\r\n")?;
        writer.write_all(body)?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw), 1024)
    }

    #[test]
    fn parses_a_get_with_query_and_headers() {
        let req = parse(
            b"GET /v1/sample?graph=pld:m=100&algo=par-global-es%3Fpl%3D0.01&x HTTP/1.1\r\n\
              Host: localhost\r\nAccept: application/octet-stream\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/v1/sample");
        assert_eq!(req.query_param("graph"), Some("pld:m=100"));
        assert_eq!(req.query_param("algo"), Some("par-global-es?pl=0.01"));
        assert_eq!(req.query_param("x"), Some(""));
        assert_eq!(req.header("host"), Some("localhost"));
        assert!(req.wants_binary());
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_body_by_content_length() {
        let req = parse(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\":1}").unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn rejects_malformed_and_oversized_requests() {
        assert!(matches!(parse(b"NONSENSE\r\n\r\n"), Err(HttpError::BadRequest(_))));
        assert!(matches!(parse(b"PUT / HTTP/1.1\r\n\r\n"), Err(HttpError::MethodNotAllowed(_))));
        assert!(matches!(parse(b"GET / SPDY/3\r\n\r\n"), Err(HttpError::BadRequest(_))));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"),
            Err(HttpError::TooLarge(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE));
        assert!(matches!(parse(long_line.as_bytes()), Err(HttpError::TooLarge(_))));
        let many_headers = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            (0..=MAX_HEADERS).map(|i| format!("h{i}: v\r\n")).collect::<String>()
        );
        assert!(matches!(parse(many_headers.as_bytes()), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("pl%3D0.01"), "pl=0.01");
        assert_eq!(percent_decode("100%"), "100%", "malformed escapes pass through");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::text(200, "ok\n").with_header("X-Cache", "hit").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: text/plain; charset=utf-8\r\n"));
        assert!(text.contains("X-Cache: hit\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));
    }

    #[test]
    fn content_type_can_be_overridden_without_duplication() {
        let mut out = Vec::new();
        Response::text(200, "x")
            .with_content_type("text/plain; version=0.0.4; charset=utf-8")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"));
        assert_eq!(text.matches("Content-Type:").count(), 1);
        assert_eq!(Method::Get.as_str(), "GET");
    }

    #[test]
    fn error_responses_are_json() {
        let resp = Response::error(429, "try later");
        assert_eq!(resp.status, 429);
        let parsed = serde_json::from_str(std::str::from_utf8(resp.body()).unwrap()).unwrap();
        assert_eq!(parsed.get("error").and_then(|v| v.as_str()), Some("try later"));
    }

    #[test]
    fn shared_bodies_serialise_without_copying_the_arc_contents() {
        let payload = Arc::new(b"0 1\n".to_vec());
        let resp = Response::shared(200, "text/plain; charset=utf-8", Arc::clone(&payload));
        assert_eq!(resp.body(), payload.as_slice());
        let mut out = Vec::new();
        resp.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Length: 4\r\n"));
        assert!(text.ends_with("\r\n\r\n0 1\n"));
    }
}
